//! The paper's Boolean synthetic datasets (§6.1):
//!
//! * **Bool-iid** — `m` tuples over `n` i.i.d. Boolean attributes, each 1
//!   with probability `p = 0.5`.
//! * **Bool-mixed** — skewed: 5 attributes with `p = 0.5` and the
//!   remaining attributes with `p` ranging over `1/70, 2/70, …, 35/70`.
//!
//! Both datasets in the paper use `m = 200,000`, `n = 40`. Generators
//! draw until `m` *distinct* tuples exist (the data model forbids
//! duplicates).

use hdb_interface::{HdbError, Result, Schema, Table, Tuple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Upper bound on redraws per tuple before concluding the requested table
/// cannot be filled with distinct tuples.
const MAX_ATTEMPT_FACTOR: usize = 200;

/// Generates a table of `m` distinct tuples over `probs.len()` Boolean
/// attributes, attribute `i` being 1 with probability `probs[i]`.
///
/// # Errors
/// Returns [`HdbError::InvalidSchema`] if `probs` is empty or contains a
/// probability outside `[0, 1]`, and [`HdbError::InvalidTuple`] if `m`
/// distinct tuples cannot be produced (domain too small or probabilities
/// too degenerate).
pub fn boolean_with_probs(m: usize, probs: &[f64], seed: u64) -> Result<Table> {
    if probs.is_empty() {
        return Err(HdbError::InvalidSchema("need at least one attribute".into()));
    }
    if let Some(bad) = probs.iter().find(|p| !(0.0..=1.0).contains(*p)) {
        return Err(HdbError::InvalidSchema(format!("probability {bad} outside [0, 1]")));
    }
    let n = probs.len();
    let schema = Schema::boolean(n);
    if (n < 64) && (m as f64) > (1u64 << n) as f64 {
        return Err(HdbError::InvalidTuple(format!(
            "cannot place {m} distinct tuples in a domain of size 2^{n}"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen: HashSet<Tuple> = HashSet::with_capacity(m);
    let mut tuples = Vec::with_capacity(m);
    let mut attempts = 0usize;
    let max_attempts = m.saturating_mul(MAX_ATTEMPT_FACTOR).max(1000);
    while tuples.len() < m {
        attempts += 1;
        if attempts > max_attempts {
            return Err(HdbError::InvalidTuple(format!(
                "gave up after {attempts} draws with only {}/{m} distinct tuples",
                tuples.len()
            )));
        }
        let t = Tuple::new(
            probs.iter().map(|&p| u16::from(rng.random_bool(p))).collect(),
        );
        if seen.insert(t.clone()) {
            tuples.push(t);
        }
    }
    Table::new(schema, tuples)
}

/// The paper's **Bool-iid** dataset: every attribute is 1 with
/// probability 0.5.
///
/// # Errors
/// See [`boolean_with_probs`].
pub fn bool_iid(m: usize, n: usize, seed: u64) -> Result<Table> {
    boolean_with_probs(m, &vec![0.5; n], seed)
}

/// The paper's **Bool-mixed** dataset: 5 attributes at `p = 0.5`, the
/// remaining `n - 5` with `p` taking the values `1/70, 2/70, …` (up to
/// 35/70 for the paper's 40-attribute instance).
///
/// Column order: the near-uniform attributes come **first** (the skewed
/// probabilities are laid out in descending order). The paper fixes the
/// set of marginals but not the column order, and order matters: Boolean
/// fanouts all tie, so the drill-down's fanout-descending rule reduces to
/// schema order, and placing the most-skewed attributes near the root
/// produces estimation variance orders of magnitude above what the
/// paper's Figures 6–8 report. With near-uniform attributes first the
/// measured accuracy matches the paper's; see EXPERIMENTS.md.
///
/// # Errors
/// Returns [`HdbError::InvalidSchema`] if `n < 6` (the mixture needs both
/// groups), otherwise see [`boolean_with_probs`].
pub fn bool_mixed(m: usize, n: usize, seed: u64) -> Result<Table> {
    if n < 6 {
        return Err(HdbError::InvalidSchema(
            "bool_mixed needs at least 6 attributes (5 uniform + ≥1 skewed)".into(),
        ));
    }
    let mut probs = vec![0.5; 5];
    for i in 0..(n - 5) {
        let step = 35 - (i % 35); // 35/70 … 1/70 descending, wrapping for n > 40
        probs.push(step as f64 / 70.0);
    }
    boolean_with_probs(m, &probs, seed)
}

/// Paper-default parameters for the Boolean datasets.
pub mod paper {
    use super::*;

    /// `m = 200,000` (paper §6.1).
    pub const M: usize = 200_000;
    /// `n = 40` (paper §6.1).
    pub const N: usize = 40;

    /// Bool-iid at paper scale.
    ///
    /// # Errors
    /// See [`boolean_with_probs`].
    pub fn bool_iid(seed: u64) -> Result<Table> {
        super::bool_iid(M, N, seed)
    }

    /// Bool-mixed at paper scale.
    ///
    /// # Errors
    /// See [`boolean_with_probs`].
    pub fn bool_mixed(seed: u64) -> Result<Table> {
        super::bool_mixed(M, N, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iid_has_requested_shape() {
        let t = bool_iid(1000, 20, 42).unwrap();
        assert_eq!(t.len(), 1000);
        assert_eq!(t.schema().len(), 20);
        assert!(t.schema().is_all_boolean());
    }

    #[test]
    fn iid_attribute_frequencies_near_half() {
        let t = bool_iid(4000, 16, 7).unwrap();
        for attr in 0..16 {
            let ones = t.tuples().iter().filter(|tp| tp.value(attr) == 1).count();
            let freq = ones as f64 / t.len() as f64;
            assert!((freq - 0.5).abs() < 0.05, "attr {attr}: {freq}");
        }
    }

    #[test]
    fn mixed_attributes_are_skewed_descending() {
        // Note: the distinct-tuples requirement slightly inflates rare
        // patterns on small domains, so we assert ordering and coarse
        // magnitude rather than exact frequencies.
        let t = bool_mixed(4000, 30, 9).unwrap();
        let freq = |attr: usize| {
            t.tuples().iter().filter(|tp| tp.value(attr) == 1).count() as f64 / 4000.0
        };
        let f5 = freq(5); // p = 35/70 (near-uniform attrs first)
        let f15 = freq(15); // p = 25/70
        let f29 = freq(29); // p = 11/70
        assert!((f5 - 0.5).abs() < 0.08, "attr 5 frequency {f5} should be ~35/70");
        assert!(f5 > f15 && f15 > f29, "frequencies should descend: {f5} {f15} {f29}");
        // the most skewed attribute sits last
        let f_last = freq(29);
        assert!(f_last < f5, "skew increases toward the last attribute");
    }

    #[test]
    fn tuples_are_distinct() {
        let t = bool_iid(2000, 18, 3).unwrap();
        let set: std::collections::HashSet<_> = t.tuples().iter().collect();
        assert_eq!(set.len(), t.len());
    }

    #[test]
    fn deterministic_under_seed() {
        let a = bool_iid(500, 12, 5).unwrap();
        let b = bool_iid(500, 12, 5).unwrap();
        assert_eq!(a.tuples(), b.tuples());
        let c = bool_iid(500, 12, 6).unwrap();
        assert_ne!(a.tuples(), c.tuples());
    }

    #[test]
    fn impossible_requests_rejected() {
        // 2^3 = 8 < 20 requested distinct tuples
        assert!(bool_iid(20, 3, 1).is_err());
        assert!(bool_mixed(10, 4, 1).is_err());
        assert!(boolean_with_probs(10, &[], 1).is_err());
        assert!(boolean_with_probs(10, &[1.5, 0.5], 1).is_err());
    }

    #[test]
    fn degenerate_probability_cannot_fill() {
        // all-ones tuples only → a single distinct tuple exists
        assert!(boolean_with_probs(2, &[1.0, 1.0, 1.0], 1).is_err());
    }
}
