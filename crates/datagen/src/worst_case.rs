//! The paper's worst-case instance (Figure 4, §3.3.2): `n + 1` tuples
//! `t_0, …, t_n` over `n` Boolean attributes where `t_i` (for `i ≥ 1`)
//! agrees with `t_0` on attributes `a_1 … a_{n-i}` and is flipped on
//! `a_{n-i+1} … a_n`.
//!
//! With `k = 1` this yields two top-valid queries at the full depth `n`
//! (those separating `t_0` from `t_1`), each with selection probability
//! `1/2^n`, driving the plain drill-down variance above `2^{n+1} - m²`
//! (paper Corollary 1). It is the stress test that motivates
//! divide-&-conquer.

use hdb_interface::{HdbError, Result, Schema, Table, Tuple};

/// Builds the Figure-4 worst-case instance over `n` Boolean attributes
/// (`n + 1` tuples). `t_0` is the all-zeros tuple.
///
/// # Errors
/// Returns [`HdbError::InvalidSchema`] if `n < 2` (the construction needs
/// room for at least one partial flip).
pub fn worst_case(n: usize) -> Result<Table> {
    if n < 2 {
        return Err(HdbError::InvalidSchema(
            "worst-case construction needs at least 2 attributes".into(),
        ));
    }
    let schema = Schema::boolean(n);
    let t0 = vec![0u16; n];
    let mut tuples = vec![Tuple::new(t0.clone())];
    for i in 1..=n {
        let mut v = t0.clone();
        for value in v.iter_mut().skip(n - i) {
            *value = 1 - *value;
        }
        tuples.push(Tuple::new(v));
    }
    Table::new(schema, tuples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_is_n_plus_one() {
        let t = worst_case(8).unwrap();
        assert_eq!(t.len(), 9);
        assert_eq!(t.schema().len(), 8);
    }

    #[test]
    fn construction_matches_definition() {
        let t = worst_case(4).unwrap();
        let rows: Vec<&[u16]> = t.tuples().iter().map(|t| t.values()).collect();
        assert_eq!(rows[0], &[0, 0, 0, 0]);
        assert_eq!(rows[1], &[0, 0, 0, 1]); // flip last 1
        assert_eq!(rows[2], &[0, 0, 1, 1]); // flip last 2
        assert_eq!(rows[3], &[0, 1, 1, 1]);
        assert_eq!(rows[4], &[1, 1, 1, 1]);
    }

    #[test]
    fn t0_and_t1_differ_only_in_last_attribute() {
        let t = worst_case(10).unwrap();
        let t0 = t.tuples()[0].values();
        let t1 = t.tuples()[1].values();
        assert_eq!(&t0[..9], &t1[..9]);
        assert_ne!(t0[9], t1[9]);
    }

    #[test]
    fn too_small_rejected() {
        assert!(worst_case(1).is_err());
        assert!(worst_case(0).is_err());
    }
}
