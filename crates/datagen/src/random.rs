//! Generic random-table helpers used by tests, property-based suites and
//! the enlargement utility.

use hdb_interface::{HdbError, Result, Schema, Table, Tuple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Draws a table of `m` distinct uniform-random tuples over `schema`.
///
/// # Errors
/// Returns [`HdbError::InvalidTuple`] if the domain cannot hold `m`
/// distinct tuples or sampling stalls.
pub fn uniform_table(schema: &Schema, m: usize, seed: u64) -> Result<Table> {
    if (m as f64) > schema.domain_size() {
        return Err(HdbError::InvalidTuple(format!(
            "cannot place {m} distinct tuples in a domain of size {}",
            schema.domain_size()
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen: HashSet<Tuple> = HashSet::with_capacity(m);
    let mut tuples = Vec::with_capacity(m);
    let mut attempts = 0usize;
    let max_attempts = m.saturating_mul(1000).max(10_000);
    while tuples.len() < m {
        attempts += 1;
        if attempts > max_attempts {
            return Err(HdbError::InvalidTuple(format!(
                "uniform sampling stalled at {}/{m} rows",
                tuples.len()
            )));
        }
        let t = Tuple::new(
            (0..schema.len()).map(|a| rng.random_range(0..schema.fanout(a)) as u16).collect(),
        );
        if seen.insert(t.clone()) {
            tuples.push(t);
        }
    }
    Table::new(schema.clone(), tuples)
}

/// Per-attribute empirical value frequencies of a table:
/// `result[attr][value]` = number of rows with that value.
#[must_use]
pub fn empirical_marginals(table: &Table) -> Vec<Vec<f64>> {
    let schema = table.schema();
    let mut marginals: Vec<Vec<f64>> =
        (0..schema.len()).map(|a| vec![0.0; schema.fanout(a)]).collect();
    for t in table.tuples() {
        for (attr, &v) in t.values().iter().enumerate() {
            marginals[attr][v as usize] += 1.0;
        }
    }
    marginals
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdb_interface::Attribute;

    #[test]
    fn uniform_table_has_distinct_rows() {
        let schema = Schema::boolean(10);
        let t = uniform_table(&schema, 200, 1).unwrap();
        assert_eq!(t.len(), 200);
        let set: HashSet<_> = t.tuples().iter().collect();
        assert_eq!(set.len(), 200);
    }

    #[test]
    fn over_capacity_rejected() {
        let schema = Schema::boolean(3);
        assert!(uniform_table(&schema, 9, 1).is_err());
        // exactly the domain size is fine
        let t = uniform_table(&schema, 8, 1).unwrap();
        assert_eq!(t.len(), 8);
    }

    #[test]
    fn marginals_count_values() {
        let schema = Schema::new(vec![
            Attribute::boolean("a"),
            Attribute::categorical("b", ["x", "y", "z"]).unwrap(),
        ])
        .unwrap();
        let t = Table::new(
            schema,
            vec![
                Tuple::new(vec![0, 0]),
                Tuple::new(vec![0, 2]),
                Tuple::new(vec![1, 2]),
            ],
        )
        .unwrap();
        let m = empirical_marginals(&t);
        assert_eq!(m[0], vec![2.0, 1.0]);
        assert_eq!(m[1], vec![1.0, 0.0, 2.0]);
    }
}
