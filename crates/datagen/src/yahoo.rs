//! A synthetic stand-in for the paper's offline **Yahoo! Auto** dataset
//! (§6.1): used-car listings with 32 Boolean option attributes (A/C,
//! power locks, …) and 6 categorical attributes (MAKE, MODEL, COLOR, …)
//! whose fanouts range from 5 to 16.
//!
//! The real dataset was crawled in 2007 and enlarged to 188,790 rows with
//! DBGen; we cannot redistribute it, so this generator produces a
//! correlated, heavily skewed joint distribution with the same schema
//! shape: make popularity is Zipf, model depends on make, price depends
//! on make, and option packages correlate with price. The estimation
//! experiments only depend on this *shape* (fanouts and skew), not on the
//! precise 2007 inventory.

use hdb_interface::{Attribute, HdbError, Result, Schema, Table, Tuple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

use crate::zipf::Zipf;

/// Number of Boolean option attributes (paper: 32).
pub const NUM_OPTIONS: usize = 32;

/// Fanouts of the categorical attributes, chosen within the paper's 5–16
/// range.
pub const MAKE_FANOUT: usize = 16;
/// Models per make-agnostic model list.
pub const MODEL_FANOUT: usize = 16;
/// Exterior colors.
pub const COLOR_FANOUT: usize = 12;
/// Body styles.
pub const BODY_FANOUT: usize = 8;
/// Transmission types.
pub const TRANS_FANOUT: usize = 5;
/// Price buckets (numeric interpretation: bucket midpoint in dollars).
pub const PRICE_FANOUT: usize = 10;

/// Paper-scale row count (the enlarged offline dataset).
pub const PAPER_ROWS: usize = 188_790;

/// Attribute ids within the generated schema, in schema order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct YahooAttrs {
    /// MAKE (fanout 16).
    pub make: usize,
    /// MODEL (fanout 16, correlated with MAKE).
    pub model: usize,
    /// COLOR (fanout 12).
    pub color: usize,
    /// BODY style (fanout 8).
    pub body: usize,
    /// TRANSMISSION (fanout 5).
    pub transmission: usize,
    /// PRICE bucket (fanout 10, numeric).
    pub price: usize,
    /// First Boolean option; options occupy `options_start..options_start + NUM_OPTIONS`.
    pub options_start: usize,
}

/// The fixed attribute layout of [`yahoo_schema`].
pub const ATTRS: YahooAttrs =
    YahooAttrs { make: 0, model: 1, color: 2, body: 3, transmission: 4, price: 5, options_start: 6 };

const MAKES: [&str; MAKE_FANOUT] = [
    "toyota", "ford", "chevrolet", "honda", "nissan", "dodge", "bmw", "mercedes", "volkswagen",
    "hyundai", "kia", "subaru", "mazda", "lexus", "jeep", "pontiac",
];

const COLORS: [&str; COLOR_FANOUT] = [
    "black", "white", "silver", "gray", "blue", "red", "green", "gold", "beige", "brown",
    "orange", "yellow",
];

const BODIES: [&str; BODY_FANOUT] =
    ["sedan", "suv", "coupe", "truck", "hatchback", "van", "convertible", "wagon"];

const TRANSMISSIONS: [&str; TRANS_FANOUT] =
    ["automatic", "manual", "cvt", "automanual", "dual-clutch"];

const OPTION_NAMES: [&str; NUM_OPTIONS] = [
    "ac", "power_locks", "power_windows", "cruise_control", "abs", "airbag_side",
    "alloy_wheels", "sunroof", "leather_seats", "heated_seats", "navigation", "bluetooth",
    "cd_player", "mp3", "keyless_entry", "remote_start", "tow_package", "roof_rack",
    "fog_lights", "spoiler", "backup_camera", "parking_sensors", "premium_audio",
    "third_row", "awd", "turbo", "alarm", "tinted_windows", "running_boards",
    "bed_liner", "memory_seats", "xenon_lights",
];

/// Builds the 38-attribute used-car schema (6 categorical + 32 Boolean).
///
/// PRICE carries a numeric interpretation (bucket midpoints:
/// $2,500, $7,500, …, $47,500) so `SUM(price)` aggregates are defined.
#[must_use]
pub fn yahoo_schema() -> Schema {
    let mut attrs = vec![
        Attribute::categorical("make", MAKES).expect("static domain"),
        Attribute::categorical("model", (0..MODEL_FANOUT).map(|i| format!("model{i:02}")))
            .expect("static domain"),
        Attribute::categorical("color", COLORS).expect("static domain"),
        Attribute::categorical("body", BODIES).expect("static domain"),
        Attribute::categorical("transmission", TRANSMISSIONS).expect("static domain"),
        Attribute::categorical("price", (0..PRICE_FANOUT).map(|i| format!("${}k-{}k", i * 5, (i + 1) * 5)))
            .expect("static domain")
            .with_numeric((0..PRICE_FANOUT).map(|i| (i as f64) * 5000.0 + 2500.0).collect())
            .expect("length matches"),
    ];
    attrs.extend(OPTION_NAMES.iter().map(|&n| Attribute::boolean(n)));
    Schema::new(attrs).expect("static schema is valid")
}

/// Generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct YahooConfig {
    /// Number of distinct rows to produce.
    pub rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for YahooConfig {
    fn default() -> Self {
        Self { rows: PAPER_ROWS, seed: 2010 }
    }
}

/// Generates the synthetic used-car table.
///
/// Correlation structure:
/// * `MAKE ~ Zipf(1.05)` — a few makes dominate the inventory.
/// * `MODEL | MAKE` — Zipf(1.2) over a make-specific rotation of the
///   model list, so each make concentrates on a few models.
/// * `PRICE | MAKE` — luxury makes (bmw, mercedes, lexus) shift the price
///   distribution upward.
/// * option `o` — probability = per-option base (seeded, in [0.08, 0.92])
///   nudged up with the price bucket: expensive cars have more options.
///
/// # Errors
/// Returns [`HdbError::InvalidTuple`] if `rows` distinct tuples cannot be
/// drawn (practically impossible below tens of millions of rows).
pub fn yahoo_auto(config: YahooConfig) -> Result<Table> {
    let schema = yahoo_schema();
    let mut rng = StdRng::seed_from_u64(config.seed);

    let make_dist = Zipf::new(MAKE_FANOUT, 1.05);
    let model_dist = Zipf::new(MODEL_FANOUT, 1.2);
    let color_dist = Zipf::new(COLOR_FANOUT, 0.8);
    let body_dist = Zipf::new(BODY_FANOUT, 0.7);
    let trans_dist = Zipf::new(TRANS_FANOUT, 1.0);
    let price_dist = Zipf::new(PRICE_FANOUT, 0.6);

    // luxury makes push price buckets upward
    let luxury: [usize; 3] = [6, 7, 13]; // bmw, mercedes, lexus
    let option_base: Vec<f64> = (0..NUM_OPTIONS).map(|_| rng.random_range(0.08..0.92)).collect();

    let mut seen: HashSet<Tuple> = HashSet::with_capacity(config.rows);
    let mut tuples = Vec::with_capacity(config.rows);
    let mut attempts = 0usize;
    let max_attempts = config.rows.saturating_mul(50).max(10_000);
    while tuples.len() < config.rows {
        attempts += 1;
        if attempts > max_attempts {
            return Err(HdbError::InvalidTuple(format!(
                "gave up after {attempts} draws with {}/{} distinct rows",
                tuples.len(),
                config.rows
            )));
        }

        let make = make_dist.sample(&mut rng);
        // model: rank drawn from the conditional Zipf, rotated per make so
        // different makes favour different models
        let model = (model_dist.sample(&mut rng) + make * 5) % MODEL_FANOUT;
        let color = color_dist.sample(&mut rng);
        let body = body_dist.sample(&mut rng);
        let trans = trans_dist.sample(&mut rng);
        let mut price = price_dist.sample(&mut rng);
        if luxury.contains(&make) {
            price = (price + 4).min(PRICE_FANOUT - 1);
        }

        let mut values: Vec<u16> = Vec::with_capacity(6 + NUM_OPTIONS);
        values.extend([make as u16, model as u16, color as u16, body as u16, trans as u16, price as u16]);
        for base in &option_base {
            let p = (base + 0.035 * (price as f64 - 4.5)).clamp(0.02, 0.98);
            values.push(u16::from(rng.random_bool(p)));
        }
        let t = Tuple::new(values);
        if seen.insert(t.clone()) {
            tuples.push(t);
        }
    }
    Table::new(schema, tuples)
}

/// The paper-scale offline dataset (188,790 rows).
///
/// # Errors
/// See [`yahoo_auto`].
pub fn yahoo_auto_paper(seed: u64) -> Result<Table> {
    yahoo_auto(YahooConfig { rows: PAPER_ROWS, seed })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_shape_matches_paper() {
        let s = yahoo_schema();
        assert_eq!(s.len(), 38);
        let categorical: Vec<usize> = (0..6).map(|i| s.fanout(i)).collect();
        assert_eq!(categorical, [16, 16, 12, 8, 5, 10]);
        for i in 6..38 {
            assert_eq!(s.fanout(i), 2);
        }
        assert!(s.attribute(ATTRS.price).is_numeric());
    }

    #[test]
    fn generates_requested_distinct_rows() {
        let t = yahoo_auto(YahooConfig { rows: 5000, seed: 1 }).unwrap();
        assert_eq!(t.len(), 5000);
        let set: HashSet<_> = t.tuples().iter().collect();
        assert_eq!(set.len(), 5000);
    }

    #[test]
    fn make_distribution_is_skewed() {
        let t = yahoo_auto(YahooConfig { rows: 20_000, seed: 3 }).unwrap();
        let mut counts = [0usize; MAKE_FANOUT];
        for tp in t.tuples() {
            counts[tp.value(ATTRS.make) as usize] += 1;
        }
        // rank-0 make should far outnumber the tail make
        assert!(counts[0] > 4 * counts[MAKE_FANOUT - 1].max(1));
    }

    #[test]
    fn luxury_makes_are_pricier() {
        let t = yahoo_auto(YahooConfig { rows: 20_000, seed: 4 }).unwrap();
        let avg_price = |make: u16| {
            let rows: Vec<_> =
                t.tuples().iter().filter(|tp| tp.value(ATTRS.make) == make).collect();
            rows.iter().map(|tp| f64::from(tp.value(ATTRS.price))).sum::<f64>()
                / rows.len().max(1) as f64
        };
        // bmw (6) vs toyota (0)
        assert!(avg_price(6) > avg_price(0) + 2.0);
    }

    #[test]
    fn options_correlate_with_price() {
        let t = yahoo_auto(YahooConfig { rows: 20_000, seed: 5 }).unwrap();
        let option_count = |tp: &Tuple| -> usize {
            (0..NUM_OPTIONS).filter(|&o| tp.value(ATTRS.options_start + o) == 1).count()
        };
        let cheap: Vec<_> = t.tuples().iter().filter(|tp| tp.value(ATTRS.price) <= 1).collect();
        let dear: Vec<_> = t.tuples().iter().filter(|tp| tp.value(ATTRS.price) >= 8).collect();
        assert!(!cheap.is_empty() && !dear.is_empty());
        let avg = |rows: &[&Tuple]| {
            rows.iter().map(|tp| option_count(tp) as f64).sum::<f64>() / rows.len() as f64
        };
        assert!(avg(&dear) > avg(&cheap) + 1.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = yahoo_auto(YahooConfig { rows: 1000, seed: 11 }).unwrap();
        let b = yahoo_auto(YahooConfig { rows: 1000, seed: 11 }).unwrap();
        assert_eq!(a.tuples(), b.tuples());
    }
}
