//! A small Zipf/power-law sampler used to give the synthetic Yahoo! Auto
//! dataset the skew the paper observes in real hidden databases.

use rand::Rng;

/// A Zipf distribution over ranks `0..n` with exponent `s`:
/// `P(rank = i) ∝ 1/(i+1)^s`. `s = 0` degenerates to uniform.
#[derive(Clone, Debug)]
pub struct Zipf {
    /// Cumulative distribution over ranks; last entry is 1.0.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative/non-finite.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one outcome");
        assert!(s >= 0.0 && s.is_finite(), "Zipf exponent must be finite and non-negative");
        let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total;
            cdf.push(acc);
        }
        // guard against floating-point shortfall at the top
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { cdf }
    }

    /// Number of outcomes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is empty (never true after construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability of rank `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn pmf(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }

    /// Draws one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        // binary search for the first cdf entry >= u
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite")) {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Samples an index from explicit non-negative weights.
///
/// # Panics
/// Panics if `weights` is empty or sums to zero.
pub fn sample_weighted<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must have positive mass");
    let mut u: f64 = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(10, 1.0);
        let total: f64 = (0..10).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_special_case() {
        let z = Zipf::new(4, 0.0);
        for i in 0..4 {
            assert!((z.pmf(i) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn skew_orders_probabilities() {
        let z = Zipf::new(5, 1.5);
        for i in 1..5 {
            assert!(z.pmf(i) < z.pmf(i - 1));
        }
    }

    #[test]
    fn sample_frequencies_track_pmf() {
        let z = Zipf::new(6, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 6];
        let trials = 200_000;
        for _ in 0..trials {
            counts[z.sample(&mut rng)] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            let freq = count as f64 / trials as f64;
            assert!(
                (freq - z.pmf(i)).abs() < 0.01,
                "rank {i}: freq {freq} vs pmf {}",
                z.pmf(i)
            );
        }
    }

    #[test]
    fn weighted_sampler_respects_zero_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let i = sample_weighted(&mut rng, &[0.0, 3.0, 0.0, 1.0]);
            assert!(i == 1 || i == 3);
        }
    }

    #[test]
    #[should_panic(expected = "positive mass")]
    fn weighted_sampler_rejects_zero_mass() {
        let mut rng = StdRng::seed_from_u64(1);
        sample_weighted(&mut rng, &[0.0, 0.0]);
    }
}
