//! Distribution-preserving table enlargement — the paper's DBGen step
//! (§6.1): the 15,211-row crawled Yahoo! Auto snapshot was blown up to
//! 188,790 rows "by following the original distribution of the small
//! dataset".
//!
//! [`enlarge`] resamples seed rows and applies light per-attribute
//! mutation (each attribute is independently redrawn from its empirical
//! marginal with a small probability), which preserves the joint
//! distribution's large-scale structure while generating enough variety
//! to fill the requested row count without duplicates.

use hdb_interface::{HdbError, Result, Table, Tuple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

use crate::random::empirical_marginals;
use crate::zipf::sample_weighted;

/// Probability that a copied attribute value is re-drawn from the
/// attribute's empirical marginal.
const MUTATION_RATE: f64 = 0.15;

/// Enlarges `seed_table` to `target` distinct rows (the original rows are
/// all kept).
///
/// # Errors
/// Returns [`HdbError::InvalidTuple`] if `target` is smaller than the
/// seed table or cannot be reached (domain exhausted).
pub fn enlarge(seed_table: &Table, target: usize, seed: u64) -> Result<Table> {
    if target < seed_table.len() {
        return Err(HdbError::InvalidTuple(format!(
            "target {target} smaller than seed table ({} rows)",
            seed_table.len()
        )));
    }
    if seed_table.is_empty() {
        return Err(HdbError::InvalidTuple("cannot enlarge an empty table".into()));
    }
    let schema = seed_table.schema().clone();
    let marginals = empirical_marginals(seed_table);
    let mut rng = StdRng::seed_from_u64(seed);

    let mut seen: HashSet<Tuple> = seed_table.tuples().iter().cloned().collect();
    let mut tuples: Vec<Tuple> = seed_table.tuples().to_vec();
    let mut attempts = 0usize;
    let max_attempts = target.saturating_mul(100).max(10_000);
    while tuples.len() < target {
        attempts += 1;
        if attempts > max_attempts {
            return Err(HdbError::InvalidTuple(format!(
                "enlargement stalled at {}/{} rows after {attempts} draws",
                tuples.len(),
                target
            )));
        }
        let base = &seed_table.tuples()[rng.random_range(0..seed_table.len())];
        let mut values = base.values().to_vec();
        for (attr, v) in values.iter_mut().enumerate() {
            if rng.random_bool(MUTATION_RATE) {
                *v = sample_weighted(&mut rng, &marginals[attr]) as u16;
            }
        }
        let t = Tuple::new(values);
        if seen.insert(t.clone()) {
            tuples.push(t);
        }
    }
    Table::new(schema, tuples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boolean::bool_iid;
    use crate::yahoo::{yahoo_auto, YahooConfig, ATTRS};

    #[test]
    fn keeps_seed_rows_and_reaches_target() {
        let seed_table = bool_iid(200, 16, 1).unwrap();
        let big = enlarge(&seed_table, 1000, 2).unwrap();
        assert_eq!(big.len(), 1000);
        let set: HashSet<_> = big.tuples().iter().collect();
        for t in seed_table.tuples() {
            assert!(set.contains(t));
        }
    }

    #[test]
    fn preserves_marginal_shape() {
        let seed_table = yahoo_auto(YahooConfig { rows: 3000, seed: 5 }).unwrap();
        let big = enlarge(&seed_table, 12_000, 6).unwrap();
        let freq = |t: &Table, v: u16| {
            t.tuples().iter().filter(|tp| tp.value(ATTRS.make) == v).count() as f64
                / t.len() as f64
        };
        for make in 0..4u16 {
            assert!(
                (freq(&seed_table, make) - freq(&big, make)).abs() < 0.05,
                "make {make} marginal drifted"
            );
        }
    }

    #[test]
    fn rejects_shrinking() {
        let seed_table = bool_iid(100, 12, 1).unwrap();
        assert!(enlarge(&seed_table, 50, 1).is_err());
    }

    #[test]
    fn rejects_unreachable_targets() {
        // 3 boolean attrs → at most 8 distinct rows
        let seed_table = bool_iid(4, 3, 1).unwrap();
        assert!(enlarge(&seed_table, 100, 1).is_err());
    }

    #[test]
    fn target_equal_to_seed_is_identity() {
        let seed_table = bool_iid(64, 10, 3).unwrap();
        let same = enlarge(&seed_table, 64, 9).unwrap();
        assert_eq!(same.tuples(), seed_table.tuples());
    }
}
