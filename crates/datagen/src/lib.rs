//! # hdb-datagen — workload generators for the hidden-database experiments
//!
//! Every dataset the paper evaluates on (§6.1), reproduced as seeded
//! generators:
//!
//! * [`boolean::bool_iid`] / [`boolean::bool_mixed`] — the 200,000 × 40
//!   Boolean synthetic datasets (uniform and skewed).
//! * [`yahoo::yahoo_auto`] — a synthetic used-car database with the same
//!   schema shape as the paper's offline Yahoo! Auto crawl (32 Boolean +
//!   6 categorical attributes, fanouts 5–16) and a skewed, correlated
//!   joint distribution; see DESIGN.md for the substitution rationale.
//! * [`worst_case::worst_case`] — the Figure-4 adversarial instance that
//!   maximises drill-down variance.
//! * [`enlarge::enlarge`] — the DBGen-style distribution-preserving
//!   enlargement step.
//! * [`random::uniform_table`] — generic uniform tables for tests and
//!   property-based suites.
//!
//! All generators are deterministic under their seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod boolean;
pub mod enlarge;
pub mod random;
pub mod worst_case;
pub mod yahoo;
pub mod zipf;

pub use boolean::{bool_iid, bool_mixed, boolean_with_probs};
pub use enlarge::enlarge;
pub use random::uniform_table;
pub use worst_case::worst_case;
pub use yahoo::{yahoo_auto, yahoo_auto_paper, yahoo_schema, YahooConfig, ATTRS as YAHOO_ATTRS};
pub use zipf::Zipf;
