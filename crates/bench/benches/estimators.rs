//! Micro-benchmarks of the estimators: wall-clock per drill-down and per
//! estimation pass, across configurations (plain / WA / D&C / full HD)
//! and the baselines.

use criterion::{criterion_group, criterion_main, Criterion};
use hdb_core::baselines::HiddenDbSampler;
use hdb_core::{drill_down, AggregateSpec, EstimatorConfig, UnbiasedAggEstimator, UniformWeights};
use hdb_datagen::{bool_iid, yahoo_auto, YahooConfig};
use hdb_interface::{HiddenDb, Query};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_single_walk(c: &mut Criterion) {
    let table = bool_iid(50_000, 40, 1).expect("generation");
    let db = HiddenDb::new(table, 100);
    let levels: Vec<usize> = (0..40).collect();
    let mut rng = StdRng::seed_from_u64(7);
    let mut group = c.benchmark_group("walks");
    group.sample_size(30);
    group.bench_function("plain_drilldown_50k_bool", |b| {
        b.iter(|| {
            drill_down(
                black_box(&db),
                &Query::all(),
                &[],
                &levels,
                &UniformWeights,
                &mut rng,
            )
            .expect("unlimited")
        });
    });
    group.finish();
}

fn bench_estimation_pass(c: &mut Criterion) {
    let table = yahoo_auto(YahooConfig { rows: 50_000, seed: 2 }).expect("generation");
    let db = HiddenDb::new(table, 100);
    let mut group = c.benchmark_group("estimation_pass_yahoo_50k");
    group.sample_size(10);
    let configs: [(&str, EstimatorConfig); 4] = [
        ("plain", EstimatorConfig::plain()),
        ("weight_adjusted", EstimatorConfig::plain().with_weight_adjustment(true)),
        (
            "dnc_r5_dub16",
            EstimatorConfig::hd_default().with_r(5).with_dub(16).with_weight_adjustment(false),
        ),
        ("hd_full_r5_dub16", EstimatorConfig::hd_default().with_r(5).with_dub(16)),
    ];
    for (name, config) in configs {
        group.bench_function(name, |b| {
            let mut est =
                UnbiasedAggEstimator::new(config.clone(), AggregateSpec::database_size(), 3)
                    .expect("valid config");
            b.iter(|| est.pass(black_box(&db)).expect("unlimited"));
        });
    }
    group.finish();
}

fn bench_baseline_sampler(c: &mut Criterion) {
    let table = bool_iid(20_000, 20, 3).expect("generation");
    let db = HiddenDb::new(table, 100);
    let mut group = c.benchmark_group("baselines");
    group.sample_size(20);
    group.bench_function("hidden_db_sampler_one_sample", |b| {
        let mut sampler = HiddenDbSampler::new(5);
        b.iter(|| sampler.try_sample(black_box(&db)).expect("unlimited"));
    });
    group.finish();
}

criterion_group!(benches, bench_single_walk, bench_estimation_pass, bench_baseline_sampler);
criterion_main!(benches);
