//! Micro-benchmarks of the parallel walk engine and the two
//! query-evaluation paths (bitmap index vs linear scan).
//!
//! The headline check: on the 100,000-row dataset the bitmap path must
//! beat the linear scan — both at the bare `Table` aggregate level and
//! through the full `HiddenDb` interface — and `run_parallel` must scale
//! with workers while returning bit-identical estimates.

use criterion::{criterion_group, criterion_main, Criterion};
use hdb_core::UnbiasedSizeEstimator;
use hdb_datagen::bool_iid;
use hdb_interface::{EvalMode, HiddenDb, Query, TopKInterface};
use std::hint::black_box;

/// A conjunctive query selective enough (~100 of 100k rows) to stay
/// below the simulator's hot-response memo threshold, so every
/// iteration pays the full evaluation cost on both paths.
fn selective_query(predicates: usize) -> Query {
    let mut q = Query::all();
    for attr in 0..predicates {
        q = q.and(attr, (attr % 2) as u16).expect("distinct attrs");
    }
    q
}

fn bench_engine_workers(c: &mut Criterion) {
    let table = bool_iid(50_000, 30, 1).expect("generation");
    let db = HiddenDb::new(table, 100);
    let mut group = c.benchmark_group("engine_size_256_passes");
    group.sample_size(10);
    let mut reference: Option<u64> = None;
    for workers in [1usize, 2, 4, 8] {
        group.bench_function(format!("workers_{workers}"), |b| {
            b.iter(|| {
                let mut est = UnbiasedSizeEstimator::hd(7).expect("valid config");
                let summary =
                    est.run_parallel(black_box(&db), 256, workers).expect("unlimited");
                // thread-count independence, checked while we measure
                let bits = summary.estimate.to_bits();
                match reference {
                    None => reference = Some(bits),
                    Some(r) => assert_eq!(r, bits, "workers={workers} diverged"),
                }
                summary.estimate
            });
        });
    }
    group.finish();
}

fn bench_bitmap_vs_scan_table(c: &mut Criterion) {
    let table = bool_iid(100_000, 40, 1).expect("generation");
    let q = selective_query(10);
    let mut group = c.benchmark_group("count_100k");
    group.sample_size(20);
    group.bench_function("bitmap", |b| {
        b.iter(|| table.exact_count(black_box(&q)));
    });
    group.bench_function("scan", |b| {
        b.iter(|| table.exact_count_scan(black_box(&q)));
    });
    group.finish();
}

fn bench_bitmap_vs_scan_interface(c: &mut Criterion) {
    let table = bool_iid(100_000, 40, 1).expect("generation");
    let bitmap_db = HiddenDb::new(table.clone(), 100);
    let scan_db = HiddenDb::new(table, 100).with_eval_mode(EvalMode::Scan);
    let q = selective_query(10);
    let mut group = c.benchmark_group("interface_query_100k");
    group.sample_size(20);
    group.bench_function("bitmap", |b| {
        b.iter(|| bitmap_db.query(black_box(&q)).expect("unlimited"));
    });
    group.bench_function("scan", |b| {
        b.iter(|| scan_db.query(black_box(&q)).expect("unlimited"));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_engine_workers,
    bench_bitmap_vs_scan_table,
    bench_bitmap_vs_scan_interface
);
criterion_main!(benches);
