//! Micro-benchmarks of the hidden-database substrate: index construction
//! and query evaluation at several depths, at experiment scale.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hdb_datagen::{bool_iid, yahoo_auto, YahooConfig};
use hdb_interface::{HiddenDb, Query, TableIndex, TopKInterface};
use std::hint::black_box;

fn bench_index_build(c: &mut Criterion) {
    let table = bool_iid(50_000, 40, 1).expect("generation");
    let mut group = c.benchmark_group("index");
    group.sample_size(20);
    group.bench_function("build_50k_x_40", |b| {
        b.iter(|| TableIndex::build(black_box(&table)));
    });
    group.finish();
}

fn bench_query_eval(c: &mut Criterion) {
    let table = bool_iid(100_000, 40, 1).expect("generation");
    let db = HiddenDb::new(table, 100);
    let mut group = c.benchmark_group("query_eval_100k");
    group.sample_size(30);
    for preds in [1usize, 4, 8, 16] {
        let mut q = Query::all();
        for attr in 0..preds {
            q = q.and(attr, (attr % 2) as u16).expect("distinct attrs");
        }
        group.bench_function(format!("predicates_{preds}"), |b| {
            b.iter(|| db.query(black_box(&q)).expect("unlimited"));
        });
    }
    group.finish();
}

fn bench_categorical_eval(c: &mut Criterion) {
    let table = yahoo_auto(YahooConfig { rows: 100_000, seed: 1 }).expect("generation");
    let db = HiddenDb::new(table, 100);
    let q = Query::all().and(0, 0).expect("make").and(1, 0).expect("model");
    c.bench_function("query_eval_yahoo_make_model", |b| {
        b.iter(|| db.query(black_box(&q)).expect("unlimited"));
    });
}

fn bench_overflow_topk(c: &mut Criterion) {
    // the hottest simulator path: top-k over a huge match set, uncached
    let table = bool_iid(100_000, 40, 1).expect("generation");
    let mut group = c.benchmark_group("overflow");
    group.sample_size(10);
    group.bench_function("topk_fresh_db", |b| {
        b.iter_batched(
            || HiddenDb::new(table.clone(), 100),
            |db| db.query(black_box(&Query::all())).expect("unlimited"),
            BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_index_build,
    bench_query_eval,
    bench_categorical_eval,
    bench_overflow_topk
);
criterion_main!(benches);
