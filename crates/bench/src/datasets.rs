//! Shared experiment datasets, built once per process and reused across
//! figures (generation of the 200k-row tables costs a couple of seconds).

use std::sync::OnceLock;

use hdb_datagen::{bool_iid, bool_mixed, yahoo_auto, YahooConfig};
use hdb_interface::{HiddenDb, Table};

use crate::scale::Scale;

/// Fixed dataset seeds (the datasets are part of the experiment
/// definition, not of the per-trial randomness).
pub const BOOL_IID_SEED: u64 = 101;
/// Seed of the Bool-mixed dataset.
pub const BOOL_MIXED_SEED: u64 = 102;
/// Seed of the synthetic Yahoo! Auto dataset.
pub const YAHOO_SEED: u64 = 103;

/// Number of attributes of the Boolean datasets (paper: 40).
pub const BOOL_ATTRS: usize = 40;

/// Lazily-built dataset context shared by the experiment functions.
#[derive(Debug, Default)]
pub struct Datasets {
    bool_iid: OnceLock<Table>,
    bool_mixed: OnceLock<Table>,
    yahoo: OnceLock<Table>,
}

impl Datasets {
    /// An empty context.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The Bool-iid table at `scale`.
    pub fn bool_iid(&self, scale: &Scale) -> &Table {
        self.bool_iid.get_or_init(|| {
            bool_iid(scale.bool_rows, BOOL_ATTRS, BOOL_IID_SEED)
                .expect("Bool-iid generation cannot fail at these parameters")
        })
    }

    /// The Bool-mixed table at `scale`.
    pub fn bool_mixed(&self, scale: &Scale) -> &Table {
        self.bool_mixed.get_or_init(|| {
            bool_mixed(scale.bool_rows, BOOL_ATTRS, BOOL_MIXED_SEED)
                .expect("Bool-mixed generation cannot fail at these parameters")
        })
    }

    /// The synthetic Yahoo! Auto table at `scale`.
    pub fn yahoo(&self, scale: &Scale) -> &Table {
        self.yahoo.get_or_init(|| {
            yahoo_auto(YahooConfig { rows: scale.yahoo_rows, seed: YAHOO_SEED })
                .expect("Yahoo generation cannot fail at these parameters")
        })
    }
}

/// Wraps a table in a fresh top-`k` interface (each experiment gets its
/// own query accounting).
#[must_use]
pub fn interface(table: &Table, k: usize) -> HiddenDb {
    HiddenDb::new(table.clone(), k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_are_cached() {
        let scale = Scale { bool_rows: 500, yahoo_rows: 500, trials: 1 };
        let ds = Datasets::new();
        let a = ds.bool_iid(&scale) as *const Table;
        let b = ds.bool_iid(&scale) as *const Table;
        assert_eq!(a, b, "second call must hit the cache");
        assert_eq!(ds.bool_iid(&scale).len(), 500);
    }

    #[test]
    fn interface_wraps_with_k() {
        let scale = Scale { bool_rows: 100, yahoo_rows: 100, trials: 1 };
        let ds = Datasets::new();
        let db = interface(ds.bool_mixed(&scale), 25);
        assert_eq!(hdb_interface::TopKInterface::k(&db), 25);
    }
}
