//! # hdb-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§6).
//! Each figure has a dedicated binary (`cargo run --release -p hdb-bench
//! --bin figXX_*`); `all_figures` runs the lot. Binaries accept
//! `--quick` (or `HDB_QUICK=1`) for a reduced-scale smoke run and write
//! CSVs under `results/`.
//!
//! Criterion micro-benchmarks (`cargo bench`) live under `benches/` and
//! measure the substrate (query evaluation) and the estimators
//! (queries/walk, time/pass).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod datasets;
pub mod experiments;
pub mod output;
pub mod runner;
pub mod scale;

pub use datasets::Datasets;
pub use scale::Scale;
