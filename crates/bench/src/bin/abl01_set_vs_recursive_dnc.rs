//! Ablation: D&C estimator form — recursive conditional-HT (ours) vs the
//! paper's literal Eq.(10) set form (negatively biased at large p·r).
use hdb_bench::{experiments, Scale};

fn main() {
    experiments::ablations::run_dnc_form(&Scale::from_args());
}
