//! Regenerates every paper figure/table plus the ablations in one run.
use hdb_bench::{experiments, output, Datasets, Scale};

fn main() {
    let scale = Scale::from_args();
    let datasets = Datasets::new();
    output::note(&format!("scale: {scale:?}"));

    output::note("Figures 6-10: Boolean comparison suite");
    experiments::fig06_10_boolean::run(&scale, &datasets);
    output::note("Figures 11-12: m sweep");
    experiments::fig11_13_sweeps::run_m_sweep(&scale);
    output::note("Figure 13: k sweep");
    experiments::fig11_13_sweeps::run_k_sweep(&scale);
    output::note("Figures 14-15: WA x D&C ablation (Yahoo! Auto)");
    experiments::fig14_17_yahoo::run_ablation(&scale, &datasets);
    output::note("Figure 16: effect of r");
    experiments::fig14_17_yahoo::run_r_sweep(&scale, &datasets);
    output::note("Figure 17: effect of D_UB");
    experiments::fig14_17_yahoo::run_dub_sweep(&scale, &datasets);
    output::note("Table (section 6.2): r tradeoff at matched cost");
    experiments::fig14_17_yahoo::run_r_tradeoff_table(&scale, &datasets);
    output::note("Figure 18: online COUNT runs");
    experiments::fig18_19_online::run_count_runs(&scale, &datasets);
    output::note("Figure 19: online SUM(price)");
    experiments::fig18_19_online::run_sum_price(&scale, &datasets);
    output::note("Ablation 01: D&C estimator form");
    experiments::ablations::run_dnc_form(&scale);
    output::note("Ablation 02: attribute order");
    experiments::ablations::run_attribute_order(&scale, &datasets);
    output::note("Ablation 03: smoothing lambda");
    experiments::ablations::run_smoothing(&scale, &datasets);
    output::note("Ablation 04: smart vs simple backtracking");
    experiments::ablations::run_backtracking(&scale, &datasets);
    output::note("Ablation 05: Figure-4 worst case");
    experiments::ablations::run_worst_case(&scale);
    output::note("Scale 01: parallel engine workers + eval paths");
    experiments::parallel_scale::run_parallel_scale(&scale, &datasets);
    output::note("Scale 02: sharded backend + remote latency");
    experiments::sharded_scale::run_sharded_scale(&scale, &datasets);
    output::note("Scale 03: incremental walk sessions");
    experiments::incremental_scale::run_incremental_scale(&scale, &datasets);
    output::note("Scale 04: remote serving over loopback");
    experiments::remote_scale::run_remote_scale(&scale, &datasets);
    output::note("done");
}
