//! Regenerates Figure 16 (MSE and query cost vs r on Yahoo! Auto).
use hdb_bench::{experiments, Datasets, Scale};

fn main() {
    let scale = Scale::from_args();
    experiments::fig14_17_yahoo::run_r_sweep(&scale, &Datasets::new());
}
