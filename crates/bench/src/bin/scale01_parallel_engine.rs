//! Scale experiment: parallel engine worker scaling + bitmap-vs-scan
//! query evaluation.
use hdb_bench::{experiments, Datasets, Scale};

fn main() {
    let scale = Scale::from_args();
    experiments::parallel_scale::run_parallel_scale(&scale, &Datasets::new());
}
