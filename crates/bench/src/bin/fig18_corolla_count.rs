//! Regenerates Figure 18 (ten COUNT executions for the most popular model).
use hdb_bench::{experiments, Datasets, Scale};

fn main() {
    let scale = Scale::from_args();
    experiments::fig18_19_online::run_count_runs(&scale, &Datasets::new());
}
