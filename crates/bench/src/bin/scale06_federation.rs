//! Scale experiment: federated fleet serving — the HD estimator against
//! 1/2/4 shard servers behind a `FederatedBackend`, with bit-identity
//! checks per fleet size, a survived mid-run shard kill, and the
//! machine-readable record written to `BENCH_scale06.json`.
use hdb_bench::{experiments, Datasets, Scale};

fn main() {
    let scale = Scale::from_args();
    experiments::federation_scale::run_federation_scale(&scale, &Datasets::new());
}
