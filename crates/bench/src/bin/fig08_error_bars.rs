//! Regenerates Figures 6–10 (alias of fig06_mse_vs_cost: the Boolean
//! comparison figures share one set of traces).
use hdb_bench::{experiments, Datasets, Scale};

fn main() {
    let scale = Scale::from_args();
    experiments::fig06_10_boolean::run(&scale, &Datasets::new());
}
