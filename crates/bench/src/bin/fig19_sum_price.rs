//! Regenerates Figure 19 (SUM(price) for five popular models).
use hdb_bench::{experiments, Datasets, Scale};

fn main() {
    let scale = Scale::from_args();
    experiments::fig18_19_online::run_sum_price(&scale, &Datasets::new());
}
