//! Regenerates Figures 14 and 15 (alias of fig14_individual_effects).
use hdb_bench::{experiments, Datasets, Scale};

fn main() {
    let scale = Scale::from_args();
    experiments::fig14_17_yahoo::run_ablation(&scale, &Datasets::new());
}
