//! Regenerates the §6.2 table: MSE vs r at matched query cost.
use hdb_bench::{experiments, Datasets, Scale};

fn main() {
    let scale = Scale::from_args();
    experiments::fig14_17_yahoo::run_r_tradeoff_table(&scale, &Datasets::new());
}
