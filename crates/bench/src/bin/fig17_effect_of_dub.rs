//! Regenerates Figure 17 (MSE and query cost vs D_UB on Yahoo! Auto).
use hdb_bench::{experiments, Datasets, Scale};

fn main() {
    let scale = Scale::from_args();
    experiments::fig14_17_yahoo::run_dub_sweep(&scale, &Datasets::new());
}
