//! Scale experiment: sharded-backend evaluation (shard-count sweep) and
//! remote-API latency hiding through the parallel engine.
use hdb_bench::{experiments, Datasets, Scale};

fn main() {
    let scale = Scale::from_args();
    experiments::sharded_scale::run_sharded_scale(&scale, &Datasets::new());
}
