//! Ablation: attribute ordering strategies (paper §5.1).
use hdb_bench::{experiments, Datasets, Scale};

fn main() {
    let scale = Scale::from_args();
    experiments::ablations::run_attribute_order(&scale, &Datasets::new());
}
