//! Scale experiment: the observability tax — µs/probe with metrics on vs
//! stripped (interleaved batches, medians, 3% bar), span-ring cost, and
//! raw trace-ring throughput, with the machine-readable record written
//! to `BENCH_scale08.json`.
use hdb_bench::{experiments, Scale};

fn main() {
    let scale = Scale::from_args();
    experiments::observability_scale::run_observability_scale(&scale);
}
