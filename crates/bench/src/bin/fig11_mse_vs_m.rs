//! Regenerates Figures 11 and 12 (MSE and query cost vs database size m).
use hdb_bench::{experiments, Scale};

fn main() {
    experiments::fig11_13_sweeps::run_m_sweep(&Scale::from_args());
}
