//! Scale experiment: the serving layer — a real loopback `hdb-server`
//! behind `RemoteBackend` vs in-process evaluation vs the
//! `LatencyBackend` prediction, with the machine-readable perf
//! trajectory written to `BENCH_scale04.json`.
use hdb_bench::{experiments, Datasets, Scale};

fn main() {
    let scale = Scale::from_args();
    experiments::remote_scale::run_remote_scale(&scale, &Datasets::new());
}
