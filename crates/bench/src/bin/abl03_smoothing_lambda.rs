//! Ablation: weight-adjustment smoothing pseudo-count sweep.
use hdb_bench::{experiments, Datasets, Scale};

fn main() {
    let scale = Scale::from_args();
    experiments::ablations::run_smoothing(&scale, &Datasets::new());
}
