//! Regenerates Figures 6–10 (the Boolean comparison suite shares traces).
use hdb_bench::{experiments, Datasets, Scale};

fn main() {
    let scale = Scale::from_args();
    experiments::fig06_10_boolean::run(&scale, &Datasets::new());
}
