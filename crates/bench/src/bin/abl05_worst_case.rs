//! Ablation: Figure-4 worst-case family — plain walk vs divide-&-conquer.
use hdb_bench::{experiments, Scale};

fn main() {
    experiments::ablations::run_worst_case(&Scale::from_args());
}
