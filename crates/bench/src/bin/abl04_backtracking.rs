//! Ablation: smart vs simple backtracking (paper §3.2 query cost).
use hdb_bench::{experiments, Datasets, Scale};

fn main() {
    let scale = Scale::from_args();
    experiments::ablations::run_backtracking(&scale, &Datasets::new());
}
