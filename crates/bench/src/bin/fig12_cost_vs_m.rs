//! Regenerates Figures 11 and 12 (alias of fig11_mse_vs_m: one sweep).
use hdb_bench::{experiments, Scale};

fn main() {
    experiments::fig11_13_sweeps::run_m_sweep(&Scale::from_args());
}
