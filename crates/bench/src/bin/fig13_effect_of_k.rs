//! Regenerates Figure 13 (MSE and query cost vs the top-k constant).
use hdb_bench::{experiments, Scale};

fn main() {
    experiments::fig11_13_sweeps::run_k_sweep(&Scale::from_args());
}
