//! Scale experiment: crash recovery under the clock — reopen time across
//! WAL lengths and snapshot cadences, every recovered store checked
//! bit-identical to an uninterrupted in-memory run, with the
//! machine-readable record written to `BENCH_scale07.json`.
use hdb_bench::{experiments, Scale};

fn main() {
    let scale = Scale::from_args();
    experiments::recovery_scale::run_recovery_scale(&scale);
}
