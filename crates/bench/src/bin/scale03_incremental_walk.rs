//! Scale experiment: incremental drill-down evaluation — fresh vs
//! bitmap-reuse vs count-only probes, with the machine-readable perf
//! trajectory written to `BENCH_scale03.json`.
use hdb_bench::{experiments, Datasets, Scale};

fn main() {
    let scale = Scale::from_args();
    experiments::incremental_scale::run_incremental_scale(&scale, &Datasets::new());
}
