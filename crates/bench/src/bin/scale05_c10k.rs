//! Scale experiment: C10K-style serving — thousands of concurrent
//! estimator clients against one reactor-driven loopback `hdb-server`,
//! with bit-identity, idle-cost, and round-trip-economics checks and the
//! machine-readable record written to `BENCH_scale05.json`.
use hdb_bench::{experiments, Datasets, Scale};

fn main() {
    let scale = Scale::from_args();
    experiments::c10k::run_c10k(&scale, &Datasets::new());
}
