//! Regenerates Figures 14 and 15 (WA × D&C ablation on Yahoo! Auto).
use hdb_bench::{experiments, Datasets, Scale};

fn main() {
    let scale = Scale::from_args();
    experiments::fig14_17_yahoo::run_ablation(&scale, &Datasets::new());
}
