//! Experiment scaling: paper-scale by default, reducible for smoke runs.
//!
//! Every figure binary honours:
//! * `--quick` (or env `HDB_QUICK=1`) — small datasets and few trials, a
//!   couple of seconds per figure; shapes still hold.
//! * env `HDB_ROWS`, `HDB_TRIALS` — explicit overrides.

/// Dataset / trial sizing for one experiment run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scale {
    /// Rows for the Boolean synthetic datasets (paper: 200,000).
    pub bool_rows: usize,
    /// Rows for the Yahoo! Auto dataset (paper: 188,790).
    pub yahoo_rows: usize,
    /// Independent trials per configuration (for MSE/error-bar
    /// estimation).
    pub trials: u64,
}

impl Scale {
    /// Paper-scale parameters.
    #[must_use]
    pub fn paper() -> Self {
        Self { bool_rows: 200_000, yahoo_rows: 188_790, trials: 40 }
    }

    /// Smoke-test scale: minutes become seconds, shapes are preserved.
    #[must_use]
    pub fn quick() -> Self {
        Self { bool_rows: 20_000, yahoo_rows: 20_000, trials: 12 }
    }

    /// Resolves the scale from the process arguments and environment.
    #[must_use]
    pub fn from_args() -> Self {
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var("HDB_QUICK").is_ok_and(|v| v == "1" || v == "true");
        let mut scale = if quick { Self::quick() } else { Self::paper() };
        if let Some(rows) = env_usize("HDB_ROWS") {
            scale.bool_rows = rows;
            scale.yahoo_rows = rows;
        }
        if let Some(trials) = env_usize("HDB_TRIALS") {
            scale.trials = trials as u64;
        }
        scale
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_paper() {
        let s = Scale::paper();
        assert_eq!(s.bool_rows, 200_000);
        assert_eq!(s.yahoo_rows, 188_790);
    }

    #[test]
    fn quick_is_smaller() {
        let q = Scale::quick();
        let p = Scale::paper();
        assert!(q.bool_rows < p.bool_rows);
        assert!(q.trials < p.trials);
    }
}
