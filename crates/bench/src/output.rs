//! Output plumbing: console tables and CSV files under `results/`.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use hdb_stats::Figure;

/// Locates (and creates) the `results/` directory next to the workspace
/// root, falling back to the current directory.
#[must_use]
pub fn results_dir() -> PathBuf {
    // target layout: <workspace>/results; the binaries run from the
    // workspace root under `cargo run`, so a relative path is fine.
    let dir = Path::new("results");
    let _ = fs::create_dir_all(dir);
    dir.to_path_buf()
}

/// Prints a figure as a console table and writes `results/<stem>.csv`.
/// IO failures are reported to stderr but never abort an experiment run.
pub fn emit(figure: &Figure, stem: &str) {
    println!("{}", figure.to_table());
    let path = results_dir().join(format!("{stem}.csv"));
    match fs::File::create(&path) {
        Ok(mut f) => {
            if let Err(e) = f.write_all(figure.to_csv().as_bytes()) {
                eprintln!("warning: failed writing {}: {e}", path.display());
            } else {
                println!("→ wrote {}\n", path.display());
            }
        }
        Err(e) => eprintln!("warning: failed creating {}: {e}", path.display()),
    }
}

/// Prints a free-form note (section header) for experiment logs.
pub fn note(text: &str) {
    println!("=== {text} ===");
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdb_stats::Series;

    #[test]
    fn emit_writes_csv() {
        let mut fig = Figure::new("t", "x", "y");
        fig.add(Series::from_points("s", vec![(1.0, 2.0)]));
        emit(&fig, "unit_test_emit");
        let path = results_dir().join("unit_test_emit.csv");
        let content = fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("x,s"));
        let _ = fs::remove_file(path);
    }
}
