//! Figures 11–13: scalability sweeps on the Boolean datasets.
//!
//! * **Fig 11** — MSE vs database size `m` (50k…300k at paper scale),
//!   HD-UNBIASED-SIZE with `r = 4`, `D_UB = 16`.
//! * **Fig 12** — query cost vs `m` for the same runs.
//! * **Fig 13** — MSE and query cost vs the interface constant `k`
//!   (100…500).
//!
//! Expected shape (paper §6.2): MSE and query cost grow roughly linearly
//! with `m`; both MSE and query cost *decrease* as `k` grows.

use hdb_core::{AggregateSpec, EstimatorConfig};
use hdb_datagen::{bool_iid, bool_mixed};
use hdb_interface::HiddenDb;
use hdb_stats::{Figure, Series};

use crate::datasets::{BOOL_ATTRS, BOOL_IID_SEED, BOOL_MIXED_SEED};
use crate::output::emit;
use crate::runner::run_fixed_passes;
use crate::scale::Scale;

/// Estimation passes per trial for the sweep figures (each pass is one
/// independent unbiased estimate; the paper plots per-execution costs).
const PASSES: u64 = 4;

/// Interface constant for the m-sweep (paper default).
const K: usize = 100;

/// Runs Figures 11 and 12 (shared sweep over `m`).
pub fn run_m_sweep(scale: &Scale) {
    // paper: 50k…300k when the base is 200k — i.e. fractions ¼…1½
    let fractions = [0.25, 0.5, 0.75, 1.0, 1.25, 1.5];
    let config = EstimatorConfig::hd_default().with_dub(16);

    let mut fig11 = Figure::new("Figure 11: MSE vs m", "m (rows)", "MSE");
    let mut fig12 = Figure::new("Figure 12: Query cost vs m", "m (rows)", "query cost");

    for (label, gen_seed, mixed) in
        [("HD iid", BOOL_IID_SEED, false), ("HD Mixed", BOOL_MIXED_SEED, true)]
    {
        let mut mse_points = Vec::new();
        let mut cost_points = Vec::new();
        for &f in &fractions {
            let m = ((scale.bool_rows as f64 * f) as usize).max(1000);
            let table = if mixed {
                bool_mixed(m, BOOL_ATTRS, gen_seed)
            } else {
                bool_iid(m, BOOL_ATTRS, gen_seed)
            }
            .expect("generation succeeds at these sizes");
            let db = HiddenDb::new(table, K);
            let result = run_fixed_passes(
                &db,
                &config,
                &AggregateSpec::database_size(),
                scale.trials,
                PASSES,
                11_000,
            );
            mse_points.push((m as f64, result.mse(m as f64)));
            cost_points.push((m as f64, result.mean_cost()));
        }
        fig11.add(Series::from_points(label, mse_points));
        fig12.add(Series::from_points(label, cost_points));
    }

    emit(&fig11, "fig11_mse_vs_m");
    emit(&fig12, "fig12_cost_vs_m");
}

/// Runs Figure 13 (sweep over the top-k constant).
pub fn run_k_sweep(scale: &Scale) {
    let ks = [100usize, 200, 300, 400, 500];
    let config = EstimatorConfig::hd_default().with_dub(16);
    let table =
        bool_iid(scale.bool_rows, BOOL_ATTRS, BOOL_IID_SEED).expect("generation succeeds");
    let truth = table.len() as f64;

    let mut fig13 =
        Figure::new("Figure 13: MSE and query cost vs k", "k", "MSE / query cost");
    let mut mse_points = Vec::new();
    let mut cost_points = Vec::new();
    for &k in &ks {
        let db = HiddenDb::new(table.clone(), k);
        let result = run_fixed_passes(
            &db,
            &config,
            &AggregateSpec::database_size(),
            scale.trials,
            PASSES,
            13_000,
        );
        mse_points.push((k as f64, result.mse(truth)));
        cost_points.push((k as f64, result.mean_cost()));
    }
    fig13.add(Series::from_points("MSE", mse_points));
    fig13.add(Series::from_points("Query cost", cost_points));
    emit(&fig13, "fig13_effect_of_k");
}
