//! Scale experiment for the serving layer (not a paper figure — an
//! engineering experiment for the repro's own roadmap): the same
//! estimation workload driven against an in-process corpus and against
//! the *same* corpus behind a real loopback `hdb-server`, fresh vs
//! incremental walk sessions, 1/2/8 client workers — plus the
//! [`LatencyBackend`] *prediction* of the remote cost (local evaluation +
//! one measured round trip per query), so the simulation and the socket
//! can be compared number to number.
//!
//! Every remote run self-asserts bit-equality with the local reference
//! (estimates and query counts); the measured trajectory goes to
//! `results/` as CSV and to **`BENCH_scale04.json`** at the repository
//! root.

use std::fs;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hdb_core::UnbiasedSizeEstimator;
use hdb_interface::{
    HiddenDb, LatencyBackend, Query, RemoteBackend, SearchBackend, SessionMode, Table,
    TableBackend, TopKInterface,
};
use hdb_server::Server;
use hdb_stats::{Figure, Series};

use crate::datasets::Datasets;
use crate::output::{emit, note};
use crate::scale::Scale;

/// Interface constant: small enough that drill-downs run deep.
const K: usize = 10;

/// Master seed of the estimation runs (fixed: the run is the measurement
/// instrument, not the subject).
const SEED: u64 = 20_260_728;

/// One measured configuration.
struct Measured {
    name: &'static str,
    queries: u64,
    secs: f64,
    us_per_query: f64,
}

/// One timed run over `db`: asserts nothing, just measures.
fn timed_run<B: SearchBackend>(
    db: &HiddenDb<B>,
    passes: u64,
    workers: usize,
) -> (u64, u64, f64) {
    let mut est = UnbiasedSizeEstimator::hd(SEED).expect("valid config");
    let start = Instant::now();
    let summary = if workers == 1 {
        est.run(db, passes).expect("unlimited interface")
    } else {
        est.run_parallel(db, passes, workers).expect("unlimited interface")
    };
    (summary.estimate.to_bits(), db.queries_issued(), start.elapsed().as_secs_f64())
}

/// Median round-trip time of a cheap request on a warm connection.
fn measure_rtt(remote: &RemoteBackend) -> Duration {
    let probes = 64;
    let mut samples: Vec<Duration> = (0..probes)
        .map(|_| {
            let start = Instant::now();
            let _ = remote.exact_count(&Query::all()).expect("server alive");
            start.elapsed()
        })
        .collect();
    samples.sort_unstable();
    samples[probes / 2]
}

/// Runs the serving-layer sweep.
///
/// # Panics
/// Panics if any remote run changes the estimate or the issued-query
/// count — the serving layer must be observationally invisible, and an
/// experiment must not record results from a broken stack.
pub fn run_remote_scale(scale: &Scale, datasets: &Datasets) {
    note("remote serving: loopback hdb-server vs in-process, fresh vs incremental, 1/2/8 workers");
    // Remote runs pay a real syscall round trip per query; size the
    // workload so paper mode stays in minutes and --quick in seconds.
    let rows = scale.bool_rows.min(30_000);
    let scale = Scale { bool_rows: rows, ..*scale };
    let table: &Table = datasets.bool_iid(&scale);
    let passes = (scale.trials.max(8) * 5).min(200);

    let server =
        Server::bind(TableBackend::new(table.clone()), "127.0.0.1:0").expect("loopback bind");
    let remote = Arc::new(
        RemoteBackend::connect(server.addr().to_string()).expect("loopback connect"),
    );
    let rtt = measure_rtt(&remote);
    println!("  loopback server on {}, measured RTT ≈ {:.1} µs", server.addr(), rtt.as_secs_f64() * 1e6);

    let mut measured: Vec<Measured> = Vec::new();
    let mut reference: Option<(u64, u64)> = None;
    let mut record = |name: &'static str,
                      (bits, queries, secs): (u64, u64, f64),
                      reference: &mut Option<(u64, u64)>| {
        match *reference {
            None => *reference = Some((bits, queries)),
            Some((ref_bits, ref_queries)) => {
                assert_eq!(
                    ref_bits, bits,
                    "serving-layer regression: config `{name}` changed the estimate"
                );
                assert_eq!(
                    ref_queries, queries,
                    "accounting regression: config `{name}` changed the issued-query count"
                );
            }
        }
        let us_per_query = secs * 1e6 / queries as f64;
        println!(
            "  {name:<26} {secs:>7.3}s wall, {queries} queries, {us_per_query:>8.2} µs/query, \
             {:>9.0} q/s",
            queries as f64 / secs
        );
        measured.push(Measured { name, queries, secs, us_per_query });
    };

    // Local references.
    let local_fresh =
        HiddenDb::new(table.clone(), K).with_session_mode(SessionMode::Fresh);
    record("local fresh", timed_run(&local_fresh, passes, 1), &mut reference);
    let local_incr = HiddenDb::new(table.clone(), K);
    record("local incremental", timed_run(&local_incr, passes, 1), &mut reference);

    // The LatencyBackend prediction of remote cost: local evaluation plus
    // one simulated RTT per issued query.
    let predicted =
        HiddenDb::over(LatencyBackend::new(TableBackend::new(table.clone()), rtt), K);
    record("predicted (latency sim)", timed_run(&predicted, passes, 1), &mut reference);

    // The real socket.
    let remote_fresh = HiddenDb::over(Arc::clone(&remote), K)
        .with_session_mode(SessionMode::Fresh);
    record("remote fresh", timed_run(&remote_fresh, passes, 1), &mut reference);
    let remote_incr = HiddenDb::over(Arc::clone(&remote), K);
    record("remote incremental", timed_run(&remote_incr, passes, 1), &mut reference);
    let remote_w2 = HiddenDb::over(Arc::clone(&remote), K);
    record("remote incremental ×2", timed_run(&remote_w2, passes, 2), &mut reference);
    let remote_w8 = HiddenDb::over(Arc::clone(&remote), K);
    record("remote incremental ×8", timed_run(&remote_w8, passes, 8), &mut reference);

    let by_name = |name: &str| {
        measured
            .iter()
            .find(|m| m.name.starts_with(name))
            .unwrap_or_else(|| panic!("config `{name}` measured"))
    };
    let predicted_us = by_name("predicted").us_per_query;
    let remote_us = by_name("remote incremental").us_per_query;
    let sim_accuracy = remote_us / predicted_us;
    println!(
        "  prediction check: remote incremental runs at {sim_accuracy:.2}× the \
         LatencyBackend prediction"
    );

    let mut fig = Figure::new(
        format!("remote serving, m={rows}, k={K}, {passes} passes, rtt={:.1}us", rtt.as_secs_f64() * 1e6),
        "configuration index",
        "µs per issued query",
    );
    fig.add(Series::from_points(
        "us_per_query",
        measured.iter().enumerate().map(|(i, m)| (i as f64, m.us_per_query)).collect(),
    ));
    fig.add(Series::from_points(
        "queries_per_second",
        measured
            .iter()
            .enumerate()
            .map(|(i, m)| (i as f64, m.queries as f64 / m.secs))
            .collect(),
    ));
    emit(&fig, "scale04_remote_serving");

    let (bits, queries) = reference.expect("runs completed");
    let json = format!(
        "{{\n  \"bench\": \"scale04_remote_serving\",\n  \"dataset\": \"bool_iid\",\n  \
         \"rows\": {rows},\n  \"attributes\": {attrs},\n  \"k\": {K},\n  \"passes\": {passes},\n  \
         \"seed\": {SEED},\n  \"estimate_bits\": {bits},\n  \"queries_per_config\": {queries},\n  \
         \"loopback_rtt_us\": {rtt_us:.3},\n  \
         \"local_fresh_us_per_query\": {local_fresh:.4},\n  \
         \"local_incremental_us_per_query\": {local_incr:.4},\n  \
         \"predicted_remote_us_per_query\": {predicted_us:.4},\n  \
         \"remote_fresh_us_per_query\": {remote_fresh:.4},\n  \
         \"remote_incremental_us_per_query\": {remote_us:.4},\n  \
         \"remote_incremental_w2_us_per_query\": {w2:.4},\n  \
         \"remote_incremental_w8_us_per_query\": {w8:.4},\n  \
         \"remote_incremental_w8_queries_per_sec\": {w8_qps:.1},\n  \
         \"remote_vs_prediction\": {sim_accuracy:.4}\n}}\n",
        attrs = table.schema().len(),
        rtt_us = rtt.as_secs_f64() * 1e6,
        remote_fresh = by_name("remote fresh").us_per_query,
        local_fresh = by_name("local fresh").us_per_query,
        local_incr = by_name("local incremental").us_per_query,
        w2 = by_name("remote incremental ×2").us_per_query,
        w8 = by_name("remote incremental ×8").us_per_query,
        w8_qps = {
            let m = by_name("remote incremental ×8");
            m.queries as f64 / m.secs
        },
    );
    match fs::write("BENCH_scale04.json", &json) {
        Ok(()) => println!("→ wrote BENCH_scale04.json\n"),
        Err(e) => eprintln!("warning: failed writing BENCH_scale04.json: {e}"),
    }
    server.shutdown();
}
