//! Figures 14–17 and the §6.2 r-tradeoff table: the categorical
//! Yahoo! Auto experiments.
//!
//! * **Fig 14** — the ablation: MSE vs query cost for the four
//!   combinations of weight adjustment × divide-&-conquer (`r = 5`,
//!   `D_UB = 16`).
//! * **Fig 15** — error bars for the full HD-UNBIASED-SIZE.
//! * **Fig 16** — MSE and query cost as `r` varies 4…8.
//! * **Fig 17** — MSE and query cost as `D_UB` varies 16…full domain.
//! * **Table (§6.2)** — MSE at matched query cost for `r = 3…8`
//!   (the tradeoff is insensitive to `r`).
//!
//! Expected shape (paper §6.2): each of WA and D&C reduces MSE, D&C by
//! far the more; larger `r` → more queries, lower variance; larger
//! `D_UB` → fewer queries, higher MSE; the matched-cost MSE is flat in
//! `r`.

use hdb_core::{AggregateSpec, EstimatorConfig, UnbiasedAggEstimator};
use hdb_stats::{Figure, Series};

use crate::datasets::{interface, Datasets};
use crate::experiments::{error_bar_series, mse_series};
use crate::output::emit;
use crate::runner::{run_agg_trials, run_fixed_passes, TrialSpec};
use crate::scale::Scale;

/// Interface constant for the Yahoo! Auto experiments.
pub const K: usize = 100;

/// Figure 14/15 parameters (paper: `r = 5`, `D_UB = 16`).
fn yahoo_config() -> EstimatorConfig {
    EstimatorConfig::hd_default().with_r(5).with_dub(16)
}

/// Runs Figures 14 and 15.
pub fn run_ablation(scale: &Scale, datasets: &Datasets) {
    let table = datasets.yahoo(scale);
    let db = interface(table, K);
    let truth = table.len() as f64;
    let checkpoints: Vec<u64> = (200..=2000).step_by(100).collect();
    let spec = TrialSpec { trials: scale.trials, max_queries: 2000, base_seed: 14_000 };

    let variants: [(&str, EstimatorConfig); 4] = [
        (
            "w/o D&C, w/o WA",
            EstimatorConfig::plain(),
        ),
        (
            "w/o D&C, w/ WA",
            EstimatorConfig::plain().with_weight_adjustment(true),
        ),
        (
            "w/ D&C, w/o WA",
            yahoo_config().with_weight_adjustment(false),
        ),
        ("w/ D&C, w/ WA", yahoo_config()),
    ];

    let mut fig14 =
        Figure::new("Figure 14: Individual effects of WA and D&C", "query cost", "MSE");
    let mut full_traces = None;
    for (label, config) in variants {
        let traces = run_agg_trials(&db, &config, &AggregateSpec::database_size(), &spec);
        fig14.add(mse_series(label, &traces, truth, &checkpoints));
        if label == "w/ D&C, w/ WA" {
            full_traces = Some(traces);
        }
    }
    emit(&fig14, "fig14_individual_effects");

    let mut fig15 =
        Figure::new("Figure 15: Yahoo! Auto error bars (full HD)", "query cost", "relative size");
    let bar_checkpoints: Vec<u64> = (200..=2000).step_by(200).collect();
    for s in error_bar_series(
        "w/ D&C, w/ WA",
        full_traces.as_ref().expect("full variant executed"),
        truth,
        &bar_checkpoints,
    ) {
        fig15.add(s);
    }
    emit(&fig15, "fig15_yahoo_error_bars");
}

/// Runs Figure 16 (effect of `r`).
pub fn run_r_sweep(scale: &Scale, datasets: &Datasets) {
    let table = datasets.yahoo(scale);
    let db = interface(table, K);
    let truth = table.len() as f64;

    let mut fig16 = Figure::new("Figure 16: Effect of r", "r", "MSE / query cost");
    let mut mse_points = Vec::new();
    let mut cost_points = Vec::new();
    for r in 4..=8usize {
        let config = yahoo_config().with_r(r);
        let result = run_fixed_passes(
            &db,
            &config,
            &AggregateSpec::database_size(),
            scale.trials,
            1,
            16_000,
        );
        mse_points.push((r as f64, result.mse(truth)));
        cost_points.push((r as f64, result.mean_cost()));
    }
    fig16.add(Series::from_points("MSE", mse_points));
    fig16.add(Series::from_points("Query cost", cost_points));
    emit(&fig16, "fig16_effect_of_r");
}

/// Runs Figure 17 (effect of `D_UB`).
pub fn run_dub_sweep(scale: &Scale, datasets: &Datasets) {
    let table = datasets.yahoo(scale);
    let db = interface(table, K);
    let truth = table.len() as f64;

    let mut fig17 = Figure::new("Figure 17: Effect of D_UB", "D_UB", "MSE / query cost");
    let mut mse_points = Vec::new();
    let mut cost_points = Vec::new();
    // 16 … the full domain (the paper's 104544 ≈ its full categorical
    // domain; u64::MAX stands in for "whole tree as one subtree").
    let dubs: [u64; 6] = [16, 64, 256, 4096, 65_536, u64::MAX];
    for &dub in &dubs {
        let config = yahoo_config().with_dub(dub);
        let result = run_fixed_passes(
            &db,
            &config,
            &AggregateSpec::database_size(),
            scale.trials,
            1,
            17_000,
        );
        // plot position: cap the sentinel for a readable axis
        let x = if dub == u64::MAX { 1.0e6 } else { dub as f64 };
        mse_points.push((x, result.mse(truth)));
        cost_points.push((x, result.mean_cost()));
    }
    fig17.add(Series::from_points("MSE", mse_points));
    fig17.add(Series::from_points("Query cost", cost_points));
    emit(&fig17, "fig17_effect_of_dub");
}

/// Runs the §6.2 table: MSE at matched query cost for `r = 3…8`.
pub fn run_r_tradeoff_table(scale: &Scale, datasets: &Datasets) {
    let table = datasets.yahoo(scale);
    let db = interface(table, K);
    let truth = table.len() as f64;
    let budget = 450u64; // the paper's matched cost is ~440–600

    let mut tab = Figure::new(
        "Table (§6.2): MSE vs r at matched query cost",
        "r",
        "query cost / MSE",
    );
    let mut cost_points = Vec::new();
    let mut mse_points = Vec::new();
    for r in 3..=8usize {
        let config = yahoo_config().with_r(r).with_dub(16);
        let mut estimates = Vec::with_capacity(scale.trials as usize);
        let mut costs = Vec::with_capacity(scale.trials as usize);
        for trial in 0..scale.trials {
            let mut est = UnbiasedAggEstimator::new(
                config.clone(),
                AggregateSpec::database_size(),
                18_000 + trial,
            )
            .expect("valid config");
            let summary = est.run_until_budget(&db, budget).expect("passes succeed");
            estimates.push(summary.estimate);
            costs.push(summary.queries);
        }
        let mse = estimates.iter().map(|e| (e - truth).powi(2)).sum::<f64>()
            / estimates.len() as f64;
        let mean_cost = costs.iter().sum::<u64>() as f64 / costs.len() as f64;
        cost_points.push((r as f64, mean_cost));
        mse_points.push((r as f64, mse));
    }
    tab.add(Series::from_points("Query cost", cost_points));
    tab.add(Series::from_points("MSE", mse_points));
    emit(&tab, "tab01_r_tradeoff");
}
