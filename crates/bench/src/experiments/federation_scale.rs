//! Scale experiment: federated serving fleet (not a paper figure — an
//! engineering experiment for the repro's own roadmap). The corpus is
//! hash-partitioned across 1, 2, and 4 `hdb-server` processes behind a
//! [`FederatedBackend`], and the paper's HD estimator runs against each
//! fleet size:
//!
//! 1. every fleet run must be **bit-identical** to the local
//!    [`ShardedDb`] reference with the same partitioning — the estimator
//!    must not be able to tell how many machines the corpus lives on;
//! 2. throughput (queries/s) and per-probe latency (µs/probe) are
//!    recorded per fleet size;
//! 3. one run survives an injected shard failure: shard 0's primary is
//!    killed mid-estimation and the fleet fails over to its replica —
//!    still bit-identical, with the failover on record.
//!
//! The measurements go to `results/` as CSV and to **`BENCH_scale06.json`**
//! at the repository root.

use std::fs;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hdb_core::UnbiasedSizeEstimator;
use hdb_interface::{
    FederatedBackend, FleetConfig, HiddenDb, ShardPartBackend, ShardedDb, Table, Topology,
};
use hdb_server::{RunningServer, Server};
use hdb_stats::{Figure, Series};

use crate::datasets::Datasets;
use crate::output::{emit, note};
use crate::scale::Scale;

/// Interface constant: small enough that drill-downs run deep.
const K: usize = 10;

/// Estimator seed (fixed: the runs are the measuring instrument, not the
/// subject).
const SEED: u64 = 20_260_808;

/// What one fleet-size run measures.
struct FleetRun {
    servers: usize,
    queries: u64,
    qps: f64,
    us_per_probe: f64,
}

/// The fleet tuning for a run: `workers` matched to the fleet width,
/// then any of the shared fleet flags (`--retries`, `--backoff-ms`,
/// `--backoff-cap-ms`, `--io-timeout-ms`, `--health-interval-ms` — the
/// same vocabulary `hdb-server --help` documents) taken from the bench's
/// command line.
fn fleet_config(parts: usize) -> FleetConfig {
    let mut cfg = FleetConfig { workers: parts, ..FleetConfig::default() };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1).map_or("", String::as_str);
        match cfg.apply_cli(&args[i], value) {
            Ok(true) => i += 2,
            Ok(false) => i += 1,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }
    cfg
}

/// Spins up one `hdb-server` per hash partition and returns the fleet
/// plus its topology.
fn spawn_fleet(table: &Table, parts: usize) -> (Vec<RunningServer>, Topology) {
    let mut servers = Vec::new();
    let mut topo = Topology::new();
    for (i, part) in ShardPartBackend::partition(table, parts).into_iter().enumerate() {
        let server = Server::bind(part, "127.0.0.1:0").expect("loopback bind");
        topo.add_replica(i, server.addr().to_string());
        servers.push(server);
    }
    (servers, topo)
}

/// Runs the federation sweep.
///
/// # Panics
/// Panics if any fleet run diverges from the local sharded reference, if
/// the injected shard failure is not absorbed, or if the failover goes
/// unrecorded — an experiment must not record results from a broken
/// stack.
pub fn run_federation_scale(scale: &Scale, datasets: &Datasets) {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("HDB_QUICK").is_ok_and(|v| v == "1" || v == "true");
    let passes: u64 = if quick { 6 } else { 24 };
    // The subject under load is the fleet fan-out, not the evaluation
    // kernel; a modest corpus keeps every probe wire-dominated.
    let rows = scale.bool_rows.min(if quick { 2_000 } else { 10_000 });
    let scale = Scale { bool_rows: rows, ..*scale };
    let table: &Table = datasets.bool_iid(&scale);
    note("federated fleet: one estimator vs 1/2/4 shard servers, plus a mid-run shard kill");

    let mut runs: Vec<FleetRun> = Vec::new();
    let mut reference_bits: Vec<(usize, u64)> = Vec::new();
    for &parts in &[1usize, 2, 4] {
        // Local reference with the identical partitioning.
        let local = HiddenDb::over(ShardedDb::new(table, parts), K);
        let mut est = UnbiasedSizeEstimator::hd(SEED).expect("valid config");
        let reference = est.run(&local, passes).expect("unlimited interface");

        let (servers, topo) = spawn_fleet(table, parts);
        let federated = FederatedBackend::connect_with(topo, fleet_config(parts)).expect("fleet up");
        let db = HiddenDb::over(federated, K);
        let wall = Instant::now();
        let mut est = UnbiasedSizeEstimator::hd(SEED).expect("valid config");
        let summary = est.run(&db, passes).expect("unlimited interface");
        let secs = wall.elapsed().as_secs_f64();

        assert_eq!(
            summary.estimate.to_bits(),
            reference.estimate.to_bits(),
            "fleet of {parts} diverged from the local sharded reference"
        );
        assert_eq!(summary.queries, reference.queries);
        assert_eq!(db.backend().failover_count(), 0, "healthy fleet must never fail over");

        let qps = summary.queries as f64 / secs;
        let us_per_probe = secs * 1e6 / summary.queries as f64;
        println!(
            "  {parts} server(s): {} queries in {secs:.2}s — {qps:.0} q/s, \
             {us_per_probe:.0} µs/probe",
            summary.queries
        );
        runs.push(FleetRun { servers: parts, queries: summary.queries, qps, us_per_probe });
        reference_bits.push((parts, reference.estimate.to_bits()));
        for server in servers {
            server.shutdown();
        }
    }

    // Failure injection: a 2-server fleet with a replica behind shard 0.
    // The primary is killed mid-estimation; the run must fail over and
    // still land on the reference bits.
    let parts = 2;
    let local = HiddenDb::over(ShardedDb::new(table, parts), K);
    let mut est = UnbiasedSizeEstimator::hd(SEED).expect("valid config");
    let reference = est.run(&local, passes).expect("unlimited interface");

    let (mut servers, mut topo) = spawn_fleet(table, parts);
    let standby = ShardPartBackend::partition(table, parts)
        .into_iter()
        .next()
        .map(|part| Server::bind(part, "127.0.0.1:0").expect("loopback bind"))
        .expect("parts >= 1");
    topo.add_replica(0, standby.addr().to_string());

    let federated =
        Arc::new(FederatedBackend::connect_with(topo, fleet_config(parts)).expect("fleet up"));
    let primary = servers.remove(0);
    // Half the healthy 2-server run is a reliable mid-run instant.
    let kill_after = runs
        .iter()
        .find(|r| r.servers == parts)
        .map_or(Duration::from_millis(20), |r| {
            Duration::from_secs_f64((r.queries as f64 / r.qps / 2.0).max(0.02))
        });
    let killer = std::thread::spawn(move || {
        std::thread::sleep(kill_after);
        primary.shutdown();
    });

    let db = HiddenDb::over(Arc::clone(&federated), K);
    let wall = Instant::now();
    let mut est = UnbiasedSizeEstimator::hd(SEED).expect("valid config");
    let summary = est.run(&db, passes).expect("fleet must absorb the shard kill");
    let failure_secs = wall.elapsed().as_secs_f64();
    killer.join().expect("killer thread");

    assert_eq!(
        summary.estimate.to_bits(),
        reference.estimate.to_bits(),
        "failover changed the estimate"
    );
    // The kill may land after the run's last probe; one more pass is
    // guaranteed to hit the dead primary and record the handoff.
    let probe = HiddenDb::over(Arc::clone(&federated), K);
    let mut est = UnbiasedSizeEstimator::hd(SEED).expect("valid config");
    est.run(&probe, 1).expect("replica must be serving");
    let failovers = federated.failover_count();
    assert!(failovers >= 1, "the shard kill must be a recorded failover");
    let failure_qps = summary.queries as f64 / failure_secs;
    println!(
        "  shard-kill run: {} queries in {failure_secs:.2}s — {failure_qps:.0} q/s, \
         {failovers} failover(s), bit-identical",
        summary.queries
    );
    for server in servers {
        server.shutdown();
    }
    standby.shutdown();

    let mut fig = Figure::new(
        format!("federated fleet, m={rows}, k={K}, {passes} passes"),
        "shard servers",
        "queries per second",
    );
    fig.add(Series::from_points(
        "fleet_qps",
        runs.iter().map(|r| (r.servers as f64, r.qps)).collect(),
    ));
    fig.add(Series::from_points(
        "us_per_probe",
        runs.iter().map(|r| (r.servers as f64, r.us_per_probe)).collect(),
    ));
    emit(&fig, "scale06_federation");

    let per_fleet = runs
        .iter()
        .map(|r| {
            format!(
                "    {{ \"servers\": {}, \"queries\": {}, \
                 \"queries_per_sec\": {:.1}, \"us_per_probe\": {:.1} }}",
                r.servers, r.queries, r.qps, r.us_per_probe
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"scale06_federation\",\n  \"dataset\": \"bool_iid\",\n  \
         \"rows\": {rows},\n  \"attributes\": {attrs},\n  \"k\": {K},\n  \
         \"passes\": {passes},\n  \"seed\": {SEED},\n  \
         \"bit_identical_fleets\": {fleets},\n  \
         \"fleet_runs\": [\n{per_fleet}\n  ],\n  \
         \"shard_failure\": {{\n    \"servers\": {parts},\n    \
         \"killed_shard\": 0,\n    \"survived\": true,\n    \
         \"bit_identical\": true,\n    \"failovers\": {failovers},\n    \
         \"queries\": {fq},\n    \"queries_per_sec\": {failure_qps:.1}\n  }}\n}}\n",
        attrs = table.schema().len(),
        fleets = reference_bits.len(),
        fq = summary.queries,
    );
    match fs::write("BENCH_scale06.json", &json) {
        Ok(()) => println!("→ wrote BENCH_scale06.json\n"),
        Err(e) => eprintln!("warning: failed writing BENCH_scale06.json: {e}"),
    }
}
