//! Scale experiment for the backend abstraction (not a paper figure — an
//! engineering experiment for the repro's own roadmap): the same
//! estimation run over the single-table backend, hash-partitioned
//! [`ShardedDb`] backends of growing shard counts, and a remote-API
//! [`LatencyBackend`] at growing engine worker counts.
//!
//! The backend contract guarantees bit-identical estimates whatever the
//! substrate; this experiment asserts that on every configuration it
//! times (an experiment must not silently record results from a broken
//! backend) and records what sharding and latency-hiding cost or buy in
//! *wall-clock* terms. Both figures are written under `results/`.

use std::time::{Duration, Instant};

use hdb_core::UnbiasedSizeEstimator;
use hdb_interface::{HiddenDb, LatencyBackend, SearchBackend, ShardedDb, TableBackend};
use hdb_stats::{Figure, Series};

use crate::datasets::Datasets;
use crate::output::{emit, note};
use crate::scale::Scale;

/// Interface constant for the backend experiments (paper-typical k).
const K: usize = 100;

/// Master seed of the estimation runs (fixed: the run is the measurement
/// instrument, not the subject).
const SEED: u64 = 20_260_728;

/// Runs one fixed estimation workload against `db` and returns
/// `(estimate bits, seconds)`.
fn timed_run<B: SearchBackend>(db: &HiddenDb<B>, passes: u64) -> (u64, f64) {
    let mut est = UnbiasedSizeEstimator::hd(SEED).expect("valid config");
    let start = Instant::now();
    let summary = est.run(db, passes).expect("unlimited interface");
    (summary.estimate.to_bits(), start.elapsed().as_secs_f64())
}

/// Runs the shard-count and latency scaling experiments.
///
/// # Panics
/// Panics if any backend configuration changes the estimate — that would
/// be a backend-equivalence regression.
pub fn run_sharded_scale(scale: &Scale, datasets: &Datasets) {
    note("backend scaling: shard counts (ShardedDb) and remote latency (LatencyBackend)");
    let table = datasets.bool_iid(scale);
    let truth = table.len() as f64;
    let passes = scale.trials.max(10) * 25;

    // ----------------------------------------------------------------
    // Shard-count sweep: identical bits, per-shard evaluation cost.
    // ----------------------------------------------------------------
    let (reference_bits, base_secs) = timed_run(&HiddenDb::new(table.clone(), K), passes);
    println!(
        "  table backend: {base_secs:.3}s, estimate {:.1} (truth {truth})",
        f64::from_bits(reference_bits)
    );
    let mut shard_fig = Figure::new(
        format!("sharded backend wall-clock, {passes} passes, m={truth}"),
        "shards",
        "seconds",
    );
    let mut points = vec![(0.0, base_secs)]; // shard count 0 = unsharded reference
    for shards in [1usize, 2, 4, 8, 16] {
        for workers in [1usize, 2] {
            let backend = ShardedDb::new(table, shards).with_workers(workers);
            let db = HiddenDb::over(backend, K);
            let (bits, secs) = timed_run(&db, passes);
            assert_eq!(
                bits, reference_bits,
                "backend-equivalence regression at shards={shards} workers={workers}"
            );
            if workers == 1 {
                println!("  shards={shards}: {secs:.3}s (bit-identical estimate)");
                points.push((shards as f64, secs));
            }
        }
    }
    shard_fig.add(Series::from_points("wall-clock", points));
    emit(&shard_fig, "scale02_sharded_backend");

    // ----------------------------------------------------------------
    // Latency hiding: a simulated remote API at fixed per-query latency,
    // swept over engine worker counts. Queries are the scarce resource
    // of the hidden-web scenario; wall-clock shows what the parallel
    // engine buys when each of them costs a round trip.
    // ----------------------------------------------------------------
    let latency = Duration::from_micros(200);
    let remote_passes = (scale.trials.max(4) * 2).min(64);
    let mut latency_fig = Figure::new(
        format!("remote-API simulation, {}µs/query, {remote_passes} passes", latency.as_micros()),
        "workers",
        "seconds",
    );
    let mut wall = Vec::new();
    let mut reference: Option<u64> = None;
    for workers in [1usize, 2, 4, 8] {
        let backend = LatencyBackend::new(TableBackend::new(table.clone()), latency);
        let db = HiddenDb::over(backend, K);
        let mut est = UnbiasedSizeEstimator::hd(SEED).expect("valid config");
        let start = Instant::now();
        let summary = est.run_parallel(&db, remote_passes, workers).expect("unlimited");
        let secs = start.elapsed().as_secs_f64();
        let bits = summary.estimate.to_bits();
        match reference {
            None => reference = Some(bits),
            Some(r) => assert_eq!(
                r, bits,
                "determinism regression: workers={workers} changed the remote estimate"
            ),
        }
        println!(
            "  workers={workers}: {secs:.3}s wall, {} round trips simulated",
            db.backend().round_trips()
        );
        wall.push((workers as f64, secs));
    }
    latency_fig.add(Series::from_points("wall-clock", wall));
    emit(&latency_fig, "scale02_remote_latency");
}
