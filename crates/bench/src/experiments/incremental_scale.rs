//! Scale experiment for the incremental drill-down evaluation engine
//! (not a paper figure — an engineering experiment for the repro's own
//! roadmap): the same deep-walk estimation workload evaluated three
//! ways, all bit-identical by contract and asserted so here:
//!
//! * **fresh** — every probe an independent from-scratch query
//!   ([`SessionMode::Fresh`], the pre-session reference path);
//! * **incremental + materialise** — probes reuse the parent node's
//!   match bitmap (one AND instead of a d-way intersection) but still
//!   materialise full top-k pages;
//! * **incremental + count-only** — the default: probes are one
//!   AND-count, pages materialise only for valid outcomes.
//!
//! Per-query wall-clock for each mode goes to `results/` as CSV and to
//! **`BENCH_scale03.json`** at the repository root — the machine-readable
//! perf trajectory future PRs diff against.

use std::fs;
use std::time::Instant;

use hdb_core::UnbiasedSizeEstimator;
use hdb_interface::{HiddenDb, SessionMode, Table, TopKInterface};
use hdb_stats::{Figure, Series};

use crate::datasets::Datasets;
use crate::output::{emit, note};
use crate::scale::Scale;

/// Interface constant: small enough that drill-downs run deep (the
/// workload the session engine is built for).
const K: usize = 10;

/// Master seed of the estimation runs (fixed: the run is the measurement
/// instrument, not the subject).
const SEED: u64 = 20_260_728;

/// One timed run: `(estimate bits, queries issued, seconds)`.
fn timed_run(table: &Table, mode: SessionMode, passes: u64) -> (u64, u64, f64) {
    let db = HiddenDb::new(table.clone(), K).with_session_mode(mode);
    let mut est = UnbiasedSizeEstimator::hd(SEED).expect("valid config");
    let start = Instant::now();
    let summary = est.run(&db, passes).expect("unlimited interface");
    let secs = start.elapsed().as_secs_f64();
    (summary.estimate.to_bits(), db.queries_issued(), secs)
}

/// Runs the fresh-vs-incremental and materialise-vs-count-only sweep.
///
/// # Panics
/// Panics if any session mode changes the estimate — that would be an
/// incremental-equivalence regression, and an experiment must not
/// silently record results from a broken engine.
pub fn run_incremental_scale(scale: &Scale, datasets: &Datasets) {
    note("incremental walk sessions: fresh vs bitmap-reuse vs count-only probes");
    // The perf trajectory is defined on the 100k-row deep-walk dataset;
    // reduced scales (--quick / HDB_ROWS) shrink it proportionally.
    let rows = scale.bool_rows.min(100_000);
    let scale = Scale { bool_rows: rows, ..*scale };
    let table = datasets.bool_iid(&scale);
    let passes = (scale.trials.max(10) * 10).min(500);

    let modes = [
        ("fresh", SessionMode::Fresh),
        ("incremental+materialize", SessionMode::IncrementalMaterialized),
        ("incremental+count-only", SessionMode::Incremental),
    ];
    let mut measured: Vec<(&str, u64, f64, f64)> = Vec::new();
    let mut reference: Option<u64> = None;
    for (name, mode) in modes {
        let (bits, queries, secs) = timed_run(table, mode, passes);
        match reference {
            None => reference = Some(bits),
            Some(r) => assert_eq!(
                r, bits,
                "incremental-equivalence regression: mode `{name}` changed the estimate"
            ),
        }
        if let Some(&(_, reference_queries, _, _)) = measured.first() {
            assert_eq!(
                queries, reference_queries,
                "accounting regression: mode `{name}` changed the issued-query count"
            );
        }
        let us_per_query = secs * 1e6 / queries as f64;
        println!(
            "  {name:<24} {secs:>7.3}s wall, {queries} queries, {us_per_query:.2} µs/query"
        );
        measured.push((name, queries, secs, us_per_query));
    }

    let fresh_us = measured[0].3;
    let materialize_us = measured[1].3;
    let count_only_us = measured[2].3;
    let speedup_total = fresh_us / count_only_us;
    let speedup_bitmap_reuse = fresh_us / materialize_us;
    let speedup_count_only = materialize_us / count_only_us;
    println!(
        "  speedup: fresh→count-only {speedup_total:.2}×  \
         (bitmap reuse {speedup_bitmap_reuse:.2}×, count-only on top {speedup_count_only:.2}×)"
    );

    let mut fig = Figure::new(
        format!("incremental walk evaluation, m={rows}, k={K}, {passes} passes"),
        "mode (0=fresh, 1=incremental+materialize, 2=incremental+count-only)",
        "µs per issued query",
    );
    fig.add(Series::from_points(
        "us_per_query",
        measured.iter().enumerate().map(|(i, m)| (i as f64, m.3)).collect(),
    ));
    emit(&fig, "scale03_incremental_walk");

    // Machine-readable perf trajectory at the repository root.
    let json = format!(
        "{{\n  \"bench\": \"scale03_incremental_walk\",\n  \"dataset\": \"bool_iid\",\n  \
         \"rows\": {rows},\n  \"attributes\": {attrs},\n  \"k\": {K},\n  \"passes\": {passes},\n  \
         \"seed\": {SEED},\n  \"estimate_bits\": {bits},\n  \"queries_per_mode\": {queries},\n  \
         \"fresh_us_per_query\": {fresh_us:.4},\n  \
         \"incremental_materialize_us_per_query\": {materialize_us:.4},\n  \
         \"incremental_count_only_us_per_query\": {count_only_us:.4},\n  \
         \"speedup_fresh_to_count_only\": {speedup_total:.4},\n  \
         \"speedup_fresh_to_materialize\": {speedup_bitmap_reuse:.4},\n  \
         \"speedup_materialize_to_count_only\": {speedup_count_only:.4}\n}}\n",
        attrs = table.schema().len(),
        bits = reference.expect("three runs completed"),
        queries = measured[0].1,
    );
    match fs::write("BENCH_scale03.json", &json) {
        Ok(()) => println!("→ wrote BENCH_scale03.json\n"),
        Err(e) => eprintln!("warning: failed writing BENCH_scale03.json: {e}"),
    }
}
