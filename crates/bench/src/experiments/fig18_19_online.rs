//! Figures 18–19: the "live site" experiments, simulated against the
//! synthetic Yahoo! Auto database (the paper ran these through the real
//! Yahoo! Auto web form; the observable surface — selection-restricted
//! drill-downs under a per-IP query limit — is identical, see DESIGN.md).
//!
//! * **Fig 18** — ten independent executions of HD-UNBIASED-AGG
//!   estimating `COUNT(*) WHERE make ∧ model` for the most popular model
//!   (the paper's Toyota Corolla; `r = 30`, `D_UB = 126`), compared
//!   against the published count.
//! * **Fig 19** — `SUM(price)` (inventory balance) for five popular
//!   make/model pairs, ≤1,000 queries each. Unlike the paper, our ground
//!   truth is known, so the figure reports it alongside.

use hdb_core::{AggregateSpec, EstimatorConfig, UnbiasedAggEstimator};
use hdb_interface::Query;
use hdb_stats::{Figure, Series};

use crate::datasets::{interface, Datasets};
use crate::output::emit;
use crate::scale::Scale;
use hdb_datagen::YAHOO_ATTRS;

/// Interface constant (the real site shows 100-ish listings per search).
pub const K: usize = 100;

/// The paper's online parameters.
const R: usize = 30;
const DUB: u64 = 126;

/// The five make/model pairs of Figure 19 (each pair is a popular model
/// of its make under the generator's make-rotated model distribution).
/// Index 0 doubles as the Figure-18 target ("Toyota Corolla").
const MODELS: [(&str, u16, u16); 5] = [
    ("Toyota Corolla", 0, 0),
    ("Ford Escape", 1, 5),
    ("Chevy Cobalt", 2, 10),
    ("Pontiac G6", 15, 11),
    ("Ford F-150", 1, 6),
];

fn selection(make: u16, model: u16) -> Query {
    Query::all()
        .and(YAHOO_ATTRS.make, make)
        .expect("make unconstrained")
        .and(YAHOO_ATTRS.model, model)
        .expect("model unconstrained")
}

/// Runs Figure 18.
pub fn run_count_runs(scale: &Scale, datasets: &Datasets) {
    let table = datasets.yahoo(scale);
    let db = interface(table, K);
    let (label, make, model) = MODELS[0];
    let sel = selection(make, model);
    let truth = table.exact_count(&sel) as f64;

    let config = EstimatorConfig::hd_default().with_r(R).with_dub(DUB);
    let mut fig18 = Figure::new(
        format!("Figure 18: COUNT estimates for {label} (truth {truth})"),
        "run",
        "count estimate",
    );
    let mut points = Vec::new();
    let mut costs = Vec::new();
    for run in 0..10u64 {
        let mut est = UnbiasedAggEstimator::new(
            config.clone(),
            AggregateSpec::count(sel.clone()),
            19_000 + run,
        )
        .expect("valid config");
        let summary = est.run(&db, 1).expect("pass succeeds");
        points.push((run as f64 + 1.0, summary.estimate));
        costs.push(summary.queries);
    }
    let mean_cost = costs.iter().sum::<u64>() as f64 / costs.len() as f64;
    fig18.add(Series::from_points("estimate", points));
    fig18.add(Series::from_points(
        "truth",
        (1..=10).map(|i| (f64::from(i), truth)).collect(),
    ));
    println!("(Figure 18: average {mean_cost:.0} queries per execution)");
    emit(&fig18, "fig18_corolla_count");
}

/// Runs Figure 19.
pub fn run_sum_price(scale: &Scale, datasets: &Datasets) {
    let table = datasets.yahoo(scale);
    let db = interface(table, K);
    let config = EstimatorConfig::hd_default().with_r(R).with_dub(DUB);

    let mut fig19 = Figure::new(
        "Figure 19: SUM(price) for five popular models",
        "model index",
        "SUM(price) ($)",
    );
    let mut est_points = Vec::new();
    let mut truth_points = Vec::new();
    println!("model index key:");
    for (i, (label, make, model)) in MODELS.iter().enumerate() {
        let sel = selection(*make, *model);
        let truth = table.exact_sum(YAHOO_ATTRS.price, &sel).expect("price is numeric");
        let mut est = UnbiasedAggEstimator::new(
            config.clone(),
            AggregateSpec::sum(YAHOO_ATTRS.price, sel),
            20_000 + i as u64,
        )
        .expect("valid config");
        let summary = est.run_until_budget(&db, 1000).expect("passes succeed");
        println!(
            "  {} = {label}: estimate ${:.0} (truth ${truth:.0}, {} queries)",
            i + 1,
            summary.estimate,
            summary.queries
        );
        est_points.push(((i + 1) as f64, summary.estimate));
        truth_points.push(((i + 1) as f64, truth));
    }
    fig19.add(Series::from_points("estimate", est_points));
    fig19.add(Series::from_points("truth", truth_points));
    emit(&fig19, "fig19_sum_price");
}
