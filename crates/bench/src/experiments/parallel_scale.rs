//! Scale experiment for the parallel walk engine (not a paper figure —
//! an engineering experiment for the repro's own roadmap): wall-clock
//! time of the same estimation run at 1/2/4/8 workers, and the cost of
//! bitmap vs linear-scan query evaluation through the interface.
//!
//! The engine guarantees worker-count independence of the *estimate*;
//! this experiment records what the worker count buys in *time*. Both
//! figures are written under `results/`.

use std::time::Instant;

use hdb_core::UnbiasedSizeEstimator;
use hdb_interface::{EvalMode, HiddenDb, Query, TopKInterface};
use hdb_stats::{Figure, Series};

use crate::datasets::{interface, Datasets};
use crate::output::{emit, note};
use crate::scale::Scale;

/// Interface constant for the engine experiment (paper-typical k).
const K: usize = 100;

/// Runs the worker-scaling and eval-path experiments.
///
/// # Panics
/// Panics if two worker counts disagree on the estimate — that would be
/// a determinism regression, and an experiment must not silently record
/// results from a broken engine.
pub fn run_parallel_scale(scale: &Scale, datasets: &Datasets) {
    note("parallel engine scaling (workers) and eval paths (bitmap vs scan)");
    let table = datasets.bool_iid(scale);
    let truth = table.len() as f64;
    let db = interface(table, K);
    // enough passes that thread startup cost is noise
    let passes = scale.trials.max(10) * 125;

    let mut workers_fig = Figure::new(
        format!("engine wall-clock, {passes} passes, m={truth}"),
        "workers",
        "seconds",
    );
    let mut points = Vec::new();
    let mut speedup = Vec::new();
    let mut reference: Option<u64> = None;
    let mut base_secs = 0.0;
    for workers in [1usize, 2, 4, 8] {
        let mut est = UnbiasedSizeEstimator::hd(4242).expect("valid config");
        let start = Instant::now();
        let summary = est.run_parallel(&db, passes, workers).expect("unlimited");
        let secs = start.elapsed().as_secs_f64();
        let bits = summary.estimate.to_bits();
        match reference {
            None => {
                reference = Some(bits);
                base_secs = secs;
            }
            Some(r) => assert_eq!(
                r, bits,
                "determinism regression: workers={workers} changed the estimate"
            ),
        }
        println!(
            "  workers={workers}: {secs:.3}s, estimate {:.1} (truth {truth}), {} queries",
            summary.estimate, summary.queries
        );
        points.push((workers as f64, secs));
        speedup.push((workers as f64, base_secs / secs));
    }
    workers_fig.add(Series::from_points("wall-clock", points));
    workers_fig.add(Series::from_points("speedup vs 1 worker", speedup));
    emit(&workers_fig, "scale01_engine_workers");

    // Eval-path comparison: identical query stream, bitmap vs scan.
    let bitmap_db = interface(table, K);
    let scan_db = interface(table, K).with_eval_mode(EvalMode::Scan);
    let attrs = table.schema().len();
    let mut eval_fig = Figure::new(
        format!("query evaluation, m={truth}"),
        "predicates",
        "microseconds/query",
    );
    let mut bitmap_points = Vec::new();
    let mut scan_points = Vec::new();
    for preds in [2usize, 6, 10] {
        let mut q = Query::all();
        for attr in 0..preds.min(attrs) {
            q = q.and(attr, (attr % 2) as u16).expect("distinct attrs");
        }
        let reps = 200;
        let time = |db: &HiddenDb| {
            let start = Instant::now();
            for _ in 0..reps {
                let _ = db.query(&q).expect("unlimited");
            }
            start.elapsed().as_secs_f64() * 1e6 / f64::from(reps)
        };
        let (b_us, s_us) = (time(&bitmap_db), time(&scan_db));
        println!("  predicates={preds}: bitmap {b_us:.1}µs, scan {s_us:.1}µs");
        bitmap_points.push((preds as f64, b_us));
        scan_points.push((preds as f64, s_us));
    }
    eval_fig.add(Series::from_points("bitmap", bitmap_points));
    eval_fig.add(Series::from_points("scan", scan_points));
    emit(&eval_fig, "scale01_eval_paths");
}
