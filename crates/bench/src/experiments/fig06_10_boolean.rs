//! Figures 6–10: the Boolean-dataset comparison suite.
//!
//! * **Fig 6** — MSE vs query cost for CAPTURE-&-RECAPTURE,
//!   BOOL-UNBIASED-SIZE and HD-UNBIASED-SIZE on Bool-iid and Bool-mixed
//!   (`k = 100`; HD: `r = 4`, `D_UB = 2⁵`).
//! * **Fig 7** — relative error vs query cost (BOOL and HD).
//! * **Fig 8** — error bars (relative size ±1σ) for HD.
//! * **Fig 9** — SUM relative error vs query cost (BOOL and HD variants
//!   of HD-UNBIASED-AGG over one Boolean attribute).
//! * **Fig 10** — SUM error bars for HD.
//!
//! Expected shape (paper §6.2): both unbiased estimators beat C&R by
//! orders of magnitude in MSE; HD ≤ BOOL with the gap widest on the
//! skewed Bool-mixed; error bars hug 1.0 within ~±2%.

use hdb_core::{AggregateSpec, EstimatorConfig};
use hdb_interface::Query;
use hdb_stats::Figure;

use crate::datasets::{interface, Datasets};
use crate::experiments::{error_bar_series, mse_series, relerr_series};
use crate::output::emit;
use crate::runner::{run_agg_trials, run_capture_recapture_trials, TrialSpec};
use crate::scale::Scale;

/// The interface constant used throughout the Boolean experiments.
pub const K: usize = 100;
/// The Boolean attribute summed in Figures 9–10 (the paper picks one at
/// random; the choice is part of the experiment definition).
pub const SUM_ATTR: usize = 2;

/// Runs Figures 6, 7 and 8 (COUNT) and 9, 10 (SUM) in one sweep so the
/// expensive traces are shared.
pub fn run(scale: &Scale, datasets: &Datasets) {
    let checkpoints: Vec<u64> = (100..=1000).step_by(100).collect();
    let bar_checkpoints: Vec<u64> = (200..=1000).step_by(100).collect();

    let mut fig6 = Figure::new("Figure 6: MSE vs query cost", "query cost", "MSE");
    let mut fig7 =
        Figure::new("Figure 7: Relative error vs query cost", "query cost", "relative error (%)");
    let mut fig8 =
        Figure::new("Figure 8: Error bars (relative size)", "query cost", "relative size");
    let mut fig9 = Figure::new(
        "Figure 9: SUM relative error vs query cost",
        "query cost",
        "relative error (%)",
    );
    let mut fig10 =
        Figure::new("Figure 10: SUM error bars (relative size)", "query cost", "relative size");

    for (label, table) in
        [("iid", datasets.bool_iid(scale)), ("Mixed", datasets.bool_mixed(scale))]
    {
        let db = interface(table, K);
        let truth = table.len() as f64;
        let spec = TrialSpec { trials: scale.trials, max_queries: 1000, base_seed: 7_000 };

        let hd_cfg = EstimatorConfig::hd_default(); // r = 4, D_UB = 32, WA on
        let bool_cfg = EstimatorConfig::plain();

        let hd = run_agg_trials(&db, &hd_cfg, &AggregateSpec::database_size(), &spec);
        let plain = run_agg_trials(&db, &bool_cfg, &AggregateSpec::database_size(), &spec);
        let cr = run_capture_recapture_trials(&db, &spec);

        fig6.add(mse_series(&format!("C&R {label}"), &cr, truth, &checkpoints));
        fig6.add(mse_series(&format!("BOOL {label}"), &plain, truth, &checkpoints));
        fig6.add(mse_series(&format!("HD {label}"), &hd, truth, &checkpoints));

        fig7.add(relerr_series(&format!("BOOL {label}"), &plain, truth, &checkpoints));
        fig7.add(relerr_series(&format!("HD {label}"), &hd, truth, &checkpoints));

        for s in error_bar_series(&format!("HD-UNBIASED-{label}"), &hd, truth, &bar_checkpoints) {
            fig8.add(s);
        }

        // ---- SUM experiments (Figures 9, 10) --------------------------
        let sum_truth = table.exact_sum(SUM_ATTR, &Query::all()).expect("boolean attrs numeric");
        let sum_spec = AggregateSpec::sum(SUM_ATTR, Query::all());
        let hd_sum = run_agg_trials(&db, &hd_cfg, &sum_spec, &spec);
        let plain_sum = run_agg_trials(&db, &bool_cfg, &sum_spec, &spec);

        fig9.add(relerr_series(&format!("BOOL {label}"), &plain_sum, sum_truth, &checkpoints));
        fig9.add(relerr_series(&format!("HD {label}"), &hd_sum, sum_truth, &checkpoints));
        for s in error_bar_series(
            &format!("HD-UNBIASED-SUM-{label}"),
            &hd_sum,
            sum_truth,
            &bar_checkpoints,
        ) {
            fig10.add(s);
        }
    }

    emit(&fig6, "fig06_mse_vs_cost");
    emit(&fig7, "fig07_relative_error");
    emit(&fig8, "fig08_error_bars");
    emit(&fig9, "fig09_sum_relative_error");
    emit(&fig10, "fig10_sum_error_bars");
}
