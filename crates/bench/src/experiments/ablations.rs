//! Design-choice ablations beyond the paper's own figures (DESIGN.md §3):
//!
//! * **abl02** — attribute ordering: fanout-descending (the paper's §5.1
//!   recommendation) vs ascending vs schema order, on the categorical
//!   Yahoo! Auto dataset. Expectation: descending minimises query cost at
//!   comparable MSE.
//! * **abl03** — weight-adjustment smoothing pseudo-count sweep.
//!   Expectation: very small λ over-trusts noisy pilot estimates, very
//!   large λ disables weight adjustment; a broad middle is flat.

use hdb_core::dnc::{estimate_pass, estimate_pass_paper_form};
use hdb_core::{
    AggregateSpec, AttributeOrder, BacktrackStrategy, EstimatorConfig, UniformWeights,
};
use hdb_datagen::uniform_table;
use hdb_interface::{HiddenDb, Query, ReturnedTuple, Schema};
use hdb_stats::{Figure, Series};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::datasets::{interface, Datasets};
use crate::output::emit;
use crate::runner::run_fixed_passes;
use crate::scale::Scale;

/// Interface constant (same as the Yahoo! Auto experiments).
pub const K: usize = 100;

/// Runs the set-vs-recursive divide-&-conquer form ablation (DESIGN.md:
/// the literal Eq. (10) over distinct captured nodes is negatively biased
/// when per-subtree selection probabilities are not small against `1/r`;
/// the recursive conditional-HT form we ship is exactly unbiased).
pub fn run_dnc_form(scale: &Scale) {
    let mut fig = Figure::new(
        "Ablation 01: D&C estimator form — recursive (ours) vs Eq.(10) set form",
        "r",
        "mean estimate / m",
    );
    // dense little tree: p per subtree walk is large, exposing the bias
    let schema = Schema::boolean(8);
    let table = uniform_table(&schema, 60, 5).expect("generation");
    let m = table.len() as f64;
    let db = HiddenDb::new(table, 1);
    let measure = |ts: &[ReturnedTuple]| ts.len() as f64;
    let levels: Vec<usize> = (0..8).collect();
    let passes = 400 * scale.trials.max(1);

    let mut rec_points = Vec::new();
    let mut set_points = Vec::new();
    for r in [1usize, 2, 4, 8] {
        let mut rng = StdRng::seed_from_u64(23_000 + r as u64);
        let (mut rec, mut set) = (0.0, 0.0);
        for _ in 0..passes {
            rec += estimate_pass(&db, &Query::all(), &levels, r, 8, &UniformWeights, &measure, &mut rng)
                .expect("unlimited");
            set += estimate_pass_paper_form(
                &db,
                &Query::all(),
                &levels,
                r,
                8,
                &UniformWeights,
                &measure,
                &mut rng,
            )
            .expect("unlimited");
        }
        rec_points.push((r as f64, rec / passes as f64 / m));
        set_points.push((r as f64, set / passes as f64 / m));
    }
    fig.add(Series::from_points("recursive form (ours)", rec_points));
    fig.add(Series::from_points("Eq.(10) set form", set_points));
    emit(&fig, "abl01_set_vs_recursive_dnc");
    println!("(values are mean estimate / true size; 1.0 = unbiased)");
}

/// Runs the Figure-4 worst-case stress (paper §3.3.2 / Corollary 1 /
/// Theorem 4): on the adversarial suffix-flip family, the plain walk's
/// variance blows up with the domain size while divide-&-conquer tames
/// it at comparable query cost.
pub fn run_worst_case(scale: &Scale) {
    let mut fig = Figure::new(
        "Ablation 05: Figure-4 worst case — plain vs divide-&-conquer",
        "n (attributes)",
        "relative MSE (MSE/m²) at matched cost",
    );
    let mut plain_points = Vec::new();
    let mut dnc_points = Vec::new();
    for n in [8usize, 12, 16, 20] {
        let table = hdb_datagen::worst_case(n).expect("n ≥ 2");
        let truth = table.len() as f64;
        let db = HiddenDb::new(table, 1);

        let dnc_cfg =
            EstimatorConfig::hd_default().with_r(3).with_dub(8).with_weight_adjustment(false);
        let dnc = run_fixed_passes(
            &db,
            &dnc_cfg,
            &AggregateSpec::database_size(),
            scale.trials.max(20),
            4,
            25_000,
        );
        // match the plain estimator's budget to D&C's mean cost
        let budget = dnc.mean_cost().ceil() as u64;
        let mut plain_estimates = Vec::new();
        for trial in 0..scale.trials.max(20) {
            let mut est = hdb_core::UnbiasedAggEstimator::new(
                EstimatorConfig::plain(),
                AggregateSpec::database_size(),
                26_000 + trial,
            )
            .expect("valid config");
            let summary = est.run_until_budget(&db, budget).expect("unlimited");
            plain_estimates.push(summary.estimate);
        }
        let plain_mse = plain_estimates.iter().map(|e| (e - truth).powi(2)).sum::<f64>()
            / plain_estimates.len() as f64;
        println!(
            "  n={n}: plain rel-MSE {:.3e}, D&C rel-MSE {:.3e} (cost ≈ {budget})",
            plain_mse / (truth * truth),
            dnc.mse(truth) / (truth * truth),
        );
        plain_points.push((n as f64, plain_mse / (truth * truth)));
        dnc_points.push((n as f64, dnc.mse(truth) / (truth * truth)));
    }
    fig.add(Series::from_points("plain walk", plain_points));
    fig.add(Series::from_points("divide-&-conquer", dnc_points));
    emit(&fig, "abl05_worst_case");
}

/// Runs the smart-vs-simple backtracking cost ablation (paper §3.2,
/// Eq. 2: smart backtracking avoids probing every branch of large-fanout
/// attributes).
pub fn run_backtracking(scale: &Scale, datasets: &Datasets) {
    let table = datasets.yahoo(scale);
    let db = interface(table, K);
    let truth = table.len() as f64;

    let mut fig = Figure::new(
        "Ablation 04: smart vs simple backtracking",
        "strategy (1=smart 2=simple)",
        "query cost / MSE",
    );
    let mut cost_points = Vec::new();
    let mut mse_points = Vec::new();
    for (i, (label, strategy)) in
        [("smart", BacktrackStrategy::Smart), ("simple", BacktrackStrategy::Simple)]
            .into_iter()
            .enumerate()
    {
        let config = EstimatorConfig::plain().with_backtrack(strategy);
        let result = run_fixed_passes(
            &db,
            &config,
            &AggregateSpec::database_size(),
            scale.trials,
            30,
            24_000,
        );
        println!(
            "  {label}: mean cost {:.0}, MSE {:.3e}",
            result.mean_cost(),
            result.mse(truth)
        );
        cost_points.push(((i + 1) as f64, result.mean_cost()));
        mse_points.push(((i + 1) as f64, result.mse(truth)));
    }
    fig.add(Series::from_points("Query cost", cost_points));
    fig.add(Series::from_points("MSE", mse_points));
    emit(&fig, "abl04_backtracking");
}

/// Runs the attribute-order ablation.
pub fn run_attribute_order(scale: &Scale, datasets: &Datasets) {
    let table = datasets.yahoo(scale);
    let db = interface(table, K);
    let truth = table.len() as f64;

    let orders: [(&str, AttributeOrder); 3] = [
        ("fanout-descending", AttributeOrder::FanoutDescending),
        ("fanout-ascending", AttributeOrder::FanoutAscending),
        ("schema-order", AttributeOrder::SchemaOrder),
    ];

    let mut fig = Figure::new(
        "Ablation 02: attribute ordering (paper §5.1)",
        "order (1=desc 2=asc 3=schema)",
        "query cost / relative MSE",
    );
    let mut cost_points = Vec::new();
    let mut mse_points = Vec::new();
    for (i, (label, order)) in orders.into_iter().enumerate() {
        let config = EstimatorConfig::hd_default().with_r(5).with_dub(16).with_order(order);
        let result = run_fixed_passes(
            &db,
            &config,
            &AggregateSpec::database_size(),
            scale.trials,
            2,
            21_000,
        );
        println!(
            "  {label}: mean cost {:.0}, MSE {:.3e}",
            result.mean_cost(),
            result.mse(truth)
        );
        cost_points.push(((i + 1) as f64, result.mean_cost()));
        mse_points.push(((i + 1) as f64, result.mse(truth)));
    }
    fig.add(Series::from_points("Query cost", cost_points));
    fig.add(Series::from_points("MSE", mse_points));
    emit(&fig, "abl02_attribute_order");
}

/// Runs the smoothing-λ ablation.
pub fn run_smoothing(scale: &Scale, datasets: &Datasets) {
    let table = datasets.yahoo(scale);
    let db = interface(table, K);
    let truth = table.len() as f64;

    let lambdas = [0.01, 0.1, 1.0, 10.0, 100.0];
    let mut fig = Figure::new(
        "Ablation 03: weight-adjustment smoothing pseudo-count",
        "lambda",
        "MSE / query cost",
    );
    let mut mse_points = Vec::new();
    let mut cost_points = Vec::new();
    for &lambda in &lambdas {
        // enough passes for the weight model's visit gate to open at the
        // shallow nodes, where smoothing actually matters
        let config =
            EstimatorConfig::hd_default().with_r(5).with_dub(16).with_smoothing(lambda);
        let result = run_fixed_passes(
            &db,
            &config,
            &AggregateSpec::database_size(),
            scale.trials,
            12,
            22_000,
        );
        mse_points.push((lambda, result.mse(truth)));
        cost_points.push((lambda, result.mean_cost()));
    }
    fig.add(Series::from_points("MSE", mse_points));
    fig.add(Series::from_points("Query cost", cost_points));
    emit(&fig, "abl03_smoothing_lambda");
}
