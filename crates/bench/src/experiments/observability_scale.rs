//! Scale experiment: the observability tax (not a paper figure — an
//! engineering experiment for the repro's own roadmap). Three questions:
//!
//! 1. **µs/probe overhead** — the same seeded estimator run, obs fully
//!    on (live registry and counters, the shipping default) vs stripped
//!    ([`HiddenDb::with_metrics_disabled`]), batches interleaved
//!    on-off-on-off so thermal drift and scheduler noise hit both arms
//!    equally, medians compared. The roadmap bar is **≤ 3%**: relaxed
//!    atomic bumps after the outcome is computed should be invisible
//!    next to query evaluation.
//! 2. **trace-ring cost** — the same run again with a span ring
//!    installed (tracing takes a mutex per event, which is why it is off
//!    by default); reported, not gated.
//! 3. **ring throughput** — raw open/close pairs per second through a
//!    [`TraceRing`], the ceiling any traced component can push.
//!
//! Every on/off run pair is checked **bit-identical** first — an
//! overhead number for an observability layer that changes answers
//! would measure nothing.
//!
//! The measurements go to `results/` as CSV and to
//! **`BENCH_scale08.json`** at the repository root.

use std::fs;
use std::time::Instant;

use hdb_core::UnbiasedSizeEstimator;
use hdb_interface::{HiddenDb, Table, TraceRing};
use hdb_stats::{Figure, Series};

use crate::output::{emit, note};
use crate::scale::Scale;

/// Interface constant for the probe workload.
const K: usize = 10;

/// Estimator seed (fixed: the runs are the measuring instrument).
const SEED: u64 = 20_100_613;

/// The roadmap bar: obs-on may cost at most this fraction per probe.
const MAX_OVERHEAD: f64 = 0.03;

/// Absolute noise floor (µs/probe): below this, a relative comparison
/// measures the OS scheduler, not the registry.
const NOISE_FLOOR_US: f64 = 0.05;

/// One timed estimator run: µs per issued query plus the run's
/// fingerprint (estimate bits, query count) for the bit-identity check.
struct Sample {
    us_per_probe: f64,
    fingerprint: (u64, u64),
}

/// Times one full estimator run over a fresh interface built by `make`.
fn timed_run(db: &HiddenDb, passes: u64) -> Sample {
    let mut est = UnbiasedSizeEstimator::hd(SEED).expect("valid config");
    let wall = Instant::now();
    let s = est.run(db, passes).expect("unlimited interface");
    let elapsed_us = wall.elapsed().as_secs_f64() * 1e6;
    assert!(s.queries > 0, "the workload must issue probes");
    Sample {
        us_per_probe: elapsed_us / s.queries as f64,
        fingerprint: (s.estimate.to_bits(), s.queries),
    }
}

/// The median of a sample set (odd-biased: lower of the middle pair).
fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

/// Runs the observability overhead sweep.
///
/// # Panics
/// Panics if obs-on and obs-off runs diverge bitwise, or if the median
/// metrics overhead exceeds the roadmap bar (3% per probe, above the
/// absolute noise floor) — a regression here is a broken contract, not
/// a slow day.
pub fn run_observability_scale(scale: &Scale) {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("HDB_QUICK").is_ok_and(|v| v == "1" || v == "true");
    let (rows, passes, trials) = if quick { (600, 60, 7) } else { (5_000, 200, 15) };
    note("observability tax: µs/probe with metrics on vs stripped, interleaved batches");

    let _ = scale; // the tax is per-probe; corpus size is pinned per mode
    let table = hdb_datagen::bool_mixed(rows, 16, 7).expect("generation");
    let db_on = |t: &Table| HiddenDb::new(t.clone(), K);
    let db_off = |t: &Table| HiddenDb::new(t.clone(), K).with_metrics_disabled();
    let db_traced = |t: &Table| HiddenDb::new(t.clone(), K).with_trace(4096);

    // Warm-up: fault in the page cache and JIT-warm the branch
    // predictors on both arms before anything is recorded.
    let _ = timed_run(&db_on(&table), passes.min(20));
    let _ = timed_run(&db_off(&table), passes.min(20));

    let mut on_us = Vec::with_capacity(trials);
    let mut off_us = Vec::with_capacity(trials);
    let mut traced_us = Vec::with_capacity(trials);
    for trial in 0..trials {
        // Interleaved on-off-traced within every trial.
        let on = timed_run(&db_on(&table), passes);
        let off = timed_run(&db_off(&table), passes);
        let traced = timed_run(&db_traced(&table), passes);
        assert_eq!(
            on.fingerprint, off.fingerprint,
            "trial {trial}: metrics changed an outcome"
        );
        assert_eq!(
            on.fingerprint, traced.fingerprint,
            "trial {trial}: tracing changed an outcome"
        );
        on_us.push(on.us_per_probe);
        off_us.push(off.us_per_probe);
        traced_us.push(traced.us_per_probe);
    }
    let on_med = median(on_us.clone());
    let off_med = median(off_us.clone());
    let traced_med = median(traced_us.clone());
    let overhead = (on_med - off_med) / off_med;
    let trace_overhead = (traced_med - off_med) / off_med;
    println!(
        "  metrics off {off_med:7.3} µs/probe | on {on_med:7.3} ({:+.2}%) | \
         traced {traced_med:7.3} ({:+.2}%)  [{trials} interleaved trials]",
        overhead * 100.0,
        trace_overhead * 100.0
    );
    assert!(
        overhead <= MAX_OVERHEAD || (on_med - off_med) <= NOISE_FLOOR_US,
        "metrics overhead {:.2}% exceeds the {:.0}% roadmap bar \
         (on {on_med:.3} vs off {off_med:.3} µs/probe)",
        overhead * 100.0,
        MAX_OVERHEAD * 100.0
    );

    // Raw ring throughput: open/close pairs through a bounded ring.
    let ring = TraceRing::new(8192);
    let pairs: u64 = if quick { 200_000 } else { 2_000_000 };
    let wall = Instant::now();
    for i in 0..pairs {
        let id = ring.open("bench_span", 0, i);
        ring.close(id, "bench_span", i);
    }
    let ring_secs = wall.elapsed().as_secs_f64();
    let pairs_per_sec = pairs as f64 / ring_secs.max(f64::MIN_POSITIVE);
    assert_eq!(ring.len(), 8192, "the ring must have stayed at its bound");
    assert_eq!(ring.dropped(), 2 * pairs - 8192, "evictions must be counted");
    println!("  trace ring: {:.1}M span pairs/s (bounded at 8192 events)", pairs_per_sec / 1e6);

    let mut fig = Figure::new(
        format!("observability tax, k={K}, {passes} passes, {trials} interleaved trials"),
        "trial",
        "µs per probe",
    );
    fig.add(Series::from_points(
        "metrics_on",
        on_us.iter().enumerate().map(|(i, &v)| (i as f64, v)).collect(),
    ));
    fig.add(Series::from_points(
        "metrics_off",
        off_us.iter().enumerate().map(|(i, &v)| (i as f64, v)).collect(),
    ));
    fig.add(Series::from_points(
        "traced",
        traced_us.iter().enumerate().map(|(i, &v)| (i as f64, v)).collect(),
    ));
    emit(&fig, "scale08_observability");

    let json = format!(
        "{{\n  \"bench\": \"scale08_observability\",\n  \"dataset\": \"bool_mixed\",\n  \
         \"rows\": {rows},\n  \"k\": {K},\n  \"passes\": {passes},\n  \"seed\": {SEED},\n  \
         \"trials\": {trials},\n  \"bit_identical\": true,\n  \
         \"us_per_probe_metrics_off\": {off_med:.4},\n  \
         \"us_per_probe_metrics_on\": {on_med:.4},\n  \
         \"us_per_probe_traced\": {traced_med:.4},\n  \
         \"metrics_overhead_fraction\": {overhead:.5},\n  \
         \"trace_overhead_fraction\": {trace_overhead:.5},\n  \
         \"overhead_bar\": {MAX_OVERHEAD},\n  \
         \"trace_ring_pairs_per_sec\": {pairs_per_sec:.0}\n}}\n"
    );
    match fs::write("BENCH_scale08.json", &json) {
        Ok(()) => println!("→ wrote BENCH_scale08.json\n"),
        Err(e) => eprintln!("warning: failed writing BENCH_scale08.json: {e}"),
    }
}
