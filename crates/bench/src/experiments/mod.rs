//! One module per paper figure/table; each `run` function regenerates the
//! corresponding result (console table + CSV under `results/`).
//!
//! See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
//! paper-vs-measured records.

pub mod ablations;
pub mod c10k;
pub mod federation_scale;
pub mod fig06_10_boolean;
pub mod fig11_13_sweeps;
pub mod fig14_17_yahoo;
pub mod fig18_19_online;
pub mod incremental_scale;
pub mod observability_scale;
pub mod parallel_scale;
pub mod recovery_scale;
pub mod remote_scale;
pub mod sharded_scale;

use hdb_stats::{summarize_at, Series, Trace};

/// Builds an `(cost, MSE)` series from traces (checkpoints without data
/// are skipped, so a series starts at its estimator's first completed
/// pass).
#[must_use]
pub fn mse_series(name: &str, traces: &[Trace], truth: f64, checkpoints: &[u64]) -> Series {
    let summary = summarize_at(traces, truth, checkpoints);
    Series::from_points(
        name,
        summary.iter().map(|c| (c.cost as f64, c.accuracy.mse)).collect(),
    )
}

/// Builds an `(cost, mean relative error %)` series from traces.
#[must_use]
pub fn relerr_series(name: &str, traces: &[Trace], truth: f64, checkpoints: &[u64]) -> Series {
    let summary = summarize_at(traces, truth, checkpoints);
    Series::from_points(
        name,
        summary
            .iter()
            .map(|c| (c.cost as f64, c.accuracy.mean_relative_error * 100.0))
            .collect(),
    )
}

/// Builds the three error-bar series (mean, mean−σ, mean+σ of relative
/// size) from traces.
#[must_use]
pub fn error_bar_series(
    name: &str,
    traces: &[Trace],
    truth: f64,
    checkpoints: &[u64],
) -> [Series; 3] {
    let summary = summarize_at(traces, truth, checkpoints);
    let center = Series::from_points(
        format!("{name} mean"),
        summary.iter().map(|c| (c.cost as f64, c.error_bar.center)).collect(),
    );
    let low = Series::from_points(
        format!("{name} -1sd"),
        summary.iter().map(|c| (c.cost as f64, c.error_bar.low())).collect(),
    );
    let high = Series::from_points(
        format!("{name} +1sd"),
        summary.iter().map(|c| (c.cost as f64, c.error_bar.high())).collect(),
    );
    [center, low, high]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traces() -> Vec<Trace> {
        let mut a = Trace::new();
        a.push(100, 90.0);
        a.push(200, 105.0);
        let mut b = Trace::new();
        b.push(100, 110.0);
        b.push(200, 95.0);
        vec![a, b]
    }

    #[test]
    fn mse_series_computes_per_checkpoint() {
        let s = mse_series("x", &traces(), 100.0, &[100, 200]);
        assert_eq!(s.points.len(), 2);
        assert!((s.points[0].1 - 100.0).abs() < 1e-9); // (10² + 10²)/2
        assert!((s.points[1].1 - 25.0).abs() < 1e-9);
    }

    #[test]
    fn relerr_series_in_percent() {
        let s = relerr_series("x", &traces(), 100.0, &[100]);
        assert!((s.points[0].1 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn error_bars_bracket_the_mean() {
        let [c, lo, hi] = error_bar_series("x", &traces(), 100.0, &[200]);
        assert!(lo.points[0].1 <= c.points[0].1);
        assert!(hi.points[0].1 >= c.points[0].1);
    }
}
