//! Scale experiment: C10K-style concurrent serving (not a paper figure —
//! an engineering experiment for the repro's own roadmap). Thousands of
//! client threads, each with its own connection and estimator, run
//! against **one** loopback `hdb-server` driven by the readiness
//! reactor:
//!
//! 1. every client opens a walk session and parks — the server must hold
//!    them all live at once, and the parked connections must cost zero
//!    dispatches while idle (readiness notification, not poll-sweeping);
//! 2. every client then runs the paper's HD estimator; each run must be
//!    bit-identical to the in-process reference for its seed, and the
//!    measured wire-exchange-per-issued-query ratio must show pipelined
//!    extends (≈ 1 exchange per probe, not 2);
//! 3. the server drains everything on shutdown.
//!
//! The measurements go to `results/` as CSV and to **`BENCH_scale05.json`**
//! at the repository root.

use std::fs;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use hdb_core::UnbiasedSizeEstimator;
use hdb_interface::reactor::ReactorKind;
use hdb_interface::{HiddenDb, Query, RemoteBackend, SearchBackend, Table, TableBackend};
use hdb_server::{Server, ServerConfig};
use hdb_stats::{Figure, Series};

use crate::datasets::Datasets;
use crate::output::{emit, note};
use crate::scale::Scale;

/// Interface constant: small enough that drill-downs run deep.
const K: usize = 10;

/// Base of the per-client seed cycle (fixed: the runs are the measuring
/// instrument, not the subject).
const BASE_SEED: u64 = 20_260_808;

/// Distinct estimator seeds cycled across clients; each has one locally
/// computed reference run that every remote run must match bitwise.
const SEED_VARIANTS: u64 = 16;

/// What one client thread brings home.
struct ClientResult {
    variant: u64,
    estimate_bits: u64,
    queries: u64,
    /// Wire exchanges during the estimation phase only.
    exchanges: u64,
}

/// Connects with retry: under thousands of simultaneous connects the
/// listener backlog can momentarily overflow, which is load, not failure.
fn connect_patiently(addr: &str) -> RemoteBackend {
    let mut delay = Duration::from_millis(5);
    for _ in 0..60 {
        match RemoteBackend::connect(addr.to_string()) {
            Ok(remote) => return remote,
            Err(_) => {
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_millis(100));
            }
        }
    }
    panic!("could not connect to {addr} after 60 attempts");
}

/// Runs the C10K sweep.
///
/// # Panics
/// Panics if any client run diverges from its local reference, if the
/// server fails to hold every session concurrently, or if idle
/// connections consume dispatches — an experiment must not record
/// results from a broken stack.
pub fn run_c10k(scale: &Scale, datasets: &Datasets) {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("HDB_QUICK").is_ok_and(|v| v == "1" || v == "true");
    let sessions: usize = std::env::var("HDB_SESSIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 320 } else { 2048 });
    let passes: u64 = if quick { 3 } else { 6 };
    // Each client replays a small corpus; the subject under load is the
    // serving loop, not the evaluation kernel.
    let rows = scale.bool_rows.min(if quick { 2_000 } else { 5_000 });
    let scale = Scale { bool_rows: rows, ..*scale };
    let table: &Table = datasets.bool_iid(&scale);
    note("c10k serving: one reactor-driven hdb-server vs thousands of estimator clients");

    let config = ServerConfig {
        session_cap: (2 * sessions).max(4096),
        ..ServerConfig::default()
    };
    let reactor_requested = matches!(config.reactor, ReactorKind::Auto);
    let server = Server::bind_with(TableBackend::new(table.clone()), "127.0.0.1:0", config)
        .expect("loopback bind");
    let addr = server.addr().to_string();
    println!(
        "  server on {addr} ({} reactor{}), {sessions} clients × {passes} passes, m={rows}",
        server.reactor_name(),
        if reactor_requested { ", auto-selected" } else { "" },
    );

    // Local references, one per seed variant.
    let local = HiddenDb::new(table.clone(), K);
    let references: Vec<(u64, u64)> = (0..SEED_VARIANTS)
        .map(|v| {
            let mut est = UnbiasedSizeEstimator::hd(BASE_SEED + v).expect("valid config");
            let summary = est.run(&local, passes).expect("unlimited interface");
            (summary.estimate.to_bits(), summary.queries)
        })
        .collect();

    // Phase 1: every client connects and opens a walk session, then
    // parks at the barrier. `open` releases them into the idle window;
    // `run` releases them into estimation.
    let open = Arc::new(Barrier::new(sessions + 1));
    let run = Arc::new(Barrier::new(sessions + 1));
    let wall = Instant::now();
    let mut clients = Vec::with_capacity(sessions);
    for i in 0..sessions {
        let addr = addr.clone();
        let open = Arc::clone(&open);
        let run = Arc::clone(&run);
        let handle = std::thread::Builder::new()
            .name(format!("c10k-{i}"))
            .stack_size(512 * 1024)
            .spawn(move || {
                let variant = i as u64 % SEED_VARIANTS;
                let remote = connect_patiently(&addr);
                let walk = remote.walk_state(&Query::all());
                open.wait();
                // ... idle window: the main thread is measuring ...
                run.wait();
                drop(walk);
                let before = remote.requests_sent();
                let db = HiddenDb::over(remote, K);
                let mut est =
                    UnbiasedSizeEstimator::hd(BASE_SEED + variant).expect("valid config");
                let summary = est.run(&db, passes).expect("unlimited interface");
                ClientResult {
                    variant,
                    estimate_bits: summary.estimate.to_bits(),
                    queries: summary.queries,
                    exchanges: db.backend().requests_sent() - before,
                }
            })
            .expect("spawn client thread");
        clients.push(handle);
    }

    open.wait();
    let connect_secs = wall.elapsed().as_secs_f64();
    let held = server.session_count();
    println!(
        "  {held} walk sessions held concurrently ({connect_secs:.2}s to ramp up)"
    );
    assert!(
        held >= sessions,
        "server held only {held} of {sessions} concurrent sessions"
    );

    // Idle window: every connection is open, registered, and silent. A
    // poll-sweeping loop would keep dispatching them; the reactor must
    // dispatch exactly nothing.
    let dispatches_before = server.dispatch_count();
    std::thread::sleep(Duration::from_millis(300));
    let idle_dispatches = server.dispatch_count() - dispatches_before;
    println!("  idle 300 ms with {held} open connections: {idle_dispatches} dispatches");
    assert!(
        (idle_dispatches as usize) < sessions.div_ceil(100).max(4),
        "idle connections are being dispatched ({idle_dispatches} in 300 ms) — \
         the poll-sweep defect is back"
    );

    // Phase 2: estimation storm.
    let storm = Instant::now();
    run.wait();
    let mut total_queries: u64 = 0;
    let mut total_exchanges: u64 = 0;
    let mut divergent = 0usize;
    for handle in clients {
        let result = handle.join().expect("client thread");
        let (ref_bits, ref_queries) = references[result.variant as usize];
        if result.estimate_bits != ref_bits || result.queries != ref_queries {
            divergent += 1;
        }
        total_queries += result.queries;
        total_exchanges += result.exchanges;
    }
    let storm_secs = storm.elapsed().as_secs_f64();
    assert_eq!(divergent, 0, "{divergent} of {sessions} remote runs diverged from local");
    let exchanges_per_query = total_exchanges as f64 / total_queries as f64;
    let qps = total_queries as f64 / storm_secs;
    println!(
        "  {sessions} estimator runs in {storm_secs:.2}s: {total_queries} queries, \
         {qps:.0} q/s aggregate, {exchanges_per_query:.3} wire exchanges per issued query"
    );
    // Pre-pipelining, every drill-down step cost a standalone WalkExtend
    // round trip on top of its probe (≈ 1.5–2 exchanges per query).
    assert!(
        exchanges_per_query < 1.5,
        "wire economics regressed: {exchanges_per_query:.3} exchanges per issued query"
    );

    let frames = server.frame_count();
    let dispatches = server.dispatch_count();
    let wall_secs = wall.elapsed().as_secs_f64();
    println!(
        "  server totals: {frames} frames over {dispatches} dispatches \
         ({:.1} frames per dispatch)",
        frames as f64 / dispatches.max(1) as f64
    );

    let mut fig = Figure::new(
        format!("c10k serving, {sessions} clients, m={rows}, k={K}, {passes} passes"),
        "concurrent sessions",
        "aggregate queries per second",
    );
    fig.add(Series::from_points("aggregate_qps", vec![(held as f64, qps)]));
    fig.add(Series::from_points(
        "idle_dispatches_300ms",
        vec![(held as f64, idle_dispatches as f64)],
    ));
    emit(&fig, "scale05_c10k");

    let json = format!(
        "{{\n  \"bench\": \"scale05_c10k\",\n  \"dataset\": \"bool_iid\",\n  \
         \"rows\": {rows},\n  \"attributes\": {attrs},\n  \"k\": {K},\n  \
         \"passes\": {passes},\n  \"seed_base\": {BASE_SEED},\n  \
         \"seed_variants\": {SEED_VARIANTS},\n  \
         \"reactor\": \"{reactor}\",\n  \
         \"concurrent_sessions\": {held},\n  \
         \"bit_identical_runs\": {sessions},\n  \
         \"divergent_runs\": {divergent},\n  \
         \"idle_dispatches_300ms\": {idle_dispatches},\n  \
         \"wire_exchanges_per_issued_query\": {exchanges_per_query:.4},\n  \
         \"total_queries\": {total_queries},\n  \
         \"aggregate_queries_per_sec\": {qps:.1},\n  \
         \"ramp_up_secs\": {connect_secs:.3},\n  \
         \"storm_secs\": {storm_secs:.3},\n  \
         \"wall_secs\": {wall_secs:.3},\n  \
         \"server_frames\": {frames},\n  \"server_dispatches\": {dispatches}\n}}\n",
        attrs = table.schema().len(),
        reactor = server.reactor_name(),
    );
    match fs::write("BENCH_scale05.json", &json) {
        Ok(()) => println!("→ wrote BENCH_scale05.json\n"),
        Err(e) => eprintln!("warning: failed writing BENCH_scale05.json: {e}"),
    }
    server.shutdown();
}
