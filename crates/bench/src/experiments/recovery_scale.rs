//! Scale experiment: crash recovery (not a paper figure — an engineering
//! experiment for the repro's own roadmap). A [`PersistentBackend`] is
//! populated on real disk, "crashed" (dropped), and reopened with the
//! startup recovery path under the clock:
//!
//! 1. **WAL length sweep** — recovery wall time as the replay tail grows,
//!    with a single seed snapshot (pure WAL replay);
//! 2. **snapshot cadence sweep** — the same ingest volume checkpointed
//!    every `c` records, showing how cadence trades ingest-side snapshot
//!    work for startup replay;
//! 3. every recovered store is checked **bit-identical** to an
//!    uninterrupted in-memory run over the same corpus — a recovery bench
//!    that recovers the wrong bytes measures nothing.
//!
//! The measurements go to `results/` as CSV and to **`BENCH_scale07.json`**
//! at the repository root.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use hdb_core::UnbiasedSizeEstimator;
use hdb_interface::{HiddenDb, PersistentBackend, Schema, SyncPolicy, Table, TableBackend, Tuple};
use hdb_stats::{Figure, Series};

use crate::output::{emit, note};
use crate::scale::Scale;

/// Interface constant for the bit-identity probes.
const K: usize = 10;

/// Estimator seed (fixed: the runs are the measuring instrument, not the
/// subject).
const SEED: u64 = 20_260_808;

/// Attribute count: 2^16 distinct boolean tuples covers every sweep.
const ATTRS: usize = 16;

/// Rows baked into the seed snapshot before any WAL traffic.
const BASE_ROWS: u16 = 256;

/// What one recovery run measures.
struct RecoveryRun {
    /// Records between snapshots (`u64::MAX` = never after the seed).
    cadence: u64,
    wal_records: u64,
    replayed: u64,
    snapshots: usize,
    ingest_ms: f64,
    recovery_ms: f64,
}

/// The `i`-th distinct boolean tuple (bit decomposition).
fn tuple(i: u16) -> Tuple {
    Tuple::new((0..ATTRS).map(|b| (i >> b) & 1).collect())
}

/// The seed corpus shared by every run.
fn base_table() -> Table {
    Table::new(Schema::boolean(ATTRS), (0..BASE_ROWS).map(tuple).collect())
        .expect("distinct seed corpus")
}

/// Estimator fingerprint: estimate bits + query count of a fixed seeded
/// run — equal fingerprints mean every probe answered identically.
fn fingerprint(backend: impl hdb_interface::SearchBackend + 'static, passes: u64) -> (u64, u64) {
    let db = HiddenDb::over(backend, K);
    let mut est = UnbiasedSizeEstimator::hd(SEED).expect("valid config");
    let s = est.run(&db, passes).expect("unlimited interface");
    (s.estimate.to_bits(), s.queries)
}

/// Populates a fresh store under `dir` with `records` WAL records,
/// snapshotting every `cadence` ingests, then drops it (the "crash") and
/// reopens under the clock.
fn run_one(dir: &Path, records: u64, cadence: u64, passes: u64) -> RecoveryRun {
    let base = base_table();
    let ingest_wall = Instant::now();
    {
        let store = PersistentBackend::open_or_create(dir, SyncPolicy::EveryN(64), || {
            Ok(base_table())
        })
        .expect("create store");
        for i in 0..records {
            let idx = u16::try_from(u64::from(BASE_ROWS) + i).expect("sweep fits in u16 ids");
            store.ingest(tuple(idx)).expect("ingest");
            if (i + 1).is_multiple_of(cadence) {
                store.snapshot().expect("cadence snapshot");
            }
        }
        store.sync().expect("final sync");
    } // crash
    let ingest_ms = ingest_wall.elapsed().as_secs_f64() * 1e3;

    let wall = Instant::now();
    let store = PersistentBackend::open_or_create(dir, SyncPolicy::EveryN(64), || {
        Ok(base_table())
    })
    .expect("recover store");
    let recovery_ms = wall.elapsed().as_secs_f64() * 1e3;
    assert!(store.read_only().is_none(), "clean shutdown must recover read-write");
    let replayed = store.recovery().wal_records_applied;
    let snapshots = fs::read_dir(dir)
        .expect("data dir listable")
        .filter_map(std::result::Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "hdbs"))
        .count();

    // Bit-identity against the uninterrupted in-memory run.
    let mut tuples = base.tuples().to_vec();
    tuples.extend((0..records).map(|i| {
        tuple(u16::try_from(u64::from(BASE_ROWS) + i).expect("sweep fits in u16 ids"))
    }));
    let reference =
        TableBackend::new(Table::new(base.schema().clone(), tuples).expect("valid reference"));
    assert_eq!(
        fingerprint(Arc::new(store), passes),
        fingerprint(reference, passes),
        "recovery of {records} records (cadence {cadence}) diverged from in-memory"
    );

    RecoveryRun { cadence, wal_records: records, replayed, snapshots, ingest_ms, recovery_ms }
}

/// Runs the recovery sweep.
///
/// # Panics
/// Panics if any recovered store is read-only, diverges from the
/// in-memory reference, or the data directory cannot be created — a
/// broken durability stack must not produce a benchmark record.
pub fn run_recovery_scale(scale: &Scale) {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("HDB_QUICK").is_ok_and(|v| v == "1" || v == "true");
    let passes: u64 = if quick { 4 } else { 12 };
    let wal_lengths: &[u64] = if quick { &[200, 1_000, 4_000] } else { &[1_000, 5_000, 20_000] };
    let cadence_total: u64 = if quick { 1_000 } else { 8_000 };
    let _ = scale; // recovery cost is WAL-shaped, not corpus-shaped
    note("crash recovery: reopen-under-the-clock across WAL lengths and snapshot cadences");

    let root = std::env::temp_dir().join(format!("hdb-scale07-{}", std::process::id()));
    fs::create_dir_all(&root).expect("create bench data dir");

    // 1. Recovery time vs WAL length (seed snapshot only).
    let mut wal_runs: Vec<RecoveryRun> = Vec::new();
    for &records in wal_lengths {
        let dir: PathBuf = root.join(format!("wal{records}"));
        fs::create_dir_all(&dir).expect("create run dir");
        let run = run_one(&dir, records, u64::MAX, passes);
        assert_eq!(run.replayed, records, "seed-only run must replay the whole WAL");
        println!(
            "  wal {:>6} records: recovered in {:7.1} ms ({:.1} ms ingest+snapshot side)",
            run.wal_records, run.recovery_ms, run.ingest_ms
        );
        wal_runs.push(run);
    }

    // 2. Recovery time vs snapshot cadence at fixed ingest volume.
    let cadences: &[u64] = &[u64::MAX, cadence_total / 4, cadence_total / 16, cadence_total / 64];
    let mut cadence_runs: Vec<RecoveryRun> = Vec::new();
    for &cadence in cadences {
        let label = if cadence == u64::MAX { "never".to_owned() } else { cadence.to_string() };
        let dir: PathBuf = root.join(format!("cad{label}"));
        fs::create_dir_all(&dir).expect("create run dir");
        let run = run_one(&dir, cadence_total, cadence, passes);
        if cadence < cadence_total {
            assert!(run.replayed < cadence_total, "snapshots must shorten replay");
        }
        println!(
            "  cadence {label:>6}: {} snapshot(s), replayed {:>5}/{cadence_total}, \
             recovered in {:7.1} ms",
            run.snapshots, run.replayed, run.recovery_ms
        );
        cadence_runs.push(run);
    }

    match fs::remove_dir_all(&root) {
        Ok(()) => {}
        Err(e) => eprintln!("warning: failed cleaning {}: {e}", root.display()),
    }

    let mut fig = Figure::new(
        format!("crash recovery, k={K}, {passes} verification passes"),
        "WAL records replayed",
        "recovery wall time (ms)",
    );
    fig.add(Series::from_points(
        "recovery_ms_vs_wal",
        wal_runs.iter().map(|r| (r.wal_records as f64, r.recovery_ms)).collect(),
    ));
    fig.add(Series::from_points(
        "recovery_ms_vs_cadence_replay",
        cadence_runs.iter().map(|r| (r.replayed as f64, r.recovery_ms)).collect(),
    ));
    emit(&fig, "scale07_recovery");

    let wal_json = wal_runs
        .iter()
        .map(|r| {
            format!(
                "    {{ \"wal_records\": {}, \"replayed\": {}, \
                 \"ingest_ms\": {:.1}, \"recovery_ms\": {:.1} }}",
                r.wal_records, r.replayed, r.ingest_ms, r.recovery_ms
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let cadence_json = cadence_runs
        .iter()
        .map(|r| {
            let cadence = if r.cadence == u64::MAX {
                "null".to_owned()
            } else {
                r.cadence.to_string()
            };
            format!(
                "    {{ \"cadence\": {cadence}, \"snapshots\": {}, \"replayed\": {}, \
                 \"ingest_ms\": {:.1}, \"recovery_ms\": {:.1} }}",
                r.snapshots, r.replayed, r.ingest_ms, r.recovery_ms
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"scale07_recovery\",\n  \"dataset\": \"boolean bit-decomposition\",\n  \
         \"attributes\": {ATTRS},\n  \"base_rows\": {BASE_ROWS},\n  \"k\": {K},\n  \
         \"passes\": {passes},\n  \"seed\": {SEED},\n  \"fsync\": \"every=64\",\n  \
         \"bit_identical\": true,\n  \
         \"wal_length_sweep\": [\n{wal_json}\n  ],\n  \
         \"snapshot_cadence_sweep\": [\n{cadence_json}\n  ]\n}}\n"
    );
    match fs::write("BENCH_scale07.json", &json) {
        Ok(()) => println!("→ wrote BENCH_scale07.json\n"),
        Err(e) => eprintln!("warning: failed writing BENCH_scale07.json: {e}"),
    }
}
