//! Trial runners: drive an estimator against a hidden database for many
//! independent trials, producing per-trial [`Trace`]s of the running
//! estimate as a function of query cost.

use hdb_core::baselines::brute_force::BruteForceSampler;
use hdb_core::baselines::capture_recapture::CaptureRecapture;
use hdb_core::baselines::hidden_db_sampler::HiddenDbSampler;
use hdb_core::{AggregateSpec, EstimatorConfig, UnbiasedAggEstimator};
use hdb_interface::{HiddenDb, TopKInterface};
use hdb_stats::Trace;

/// Shared trial parameters.
#[derive(Clone, Debug)]
pub struct TrialSpec {
    /// Independent trials.
    pub trials: u64,
    /// Query budget per trial (the trace extends until the first pass
    /// that ends at or beyond this spend).
    pub max_queries: u64,
    /// Base RNG seed; trial `i` uses `base_seed + i`.
    pub base_seed: u64,
}

/// Runs `spec.trials` independent trials of an `HD-UNBIASED`-family
/// estimator and returns one trace per trial.
///
/// # Panics
/// Panics if the estimator construction or a pass fails for a reason
/// other than budget exhaustion — experiment configurations are static
/// and must be valid.
#[must_use]
pub fn run_agg_trials(
    db: &HiddenDb,
    config: &EstimatorConfig,
    aggregate: &AggregateSpec,
    spec: &TrialSpec,
) -> Vec<Trace> {
    let mut traces = Vec::with_capacity(spec.trials as usize);
    for trial in 0..spec.trials {
        let mut est = UnbiasedAggEstimator::new(
            config.clone(),
            aggregate.clone(),
            spec.base_seed + trial,
        )
        .expect("experiment configurations are valid");
        let mut trace = Trace::new();
        while est.queries_spent() < spec.max_queries {
            est.pass(db).expect("experiment passes must succeed");
            trace.push(
                est.queries_spent(),
                est.estimate().expect("pass recorded an estimate"),
            );
        }
        traces.push(trace);
    }
    traces
}

/// Runs capture-&-recapture trials over the `HIDDEN-DB-SAMPLER`,
/// recording the Chapman estimate (finite from the first capture;
/// Lincoln–Petersen is undefined until the samples overlap) after each
/// capture.
#[must_use]
pub fn run_capture_recapture_trials(db: &HiddenDb, spec: &TrialSpec) -> Vec<Trace> {
    let mut traces = Vec::with_capacity(spec.trials as usize);
    for trial in 0..spec.trials {
        let mut sampler = HiddenDbSampler::new(spec.base_seed + trial);
        let mut cr = CaptureRecapture::new();
        let mut trace = Trace::new();
        let start = db.queries_issued();
        loop {
            let spent = db.queries_issued() - start;
            if spent >= spec.max_queries {
                break;
            }
            let remaining = spec.max_queries - spent;
            match sampler
                .try_sample_within(db, remaining)
                .expect("experiment passes must succeed")
            {
                Some(s) => {
                    cr.capture(s.tuple.id);
                    let est = cr.estimate();
                    let value = est.lincoln_petersen.unwrap_or(est.chapman);
                    trace.push(db.queries_issued() - start, value);
                }
                None => break,
            }
        }
        traces.push(trace);
    }
    traces
}

/// Runs brute-force-sampler trials, recording the running size estimate
/// after every draw.
#[must_use]
pub fn run_brute_force_trials(db: &HiddenDb, spec: &TrialSpec) -> Vec<Trace> {
    let mut traces = Vec::with_capacity(spec.trials as usize);
    for trial in 0..spec.trials {
        let mut s = BruteForceSampler::new(spec.base_seed + trial);
        let mut trace = Trace::new();
        for _ in 0..spec.max_queries {
            s.step(db).expect("experiment passes must succeed");
            trace.push(s.draws(), s.size_estimate(db).expect("draws > 0"));
        }
        traces.push(trace);
    }
    traces
}

/// Final per-trial estimates and query costs after exactly `passes`
/// estimation passes (for the m-, k-, r- and D_UB-sweep figures, which
/// report one MSE/cost point per configuration).
#[must_use]
pub fn run_fixed_passes(
    db: &HiddenDb,
    config: &EstimatorConfig,
    aggregate: &AggregateSpec,
    trials: u64,
    passes: u64,
    base_seed: u64,
) -> FixedPassResult {
    let mut estimates = Vec::with_capacity(trials as usize);
    let mut costs = Vec::with_capacity(trials as usize);
    for trial in 0..trials {
        let mut est =
            UnbiasedAggEstimator::new(config.clone(), aggregate.clone(), base_seed + trial)
                .expect("experiment configurations are valid");
        let summary = est.run(db, passes).expect("experiment passes must succeed");
        estimates.push(summary.estimate);
        costs.push(summary.queries);
    }
    FixedPassResult { estimates, costs }
}

/// Result of [`run_fixed_passes`].
#[derive(Clone, Debug)]
pub struct FixedPassResult {
    /// Final (mean-of-passes) estimate per trial.
    pub estimates: Vec<f64>,
    /// Query cost per trial.
    pub costs: Vec<u64>,
}

impl FixedPassResult {
    /// Mean query cost across trials.
    #[must_use]
    pub fn mean_cost(&self) -> f64 {
        if self.costs.is_empty() {
            return 0.0;
        }
        self.costs.iter().sum::<u64>() as f64 / self.costs.len() as f64
    }

    /// MSE of the final estimates against `truth`.
    #[must_use]
    pub fn mse(&self, truth: f64) -> f64 {
        if self.estimates.is_empty() {
            return 0.0;
        }
        self.estimates.iter().map(|e| (e - truth).powi(2)).sum::<f64>()
            / self.estimates.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdb_interface::{Query, Schema, Table, Tuple};

    fn db() -> HiddenDb {
        let tuples: Vec<Tuple> =
            (0..50u16).map(|i| Tuple::new((0..7).map(|b| (i >> b) & 1).collect())).collect();
        HiddenDb::new(Table::new(Schema::boolean(7), tuples).unwrap(), 2)
    }

    #[test]
    fn agg_trials_produce_requested_traces() {
        let db = db();
        let spec = TrialSpec { trials: 3, max_queries: 60, base_seed: 1 };
        let traces =
            run_agg_trials(&db, &EstimatorConfig::plain(), &AggregateSpec::database_size(), &spec);
        assert_eq!(traces.len(), 3);
        for t in &traces {
            assert!(t.total_cost() >= 60);
            assert!(t.final_estimate().unwrap() > 0.0);
        }
    }

    #[test]
    fn trials_are_independent_but_deterministic() {
        let db = db();
        let spec = TrialSpec { trials: 2, max_queries: 40, base_seed: 9 };
        let a = run_agg_trials(&db, &EstimatorConfig::plain(), &AggregateSpec::database_size(), &spec);
        let b = run_agg_trials(&db, &EstimatorConfig::plain(), &AggregateSpec::database_size(), &spec);
        assert_eq!(a[0].points(), b[0].points());
        assert_ne!(a[0].points(), a[1].points());
    }

    #[test]
    fn capture_recapture_traces_respect_budget() {
        let db = db();
        let spec = TrialSpec { trials: 2, max_queries: 80, base_seed: 3 };
        let traces = run_capture_recapture_trials(&db, &spec);
        assert_eq!(traces.len(), 2);
        for t in &traces {
            assert!(!t.points().is_empty());
        }
    }

    #[test]
    fn fixed_passes_summarises() {
        let db = db();
        let r = run_fixed_passes(
            &db,
            &EstimatorConfig::plain(),
            &AggregateSpec::count(Query::all()),
            4,
            20,
            7,
        );
        assert_eq!(r.estimates.len(), 4);
        assert!(r.mean_cost() > 0.0);
        assert!(r.mse(50.0).is_finite());
    }
}
