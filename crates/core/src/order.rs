//! Attribute ordering strategies for the query tree.
//!
//! The paper (§5.1) recommends arranging attributes in *decreasing fanout*
//! order from root to leaf: with smart backtracking the expected number of
//! branches tested per node (Eq. 2) shrinks when high-fanout attributes
//! sit near the top, where the database is dense and few branches
//! underflow. The alternatives exist for the ablation bench.

use hdb_interface::{AttrId, Schema};

use crate::error::{EstimatorError, Result};

/// How to order attributes into query-tree levels.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum AttributeOrder {
    /// Decreasing fanout (the paper's recommendation, §5.1).
    #[default]
    FanoutDescending,
    /// Increasing fanout (worst case for smart backtracking; ablation).
    FanoutAscending,
    /// As declared in the schema.
    SchemaOrder,
    /// An explicit order. Must be a permutation of a *subset* of
    /// attribute ids; attributes not listed are excluded from the walk.
    Custom(Vec<AttrId>),
}

impl AttributeOrder {
    /// Resolves the order into concrete levels over `schema`, excluding
    /// any attribute in `fixed` (attributes already constrained by a
    /// selection condition).
    ///
    /// # Errors
    /// Returns [`EstimatorError::InvalidConfig`] if a custom order
    /// references an unknown attribute or repeats one.
    pub fn resolve(&self, schema: &Schema, fixed: &[AttrId]) -> Result<Vec<AttrId>> {
        let base: Vec<AttrId> = match self {
            Self::FanoutDescending => schema.fanout_descending_order(),
            Self::FanoutAscending => {
                let mut ids = schema.fanout_descending_order();
                ids.reverse();
                ids
            }
            Self::SchemaOrder => (0..schema.len()).collect(),
            Self::Custom(ids) => {
                for (i, &id) in ids.iter().enumerate() {
                    if id >= schema.len() {
                        return Err(EstimatorError::InvalidConfig(format!(
                            "custom order references attribute {id} but schema has {}",
                            schema.len()
                        )));
                    }
                    if ids[..i].contains(&id) {
                        return Err(EstimatorError::InvalidConfig(format!(
                            "custom order repeats attribute {id}"
                        )));
                    }
                }
                ids.clone()
            }
        };
        Ok(base.into_iter().filter(|id| !fixed.contains(id)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdb_interface::Attribute;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::boolean("a"),
            Attribute::categorical("b", ["1", "2", "3", "4"]).unwrap(),
            Attribute::categorical("c", ["x", "y", "z"]).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn descending_puts_large_fanout_first() {
        let order = AttributeOrder::FanoutDescending.resolve(&schema(), &[]).unwrap();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn ascending_reverses() {
        let order = AttributeOrder::FanoutAscending.resolve(&schema(), &[]).unwrap();
        assert_eq!(order, vec![0, 2, 1]);
    }

    #[test]
    fn schema_order_is_identity() {
        let order = AttributeOrder::SchemaOrder.resolve(&schema(), &[]).unwrap();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn fixed_attributes_excluded() {
        let order = AttributeOrder::FanoutDescending.resolve(&schema(), &[1]).unwrap();
        assert_eq!(order, vec![2, 0]);
    }

    #[test]
    fn custom_validated() {
        assert!(AttributeOrder::Custom(vec![0, 3]).resolve(&schema(), &[]).is_err());
        assert!(AttributeOrder::Custom(vec![0, 0]).resolve(&schema(), &[]).is_err());
        let order = AttributeOrder::Custom(vec![2, 0]).resolve(&schema(), &[]).unwrap();
        assert_eq!(order, vec![2, 0]);
    }
}
