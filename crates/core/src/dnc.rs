//! Divide-&-conquer (paper §4.2): partition the query tree into subtrees
//! of bounded subdomain size `D_UB`, run `r` drill-downs per subtree, and
//! recurse on every *bottom-overflow* node discovered.
//!
//! ## Estimator form (a DESIGN.md decision)
//!
//! The paper's Eq. (9)–(10) presents the estimate as a sum over the *set*
//! of captured top-valid nodes with `π(q) = r·p(q)·π(q_R)`. Read over
//! distinct nodes that form is only asymptotically unbiased (a node's
//! capture probability is `1 − (1 − p)^r`, not `r·p`). We implement the
//! equivalent **recursive conditional-HT** form, which is exactly
//! unbiased at every `r`:
//!
//! ```text
//! m̂(R) = (1/r) Σ_{i=1..r} X_i,
//! X_i  = value(q_i)/p(q_i)       if walk i ends at top-valid q_i
//!      = m̂(q_BO)/p(q_BO)        if walk i ends at bottom-overflow q_BO
//! ```
//!
//! Induction over subtree depth gives `E[m̂(R)] = mass(R)`: conditioned
//! on the weight state, each walk's HT term has expectation
//! `Σ_q p(q)·value(q)/p(q)` over the subtree's terminals, and recursive
//! estimates are independent of which walk hit them. Repeated
//! bottom-overflow hits **reuse** one recursive estimate (memoised per
//! pass) — reuse preserves expectation because the recursion's fresh
//! randomness is independent of the hit count, and it saves the paper's
//! intended queries.

use std::collections::BTreeMap;

use hdb_interface::{AttrId, Query, ReturnedTuple, Schema, TopKInterface, WalkSession};
use rand::Rng;

use crate::error::Result;
use crate::walk::{
    drill_down_session, BacktrackStrategy, PathStep, WalkTerminal, WeightProvider,
};

/// Splits `levels` into consecutive subtree chunks, each with domain size
/// (product of fanouts) at most `dub` but always at least one level.
///
/// This is the paper's categorical partitioning rule (§4.2.2): keep a
/// roughly constant subdomain size per subtree instead of a fixed level
/// count.
#[must_use]
pub fn partition_levels(schema: &Schema, levels: &[AttrId], dub: u64) -> Vec<Vec<AttrId>> {
    let mut chunks = Vec::new();
    let mut rest = levels;
    while !rest.is_empty() {
        let take = first_chunk_len(schema, rest, dub);
        chunks.push(rest[..take].to_vec());
        rest = &rest[take..];
    }
    chunks
}

/// Length of the first subtree chunk of `levels` under bound `dub`.
///
/// # Panics
/// Panics if `levels` is empty.
#[must_use]
pub fn first_chunk_len(schema: &Schema, levels: &[AttrId], dub: u64) -> usize {
    assert!(!levels.is_empty(), "cannot chunk an empty level list");
    let mut product: u128 = 1;
    let mut take = 0usize;
    for &attr in levels {
        product = product.saturating_mul(schema.fanout(attr) as u128);
        if take > 0 && product > u128::from(dub) {
            break;
        }
        take += 1;
    }
    take
}

/// One full divide-&-conquer estimation pass below an overflowing root.
///
/// * `root` — the subtree root query; **must overflow** (the caller
///   handles valid/underflow roots exactly).
/// * `levels` — the unconstrained attributes, in tree order.
/// * `r` — drill-downs per subtree; `dub` — max subdomain size.
/// * `measure` — terminal value of a top-valid node (tuple count for
///   COUNT/size, attribute sum for SUM).
///
/// Returns the unbiased estimate of the total measure below `root`.
///
/// # Errors
/// Propagates interface errors; on budget exhaustion the pass is aborted
/// and no partial value is returned (the caller's running mean over
/// completed passes is unaffected).
#[allow(clippy::too_many_arguments)]
pub fn estimate_pass<I, W, R, F>(
    iface: &I,
    root: &Query,
    levels: &[AttrId],
    r: usize,
    dub: u64,
    weights: &W,
    measure: &F,
    rng: &mut R,
) -> Result<f64>
where
    I: TopKInterface,
    W: WeightProvider + ?Sized,
    R: Rng + ?Sized,
    F: Fn(&[ReturnedTuple]) -> f64,
{
    estimate_pass_with(iface, root, levels, r, dub, weights, measure, BacktrackStrategy::Smart, rng)
}

/// [`estimate_pass`] with an explicit backtracking strategy.
///
/// # Errors
/// Same contract as [`estimate_pass`].
#[allow(clippy::too_many_arguments)]
pub fn estimate_pass_with<I, W, R, F>(
    iface: &I,
    root: &Query,
    levels: &[AttrId],
    r: usize,
    dub: u64,
    weights: &W,
    measure: &F,
    strategy: BacktrackStrategy,
    rng: &mut R,
) -> Result<f64>
where
    I: TopKInterface,
    W: WeightProvider + ?Sized,
    R: Rng + ?Sized,
    F: Fn(&[ReturnedTuple]) -> f64,
{
    let mut memo: BTreeMap<Vec<PathStep>, f64> = BTreeMap::new();
    // One incremental walk session serves the whole pass: the divide-&-
    // conquer recursion moves it with free extend/retract steps, and
    // every probe inside costs one AND over the parent's match set.
    let mut sess = iface.walk_session(root.clone())?;
    estimate_subtree(&mut sess, &[], levels, r, dub, weights, measure, strategy, rng, &mut memo)
}

/// The paper's Eq. (9)–(10) taken **literally**: accumulate over the
/// *set* of distinct captured top-valid nodes with
/// `π(q) = r·p(q)·π(q_R)`, recursing once per distinct bottom-overflow
/// node.
///
/// This form is kept for the `abl01_set_vs_recursive_dnc` ablation: it
/// undercounts nodes whose per-subtree selection probability `p` is not
/// small relative to `1/r` (capture probability `1−(1−p)^r < r·p`), so
/// it carries a small negative bias that the recursive form
/// ([`estimate_pass`]) does not. For the paper's parameter regimes
/// (`p ≪ 1/r`) the two coincide to within noise.
///
/// # Errors
/// Propagates interface errors.
#[allow(clippy::too_many_arguments)]
pub fn estimate_pass_paper_form<I, W, R, F>(
    iface: &I,
    root: &Query,
    levels: &[AttrId],
    r: usize,
    dub: u64,
    weights: &W,
    measure: &F,
    rng: &mut R,
) -> Result<f64>
where
    I: TopKInterface,
    W: WeightProvider + ?Sized,
    R: Rng + ?Sized,
    F: Fn(&[ReturnedTuple]) -> f64,
{
    let mut total = 0.0;
    let mut sess = iface.walk_session(root.clone())?;
    paper_form_subtree(&mut sess, &[], levels, r, dub, weights, measure, rng, 1.0, &mut total)?;
    Ok(total)
}

/// Recursive worker for [`estimate_pass_paper_form`]: `pi_root` is
/// `π(q_R)` of this subtree's root (1 at the top). The session enters
/// and leaves positioned at the subtree root.
#[allow(clippy::too_many_arguments)]
fn paper_form_subtree<W, R, F>(
    sess: &mut WalkSession<'_>,
    prefix: &[PathStep],
    levels: &[AttrId],
    r: usize,
    dub: u64,
    weights: &W,
    measure: &F,
    rng: &mut R,
    pi_root: f64,
    total: &mut f64,
) -> Result<()>
where
    W: WeightProvider + ?Sized,
    R: Rng + ?Sized,
    F: Fn(&[ReturnedTuple]) -> f64,
{
    assert!(!levels.is_empty(), "an overflowing node cannot be fully specified");
    let take = first_chunk_len(sess.schema(), levels, dub);
    let (chunk, rest) = levels.split_at(take);

    // Distinct terminals captured by the r drill-downs over this subtree.
    // BTreeMaps, not HashMaps: the loops below consume the shared RNG
    // (recursion) and fold f64s in iteration order, so that order must be
    // a pure function of the keys for seeded runs to reproduce.
    let mut top_valid: BTreeMap<Vec<PathStep>, (f64, f64)> = BTreeMap::new(); // path → (p, value)
    let mut bottom: BTreeMap<Vec<PathStep>, (f64, Vec<PathStep>)> = BTreeMap::new(); // path → (p, steps)
    for _ in 0..r {
        let walk =
            drill_down_session(sess, prefix, chunk, weights, BacktrackStrategy::Smart, rng)?;
        let mut path = prefix.to_vec();
        path.extend(walk.steps());
        match &walk.terminal {
            WalkTerminal::TopValid { tuples } => {
                let value = measure(tuples);
                weights.record_walk(prefix, &walk.levels, value);
                top_valid.insert(path, (walk.probability, value));
            }
            WalkTerminal::BottomOverflow => {
                let steps = walk.steps();
                bottom.insert(path, (walk.probability, steps));
            }
        }
    }
    for (p, value) in top_valid.values() {
        // π(q) = r · p(q | subtree) · π(q_R)
        *total += value / (r as f64 * p * pi_root);
    }
    for (path, (p, steps)) in &bottom {
        let pi = r as f64 * p * pi_root;
        for &(attr, value) in steps {
            sess.extend(attr, value);
        }
        paper_form_subtree(sess, path, rest, r, dub, weights, measure, rng, pi, total)?;
        for _ in steps {
            sess.retract();
        }
    }
    Ok(())
}

/// Recursive worker: estimates the measure mass below the session's
/// current node (an overflowing node at global path `prefix`) over
/// `levels`. The session enters and leaves positioned at that node;
/// recursing below a bottom-overflow terminal is a sequence of free
/// `extend` steps (one AND each) rather than a re-evaluated query chain.
#[allow(clippy::too_many_arguments)]
fn estimate_subtree<W, R, F>(
    sess: &mut WalkSession<'_>,
    prefix: &[PathStep],
    levels: &[AttrId],
    r: usize,
    dub: u64,
    weights: &W,
    measure: &F,
    strategy: BacktrackStrategy,
    rng: &mut R,
    memo: &mut BTreeMap<Vec<PathStep>, f64>,
) -> Result<f64>
where
    W: WeightProvider + ?Sized,
    R: Rng + ?Sized,
    F: Fn(&[ReturnedTuple]) -> f64,
{
    assert!(
        !levels.is_empty(),
        "an overflowing node cannot be fully specified: duplicate-free data \
         guarantees at most one tuple per point query"
    );
    let take = first_chunk_len(sess.schema(), levels, dub);
    let (chunk, rest) = levels.split_at(take);

    let mut sum = 0.0;
    for _ in 0..r {
        let walk = drill_down_session(sess, prefix, chunk, weights, strategy, rng)?;
        match &walk.terminal {
            WalkTerminal::TopValid { tuples } => {
                let value = measure(tuples);
                sum += value / walk.probability;
                weights.record_walk(prefix, &walk.levels, value);
            }
            WalkTerminal::BottomOverflow => {
                let mut path = prefix.to_vec();
                path.extend(walk.steps());
                let sub_estimate = match memo.get(&path) {
                    Some(&v) => v,
                    None => {
                        for level in &walk.levels {
                            sess.extend(level.attr, level.value);
                        }
                        let v = estimate_subtree(
                            sess, &path, rest, r, dub, weights, measure, strategy, rng, memo,
                        )?;
                        for _ in &walk.levels {
                            sess.retract();
                        }
                        memo.insert(path.clone(), v);
                        v
                    }
                };
                sum += sub_estimate / walk.probability;
                weights.record_walk(prefix, &walk.levels, sub_estimate);
            }
        }
    }
    Ok(sum / r as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk::UniformWeights;
    use hdb_interface::{Attribute, HiddenDb, Schema, Table, Tuple};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema_mixed() -> Schema {
        Schema::new(vec![
            Attribute::boolean("a"),
            Attribute::boolean("b"),
            Attribute::boolean("c"),
            Attribute::categorical("d", ["1", "2", "3", "4", "5"]).unwrap(),
            Attribute::boolean("e"),
        ])
        .unwrap()
    }

    #[test]
    fn partitioning_matches_paper_example() {
        // Paper §4.2.2: fanouts (2,2,2,2,5), D_UB = 10 → chunks
        // {A1,A2,A3} (domain 8) and {A4,A5} (domain 10).
        let schema = Schema::new(vec![
            Attribute::boolean("A1"),
            Attribute::boolean("A2"),
            Attribute::boolean("A3"),
            Attribute::boolean("A4"),
            Attribute::categorical("A5", ["1", "2", "3", "4", "5"]).unwrap(),
        ])
        .unwrap();
        let chunks = partition_levels(&schema, &[0, 1, 2, 3, 4], 10);
        assert_eq!(chunks, vec![vec![0, 1, 2], vec![3, 4]]);
    }

    #[test]
    fn oversized_single_level_still_forms_a_chunk() {
        let schema = schema_mixed();
        // attribute 3 has fanout 5 > dub 2 but must still be taken alone
        let chunks = partition_levels(&schema, &[3, 0, 1], 2);
        assert_eq!(chunks, vec![vec![3], vec![0], vec![1]]);
    }

    #[test]
    fn huge_dub_keeps_everything_in_one_chunk() {
        let schema = schema_mixed();
        let chunks = partition_levels(&schema, &[0, 1, 2, 3, 4], u64::MAX);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].len(), 5);
    }

    #[test]
    fn dnc_estimate_is_unbiased_on_small_db() {
        // 12 distinct tuples over the mixed schema; k = 1 forces deep
        // drill-downs across chunk boundaries.
        let schema = schema_mixed();
        let tuples: Vec<Tuple> = vec![
            vec![0, 0, 0, 0, 0],
            vec![0, 0, 0, 0, 1],
            vec![0, 0, 1, 2, 0],
            vec![0, 1, 0, 3, 1],
            vec![0, 1, 1, 4, 0],
            vec![1, 0, 0, 0, 0],
            vec![1, 0, 1, 1, 1],
            vec![1, 1, 0, 2, 0],
            vec![1, 1, 1, 3, 1],
            vec![1, 1, 1, 4, 1],
            vec![0, 0, 0, 1, 0],
            vec![1, 0, 0, 4, 0],
        ]
        .into_iter()
        .map(Tuple::new)
        .collect();
        let m = tuples.len() as f64;
        let db = HiddenDb::new(Table::new(schema, tuples).unwrap(), 1);
        let mut rng = StdRng::seed_from_u64(99);
        let measure = |ts: &[hdb_interface::ReturnedTuple]| ts.len() as f64;

        let passes = 4000;
        let mut sum = 0.0;
        for _ in 0..passes {
            sum += estimate_pass(
                &db,
                &Query::all(),
                &[0, 1, 2, 3, 4],
                2,
                6,
                &UniformWeights,
                &measure,
                &mut rng,
            )
            .unwrap();
        }
        let mean = sum / f64::from(passes);
        assert!((mean - m).abs() < 0.35, "D&C mean {mean} should be ≈ {m}");
    }

    #[test]
    fn r1_with_full_dub_equals_plain_walk_distribution() {
        // With r = 1 and dub = ∞ a pass is exactly one plain drill-down.
        let schema = schema_mixed();
        let tuples: Vec<Tuple> = vec![
            vec![0, 0, 0, 0, 0],
            vec![0, 1, 0, 2, 1],
            vec![1, 0, 1, 3, 0],
            vec![1, 1, 1, 4, 1],
        ]
        .into_iter()
        .map(Tuple::new)
        .collect();
        let db = HiddenDb::new(Table::new(schema, tuples).unwrap(), 1);
        let mut rng = StdRng::seed_from_u64(5);
        let measure = |ts: &[hdb_interface::ReturnedTuple]| ts.len() as f64;
        let mut sum = 0.0;
        let passes = 3000;
        for _ in 0..passes {
            sum += estimate_pass(
                &db,
                &Query::all(),
                &[0, 1, 2, 3, 4],
                1,
                u64::MAX,
                &UniformWeights,
                &measure,
                &mut rng,
            )
            .unwrap();
        }
        let mean = sum / f64::from(passes);
        assert!((mean - 4.0).abs() < 0.2, "mean {mean} should be ≈ 4");
    }

    #[test]
    fn paper_form_bias_is_negative_and_bounded() {
        // The recursive form is exactly unbiased; the set form carries a
        // negative bias that grows with p·r. 60 tuples over 8 bool attrs.
        let schema = Schema::boolean(8);
        let table = {
            let tuples: Vec<Tuple> = (0..60u16)
                .map(|i| Tuple::new((0..8).map(|b| (i >> b) & 1).collect()))
                .collect();
            Table::new(schema, tuples).unwrap()
        };
        let m = table.len() as f64;
        let db = HiddenDb::new(table, 1);
        let mut rng = StdRng::seed_from_u64(31);
        let measure = |ts: &[hdb_interface::ReturnedTuple]| ts.len() as f64;
        let levels: Vec<usize> = (0..8).collect();
        let passes = 1500;
        let (mut rec, mut paper) = (0.0, 0.0);
        for _ in 0..passes {
            rec += estimate_pass(&db, &Query::all(), &levels, 2, 8, &UniformWeights, &measure, &mut rng)
                .unwrap();
            paper += estimate_pass_paper_form(
                &db,
                &Query::all(),
                &levels,
                2,
                8,
                &UniformWeights,
                &measure,
                &mut rng,
            )
            .unwrap();
        }
        let rec = rec / f64::from(passes);
        let paper = paper / f64::from(passes);
        assert!((rec - m).abs() < 0.06 * m, "recursive mean {rec} vs m {m}");
        // the set form undercounts whenever p is not ≪ 1/r; on this dense
        // little tree the bias is visible but bounded, and always downward
        assert!(paper < m, "paper-form bias must be negative (mean {paper})");
        assert!((paper - m).abs() < 0.2 * m, "paper-form mean {paper} vs m {m}");
    }

    #[test]
    fn paper_form_is_negatively_biased_when_p_is_large() {
        // Degenerate regime: a 2-level tree where each top-valid node has
        // large p relative to 1/r → set-form undercounts, recursive
        // form does not.
        let schema = Schema::boolean(3);
        let tuples: Vec<Tuple> =
            (0..8u16).map(|i| Tuple::new(vec![i & 1, (i >> 1) & 1, (i >> 2) & 1])).collect();
        let db = HiddenDb::new(Table::new(schema, tuples).unwrap(), 1);
        let mut rng = StdRng::seed_from_u64(77);
        let measure = |ts: &[hdb_interface::ReturnedTuple]| ts.len() as f64;
        let passes = 6000;
        let (mut rec, mut paper) = (0.0, 0.0);
        for _ in 0..passes {
            rec += estimate_pass(&db, &Query::all(), &[0, 1, 2], 4, 2, &UniformWeights, &measure, &mut rng)
                .unwrap();
            paper += estimate_pass_paper_form(
                &db,
                &Query::all(),
                &[0, 1, 2],
                4,
                2,
                &UniformWeights,
                &measure,
                &mut rng,
            )
            .unwrap();
        }
        let rec = rec / f64::from(passes);
        let paper = paper / f64::from(passes);
        assert!((rec - 8.0).abs() < 0.15, "recursive mean {rec} should be 8");
        assert!(paper < 7.7, "paper-form mean {paper} should visibly undercount here");
    }

    #[test]
    fn simple_backtracking_is_unbiased_but_costlier() {
        let schema = Schema::new(vec![
            Attribute::categorical("a", ["1", "2", "3", "4", "5", "6"]).unwrap(),
            Attribute::categorical("b", ["x", "y", "z"]).unwrap(),
            Attribute::boolean("c"),
        ])
        .unwrap();
        let table = hdb_datagen::uniform_table(&schema, 15, 3).unwrap();
        let m = table.len() as f64;
        let db = HiddenDb::new(table, 1);
        let measure = |ts: &[hdb_interface::ReturnedTuple]| ts.len() as f64;
        let levels = [0usize, 1, 2];

        let mut rng = StdRng::seed_from_u64(5);
        let run = |strategy: BacktrackStrategy, rng: &mut StdRng| -> (f64, u64) {
            let before = hdb_interface::TopKInterface::queries_issued(&db);
            let passes = 4000;
            let mut sum = 0.0;
            for _ in 0..passes {
                sum += estimate_pass_with(
                    &db,
                    &Query::all(),
                    &levels,
                    1,
                    u64::MAX,
                    &UniformWeights,
                    &measure,
                    strategy,
                    rng,
                )
                .unwrap();
            }
            let cost = hdb_interface::TopKInterface::queries_issued(&db) - before;
            (sum / f64::from(passes), cost)
        };
        let (smart_mean, smart_cost) = run(BacktrackStrategy::Smart, &mut rng);
        let (simple_mean, simple_cost) = run(BacktrackStrategy::Simple, &mut rng);
        assert!((smart_mean - m).abs() < 0.05 * m, "smart mean {smart_mean}");
        assert!((simple_mean - m).abs() < 0.05 * m, "simple mean {simple_mean}");
        assert!(
            simple_cost > smart_cost,
            "simple backtracking ({simple_cost}) must cost more than smart ({smart_cost})"
        );
    }

    #[test]
    fn sum_measure_is_unbiased() {
        // measure = sum of attribute "d" numeric values (identity 0..4)
        let schema = Schema::new(vec![
            Attribute::boolean("a"),
            Attribute::boolean("b"),
            Attribute::numeric_buckets("d", 5).unwrap(),
        ])
        .unwrap();
        let tuples: Vec<Tuple> = vec![
            vec![0, 0, 0],
            vec![0, 0, 4],
            vec![0, 1, 2],
            vec![1, 0, 3],
            vec![1, 1, 1],
            vec![1, 1, 4],
        ]
        .into_iter()
        .map(Tuple::new)
        .collect();
        let truth: f64 = 0.0 + 4.0 + 2.0 + 3.0 + 1.0 + 4.0;
        let db = HiddenDb::new(Table::new(schema, tuples).unwrap(), 1);
        let mut rng = StdRng::seed_from_u64(17);
        let measure = |ts: &[hdb_interface::ReturnedTuple]| -> f64 {
            ts.iter().map(|t| f64::from(t.tuple.value(2))).sum()
        };
        let mut sum = 0.0;
        let passes = 5000;
        for _ in 0..passes {
            sum += estimate_pass(
                &db,
                &Query::all(),
                &[2, 0, 1],
                2,
                5,
                &UniformWeights,
                &measure,
                &mut rng,
            )
            .unwrap();
        }
        let mean = sum / f64::from(passes);
        assert!((mean - truth).abs() < truth * 0.05, "SUM mean {mean} should be ≈ {truth}");
    }
}
