//! The paper's parameter-setting procedure (§5.1), automated.
//!
//! > "to perform HD-UNBIASED-SIZE over a hidden database, one should
//! > first determine `D_UB` […]. Then, starting from `r = 2`, one can
//! > gradually increase the budget `r` until reaching the limit on the
//! > number of queries issuable to the hidden database."
//!
//! [`recommend_dub`] picks a subtree bound that keeps every attribute
//! whole (no attribute's fanout may exceed it, or subtrees degenerate to
//! single oversized levels) with a little headroom so small-fanout
//! attributes pack together; [`adaptive_estimate`] then escalates `r`
//! in rounds until the client-side query budget is spent, averaging the
//! per-pass estimates across rounds (every pass is individually unbiased
//! whatever `r` it ran under, so the combined mean is unbiased too).

use hdb_interface::{Schema, TopKInterface};

use crate::agg::{AggEstimate, AggregateSpec, UnbiasedAggEstimator};
use crate::config::EstimatorConfig;
use crate::error::Result;

/// Default headroom multiplier applied to the largest fanout.
const DUB_HEADROOM: u64 = 2;

/// Recommends a subtree domain bound for a schema: the largest attribute
/// fanout with ×2 headroom, floored at the paper's smallest working value
/// (16). Every subtree then spans at least one full attribute and small
/// attributes pack a few levels deep — the regime Figures 16/17 show to
/// behave well.
#[must_use]
pub fn recommend_dub(schema: &Schema) -> u64 {
    let max_fanout = (0..schema.len()).map(|a| schema.fanout(a) as u64).max().unwrap_or(2);
    (max_fanout * DUB_HEADROOM).max(16)
}

/// Escalation schedule: passes to run at each `r` before moving on.
const PASSES_PER_ROUND: u64 = 3;
/// Largest `r` the escalation will reach (the paper's experiments stop
/// at `r = 8`; beyond that the cost per pass grows with no measured
/// MSE payoff — §6.2's r-tradeoff table).
const MAX_R: usize = 8;

/// Runs the §5.1 adaptive procedure for an aggregate: fixes
/// `D_UB = recommend_dub(schema)`, then runs `PASSES_PER_ROUND` (3)
/// passes per round at `r = 2, 3, …` (capped at `MAX_R = 8`) until
/// `query_budget` is spent, returning the pooled summary.
///
/// # Errors
/// Propagates interface errors other than budget exhaustion after at
/// least one completed pass.
pub fn adaptive_estimate<I: TopKInterface>(
    iface: &I,
    spec: &AggregateSpec,
    query_budget: u64,
    seed: u64,
) -> Result<AggEstimate> {
    let dub = recommend_dub(iface.schema());
    let mut all_estimates: Vec<f64> = Vec::new();
    let mut queries: u64 = 0;

    let mut round: u64 = 0;
    while queries < query_budget {
        let r = usize::try_from(round + 2).unwrap_or(MAX_R).min(MAX_R);
        let config = EstimatorConfig::hd_default().with_r(r).with_dub(dub);
        let mut est =
            UnbiasedAggEstimator::new(config, spec.clone(), seed.wrapping_add(round + 1))?;
        for _ in 0..PASSES_PER_ROUND {
            if queries >= query_budget {
                break;
            }
            match est.pass(iface) {
                Ok(_) => {}
                Err(e) if e.is_budget_exhausted() && !all_estimates.is_empty() => {
                    queries += est.queries_spent();
                    return Ok(pooled(&all_estimates, queries));
                }
                Err(e) => return Err(e),
            }
        }
        all_estimates.extend_from_slice(est.history());
        queries += est.queries_spent();
        round += 1;
    }
    Ok(pooled(&all_estimates, queries))
}

fn pooled(estimates: &[f64], queries: u64) -> AggEstimate {
    let n = estimates.len().max(1);
    let mean = estimates.iter().sum::<f64>() / n as f64;
    let std_error = if estimates.len() < 2 {
        0.0
    } else {
        let var = estimates.iter().map(|e| (e - mean).powi(2)).sum::<f64>()
            / (estimates.len() - 1) as f64;
        (var / estimates.len() as f64).sqrt()
    };
    AggEstimate { estimate: mean, passes: estimates.len() as u64, queries, std_error }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdb_datagen::{uniform_table, yahoo_auto, YahooConfig};
    use hdb_interface::{HiddenDb, Query, Schema};

    #[test]
    fn dub_recommendation_tracks_max_fanout() {
        // all-Boolean → floor of 16
        assert_eq!(recommend_dub(&Schema::boolean(10)), 16);
        // yahoo schema: max fanout 16 → 32
        let s = hdb_datagen::yahoo_schema();
        assert_eq!(recommend_dub(&s), 32);
    }

    #[test]
    fn adaptive_procedure_spends_the_budget_and_lands_near_truth() {
        let table = yahoo_auto(YahooConfig { rows: 4_000, seed: 21 }).unwrap();
        let truth = table.len() as f64;
        let db = HiddenDb::new(table, 20);
        let result =
            adaptive_estimate(&db, &AggregateSpec::database_size(), 3_000, 7).unwrap();
        assert!(result.queries >= 3_000, "budget should be (roughly) used: {}", result.queries);
        assert!(result.passes >= 3);
        let rel = (result.estimate - truth).abs() / truth;
        assert!(rel < 0.4, "estimate {} vs truth {truth}", result.estimate);
    }

    #[test]
    fn adaptive_procedure_is_unbiased() {
        let table = uniform_table(&Schema::boolean(7), 50, 4).unwrap();
        let truth = table.len() as f64;
        let db = HiddenDb::new(table, 2);
        let runs = 300u32;
        let mut sum = 0.0;
        for i in 0..runs {
            let r =
                adaptive_estimate(&db, &AggregateSpec::database_size(), 150, u64::from(i))
                    .unwrap();
            sum += r.estimate;
        }
        let mean = sum / f64::from(runs);
        assert!((mean - truth).abs() < 0.07 * truth, "mean {mean} vs truth {truth}");
    }

    #[test]
    fn site_budget_exhaustion_returns_partial_pool() {
        let table = uniform_table(&Schema::boolean(10), 300, 4).unwrap();
        let db = HiddenDb::new(table, 2).with_budget(200);
        let result =
            adaptive_estimate(&db, &AggregateSpec::database_size(), 10_000, 3).unwrap();
        assert!(result.passes >= 1);
        assert!(result.estimate > 0.0);
    }

    #[test]
    fn selection_aggregates_work_adaptively() {
        let table = yahoo_auto(YahooConfig { rows: 3_000, seed: 6 }).unwrap();
        let sel = Query::all().and(hdb_datagen::YAHOO_ATTRS.make, 0).unwrap();
        let truth = table.exact_count(&sel) as f64;
        let db = HiddenDb::new(table, 20);
        let result = adaptive_estimate(&db, &AggregateSpec::count(sel), 2_000, 11).unwrap();
        let rel = (result.estimate - truth).abs() / truth;
        assert!(rel < 0.5, "estimate {} vs truth {truth}", result.estimate);
    }
}
