//! Estimator configuration: the paper's two tunables `r` and `D_UB`
//! (§5.1) plus weight-adjustment controls.

use crate::error::{EstimatorError, Result};
use crate::order::AttributeOrder;
use crate::walk::BacktrackStrategy;

/// Configuration shared by `HD-UNBIASED-SIZE` and `HD-UNBIASED-AGG`.
#[derive(Clone, Debug, PartialEq)]
pub struct EstimatorConfig {
    /// Number of random drill-downs performed over each subtree (`r`).
    /// `r = 1` disables divide-&-conquer (paper §5.1).
    pub r: usize,
    /// Upper bound on the domain size of each subtree (`D_UB`).
    /// `u64::MAX` (the default via [`EstimatorConfig::plain`]) disables
    /// divide-&-conquer by making the whole tree one subtree.
    pub dub: u64,
    /// Whether weight adjustment is enabled.
    pub weight_adjustment: bool,
    /// Shrinkage pseudo-count for branch-weight estimation: larger values
    /// keep weights closer to the uninformed prior until more pilot
    /// drill-downs accumulate. Must be positive — a zero pseudo-count
    /// could zero out a non-empty branch's selection probability and
    /// break unbiasedness.
    pub smoothing: f64,
    /// Weight assigned to branches *known* (from pilot walks) to
    /// underflow. Must be positive; small values steer walks away from
    /// wasted scans without affecting correctness.
    pub empty_weight: f64,
    /// Attribute ordering for the query tree.
    pub order: AttributeOrder,
    /// Backtracking strategy (smart by default; simple exists for the
    /// query-cost ablation, paper §3.2).
    pub backtrack: BacktrackStrategy,
}

impl EstimatorConfig {
    /// The plain backtracking estimator (`BOOL-UNBIASED-SIZE` and its
    /// categorical generalisation): no weight adjustment, no
    /// divide-&-conquer.
    #[must_use]
    pub fn plain() -> Self {
        Self {
            r: 1,
            dub: u64::MAX,
            weight_adjustment: false,
            smoothing: 1.0,
            empty_weight: 1e-3,
            order: AttributeOrder::default(),
            backtrack: BacktrackStrategy::Smart,
        }
    }

    /// The full `HD-UNBIASED` configuration with the paper's defaults for
    /// the Boolean experiments: `r = 4`, `D_UB = 2^5`, weight adjustment
    /// on (§6.2).
    #[must_use]
    pub fn hd_default() -> Self {
        Self {
            r: 4,
            dub: 32,
            weight_adjustment: true,
            smoothing: 1.0,
            empty_weight: 1e-3,
            order: AttributeOrder::default(),
            backtrack: BacktrackStrategy::Smart,
        }
    }

    /// Sets `r`.
    #[must_use]
    pub fn with_r(mut self, r: usize) -> Self {
        self.r = r;
        self
    }

    /// Sets `D_UB`.
    #[must_use]
    pub fn with_dub(mut self, dub: u64) -> Self {
        self.dub = dub;
        self
    }

    /// Enables or disables weight adjustment.
    #[must_use]
    pub fn with_weight_adjustment(mut self, on: bool) -> Self {
        self.weight_adjustment = on;
        self
    }

    /// Sets the attribute order.
    #[must_use]
    pub fn with_order(mut self, order: AttributeOrder) -> Self {
        self.order = order;
        self
    }

    /// Sets the weight-smoothing pseudo-count.
    #[must_use]
    pub fn with_smoothing(mut self, smoothing: f64) -> Self {
        self.smoothing = smoothing;
        self
    }

    /// Sets the backtracking strategy.
    #[must_use]
    pub fn with_backtrack(mut self, backtrack: BacktrackStrategy) -> Self {
        self.backtrack = backtrack;
        self
    }

    /// Whether divide-&-conquer is active under this configuration.
    #[must_use]
    pub fn dnc_enabled(&self) -> bool {
        self.r > 1 && self.dub != u64::MAX
    }

    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`EstimatorError::InvalidConfig`] for non-positive `r`,
    /// `D_UB < 2`, or non-positive smoothing/empty weights.
    pub fn validate(&self) -> Result<()> {
        if self.r == 0 {
            return Err(EstimatorError::InvalidConfig("r must be at least 1".into()));
        }
        if self.dub < 2 {
            return Err(EstimatorError::InvalidConfig(
                "D_UB must be at least 2 (each subtree needs one level)".into(),
            ));
        }
        if self.smoothing.is_nan() || self.smoothing <= 0.0 {
            return Err(EstimatorError::InvalidConfig("smoothing must be positive".into()));
        }
        if self.empty_weight.is_nan() || self.empty_weight <= 0.0 {
            return Err(EstimatorError::InvalidConfig("empty_weight must be positive".into()));
        }
        Ok(())
    }
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        Self::hd_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_disables_everything() {
        let c = EstimatorConfig::plain();
        assert!(!c.dnc_enabled());
        assert!(!c.weight_adjustment);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn hd_default_matches_paper() {
        let c = EstimatorConfig::hd_default();
        assert_eq!(c.r, 4);
        assert_eq!(c.dub, 32);
        assert!(c.weight_adjustment);
        assert!(c.dnc_enabled());
    }

    #[test]
    fn builders_chain() {
        let c = EstimatorConfig::plain().with_r(5).with_dub(16).with_weight_adjustment(true);
        assert_eq!(c.r, 5);
        assert_eq!(c.dub, 16);
        assert!(c.dnc_enabled());
    }

    #[test]
    fn validation_rejects_degenerate_values() {
        assert!(EstimatorConfig::plain().with_r(0).validate().is_err());
        assert!(EstimatorConfig::plain().with_dub(1).validate().is_err());
        let mut c = EstimatorConfig::plain();
        c.smoothing = 0.0;
        assert!(c.validate().is_err());
        let mut c = EstimatorConfig::plain();
        c.empty_weight = -1.0;
        assert!(c.validate().is_err());
        let mut c = EstimatorConfig::plain();
        c.smoothing = f64::NAN;
        assert!(c.validate().is_err());
    }
}
