//! Owner-side analytic oracle for tests and theory validation.
//!
//! Given full access to the table (which estimators never have), the
//! oracle enumerates the exact set of top-valid nodes `Ω_TV`, computes
//! the exact plain-walk selection probability `p(q)` of each, and
//! evaluates the paper's variance formulas:
//!
//! * Theorem 2: `s² = Σ_{q∈Ω_TV} |q|²/p(q) − m²`,
//! * Theorem 3 (`k = 1`): `s² ≤ m²(|Dom|/m − 1)`.
//!
//! Tests use it to assert that (a) `Σ p(q) = 1` over `Ω_TV`, (b) the
//! walk-reported probabilities match the oracle exactly, and (c) the
//! empirical MSE of the plain estimator matches the Theorem-2 variance.

use hdb_interface::{AttrId, Query, Table, TableIndex, ValueId};

use crate::walk::PathStep;

/// A top-valid node as computed analytically.
#[derive(Clone, Debug)]
pub struct OracleNode {
    /// The node's query (base predicates plus the drill path).
    pub query: Query,
    /// The drill path from the base, in level order.
    pub steps: Vec<PathStep>,
    /// Exact tuple count `|q|`.
    pub count: usize,
    /// Exact plain-walk (uniform-weight) selection probability `p(q)`.
    pub probability: f64,
}

/// Analytic oracle over an owner-visible table.
pub struct Oracle<'a> {
    table: &'a Table,
    index: TableIndex,
    k: usize,
    base: Query,
    levels: Vec<AttrId>,
}

impl<'a> Oracle<'a> {
    /// Builds an oracle for drill-downs below `base` over `levels` with
    /// interface constant `k`.
    ///
    /// # Panics
    /// Panics if `k == 0` or a level attribute is constrained in `base`.
    #[must_use]
    pub fn new(table: &'a Table, k: usize, base: Query, levels: Vec<AttrId>) -> Self {
        assert!(k > 0, "top-k interface requires k >= 1");
        for &attr in &levels {
            assert!(!base.constrains(attr), "level attribute {attr} is constrained in the base");
        }
        Self { table, index: TableIndex::build(table), k, base, levels }
    }

    /// Exact `|Sel(q)|`.
    #[must_use]
    pub fn count(&self, q: &Query) -> usize {
        self.index.count(q)
    }

    /// Exact size of the selected sub-database.
    #[must_use]
    pub fn exact_size(&self) -> usize {
        self.index.count(&self.base)
    }

    /// The exact commit probability of branch `value` at the node
    /// `node_query` (which must overflow) for attribute `attr`, under
    /// uniform weights: `(1 + w_U)/w`, where `w_U` counts the maximal run
    /// of empty branches immediately preceding `value` circularly
    /// (paper §3.2). Returns 0 for an empty branch.
    #[must_use]
    pub fn commit_probability(&self, node_query: &Query, attr: AttrId, value: ValueId) -> f64 {
        let fanout = self.table.schema().fanout(attr);
        let nonempty: Vec<bool> = (0..fanout)
            .map(|v| {
                let child = node_query.and(attr, v as ValueId).expect("attr unconstrained");
                self.index.count(&child) > 0
            })
            .collect();
        if !nonempty[value as usize] {
            return 0.0;
        }
        let mut run = 0usize;
        let mut probe = (value as usize + fanout - 1) % fanout;
        while probe != value as usize && !nonempty[probe] {
            run += 1;
            probe = (probe + fanout - 1) % fanout;
        }
        (1 + run) as f64 / fanout as f64
    }

    /// Exact plain-walk probability of committing to the path `steps`
    /// from the base (product of per-level commit probabilities).
    #[must_use]
    pub fn walk_probability(&self, steps: &[PathStep]) -> f64 {
        let mut q = self.base.clone();
        let mut p = 1.0;
        for &(attr, value) in steps {
            p *= self.commit_probability(&q, attr, value);
            q = q.and(attr, value).expect("attr unconstrained");
        }
        p
    }

    /// Enumerates `Ω_TV` with exact counts and plain-walk probabilities.
    /// If the base itself is valid (or empty) the result is the base
    /// alone (or nothing).
    #[must_use]
    pub fn enumerate_top_valid(&self) -> Vec<OracleNode> {
        let mut out = Vec::new();
        let base_count = self.index.count(&self.base);
        if base_count == 0 {
            return out;
        }
        if base_count <= self.k {
            out.push(OracleNode {
                query: self.base.clone(),
                steps: Vec::new(),
                count: base_count,
                probability: 1.0,
            });
            return out;
        }
        self.expand(&self.base.clone(), &mut Vec::new(), 1.0, 0, &mut out);
        out
    }

    fn expand(
        &self,
        node: &Query,
        steps: &mut Vec<PathStep>,
        p_acc: f64,
        depth: usize,
        out: &mut Vec<OracleNode>,
    ) {
        assert!(
            depth < self.levels.len(),
            "an overflowing node cannot be fully specified under duplicate-free data"
        );
        let attr = self.levels[depth];
        let fanout = self.table.schema().fanout(attr);
        for v in 0..fanout {
            let value = v as ValueId;
            let child = node.and(attr, value).expect("attr unconstrained");
            let count = self.index.count(&child);
            if count == 0 {
                continue;
            }
            let p = p_acc * self.commit_probability(node, attr, value);
            steps.push((attr, value));
            if count <= self.k {
                out.push(OracleNode {
                    query: child,
                    steps: steps.clone(),
                    count,
                    probability: p,
                });
            } else {
                self.expand(&child, steps, p, depth + 1, out);
            }
            steps.pop();
        }
    }

    /// Theorem-2 variance of the plain drill-down:
    /// `Σ_{q∈Ω_TV} |q|²/p(q) − m²`.
    #[must_use]
    pub fn theorem2_variance(&self) -> f64 {
        let nodes = self.enumerate_top_valid();
        let m = self.exact_size() as f64;
        let sum: f64 =
            nodes.iter().map(|n| (n.count as f64).powi(2) / n.probability).sum();
        sum - m * m
    }

    /// Theorem-3 upper bound on the plain-walk variance for `k = 1`:
    /// `m²(|Dom|/m − 1)` over the *drilled* (level) attributes' domain.
    #[must_use]
    pub fn theorem3_bound(&self) -> f64 {
        let m = self.exact_size() as f64;
        let dom = self.table.schema().domain_size_of(&self.levels);
        m * m * (dom / m - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdb_interface::{Schema, Table, Tuple};

    fn figure1_table() -> Table {
        Table::new(
            Schema::boolean(4),
            vec![
                Tuple::new(vec![0, 0, 0, 0]),
                Tuple::new(vec![0, 0, 0, 1]),
                Tuple::new(vec![0, 0, 1, 0]),
                Tuple::new(vec![0, 1, 1, 1]),
                Tuple::new(vec![1, 1, 1, 0]),
                Tuple::new(vec![1, 1, 1, 1]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn probabilities_sum_to_one_over_omega_tv() {
        let table = figure1_table();
        for k in [1, 2, 3, 5] {
            let oracle = Oracle::new(&table, k, Query::all(), vec![0, 1, 2, 3]);
            let nodes = oracle.enumerate_top_valid();
            let total_p: f64 = nodes.iter().map(|n| n.probability).sum();
            assert!((total_p - 1.0).abs() < 1e-12, "k={k}: Σp = {total_p}");
            let total_count: usize = nodes.iter().map(|n| n.count).sum();
            assert_eq!(total_count, 6, "top-valid nodes partition the tuples");
        }
    }

    #[test]
    fn figure1_probabilities_match_hand_computation() {
        let table = figure1_table();
        let oracle = Oracle::new(&table, 1, Query::all(), vec![0, 1, 2, 3]);
        // t6's node (1,1,1,1): p = 1/2 · 1 · 1 · 1/2 = 1/4 (worked in §3.1)
        let p = oracle.walk_probability(&[(0, 1), (1, 1), (2, 1), (3, 1)]);
        assert!((p - 0.25).abs() < 1e-12);
        // t1's node: all Scenario I → 1/16
        let p = oracle.walk_probability(&[(0, 0), (1, 0), (2, 0), (3, 0)]);
        assert!((p - 1.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn expected_ht_estimate_is_m() {
        let table = figure1_table();
        let oracle = Oracle::new(&table, 1, Query::all(), vec![0, 1, 2, 3]);
        let e: f64 = oracle
            .enumerate_top_valid()
            .iter()
            .map(|n| n.probability * (n.count as f64 / n.probability))
            .sum();
        assert!((e - 6.0).abs() < 1e-12);
    }

    #[test]
    fn theorem2_variance_is_nonnegative_and_bounded_by_theorem3() {
        let table = figure1_table();
        let oracle = Oracle::new(&table, 1, Query::all(), vec![0, 1, 2, 3]);
        let s2 = oracle.theorem2_variance();
        assert!(s2 >= 0.0);
        assert!(s2 <= oracle.theorem3_bound() + 1e-9, "s²={s2} bound={}", oracle.theorem3_bound());
    }

    #[test]
    fn oracle_handles_valid_and_empty_bases() {
        let table = figure1_table();
        let oracle = Oracle::new(&table, 10, Query::all(), vec![0, 1, 2, 3]);
        let nodes = oracle.enumerate_top_valid();
        assert_eq!(nodes.len(), 1);
        assert_eq!(nodes[0].count, 6);
        assert_eq!(nodes[0].probability, 1.0);

        let base = Query::all().and(0, 1).unwrap().and(1, 0).unwrap();
        let oracle = Oracle::new(&table, 1, base, vec![2, 3]);
        assert!(oracle.enumerate_top_valid().is_empty());
        assert_eq!(oracle.exact_size(), 0);
    }

    #[test]
    fn commit_probability_counts_preceding_empty_run() {
        // categorical fanout 5 with branches {0, 2} non-empty
        let schema = Schema::new(vec![
            hdb_interface::Attribute::categorical("c", ["1", "2", "3", "4", "5"]).unwrap(),
            hdb_interface::Attribute::boolean("pad"),
        ])
        .unwrap();
        let table = Table::new(
            schema,
            vec![
                Tuple::new(vec![0, 0]),
                Tuple::new(vec![0, 1]),
                Tuple::new(vec![2, 0]),
            ],
        )
        .unwrap();
        let oracle = Oracle::new(&table, 1, Query::all(), vec![0, 1]);
        // branch 0: preceded by empties {4, 3} → (1+2)/5
        assert!((oracle.commit_probability(&Query::all(), 0, 0) - 0.6).abs() < 1e-12);
        // branch 2: preceded by empty {1} → (1+1)/5
        assert!((oracle.commit_probability(&Query::all(), 0, 2) - 0.4).abs() < 1e-12);
        // empty branch → 0
        assert_eq!(oracle.commit_probability(&Query::all(), 0, 3), 0.0);
    }
}
