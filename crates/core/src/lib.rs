//! # hdb-core — unbiased aggregate estimation over hidden web databases
//!
//! A faithful implementation of Dasgupta, Jin, Jewell, Zhang & Das,
//! *"Unbiased Estimation of Size and Other Aggregates Over Hidden Web
//! Databases"* (SIGMOD 2010).
//!
//! A hidden database is reachable only through a restrictive top-`k`
//! form interface (see the `hdb-interface` crate): every query either
//! underflows, returns all of its at-most-`k` matches, or overflows with
//! only the `k` top-ranked matches and no count. This crate estimates
//! `COUNT(*)` (the database size) and other aggregates **without bias**
//! through that interface, using:
//!
//! * **Backtracking random drill-downs** ([`walk`]) whose exact selection
//!   probability is always known — the key to unbiasedness (Theorem 1);
//! * **Weight adjustment** ([`weight`]) — importance sampling from pilot
//!   walks (§4.1);
//! * **Divide-&-conquer** ([`dnc`]) — bounded-subdomain subtrees that
//!   tame the `|Dom|/m` variance blow-up (§4.2);
//! * **A parallel engine** ([`engine`]) — passes fan across a thread
//!   pool with per-pass seed derivation, so results are bit-identical to
//!   the sequential run for any worker count;
//!
//! combined into [`UnbiasedSizeEstimator`] (`HD-UNBIASED-SIZE`) and
//! [`UnbiasedAggEstimator`] (`HD-UNBIASED-AGG`), next to the paper's
//! baselines ([`baselines`]), an exhaustive [`crawler`], and an analytic
//! test [`oracle`].
//!
//! ## Quick example
//!
//! ```
//! use hdb_core::UnbiasedSizeEstimator;
//! use hdb_interface::{HiddenDb, Schema, Table, Tuple};
//!
//! // a tiny hidden database with a top-1 interface
//! let tuples: Vec<Tuple> = (0..40u16)
//!     .map(|i| Tuple::new((0..6).map(|b| (i >> b) & 1).collect()))
//!     .collect();
//! let db = HiddenDb::new(Table::new(Schema::boolean(6), tuples).unwrap(), 1);
//!
//! let mut estimator = UnbiasedSizeEstimator::plain(42).unwrap();
//! let result = estimator.run(&db, 200).unwrap();
//! assert!((result.estimate - 40.0).abs() < 8.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod agg;
pub mod baselines;
pub mod config;
pub mod crawler;
pub mod dnc;
pub mod engine;
pub mod error;
pub mod oracle;
pub mod order;
pub mod size;
pub mod tuning;
pub mod walk;
pub mod weight;

pub use agg::{ratio_avg, AggEstimate, AggregateFn, AggregateSpec, UnbiasedAggEstimator};
pub use config::EstimatorConfig;
pub use crawler::{crawl, CrawlResult, TopValidNode};
pub use engine::{default_workers, pass_seed};
pub use error::{EstimatorError, Result};
pub use oracle::{Oracle, OracleNode};
pub use order::AttributeOrder;
pub use size::{SizeEstimate, UnbiasedSizeEstimator};
pub use tuning::{adaptive_estimate, recommend_dub};
pub use walk::{
    drill_down, drill_down_with, BacktrackStrategy, UniformWeights, Walk, WalkTerminal,
    WeightProvider,
};
pub use weight::{WeightModel, WeightModelConfig};
