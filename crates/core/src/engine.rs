//! Parallel multi-walk estimation engine.
//!
//! The paper's estimators converge by averaging thousands of independent
//! drill-down passes; the passes share nothing but the (read-only)
//! interface, so they are embarrassingly parallel. This module fans
//! passes across a `std::thread` worker pool while preserving the
//! workspace's determinism guarantee:
//!
//! * **Seed derivation** — pass `i` of a run with master seed `s` draws
//!   its randomness from `StdRng::seed_from_u64(pass_seed(s, i))`, a
//!   SplitMix64-style mix of `(s, i)`. No pass ever observes another
//!   pass's RNG stream, weight state, or completion order.
//! * **Order-independent merge** — per-pass estimates are keyed by pass
//!   index and replayed in canonical index order before any
//!   floating-point fold (the discipline `hdb_stats::PassReducer`
//!   packages for external consumers), so arrival order can never leak
//!   into a result.
//! * **Canonical budget exhaustion** — interfaces that meter a query
//!   budget ([`TopKInterface::budget_remaining`] returns `Some`) run in
//!   wave-barriered chunks: fully parallel while the remaining budget
//!   comfortably exceeds a chunk's expected spend, canonical
//!   single-thread claiming once exhaustion nears — so the set of passes
//!   completed when the budget runs dry is the same as the sequential
//!   run's, not an accident of thread scheduling.
//!
//! Together these make the merged estimate **bit-identical to the
//! sequential run regardless of worker count**: `run` and
//! [`run_parallel`](crate::UnbiasedAggEstimator::run_parallel) with 1, 2,
//! or 64 workers produce the same per-pass history and the same mean —
//! including runs cut short by a metered interface budget, provided no
//! single pass blows through the 8× safety margin the near-exhaustion
//! serialisation relies on (see
//! [`run_parallel`](crate::UnbiasedAggEstimator::run_parallel) for the
//! pathological-pass caveat).
//!
//! The threading primitive itself, [`fan_out`], is shared with the
//! substrate crate (re-exported from [`hdb_interface::par`], where
//! [`ShardedDb`](hdb_interface::ShardedDb) uses it for per-shard query
//! evaluation). The worker count defaults to [`default_workers`], which
//! honours the `HDB_ENGINE_WORKERS` environment variable (CI runs the
//! test suite under both `=1` and `=4`).
//!
//! [`TopKInterface::budget_remaining`]: hdb_interface::TopKInterface::budget_remaining

pub use hdb_interface::par::{default_workers, fan_out, FanOut, WORKERS_ENV};

/// Derives the RNG seed of pass `pass_index` under `master_seed`.
///
/// SplitMix64-style finalising mix over the pair: statistically
/// independent streams for neighbouring indices, stable across platforms
/// and releases (the determinism tests pin it).
#[must_use]
pub fn pass_seed(master_seed: u64, pass_index: u64) -> u64 {
    let mut z = master_seed ^ pass_index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::EstimatorError;

    #[test]
    fn pass_seed_is_stable_and_spread() {
        // Pinned values: changing the derivation silently would break the
        // cross-version reproducibility of every recorded experiment.
        assert_eq!(pass_seed(0, 0), 0);
        assert_eq!(pass_seed(42, 0), pass_seed(42, 0));
        assert_ne!(pass_seed(42, 0), pass_seed(42, 1));
        assert_ne!(pass_seed(42, 1), pass_seed(43, 1));
        // neighbouring indices must not produce neighbouring seeds
        let a = pass_seed(7, 1);
        let b = pass_seed(7, 2);
        assert!((a ^ b).count_ones() > 8, "seeds too correlated: {a:x} vs {b:x}");
    }

    #[test]
    fn fan_out_reexport_works_with_estimator_errors() {
        let out = fan_out(100, 4, |i| {
            if i == 3 {
                Err(EstimatorError::InvalidConfig("boom".into()))
            } else {
                Ok(i as f64)
            }
        });
        assert!(out.error.is_some());
        assert!(out.results.iter().all(|&(i, _)| i != 3));
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }
}
