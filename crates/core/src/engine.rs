//! Parallel multi-walk estimation engine.
//!
//! The paper's estimators converge by averaging thousands of independent
//! drill-down passes; the passes share nothing but the (read-only)
//! interface, so they are embarrassingly parallel. This module fans
//! passes across a `std::thread` worker pool while preserving the
//! workspace's determinism guarantee:
//!
//! * **Seed derivation** — pass `i` of a run with master seed `s` draws
//!   its randomness from `StdRng::seed_from_u64(pass_seed(s, i))`, a
//!   SplitMix64-style mix of `(s, i)`. No pass ever observes another
//!   pass's RNG stream, weight state, or completion order.
//! * **Order-independent merge** — per-pass estimates are keyed by pass
//!   index and reduced through [`hdb_stats::PassReducer`], which replays
//!   them in canonical index order before any floating-point fold.
//!
//! Together these make the merged estimate **bit-identical to the
//! sequential run regardless of worker count**: `run` and
//! [`run_parallel`](crate::UnbiasedAggEstimator::run_parallel) with 1, 2,
//! or 64 workers produce the same per-pass history and the same mean.
//! (The exception is budget-cut runs: when the interface budget runs dry
//! mid-run, *which* passes complete depends on scheduling, so only the
//! surviving per-pass values — not their count — are reproducible.)
//!
//! The worker count defaults to [`default_workers`], which honours the
//! `HDB_ENGINE_WORKERS` environment variable (CI runs the test suite
//! under both `=1` and `=4` to exercise the guarantee on every push).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::error::{EstimatorError, Result};

/// Environment variable consulted by [`default_workers`].
pub const WORKERS_ENV: &str = "HDB_ENGINE_WORKERS";

/// Derives the RNG seed of pass `pass_index` under `master_seed`.
///
/// SplitMix64-style finalising mix over the pair: statistically
/// independent streams for neighbouring indices, stable across platforms
/// and releases (the determinism tests pin it).
#[must_use]
pub fn pass_seed(master_seed: u64, pass_index: u64) -> u64 {
    let mut z = master_seed ^ pass_index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The worker count used when the caller does not pick one explicitly:
/// `HDB_ENGINE_WORKERS` if set to a positive integer, otherwise the
/// machine's available parallelism capped at 8 (passes are query-bound,
/// not memory-bound; more threads than that only adds contention on the
/// simulator's shared counters).
#[must_use]
pub fn default_workers() -> usize {
    std::env::var(WORKERS_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&w| w >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, |n| n.get().min(8))
        })
}

/// Outcome of a fan-out: per-pass results (unordered), how many pass
/// indices were claimed, and the first error any worker hit.
pub(crate) struct FanOut {
    /// `(pass_index, estimate)` pairs from completed passes, in arbitrary
    /// arrival order — feed them to a `PassReducer`.
    pub results: Vec<(u64, f64)>,
    /// One past the highest pass index handed to a worker.
    pub claimed: u64,
    /// The first error observed (workers stop claiming once one is set).
    pub error: Option<EstimatorError>,
}

/// Runs `run_pass(i)` for `i` in `0..passes` (or unboundedly while
/// `keep_going()` holds, when `passes` is `None`) across `workers`
/// OS threads.
///
/// Pass indices are claimed from a shared atomic dispenser, so each index
/// runs exactly once; results are collected per worker and merged after
/// the join, so the only cross-thread traffic during the run is the
/// dispenser and the interface's own internal synchronisation.
pub(crate) fn fan_out<F>(
    passes: Option<u64>,
    workers: usize,
    keep_going: impl Fn() -> bool + Sync,
    run_pass: F,
) -> FanOut
where
    F: Fn(u64) -> Result<f64> + Sync,
{
    let bound = passes.unwrap_or(u64::MAX);
    let workers = workers
        .max(1)
        .min(usize::try_from(bound).unwrap_or(usize::MAX).max(1));
    let dispenser = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let first_error: Mutex<Option<EstimatorError>> = Mutex::new(None);

    let worker_loop = || {
        let mut local: Vec<(u64, f64)> = Vec::new();
        loop {
            if stop.load(Ordering::Acquire) || !keep_going() {
                break;
            }
            let idx = dispenser.fetch_add(1, Ordering::Relaxed);
            if idx >= bound {
                // undo the overshoot so `claimed` stays meaningful
                dispenser.fetch_sub(1, Ordering::Relaxed);
                break;
            }
            match run_pass(idx) {
                Ok(estimate) => local.push((idx, estimate)),
                Err(e) => {
                    stop.store(true, Ordering::Release);
                    let mut slot = first_error.lock().expect("error slot poisoned");
                    if slot.is_none() {
                        *slot = Some(e);
                    }
                    break;
                }
            }
        }
        local
    };

    let results = if workers == 1 {
        // In-thread fast path: identical claiming logic, no spawn cost.
        worker_loop()
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> =
                (0..workers).map(|_| scope.spawn(worker_loop)).collect();
            let mut merged = Vec::new();
            for h in handles {
                merged.extend(h.join().expect("engine worker panicked"));
            }
            merged
        })
    };

    FanOut {
        results,
        claimed: dispenser.load(Ordering::Relaxed).min(bound),
        error: first_error.into_inner().expect("error slot poisoned"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_seed_is_stable_and_spread() {
        // Pinned values: changing the derivation silently would break the
        // cross-version reproducibility of every recorded experiment.
        assert_eq!(pass_seed(0, 0), 0);
        assert_eq!(pass_seed(42, 0), pass_seed(42, 0));
        assert_ne!(pass_seed(42, 0), pass_seed(42, 1));
        assert_ne!(pass_seed(42, 1), pass_seed(43, 1));
        // neighbouring indices must not produce neighbouring seeds
        let a = pass_seed(7, 1);
        let b = pass_seed(7, 2);
        assert!((a ^ b).count_ones() > 8, "seeds too correlated: {a:x} vs {b:x}");
    }

    #[test]
    fn fan_out_covers_every_index_exactly_once() {
        for workers in [1, 2, 5] {
            let out = fan_out(Some(100), workers, || true, |i| Ok(i as f64));
            assert_eq!(out.claimed, 100);
            assert!(out.error.is_none());
            let mut indices: Vec<u64> = out.results.iter().map(|&(i, _)| i).collect();
            indices.sort_unstable();
            assert_eq!(indices, (0..100).collect::<Vec<_>>(), "workers={workers}");
        }
    }

    #[test]
    fn fan_out_stops_on_error_and_keeps_completed() {
        let out = fan_out(Some(1000), 4, || true, |i| {
            if i == 3 {
                Err(EstimatorError::InvalidConfig("boom".into()))
            } else {
                Ok(0.0)
            }
        });
        assert!(out.error.is_some());
        assert!(out.results.iter().all(|&(i, _)| i != 3));
        assert!(out.results.len() < 1000);
    }

    #[test]
    fn fan_out_honours_keep_going() {
        let count = AtomicU64::new(0);
        let out = fan_out(
            None,
            3,
            || count.load(Ordering::Relaxed) < 20,
            |i| {
                count.fetch_add(1, Ordering::Relaxed);
                Ok(i as f64)
            },
        );
        assert!(out.error.is_none());
        // each worker can overshoot by at most one in-flight pass
        assert!(out.results.len() >= 20 && out.results.len() <= 23);
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }
}
