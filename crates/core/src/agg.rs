//! `HD-UNBIASED-AGG` (paper §5.2): unbiased estimation of COUNT and SUM
//! aggregates with conjunctive selection conditions, by running the
//! backtracking drill-down (with optional weight adjustment and
//! divide-&-conquer) over the subtree selected by the condition.
//!
//! AVG deliberately has no unbiased estimator here: the ratio of unbiased
//! SUM and COUNT estimates is biased, a limitation the paper inherits
//! from [13]. [`ratio_avg`] exposes the biased ratio under a name that
//! says so.

use hdb_interface::{AttrId, Query, QueryOutcome, ReturnedTuple, Schema, TopKInterface};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::EstimatorConfig;
use crate::dnc::estimate_pass_with;
use crate::error::{EstimatorError, Result};
use crate::walk::{UniformWeights, WeightProvider};
use crate::weight::{WeightModel, WeightModelConfig};

/// The aggregate function of a query
/// `SELECT AGGR(..) FROM D WHERE <selection>`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggregateFn {
    /// `COUNT(*)` — with an empty selection this is the database size.
    Count,
    /// `SUM(attr)` using the attribute's numeric interpretation.
    Sum(AttrId),
}

/// A full aggregate query: function plus conjunctive selection condition.
#[derive(Clone, Debug)]
pub struct AggregateSpec {
    /// The aggregate function.
    pub function: AggregateFn,
    /// Conjunctive selection condition ([`Query::all`] selects every
    /// tuple).
    pub selection: Query,
}

impl AggregateSpec {
    /// `COUNT(*)` over the whole database — the size-estimation problem.
    #[must_use]
    pub fn database_size() -> Self {
        Self { function: AggregateFn::Count, selection: Query::all() }
    }

    /// `COUNT(*) WHERE selection`.
    #[must_use]
    pub fn count(selection: Query) -> Self {
        Self { function: AggregateFn::Count, selection }
    }

    /// `SUM(attr) WHERE selection`.
    #[must_use]
    pub fn sum(attr: AttrId, selection: Query) -> Self {
        Self { function: AggregateFn::Sum(attr), selection }
    }

    /// Validates the spec against a schema.
    ///
    /// # Errors
    /// Returns [`EstimatorError::InvalidAggregate`] if the SUM attribute
    /// is out of range or lacks a numeric interpretation, and propagates
    /// selection-query validation failures.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        self.selection.validate(schema)?;
        if let AggregateFn::Sum(attr) = self.function {
            if attr >= schema.len() {
                return Err(EstimatorError::InvalidAggregate(format!(
                    "SUM attribute id {attr} out of range (schema has {})",
                    schema.len()
                )));
            }
            if !schema.attribute(attr).is_numeric() {
                return Err(EstimatorError::InvalidAggregate(format!(
                    "SUM over attribute `{}` requires a numeric interpretation",
                    schema.attribute(attr).name()
                )));
            }
        }
        Ok(())
    }

    /// The measure of a set of returned tuples under this aggregate.
    fn measure(&self, schema: &Schema, tuples: &[ReturnedTuple]) -> f64 {
        match self.function {
            AggregateFn::Count => tuples.len() as f64,
            AggregateFn::Sum(attr) => {
                let a = schema.attribute(attr);
                tuples
                    .iter()
                    .map(|t| a.numeric_value(t.tuple.value(attr)).expect("validated numeric"))
                    .sum()
            }
        }
    }
}

/// Result of an estimation run.
#[derive(Clone, Copy, Debug)]
pub struct AggEstimate {
    /// The running estimate (mean of per-pass unbiased estimates).
    pub estimate: f64,
    /// Number of completed estimation passes.
    pub passes: u64,
    /// Queries this estimator spent (interface-counter delta across its
    /// own passes).
    pub queries: u64,
    /// Standard error of the mean across passes (0 for a single pass).
    pub std_error: f64,
}

/// The `HD-UNBIASED-AGG` estimator.
///
/// Each [`UnbiasedAggEstimator::pass`] produces one unbiased estimate of
/// the aggregate; the running mean over passes converges with variance
/// `s²/passes`. The weight model persists across passes — that is the
/// point of weight adjustment: early "pilot" passes make later passes
/// cheaper and tighter without ever compromising unbiasedness.
#[derive(Debug)]
pub struct UnbiasedAggEstimator {
    config: EstimatorConfig,
    spec: AggregateSpec,
    weights: WeightModel,
    rng: StdRng,
    estimates: Vec<f64>,
    queries_spent: u64,
    root_outcome: Option<QueryOutcome>,
    levels: Option<Vec<AttrId>>,
}

impl UnbiasedAggEstimator {
    /// Creates an estimator for `spec` under `config`, seeding its RNG
    /// with `seed`.
    ///
    /// # Errors
    /// Returns [`EstimatorError::InvalidConfig`] for invalid
    /// configurations. Spec validation happens on first contact with an
    /// interface (the schema is needed).
    pub fn new(config: EstimatorConfig, spec: AggregateSpec, seed: u64) -> Result<Self> {
        config.validate()?;
        let weights = WeightModel::new(WeightModelConfig {
            smoothing: config.smoothing,
            empty_weight: config.empty_weight,
            ..WeightModelConfig::default()
        });
        Ok(Self {
            config,
            spec,
            weights,
            rng: StdRng::seed_from_u64(seed),
            estimates: Vec::new(),
            queries_spent: 0,
            root_outcome: None,
            levels: None,
        })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &EstimatorConfig {
        &self.config
    }

    /// The aggregate specification.
    #[must_use]
    pub fn spec(&self) -> &AggregateSpec {
        &self.spec
    }

    /// Performs one estimation pass and returns its (individually
    /// unbiased) estimate.
    ///
    /// # Errors
    /// Propagates interface errors. A failed pass contributes nothing to
    /// the running mean; prior passes remain intact, so budget exhaustion
    /// mid-pass leaves a usable estimator.
    pub fn pass<I: TopKInterface>(&mut self, iface: &I) -> Result<f64> {
        let before = iface.queries_issued();
        let result = self.pass_inner(iface);
        self.queries_spent += iface.queries_issued() - before;
        let estimate = result?;
        self.estimates.push(estimate);
        Ok(estimate)
    }

    fn pass_inner<I: TopKInterface>(&mut self, iface: &I) -> Result<f64> {
        let schema = iface.schema();
        if self.levels.is_none() {
            self.spec.validate(schema)?;
            let fixed: Vec<AttrId> =
                self.spec.selection.predicates().iter().map(|p| p.attr).collect();
            self.levels = Some(self.config.order.resolve(schema, &fixed)?);
        }
        // The root (selection) query is issued once and remembered: under
        // the static-database model a client never needs to re-ask it.
        if self.root_outcome.is_none() {
            self.root_outcome = Some(iface.query(&self.spec.selection)?);
        }
        let root = self.root_outcome.as_ref().expect("just cached");

        match root {
            QueryOutcome::Underflow => Ok(0.0),
            QueryOutcome::Valid(tuples) => Ok(self.spec.measure(schema, tuples)),
            QueryOutcome::Overflow(_) => {
                let levels = self.levels.as_ref().expect("resolved above").clone();
                let spec = self.spec.clone();
                let measure =
                    move |tuples: &[ReturnedTuple]| spec.measure(schema, tuples);
                let provider: &dyn WeightProvider = if self.config.weight_adjustment {
                    &self.weights
                } else {
                    &UniformWeights
                };
                estimate_pass_with(
                    iface,
                    &self.spec.selection,
                    &levels,
                    self.config.r,
                    self.config.dub,
                    provider,
                    &measure,
                    self.config.backtrack,
                    &mut self.rng,
                )
            }
        }
    }

    /// Runs `passes` estimation passes and returns the summary.
    ///
    /// # Errors
    /// Propagates the first interface error, unless it is budget
    /// exhaustion *after* at least one completed pass — then the partial
    /// summary is returned (matching how a real client would behave when
    /// the site cuts it off).
    pub fn run<I: TopKInterface>(&mut self, iface: &I, passes: u64) -> Result<AggEstimate> {
        for _ in 0..passes {
            if let Err(e) = self.pass(iface) {
                if e.is_budget_exhausted() && !self.estimates.is_empty() {
                    break;
                }
                return Err(e);
            }
        }
        self.summary().ok_or(EstimatorError::InvalidConfig("no passes completed".into()))
    }

    /// Keeps running passes until this estimator has spent at least
    /// `query_budget` queries (always completing the pass in flight), then
    /// returns the summary.
    ///
    /// # Errors
    /// Same contract as [`UnbiasedAggEstimator::run`].
    pub fn run_until_budget<I: TopKInterface>(
        &mut self,
        iface: &I,
        query_budget: u64,
    ) -> Result<AggEstimate> {
        while self.queries_spent < query_budget {
            if let Err(e) = self.pass(iface) {
                if e.is_budget_exhausted() && !self.estimates.is_empty() {
                    break;
                }
                return Err(e);
            }
        }
        self.summary().ok_or(EstimatorError::InvalidConfig("no passes completed".into()))
    }

    /// The running estimate (mean of pass estimates), if any pass has
    /// completed.
    #[must_use]
    pub fn estimate(&self) -> Option<f64> {
        if self.estimates.is_empty() {
            None
        } else {
            Some(self.estimates.iter().sum::<f64>() / self.estimates.len() as f64)
        }
    }

    /// Per-pass estimates, in order.
    #[must_use]
    pub fn history(&self) -> &[f64] {
        &self.estimates
    }

    /// Queries spent by this estimator so far.
    #[must_use]
    pub fn queries_spent(&self) -> u64 {
        self.queries_spent
    }

    /// The current summary, if any pass has completed.
    #[must_use]
    pub fn summary(&self) -> Option<AggEstimate> {
        let n = self.estimates.len();
        if n == 0 {
            return None;
        }
        let mean = self.estimates.iter().sum::<f64>() / n as f64;
        let std_error = if n < 2 {
            0.0
        } else {
            let var = self.estimates.iter().map(|e| (e - mean).powi(2)).sum::<f64>()
                / (n - 1) as f64;
            (var / n as f64).sqrt()
        };
        Some(AggEstimate {
            estimate: mean,
            passes: n as u64,
            queries: self.queries_spent,
            std_error,
        })
    }
}

/// The **biased** AVG estimate formed by dividing unbiased SUM and COUNT
/// estimates. The paper (§5.2) shows unbiased AVG estimation is not
/// achievable this way; the name keeps the caveat in the caller's face.
/// Returns `None` when the count estimate is not positive.
#[must_use]
pub fn ratio_avg(sum_estimate: f64, count_estimate: f64) -> Option<f64> {
    (count_estimate > 0.0).then(|| sum_estimate / count_estimate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdb_interface::{Attribute, HiddenDb, Schema, Table, Tuple};

    fn db() -> HiddenDb {
        // 8 tuples over (bool, bool, price∈0..4)
        let schema = Schema::new(vec![
            Attribute::boolean("a"),
            Attribute::boolean("b"),
            Attribute::numeric_buckets("price", 4).unwrap(),
        ])
        .unwrap();
        let tuples: Vec<Tuple> = vec![
            vec![0, 0, 0],
            vec![0, 0, 3],
            vec![0, 1, 1],
            vec![0, 1, 2],
            vec![1, 0, 2],
            vec![1, 0, 3],
            vec![1, 1, 0],
            vec![1, 1, 3],
        ]
        .into_iter()
        .map(Tuple::new)
        .collect();
        HiddenDb::new(Table::new(schema, tuples).unwrap(), 1)
    }

    #[test]
    fn count_all_is_unbiased() {
        let db = db();
        let mut est = UnbiasedAggEstimator::new(
            EstimatorConfig::plain(),
            AggregateSpec::database_size(),
            7,
        )
        .unwrap();
        let summary = est.run(&db, 3000).unwrap();
        assert_eq!(summary.passes, 3000);
        assert!((summary.estimate - 8.0).abs() < 0.3, "estimate {}", summary.estimate);
        assert!(summary.queries > 0);
    }

    #[test]
    fn sum_with_selection_is_unbiased() {
        let db = db();
        // SUM(price) WHERE a = 1 → tuples (1,0,2),(1,0,3),(1,1,0),(1,1,3) = 8
        let selection = Query::all().and(0, 1).unwrap();
        let mut est = UnbiasedAggEstimator::new(
            EstimatorConfig::plain(),
            AggregateSpec::sum(2, selection),
            11,
        )
        .unwrap();
        let summary = est.run(&db, 4000).unwrap();
        assert!((summary.estimate - 8.0).abs() < 0.4, "estimate {}", summary.estimate);
    }

    #[test]
    fn valid_root_returns_exact_answer() {
        // k large enough that the selection query itself is valid →
        // exact answer, zero variance, one query ever.
        let schema = Schema::new(vec![
            Attribute::boolean("a"),
            Attribute::numeric_buckets("v", 4).unwrap(),
        ])
        .unwrap();
        let tuples: Vec<Tuple> =
            vec![vec![0, 1], vec![0, 2], vec![1, 3]].into_iter().map(Tuple::new).collect();
        let db = HiddenDb::new(Table::new(schema, tuples).unwrap(), 10);
        let mut est = UnbiasedAggEstimator::new(
            EstimatorConfig::plain(),
            AggregateSpec::sum(1, Query::all()),
            1,
        )
        .unwrap();
        let summary = est.run(&db, 50).unwrap();
        assert_eq!(summary.estimate, 6.0);
        assert_eq!(summary.std_error, 0.0);
        assert_eq!(db.queries_issued(), 1, "root outcome must be cached across passes");
    }

    #[test]
    fn underflowing_selection_estimates_zero() {
        let db = db();
        // a=0 ∧ b=0 ∧ price=1 matches nothing
        let selection = Query::all()
            .and(0, 0)
            .unwrap()
            .and(1, 0)
            .unwrap()
            .and(2, 1)
            .unwrap();
        let mut est =
            UnbiasedAggEstimator::new(EstimatorConfig::plain(), AggregateSpec::count(selection), 1)
                .unwrap();
        let summary = est.run(&db, 10).unwrap();
        assert_eq!(summary.estimate, 0.0);
    }

    #[test]
    fn sum_requires_numeric_attribute() {
        let schema = Schema::new(vec![
            Attribute::boolean("a"),
            Attribute::categorical("c", ["x", "y"]).unwrap(),
        ])
        .unwrap();
        let t = Table::new(schema, vec![Tuple::new(vec![0, 0]), Tuple::new(vec![1, 1])]).unwrap();
        let db = HiddenDb::new(t, 1);
        let mut est = UnbiasedAggEstimator::new(
            EstimatorConfig::plain(),
            AggregateSpec::sum(1, Query::all()),
            1,
        )
        .unwrap();
        let err = est.pass(&db).unwrap_err();
        assert!(matches!(err, EstimatorError::InvalidAggregate(_)));
    }

    #[test]
    fn budget_exhaustion_preserves_partial_results() {
        let schema = Schema::boolean(6);
        let tuples: Vec<Tuple> = (0..40u16)
            .map(|i| {
                Tuple::new((0..6).map(|b| (i >> b) & 1).collect())
            })
            .collect();
        let db = HiddenDb::new(Table::new(schema, tuples).unwrap(), 1).with_budget(60);
        let mut est = UnbiasedAggEstimator::new(
            EstimatorConfig::plain(),
            AggregateSpec::database_size(),
            3,
        )
        .unwrap();
        let summary = est.run(&db, 1_000_000).unwrap();
        assert!(summary.passes >= 1);
        assert!(summary.queries <= 60);
        assert!(summary.estimate > 0.0);
    }

    #[test]
    fn weight_adjustment_keeps_unbiasedness() {
        let db = db();
        let cfg = EstimatorConfig::plain().with_weight_adjustment(true);
        let mut est =
            UnbiasedAggEstimator::new(cfg, AggregateSpec::database_size(), 23).unwrap();
        let summary = est.run(&db, 4000).unwrap();
        assert!((summary.estimate - 8.0).abs() < 0.3, "estimate {}", summary.estimate);
    }

    #[test]
    fn hd_full_config_is_unbiased() {
        let db = db();
        let cfg = EstimatorConfig::hd_default().with_dub(4).with_r(2);
        let mut est =
            UnbiasedAggEstimator::new(cfg, AggregateSpec::database_size(), 29).unwrap();
        let summary = est.run(&db, 4000).unwrap();
        assert!((summary.estimate - 8.0).abs() < 0.3, "estimate {}", summary.estimate);
    }

    #[test]
    fn ratio_avg_flags_bias_in_name_and_guards_zero() {
        assert_eq!(ratio_avg(10.0, 4.0), Some(2.5));
        assert_eq!(ratio_avg(10.0, 0.0), None);
        assert_eq!(ratio_avg(10.0, -1.0), None);
    }

    #[test]
    fn run_until_budget_spends_at_least_budget() {
        let db = db();
        let mut est = UnbiasedAggEstimator::new(
            EstimatorConfig::plain(),
            AggregateSpec::database_size(),
            5,
        )
        .unwrap();
        let summary = est.run_until_budget(&db, 100).unwrap();
        assert!(summary.queries >= 100);
        assert!(summary.passes > 1);
    }
}
