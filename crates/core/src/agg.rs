//! `HD-UNBIASED-AGG` (paper §5.2): unbiased estimation of COUNT and SUM
//! aggregates with conjunctive selection conditions, by running the
//! backtracking drill-down (with optional weight adjustment and
//! divide-&-conquer) over the subtree selected by the condition.
//!
//! AVG deliberately has no unbiased estimator here: the ratio of unbiased
//! SUM and COUNT estimates is biased, a limitation the paper inherits
//! from its reference \[13\]. [`ratio_avg`] exposes the biased ratio
//! under a name that says so.

use std::sync::Arc;

use hdb_interface::{
    AttrId, Clock, Counter, Histogram, MetricsRegistry, Query, QueryOutcome, ReturnedTuple,
    Schema, TopKInterface,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::EstimatorConfig;
use crate::dnc::estimate_pass_with;
use crate::engine;
use crate::error::{EstimatorError, Result};
use crate::walk::{UniformWeights, WeightProvider};
use crate::weight::{WeightModel, WeightModelConfig};

/// The aggregate function of a query
/// `SELECT AGGR(..) FROM D WHERE <selection>`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggregateFn {
    /// `COUNT(*)` — with an empty selection this is the database size.
    Count,
    /// `SUM(attr)` using the attribute's numeric interpretation.
    Sum(AttrId),
}

/// A full aggregate query: function plus conjunctive selection condition.
#[derive(Clone, Debug)]
pub struct AggregateSpec {
    /// The aggregate function.
    pub function: AggregateFn,
    /// Conjunctive selection condition ([`Query::all`] selects every
    /// tuple).
    pub selection: Query,
}

impl AggregateSpec {
    /// `COUNT(*)` over the whole database — the size-estimation problem.
    #[must_use]
    pub fn database_size() -> Self {
        Self { function: AggregateFn::Count, selection: Query::all() }
    }

    /// `COUNT(*) WHERE selection`.
    #[must_use]
    pub fn count(selection: Query) -> Self {
        Self { function: AggregateFn::Count, selection }
    }

    /// `SUM(attr) WHERE selection`.
    #[must_use]
    pub fn sum(attr: AttrId, selection: Query) -> Self {
        Self { function: AggregateFn::Sum(attr), selection }
    }

    /// Validates the spec against a schema.
    ///
    /// # Errors
    /// Returns [`EstimatorError::InvalidAggregate`] if the SUM attribute
    /// is out of range or lacks a numeric interpretation, and propagates
    /// selection-query validation failures.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        self.selection.validate(schema)?;
        if let AggregateFn::Sum(attr) = self.function {
            if attr >= schema.len() {
                return Err(EstimatorError::InvalidAggregate(format!(
                    "SUM attribute id {attr} out of range (schema has {})",
                    schema.len()
                )));
            }
            if !schema.attribute(attr).is_numeric() {
                return Err(EstimatorError::InvalidAggregate(format!(
                    "SUM over attribute `{}` requires a numeric interpretation",
                    schema.attribute(attr).name()
                )));
            }
        }
        Ok(())
    }

    /// The measure of a set of returned tuples under this aggregate.
    fn measure(&self, schema: &Schema, tuples: &[ReturnedTuple]) -> f64 {
        match self.function {
            AggregateFn::Count => tuples.len() as f64,
            AggregateFn::Sum(attr) => {
                let a = schema.attribute(attr);
                tuples
                    .iter()
                    .map(|t| a.numeric_value(t.tuple.value(attr)).expect("validated numeric"))
                    .sum()
            }
        }
    }
}

/// Result of an estimation run.
#[derive(Clone, Copy, Debug)]
pub struct AggEstimate {
    /// The running estimate (mean of per-pass unbiased estimates).
    pub estimate: f64,
    /// Number of completed estimation passes.
    pub passes: u64,
    /// Queries this estimator spent (interface-counter delta across its
    /// own passes).
    pub queries: u64,
    /// Standard error of the mean across passes (0 for a single pass).
    pub std_error: f64,
}

/// The `HD-UNBIASED-AGG` estimator.
///
/// Each [`UnbiasedAggEstimator::pass`] produces one unbiased estimate of
/// the aggregate; the running mean over passes converges with variance
/// `s²/passes`. Passes are **independent units of work**: pass `i` draws
/// its randomness from [`engine::pass_seed`]`(master_seed, i)` and, when
/// weight adjustment is on, learns branch weights only within its own
/// walks (the `r` drill-downs per subtree and the recursive
/// divide-&-conquer below them). Pass independence is what lets
/// [`UnbiasedAggEstimator::run_parallel`] fan passes across threads while
/// staying bit-identical to the sequential [`UnbiasedAggEstimator::run`]
/// regardless of worker count — and it keeps every pass individually
/// unbiased, whatever the weights (§4.1.1).
#[derive(Debug)]
pub struct UnbiasedAggEstimator {
    config: EstimatorConfig,
    spec: AggregateSpec,
    master_seed: u64,
    /// Index of the next pass to start; pass `i` is a pure function of
    /// `(config, spec, root outcome, master_seed, i)`.
    next_pass: u64,
    estimates: Vec<f64>,
    queries_spent: u64,
    root_outcome: Option<QueryOutcome>,
    levels: Option<Vec<AttrId>>,
    obs: Option<EngineObs>,
}

/// Observability handles an estimator records into when
/// [`UnbiasedAggEstimator::with_obs`] wired it to a registry. Recording
/// happens strictly after a pass's value is committed, so estimates are
/// bit-identical with or without it; the duration histogram fills only
/// for sequential passes (a parallel pass's wall time is
/// scheduling-dependent) and only when a [`Clock`] was supplied.
#[derive(Debug)]
struct EngineObs {
    passes: Counter,
    pass_nanos: Histogram,
    clock: Option<Arc<dyn Clock>>,
}

/// Runs one independent estimation pass: the whole pass (branch picks,
/// pass-local weight learning, divide-&-conquer recursion) consumes only
/// the RNG stream derived from `(master_seed, pass_index)`.
fn run_one_pass<I: TopKInterface>(
    config: &EstimatorConfig,
    spec: &AggregateSpec,
    levels: &[AttrId],
    root: &QueryOutcome,
    iface: &I,
    master_seed: u64,
    pass_index: u64,
) -> Result<f64> {
    let schema = iface.schema();
    match root {
        QueryOutcome::Underflow => Ok(0.0),
        QueryOutcome::Valid(tuples) => Ok(spec.measure(schema, tuples)),
        QueryOutcome::Overflow(_) => {
            let mut rng =
                StdRng::seed_from_u64(engine::pass_seed(master_seed, pass_index));
            let measure = |tuples: &[ReturnedTuple]| spec.measure(schema, tuples);
            let weights;
            let provider: &dyn WeightProvider = if config.weight_adjustment {
                weights = WeightModel::new(WeightModelConfig {
                    smoothing: config.smoothing,
                    empty_weight: config.empty_weight,
                    ..WeightModelConfig::default()
                });
                &weights
            } else {
                &UniformWeights
            };
            estimate_pass_with(
                iface,
                &spec.selection,
                levels,
                config.r,
                config.dub,
                provider,
                &measure,
                config.backtrack,
                &mut rng,
            )
        }
    }
}

impl UnbiasedAggEstimator {
    /// Creates an estimator for `spec` under `config`, seeding its RNG
    /// with `seed`.
    ///
    /// # Errors
    /// Returns [`EstimatorError::InvalidConfig`] for invalid
    /// configurations. Spec validation happens on first contact with an
    /// interface (the schema is needed).
    pub fn new(config: EstimatorConfig, spec: AggregateSpec, seed: u64) -> Result<Self> {
        config.validate()?;
        Ok(Self {
            config,
            spec,
            master_seed: seed,
            next_pass: 0,
            estimates: Vec::new(),
            queries_spent: 0,
            root_outcome: None,
            levels: None,
            obs: None,
        })
    }

    /// Wires this estimator to `registry`: completed passes bump
    /// `hdb_engine_passes_total`, and — when `clock` is supplied —
    /// sequential pass durations fill `hdb_engine_pass_nanos`. Purely
    /// additive: estimates and histories are bit-identical either way.
    #[must_use]
    pub fn with_obs(mut self, registry: &MetricsRegistry, clock: Option<Arc<dyn Clock>>) -> Self {
        self.obs = Some(EngineObs {
            passes: registry.counter("hdb_engine_passes_total"),
            pass_nanos: registry.histogram("hdb_engine_pass_nanos"),
            clock,
        });
        self
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &EstimatorConfig {
        &self.config
    }

    /// The aggregate specification.
    #[must_use]
    pub fn spec(&self) -> &AggregateSpec {
        &self.spec
    }

    /// Performs one estimation pass and returns its (individually
    /// unbiased) estimate.
    ///
    /// # Errors
    /// Propagates interface errors. A failed pass contributes nothing to
    /// the running mean; prior passes remain intact, so budget exhaustion
    /// mid-pass leaves a usable estimator.
    pub fn pass<I: TopKInterface>(&mut self, iface: &I) -> Result<f64> {
        let before = iface.queries_issued();
        let started = self
            .obs
            .as_ref()
            .and_then(|o| o.clock.as_ref().map(|c| c.now_nanos()));
        let result = self.pass_inner(iface);
        self.queries_spent += iface.queries_issued() - before;
        let estimate = result?;
        self.next_pass += 1;
        self.estimates.push(estimate);
        if let Some(obs) = &self.obs {
            obs.passes.inc();
            if let (Some(t0), Some(clock)) = (started, obs.clock.as_ref()) {
                obs.pass_nanos.observe(clock.now_nanos().saturating_sub(t0));
            }
        }
        Ok(estimate)
    }

    /// Resolves the level order and issues the root (selection) query
    /// once; under the static-database model a client never re-asks it.
    fn ensure_ready<I: TopKInterface>(&mut self, iface: &I) -> Result<()> {
        let schema = iface.schema();
        if self.levels.is_none() {
            self.spec.validate(schema)?;
            let fixed: Vec<AttrId> =
                self.spec.selection.predicates().iter().map(|p| p.attr).collect();
            self.levels = Some(self.config.order.resolve(schema, &fixed)?);
        }
        if self.root_outcome.is_none() {
            self.root_outcome = Some(iface.query(&self.spec.selection)?);
        }
        Ok(())
    }

    fn pass_inner<I: TopKInterface>(&mut self, iface: &I) -> Result<f64> {
        self.ensure_ready(iface)?;
        run_one_pass(
            &self.config,
            &self.spec,
            self.levels.as_deref().expect("resolved above"),
            self.root_outcome.as_ref().expect("just cached"),
            iface,
            self.master_seed,
            self.next_pass,
        )
    }

    /// Runs `passes` estimation passes and returns the summary.
    ///
    /// # Errors
    /// Propagates the first interface error, unless it is budget
    /// exhaustion *after* at least one completed pass — then the partial
    /// summary is returned (matching how a real client would behave when
    /// the site cuts it off).
    pub fn run<I: TopKInterface>(&mut self, iface: &I, passes: u64) -> Result<AggEstimate> {
        for _ in 0..passes {
            if let Err(e) = self.pass(iface) {
                if e.is_budget_exhausted() && !self.estimates.is_empty() {
                    break;
                }
                return Err(e);
            }
        }
        self.summary().ok_or(EstimatorError::InvalidConfig("no passes completed".into()))
    }

    /// Keeps running passes until this estimator has spent at least
    /// `query_budget` queries (always completing the pass in flight), then
    /// returns the summary.
    ///
    /// # Errors
    /// Same contract as [`UnbiasedAggEstimator::run`].
    pub fn run_until_budget<I: TopKInterface>(
        &mut self,
        iface: &I,
        query_budget: u64,
    ) -> Result<AggEstimate> {
        while self.queries_spent < query_budget {
            if let Err(e) = self.pass(iface) {
                if e.is_budget_exhausted() && !self.estimates.is_empty() {
                    break;
                }
                return Err(e);
            }
        }
        self.summary().ok_or(EstimatorError::InvalidConfig("no passes completed".into()))
    }

    /// Runs `passes` estimation passes fanned across `workers` OS
    /// threads.
    ///
    /// Because each pass draws from its own
    /// [`engine::pass_seed`]-derived RNG stream and results are merged in
    /// canonical pass-index order, the returned estimate, the per-pass
    /// [`UnbiasedAggEstimator::history`], and even
    /// [`UnbiasedAggEstimator::queries_spent`] are **bitwise identical**
    /// to the sequential [`UnbiasedAggEstimator::run`] for any
    /// `workers ≥ 1`. Pass `workers = `[`engine::default_workers`]`()`
    /// to honour the `HDB_ENGINE_WORKERS` environment variable.
    ///
    /// ```
    /// use hdb_core::{AggregateSpec, EstimatorConfig, UnbiasedAggEstimator};
    /// use hdb_interface::{HiddenDb, Schema, Table, Tuple};
    ///
    /// let tuples: Vec<Tuple> = (0..32u16)
    ///     .map(|i| Tuple::new((0..5).map(|b| (i >> b) & 1).collect()))
    ///     .collect();
    /// let db = HiddenDb::new(Table::new(Schema::boolean(5), tuples).unwrap(), 1);
    ///
    /// let mut seq = UnbiasedAggEstimator::new(
    ///     EstimatorConfig::plain(), AggregateSpec::database_size(), 7).unwrap();
    /// let mut par = UnbiasedAggEstimator::new(
    ///     EstimatorConfig::plain(), AggregateSpec::database_size(), 7).unwrap();
    /// let s = seq.run(&db, 60).unwrap();
    /// let p = par.run_parallel(&db, 60, 4).unwrap();
    /// assert_eq!(s.estimate.to_bits(), p.estimate.to_bits());
    /// assert_eq!(seq.history(), par.history());
    /// ```
    ///
    /// The bitwise guarantee extends to `queries_spent` for interfaces
    /// whose per-query charge is history-independent (a plain
    /// [`HiddenDb`](hdb_interface::HiddenDb) charges every issued query);
    /// a concurrently raced cache such as
    /// [`CachingInterface`](hdb_interface::CachingInterface) may charge a
    /// racing duplicate miss, so there only the estimate and history are
    /// scheduling-independent.
    ///
    /// # Errors
    /// Interface errors propagate, with two cases:
    /// * **budget exhaustion** — the completed passes are kept and the
    ///   partial summary returned, exactly as in the sequential
    ///   [`UnbiasedAggEstimator::run`]. Interfaces that meter a budget
    ///   ([`TopKInterface::budget_remaining`] returns `Some`) run in
    ///   wave-barriered chunks: fully parallel while the remaining budget
    ///   comfortably exceeds a chunk's expected spend, switching to
    ///   canonical single-thread claiming as exhaustion nears — so the
    ///   completed-pass set of a budget-cut run is the deterministic
    ///   sequential one for any worker count, not an accident of thread
    ///   scheduling. (Only if a single pass costs more than ~8× the
    ///   running mean can the cut land inside a parallel chunk; that
    ///   chunk is then discarded whole, keeping the history canonical,
    ///   though the wasted spend is scheduling-dependent.)
    /// * **any other error** — the failing fan-out commits nothing:
    ///   estimates, history, and the pass cursor are exactly as before
    ///   it started, so a retry re-runs the same pass indices
    ///   deterministically.
    pub fn run_parallel<I: TopKInterface + Sync>(
        &mut self,
        iface: &I,
        passes: u64,
        workers: usize,
    ) -> Result<AggEstimate> {
        self.run_fanned(iface, Some(passes), None, workers)
    }

    /// Parallel counterpart of [`UnbiasedAggEstimator::run_until_budget`]:
    /// passes run in waves of `workers`, with the estimator's spend
    /// checked at each wave barrier, until at least `query_budget`
    /// queries are spent.
    ///
    /// Unlike [`UnbiasedAggEstimator::run_parallel`], the **number** of
    /// passes performed depends on the worker count (the final wave may
    /// overshoot the budget by up to `workers` passes) — but for
    /// interfaces whose per-query charge is history-independent it is a
    /// deterministic function of `(seed, query_budget, workers)`, because
    /// the spend compared at each barrier is the sum of deterministic
    /// per-pass costs, not a mid-flight racy read. (Under a concurrently
    /// raced cache such as
    /// [`CachingInterface`](hdb_interface::CachingInterface), duplicate
    /// misses can perturb the spend and hence the wave count.) Every
    /// individual pass value is deterministic in its pass index
    /// regardless.
    ///
    /// # Errors
    /// Same contract as [`UnbiasedAggEstimator::run_parallel`]; a
    /// non-budget error in a wave leaves the passes committed by earlier
    /// waves intact and the pass cursor at the failing wave's start.
    pub fn run_until_budget_parallel<I: TopKInterface + Sync>(
        &mut self,
        iface: &I,
        query_budget: u64,
        workers: usize,
    ) -> Result<AggEstimate> {
        self.run_fanned(iface, None, Some(query_budget), workers)
    }

    /// Shared body of the parallel runners: fan passes out, merge in
    /// canonical order, and commit to estimator state only on success or
    /// budget exhaustion.
    ///
    /// Determinism of budget cuts: against a metered interface
    /// ([`TopKInterface::budget_remaining`] is `Some`) passes run in
    /// wave-barriered chunks — fully parallel while the remaining budget
    /// comfortably exceeds the chunk's expected spend, canonical
    /// single-thread claiming once exhaustion nears — so the moment the
    /// budget runs dry, and therefore the completed-pass set, is
    /// identical to the sequential run's. Self-budgeted runs
    /// (`query_budget`) proceed in waves of `workers` passes with the
    /// spend compared only at wave barriers, where it is a sum of
    /// deterministic per-pass costs.
    fn run_fanned<I: TopKInterface + Sync>(
        &mut self,
        iface: &I,
        passes: Option<u64>,
        query_budget: Option<u64>,
        workers: usize,
    ) -> Result<AggEstimate> {
        let before = iface.queries_issued();
        let ready = self.ensure_ready(iface);
        self.queries_spent += iface.queries_issued() - before;
        ready?;
        let workers = workers.max(1);
        let metered = iface.budget_remaining().is_some();
        let mut budget_error = None;
        if !metered && query_budget.is_none() {
            // Unmetered fixed-pass run: one fan-out, no barriers needed.
            budget_error =
                self.fan_chunk(iface, passes.expect("bounded by passes"), workers, true)?;
        } else {
            // Chunked: wave barriers are where budgets can be checked
            // deterministically (the spend there is a sum of completed
            // per-pass costs, not a mid-flight racy read).
            let mut remaining = passes;
            loop {
                if budget_error.is_some() || remaining == Some(0) {
                    break;
                }
                if let Some(b) = query_budget {
                    if self.queries_spent >= b {
                        break;
                    }
                }
                // With no cost estimate yet, a metered run probes with a
                // single serial pass instead of serialising a whole
                // workers-sized chunk — startup parallelism matters most
                // in exactly the slow-remote metered scenario.
                let chunk = if metered && self.estimates.is_empty() {
                    1
                } else {
                    remaining.map_or(workers as u64, |r| r.min(workers as u64))
                };
                let chunk_workers =
                    if metered { self.safe_parallel_workers(iface, workers, chunk) } else { workers };
                // A parallel chunk that a budget cut lands in anyway
                // (margin breached by a pathological pass) commits
                // nothing, so the committed history stays chunk-aligned
                // and canonical; serial chunks commit their prefix,
                // which is exactly the sequential behaviour.
                budget_error = self.fan_chunk(iface, chunk, chunk_workers, chunk_workers == 1)?;
                if let Some(r) = remaining.as_mut() {
                    *r -= chunk;
                }
            }
        }
        match self.summary() {
            Some(s) => Ok(s),
            None => Err(budget_error
                .unwrap_or_else(|| EstimatorError::InvalidConfig("no passes completed".into()))),
        }
    }

    /// Decides how many workers may run the next chunk of `chunk` passes
    /// against a metered interface: full parallelism while the remaining
    /// budget is at least 8× the chunk's expected spend (observed mean
    /// cost per pass), canonical single-thread claiming once exhaustion
    /// is near — or before any pass has completed (no cost estimate yet).
    fn safe_parallel_workers<I: TopKInterface>(
        &self,
        iface: &I,
        workers: usize,
        chunk: u64,
    ) -> usize {
        if workers == 1 {
            return 1;
        }
        let Some(remaining) = iface.budget_remaining() else { return workers };
        let done = self.estimates.len() as u64;
        if done == 0 {
            return 1;
        }
        let mean_cost = (self.queries_spent / done).max(1);
        let margin = chunk.saturating_mul(mean_cost).saturating_mul(8);
        if remaining >= margin {
            workers
        } else {
            1
        }
    }

    /// Runs one fan-out of `n` passes starting at the current pass cursor
    /// and commits its results in canonical pass-index order.
    ///
    /// Returns `Ok(Some(err))` when interface budget exhaustion cut the
    /// chunk short. With `commit_prefix` the contiguous prefix of
    /// completed passes is committed and everything past the first
    /// incomplete index discarded (sequential semantics for serial
    /// chunks); without it a cut chunk commits nothing at all
    /// (all-or-nothing for parallel chunks, whose prefix length would be
    /// scheduling-dependent). Any other worker error aborts without
    /// committing anything from this chunk, leaving the pass cursor where
    /// it started so a retry re-runs the same indices deterministically.
    fn fan_chunk<I: TopKInterface + Sync>(
        &mut self,
        iface: &I,
        n: u64,
        workers: usize,
        commit_prefix: bool,
    ) -> Result<Option<EstimatorError>> {
        let before = iface.queries_issued();
        let base = self.next_pass;
        let (config, spec, master) = (&self.config, &self.spec, self.master_seed);
        let levels = self.levels.as_deref().expect("resolved");
        let root = self.root_outcome.as_ref().expect("cached");
        let out = engine::fan_out(n, workers, |i| {
            run_one_pass(config, spec, levels, root, iface, master, base + i)
        });
        self.queries_spent += iface.queries_issued() - before;
        let budget_error = match out.error {
            // A non-budget error aborts without committing any of this
            // chunk's passes (other workers may have completed later
            // indices, but recording them would leave a hole at the
            // failed index and break sequential parity on retry).
            Some(e) if !e.is_budget_exhausted() => return Err(e),
            other => other,
        };
        if budget_error.is_some() && !commit_prefix {
            return Ok(budget_error);
        }
        // Replay results in canonical pass-index order (arrival order is
        // scheduling-dependent; the committed fold must not be) and stop
        // at the first gap: under a budget cut, stragglers past an
        // incomplete index never become part of the history.
        let mut results = out.results;
        results.sort_unstable_by_key(|&(i, _)| i);
        let mut committed = 0u64;
        for &(i, v) in &results {
            if i != committed {
                break;
            }
            self.estimates.push(v);
            committed += 1;
        }
        self.next_pass = base + committed;
        if let Some(obs) = &self.obs {
            // Counted only once committed (discarded chunks never ran to
            // completion as far as the history is concerned); durations
            // are not recorded here — a parallel pass's wall time is an
            // artefact of scheduling, not of the work.
            obs.passes.add(committed);
        }
        Ok(budget_error)
    }

    /// The running estimate (mean of pass estimates), if any pass has
    /// completed.
    #[must_use]
    pub fn estimate(&self) -> Option<f64> {
        if self.estimates.is_empty() {
            None
        } else {
            Some(self.estimates.iter().sum::<f64>() / self.estimates.len() as f64)
        }
    }

    /// Per-pass estimates, in order.
    #[must_use]
    pub fn history(&self) -> &[f64] {
        &self.estimates
    }

    /// Queries spent by this estimator so far.
    #[must_use]
    pub fn queries_spent(&self) -> u64 {
        self.queries_spent
    }

    /// The current summary, if any pass has completed.
    #[must_use]
    pub fn summary(&self) -> Option<AggEstimate> {
        let n = self.estimates.len();
        if n == 0 {
            return None;
        }
        let mean = self.estimates.iter().sum::<f64>() / n as f64;
        let std_error = if n < 2 {
            0.0
        } else {
            let var = self.estimates.iter().map(|e| (e - mean).powi(2)).sum::<f64>()
                / (n - 1) as f64;
            (var / n as f64).sqrt()
        };
        Some(AggEstimate {
            estimate: mean,
            passes: n as u64,
            queries: self.queries_spent,
            std_error,
        })
    }
}

/// The **biased** AVG estimate formed by dividing unbiased SUM and COUNT
/// estimates. The paper (§5.2) shows unbiased AVG estimation is not
/// achievable this way; the name keeps the caveat in the caller's face.
/// Returns `None` when the count estimate is not positive.
#[must_use]
pub fn ratio_avg(sum_estimate: f64, count_estimate: f64) -> Option<f64> {
    (count_estimate > 0.0).then(|| sum_estimate / count_estimate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdb_interface::{Attribute, HiddenDb, Schema, Table, Tuple};

    fn db() -> HiddenDb {
        // 8 tuples over (bool, bool, price∈0..4)
        let schema = Schema::new(vec![
            Attribute::boolean("a"),
            Attribute::boolean("b"),
            Attribute::numeric_buckets("price", 4).unwrap(),
        ])
        .unwrap();
        let tuples: Vec<Tuple> = vec![
            vec![0, 0, 0],
            vec![0, 0, 3],
            vec![0, 1, 1],
            vec![0, 1, 2],
            vec![1, 0, 2],
            vec![1, 0, 3],
            vec![1, 1, 0],
            vec![1, 1, 3],
        ]
        .into_iter()
        .map(Tuple::new)
        .collect();
        HiddenDb::new(Table::new(schema, tuples).unwrap(), 1)
    }

    #[test]
    fn count_all_is_unbiased() {
        let db = db();
        let mut est = UnbiasedAggEstimator::new(
            EstimatorConfig::plain(),
            AggregateSpec::database_size(),
            7,
        )
        .unwrap();
        let summary = est.run(&db, 3000).unwrap();
        assert_eq!(summary.passes, 3000);
        assert!((summary.estimate - 8.0).abs() < 0.3, "estimate {}", summary.estimate);
        assert!(summary.queries > 0);
    }

    #[test]
    fn sum_with_selection_is_unbiased() {
        let db = db();
        // SUM(price) WHERE a = 1 → tuples (1,0,2),(1,0,3),(1,1,0),(1,1,3) = 8
        let selection = Query::all().and(0, 1).unwrap();
        let mut est = UnbiasedAggEstimator::new(
            EstimatorConfig::plain(),
            AggregateSpec::sum(2, selection),
            11,
        )
        .unwrap();
        let summary = est.run(&db, 4000).unwrap();
        assert!((summary.estimate - 8.0).abs() < 0.4, "estimate {}", summary.estimate);
    }

    #[test]
    fn valid_root_returns_exact_answer() {
        // k large enough that the selection query itself is valid →
        // exact answer, zero variance, one query ever.
        let schema = Schema::new(vec![
            Attribute::boolean("a"),
            Attribute::numeric_buckets("v", 4).unwrap(),
        ])
        .unwrap();
        let tuples: Vec<Tuple> =
            vec![vec![0, 1], vec![0, 2], vec![1, 3]].into_iter().map(Tuple::new).collect();
        let db = HiddenDb::new(Table::new(schema, tuples).unwrap(), 10);
        let mut est = UnbiasedAggEstimator::new(
            EstimatorConfig::plain(),
            AggregateSpec::sum(1, Query::all()),
            1,
        )
        .unwrap();
        let summary = est.run(&db, 50).unwrap();
        assert_eq!(summary.estimate, 6.0);
        assert_eq!(summary.std_error, 0.0);
        assert_eq!(db.queries_issued(), 1, "root outcome must be cached across passes");
    }

    #[test]
    fn underflowing_selection_estimates_zero() {
        let db = db();
        // a=0 ∧ b=0 ∧ price=1 matches nothing
        let selection = Query::all()
            .and(0, 0)
            .unwrap()
            .and(1, 0)
            .unwrap()
            .and(2, 1)
            .unwrap();
        let mut est =
            UnbiasedAggEstimator::new(EstimatorConfig::plain(), AggregateSpec::count(selection), 1)
                .unwrap();
        let summary = est.run(&db, 10).unwrap();
        assert_eq!(summary.estimate, 0.0);
    }

    #[test]
    fn sum_requires_numeric_attribute() {
        let schema = Schema::new(vec![
            Attribute::boolean("a"),
            Attribute::categorical("c", ["x", "y"]).unwrap(),
        ])
        .unwrap();
        let t = Table::new(schema, vec![Tuple::new(vec![0, 0]), Tuple::new(vec![1, 1])]).unwrap();
        let db = HiddenDb::new(t, 1);
        let mut est = UnbiasedAggEstimator::new(
            EstimatorConfig::plain(),
            AggregateSpec::sum(1, Query::all()),
            1,
        )
        .unwrap();
        let err = est.pass(&db).unwrap_err();
        assert!(matches!(err, EstimatorError::InvalidAggregate(_)));
    }

    #[test]
    fn budget_exhaustion_preserves_partial_results() {
        let schema = Schema::boolean(6);
        let tuples: Vec<Tuple> = (0..40u16)
            .map(|i| {
                Tuple::new((0..6).map(|b| (i >> b) & 1).collect())
            })
            .collect();
        let db = HiddenDb::new(Table::new(schema, tuples).unwrap(), 1).with_budget(60);
        let mut est = UnbiasedAggEstimator::new(
            EstimatorConfig::plain(),
            AggregateSpec::database_size(),
            3,
        )
        .unwrap();
        let summary = est.run(&db, 1_000_000).unwrap();
        assert!(summary.passes >= 1);
        assert!(summary.queries <= 60);
        assert!(summary.estimate > 0.0);
    }

    #[test]
    fn weight_adjustment_keeps_unbiasedness() {
        let db = db();
        let cfg = EstimatorConfig::plain().with_weight_adjustment(true);
        let mut est =
            UnbiasedAggEstimator::new(cfg, AggregateSpec::database_size(), 23).unwrap();
        let summary = est.run(&db, 4000).unwrap();
        assert!((summary.estimate - 8.0).abs() < 0.3, "estimate {}", summary.estimate);
    }

    #[test]
    fn hd_full_config_is_unbiased() {
        let db = db();
        let cfg = EstimatorConfig::hd_default().with_dub(4).with_r(2);
        let mut est =
            UnbiasedAggEstimator::new(cfg, AggregateSpec::database_size(), 29).unwrap();
        let summary = est.run(&db, 4000).unwrap();
        assert!((summary.estimate - 8.0).abs() < 0.3, "estimate {}", summary.estimate);
    }

    #[test]
    fn ratio_avg_flags_bias_in_name_and_guards_zero() {
        assert_eq!(ratio_avg(10.0, 4.0), Some(2.5));
        assert_eq!(ratio_avg(10.0, 0.0), None);
        assert_eq!(ratio_avg(10.0, -1.0), None);
    }

    #[test]
    fn run_parallel_matches_sequential_bitwise() {
        for workers in [1usize, 3] {
            let mut seq = UnbiasedAggEstimator::new(
                EstimatorConfig::hd_default().with_dub(4),
                AggregateSpec::database_size(),
                71,
            )
            .unwrap();
            let s = seq.run(&db(), 200).unwrap();
            let mut par = UnbiasedAggEstimator::new(
                EstimatorConfig::hd_default().with_dub(4),
                AggregateSpec::database_size(),
                71,
            )
            .unwrap();
            let p = par.run_parallel(&db(), 200, workers).unwrap();
            assert_eq!(s.estimate.to_bits(), p.estimate.to_bits(), "workers={workers}");
            assert_eq!(seq.history(), par.history(), "workers={workers}");
            assert_eq!(s.queries, p.queries, "workers={workers}");
        }
    }

    #[test]
    fn run_until_budget_parallel_spends_at_least_budget() {
        let db = db();
        let mut est = UnbiasedAggEstimator::new(
            EstimatorConfig::plain(),
            AggregateSpec::database_size(),
            5,
        )
        .unwrap();
        let summary = est.run_until_budget_parallel(&db, 100, 4).unwrap();
        assert!(summary.queries >= 100);
        assert!(summary.passes > 1);
        assert_eq!(summary.passes as usize, est.history().len());
    }

    #[test]
    fn parallel_budget_exhaustion_preserves_partial_results() {
        let schema = Schema::boolean(6);
        let tuples: Vec<Tuple> =
            (0..40u16).map(|i| Tuple::new((0..6).map(|b| (i >> b) & 1).collect())).collect();
        let db = HiddenDb::new(Table::new(schema, tuples).unwrap(), 1).with_budget(60);
        let mut est = UnbiasedAggEstimator::new(
            EstimatorConfig::plain(),
            AggregateSpec::database_size(),
            3,
        )
        .unwrap();
        let summary = est.run_parallel(&db, 1_000_000, 4).unwrap();
        assert!(summary.passes >= 1);
        assert!(summary.queries <= 60);
        assert!(summary.estimate > 0.0);
    }

    #[test]
    fn ample_metered_budget_keeps_parallel_parity() {
        // A budget nowhere near exhaustion must not change anything:
        // chunks run in parallel after the first (serial, cost-probing)
        // one, and the results match the unlimited run bit for bit.
        let mut unlimited = UnbiasedAggEstimator::new(
            EstimatorConfig::plain(),
            AggregateSpec::database_size(),
            9,
        )
        .unwrap();
        let reference = unlimited.run(&db(), 120).unwrap();
        let metered = db().with_budget(1_000_000);
        let mut est = UnbiasedAggEstimator::new(
            EstimatorConfig::plain(),
            AggregateSpec::database_size(),
            9,
        )
        .unwrap();
        let summary = est.run_parallel(&metered, 120, 4).unwrap();
        assert_eq!(reference.estimate.to_bits(), summary.estimate.to_bits());
        assert_eq!(unlimited.history(), est.history());
        assert_eq!(reference.queries, summary.queries);
    }

    #[test]
    fn run_until_budget_spends_at_least_budget() {
        let db = db();
        let mut est = UnbiasedAggEstimator::new(
            EstimatorConfig::plain(),
            AggregateSpec::database_size(),
            5,
        )
        .unwrap();
        let summary = est.run_until_budget(&db, 100).unwrap();
        assert!(summary.queries >= 100);
        assert!(summary.passes > 1);
    }
}
