//! Weight adjustment (paper §4.1): learn branch weights from "pilot"
//! drill-downs so that the selection probability of each top-valid node
//! tracks its share of the measure, shrinking the estimator variance.
//!
//! For a node with branches `q_C1 … q_Cw`, the ideal branch weight is the
//! measure mass `|D_Ci|` of the sub-database under each branch; Eq. (6)
//! estimates it from historic walks through the branch:
//!
//! ```text
//! |D_Ci| ≈ (1/s) Σ_j  value(q_Hj) / p(q_Hj | q_Ci)
//! ```
//!
//! where `value` is the walk's terminal measure (tuple count for size
//! estimation) and `p(q_Hj | q_Ci)` the walk's conditional probability
//! below the branch — both recorded exactly by the walk machinery.
//!
//! **Unbiasedness is never at stake here** (paper §4.1.1): whatever the
//! weights, the walk computes its exact selection probability *under
//! those weights*, so the Horvitz–Thompson correction stays exact.
//! Accordingly the model may shrink estimates, learn from recursive
//! divide-&-conquer values, and mark branches it saw underflow — all
//! heuristics that only affect variance and query cost. Two invariants
//! are load-bearing: every weight is strictly positive, and the weights
//! used by a walk are those *before* that walk's own update.

use std::cell::RefCell;
use std::collections::BTreeMap;

use hdb_interface::{AttrId, ValueId};

use crate::walk::{PathStep, WalkLevel, WeightProvider};

/// Floor for weight computations, guarding strict positivity.
const WEIGHT_FLOOR: f64 = 1e-9;

/// Per-branch statistics at one tree node.
#[derive(Clone, Debug, Default)]
struct BranchStat {
    /// Number of historic walks through this branch.
    visits: u64,
    /// Σ value / p(terminal | branch) over those walks.
    sum: f64,
    /// Whether the branch was ever observed to underflow (then it is
    /// empty forever under the static-database model).
    known_empty: bool,
}

/// One node of the learned tree.
#[derive(Clone, Debug, Default)]
struct Node {
    stats: BTreeMap<ValueId, BranchStat>,
    children: BTreeMap<ValueId, Node>,
}

impl Node {
    fn descend(&self, steps: &[PathStep]) -> Option<&Node> {
        let mut node = self;
        for &(_, value) in steps {
            node = node.children.get(&value)?;
        }
        Some(node)
    }

    fn descend_or_create(&mut self, steps: &[PathStep]) -> &mut Node {
        let mut node = self;
        for &(_, value) in steps {
            node = node.children.entry(value).or_default();
        }
        node
    }
}

/// Tuning knobs for the weight model.
#[derive(Clone, Copy, Debug)]
pub struct WeightModelConfig {
    /// Shrinkage pseudo-count toward the node-local prior.
    pub smoothing: f64,
    /// Weight for branches known to underflow.
    pub empty_weight: f64,
    /// Defensive mixture floor: every branch not known to underflow gets
    /// at least this fraction of the node's mean weight. Pilot subtree
    /// estimates are heavy-tailed; without a floor, one unlucky pilot can
    /// assign a heavy branch a minuscule probability and a later walk
    /// through it then contributes a huge `value/p` term. The floor
    /// bounds that inflation at `≈ fanout/min_fraction` of the uniform
    /// variance while leaving well-estimated weights untouched —
    /// unbiasedness is unaffected (weights stay exactly known).
    pub min_fraction: f64,
    /// Visit gate: learned (non-uniform) weights are only used at a node
    /// once it has accumulated at least this many pilot walks per live
    /// branch. A branch-mass estimate built from one or two walks is
    /// pure noise — acting on it *increases* variance, the classic
    /// failure mode of adaptive importance sampling. Below the gate the
    /// node uses uniform weights (known-empty branches still get
    /// [`WeightModelConfig::empty_weight`], which only saves scan
    /// queries).
    pub min_visits_per_branch: f64,
    /// Geometric damping exponent `α ∈ [0, 1]` applied to the learned
    /// weight's ratio to the node prior: `w = prior·(est/prior)^α`.
    /// `α = 1` trusts the pilot estimates fully; smaller values shrink
    /// the applied skew on a log scale, which keeps most of the benefit
    /// when the true masses really are skewed while halving the damage
    /// when the estimates are noise. `α = 0.5` is the classic
    /// conservative choice for adaptive importance sampling.
    pub damping: f64,
}

impl Default for WeightModelConfig {
    fn default() -> Self {
        Self {
            smoothing: 1.0,
            empty_weight: 1e-3,
            min_fraction: 0.2,
            min_visits_per_branch: 2.0,
            damping: 0.5,
        }
    }
}

/// The learned branch-weight model (interior-mutable: the walk reports
/// underflow discoveries while it holds a shared reference).
#[derive(Debug)]
pub struct WeightModel {
    config: WeightModelConfig,
    root: RefCell<Node>,
}

impl WeightModel {
    /// An empty model.
    #[must_use]
    pub fn new(config: WeightModelConfig) -> Self {
        Self { config, root: RefCell::new(Node::default()) }
    }

    /// Incorporates a completed walk: `prefix` is the subtree root's
    /// global path, `levels` the walk's committed levels, and `value` the
    /// terminal measure (tuple count / SUM contribution for top-valid
    /// terminals, the recursive subtree estimate for bottom-overflow
    /// terminals).
    ///
    /// Each level's branch accumulates `value / p(terminal | branch)`,
    /// where the conditional probability is the product of the
    /// *deeper* levels' probabilities — exactly Eq. (6).
    pub fn record(&self, prefix: &[PathStep], levels: &[WalkLevel], value: f64) {
        if levels.is_empty() {
            return;
        }
        // suffix_p[i] = Π_{j > i} levels[j].probability
        let mut suffix_p = vec![1.0; levels.len()];
        for i in (0..levels.len() - 1).rev() {
            suffix_p[i] = suffix_p[i + 1] * levels[i + 1].probability;
        }
        let mut root = self.root.borrow_mut();
        let mut node = root.descend_or_create(prefix);
        for (i, level) in levels.iter().enumerate() {
            let stat = node.stats.entry(level.value).or_default();
            stat.visits += 1;
            stat.sum += value / suffix_p[i];
            node = node.children.entry(level.value).or_default();
        }
    }

    /// Number of walks recorded through the root node (diagnostics).
    #[must_use]
    pub fn walks_recorded(&self) -> u64 {
        self.root.borrow().stats.values().map(|s| s.visits).sum()
    }
}

impl WeightProvider for WeightModel {
    fn weights(&self, path: &[PathStep], _attr: AttrId, fanout: usize) -> Vec<f64> {
        let root = self.root.borrow();
        let Some(node) = root.descend(path) else {
            return vec![1.0; fanout];
        };
        // Node-local prior: the average per-visit estimate across
        // explored branches, so unexplored branches look "typical".
        let (total_sum, total_visits) = node
            .stats
            .values()
            .filter(|s| !s.known_empty)
            .fold((0.0, 0u64), |(s, v), stat| (s + stat.sum, v + stat.visits));
        let prior = if total_visits > 0 {
            (total_sum / total_visits as f64).max(WEIGHT_FLOOR)
        } else {
            1.0
        };
        // Visit gate: with too few pilot walks the mass estimates are
        // noise — fall back to uniform (empty steering still applies).
        let known_empty_flag =
            |v: ValueId| node.stats.get(&v).is_some_and(|s| s.known_empty);
        let live_count = (0..fanout).filter(|&v| !known_empty_flag(v as ValueId)).count();
        if (total_visits as f64) < self.config.min_visits_per_branch * live_count as f64 {
            return (0..fanout as ValueId)
                .map(|v| if known_empty_flag(v) { self.config.empty_weight } else { 1.0 })
                .collect();
        }
        let mut weights: Vec<f64> = (0..fanout as ValueId)
            .map(|v| match node.stats.get(&v) {
                Some(stat) if stat.known_empty => self.config.empty_weight,
                Some(stat) => {
                    let shrunk = (stat.sum + self.config.smoothing * prior)
                        / (stat.visits as f64 + self.config.smoothing);
                    let damped = prior * (shrunk / prior).powf(self.config.damping);
                    damped.max(WEIGHT_FLOOR)
                }
                None => prior,
            })
            .collect();
        // Defensive mixture floor over branches not known to underflow.
        let known_empty =
            |v: ValueId| node.stats.get(&v).is_some_and(|s| s.known_empty);
        let live: Vec<usize> =
            (0..fanout).filter(|&v| !known_empty(v as ValueId)).collect();
        if !live.is_empty() {
            let mean: f64 =
                live.iter().map(|&v| weights[v]).sum::<f64>() / live.len() as f64;
            let floor = self.config.min_fraction * mean;
            for &v in &live {
                if weights[v] < floor {
                    weights[v] = floor;
                }
            }
        }
        weights
    }

    fn observe_empty(&self, path: &[PathStep], _attr: AttrId, value: ValueId) {
        let mut root = self.root.borrow_mut();
        let node = root.descend_or_create(path);
        node.stats.entry(value).or_default().known_empty = true;
    }

    fn record_walk(&self, prefix: &[PathStep], levels: &[WalkLevel], value: f64) {
        self.record(prefix, levels, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn level(attr: AttrId, value: ValueId, probability: f64) -> WalkLevel {
        WalkLevel { attr, value, probability }
    }

    #[test]
    fn unexplored_model_is_uniform() {
        let m = WeightModel::new(WeightModelConfig::default());
        assert_eq!(m.weights(&[], 0, 3), vec![1.0, 1.0, 1.0]);
        assert_eq!(m.weights(&[(0, 1)], 1, 2), vec![1.0, 1.0]);
    }

    #[test]
    fn record_walk_implements_equation_6() {
        let m = WeightModel::new(WeightModelConfig {
            smoothing: 1e-12,
            empty_weight: 1e-3,
            min_fraction: 0.0,
            min_visits_per_branch: 0.0,
            damping: 1.0,
        });
        // walk: root --(A0=1, p=1/2)--> --(A1=0, p=1/4)--> top-valid, |q| = 2
        m.record(&[], &[level(0, 1, 0.5), level(1, 0, 0.25)], 2.0);
        // root branch 1: contribution 2 / 0.25 = 8 (paper's example form)
        let w = m.weights(&[], 0, 2);
        assert!((w[1] - 8.0).abs() < 1e-6, "root branch-1 weight {}", w[1]);
        // child node branch 0: contribution 2 / 1 = 2
        let w = m.weights(&[(0, 1)], 1, 2);
        assert!((w[0] - 2.0).abs() < 1e-6, "child branch-0 weight {}", w[0]);
    }

    #[test]
    fn paper_example_subtree_estimate() {
        // §4.1.1: one historic drill-down through q1 (p = 1/2) hitting q4
        // (p = 1/4) with |q4| = 1 estimates q1's subtree as
        // 1 · (1/2)/(1/4) = 2.
        let m = WeightModel::new(WeightModelConfig {
            smoothing: 1e-12,
            empty_weight: 1e-3,
            min_fraction: 0.0,
            min_visits_per_branch: 0.0,
            damping: 1.0,
        });
        m.record(&[], &[level(0, 1, 0.5), level(1, 0, 0.5)], 1.0);
        let w = m.weights(&[], 0, 2);
        assert!((w[1] - 2.0).abs() < 1e-6, "q1 weight {}", w[1]);
    }

    #[test]
    fn known_empty_branches_get_small_weight() {
        let m = WeightModel::new(WeightModelConfig::default());
        m.observe_empty(&[], 0, 2);
        let w = m.weights(&[], 0, 4);
        assert_eq!(w[2], 1e-3);
        assert_eq!(w[0], 1.0);
    }

    #[test]
    fn weights_always_strictly_positive() {
        let m = WeightModel::new(WeightModelConfig::default());
        // record a zero-valued walk (possible for SUM aggregates)
        m.record(&[], &[level(0, 0, 1.0)], 0.0);
        m.observe_empty(&[], 0, 1);
        for w in m.weights(&[], 0, 3) {
            assert!(w > 0.0, "weight {w} must be positive");
        }
    }

    #[test]
    fn shrinkage_pulls_toward_prior() {
        let m = WeightModel::new(WeightModelConfig {
            smoothing: 1.0,
            empty_weight: 1e-3,
            min_fraction: 0.0,
            min_visits_per_branch: 0.0,
            damping: 1.0,
        });
        // branch 0 visited often with value 10, branch 1 once with 1000
        for _ in 0..100 {
            m.record(&[], &[level(0, 0, 1.0)], 10.0);
        }
        m.record(&[], &[level(0, 1, 1.0)], 1000.0);
        let w = m.weights(&[], 0, 3);
        // branch 0 ≈ 10 (well-estimated), branch 1 pulled below 1000
        assert!((w[0] - 10.0).abs() < 2.0, "w0 = {}", w[0]);
        assert!(w[1] < 1000.0 && w[1] > 100.0, "w1 = {}", w[1]);
        // unexplored branch 2 gets the prior = overall mean
        let expected_prior = (100.0 * 10.0 + 1000.0) / 101.0;
        assert!((w[2] - expected_prior).abs() < 1e-9, "w2 = {}", w[2]);
    }

    #[test]
    fn walks_recorded_counts_root_visits() {
        let m = WeightModel::new(WeightModelConfig::default());
        assert_eq!(m.walks_recorded(), 0);
        m.record(&[], &[level(0, 0, 1.0)], 1.0);
        m.record(&[], &[level(0, 1, 0.5)], 1.0);
        assert_eq!(m.walks_recorded(), 2);
    }

    #[test]
    fn empty_levels_are_ignored() {
        let m = WeightModel::new(WeightModelConfig::default());
        m.record(&[], &[], 5.0);
        assert_eq!(m.walks_recorded(), 0);
    }

    #[test]
    fn prefixed_walks_update_deep_nodes() {
        let m = WeightModel::new(WeightModelConfig {
            smoothing: 1e-12,
            empty_weight: 1e-3,
            min_fraction: 0.0,
            min_visits_per_branch: 0.0,
            damping: 1.0,
        });
        let prefix = [(0usize, 1u16), (1, 0)];
        m.record(&prefix, &[level(2, 1, 0.5)], 3.0);
        let w = m.weights(&prefix, 2, 2);
        assert!((w[1] - 3.0).abs() < 1e-6);
        // the root is untouched
        assert_eq!(m.weights(&[], 0, 2), vec![1.0, 1.0]);
    }
}
