//! `HD-UNBIASED-SIZE` and `BOOL-UNBIASED-SIZE`: unbiased estimation of
//! the hidden database size (`COUNT(*)`), the paper's headline problem.
//!
//! Both are thin specialisations of [`UnbiasedAggEstimator`] with the
//! `COUNT(*)` aggregate over the whole database:
//!
//! * [`UnbiasedSizeEstimator::plain`] — the bare backtracking random
//!   drill-down of §3 (the paper's `BOOL-UNBIASED-SIZE`, which the smart
//!   backtracking of §3.2 extends to categorical data). Unbiased, but
//!   possibly high-variance on skewed data.
//! * [`UnbiasedSizeEstimator::hd`] — the full `HD-UNBIASED-SIZE` with
//!   weight adjustment and divide-&-conquer (§4), the paper's headline
//!   estimator.

use hdb_interface::TopKInterface;

use crate::agg::{AggEstimate, AggregateSpec, UnbiasedAggEstimator};
use crate::config::EstimatorConfig;
use crate::error::Result;

/// Result of a size-estimation run (alias of the aggregate summary).
pub type SizeEstimate = AggEstimate;

/// Unbiased estimator of the number of tuples in a hidden database.
#[derive(Debug)]
pub struct UnbiasedSizeEstimator {
    inner: UnbiasedAggEstimator,
}

impl UnbiasedSizeEstimator {
    /// A size estimator with an explicit configuration.
    ///
    /// # Errors
    /// Returns [`crate::EstimatorError::InvalidConfig`] for invalid
    /// configurations.
    pub fn new(config: EstimatorConfig, seed: u64) -> Result<Self> {
        Ok(Self { inner: UnbiasedAggEstimator::new(config, AggregateSpec::database_size(), seed)? })
    }

    /// The plain backtracking estimator (`BOOL-UNBIASED-SIZE` /
    /// its categorical generalisation): no weight adjustment, no
    /// divide-&-conquer.
    ///
    /// # Errors
    /// Never fails in practice (the plain config is valid); kept fallible
    /// for API uniformity.
    pub fn plain(seed: u64) -> Result<Self> {
        Self::new(EstimatorConfig::plain(), seed)
    }

    /// The full `HD-UNBIASED-SIZE` with the paper's default parameters
    /// (`r = 4`, `D_UB = 32`, weight adjustment on).
    ///
    /// # Errors
    /// Never fails in practice; kept fallible for API uniformity.
    pub fn hd(seed: u64) -> Result<Self> {
        Self::new(EstimatorConfig::hd_default(), seed)
    }

    /// One estimation pass; the returned value is individually unbiased.
    ///
    /// # Errors
    /// Propagates interface errors; see [`UnbiasedAggEstimator::pass`].
    pub fn pass<I: TopKInterface>(&mut self, iface: &I) -> Result<f64> {
        self.inner.pass(iface)
    }

    /// Runs `passes` passes; see [`UnbiasedAggEstimator::run`].
    ///
    /// ```
    /// use hdb_core::UnbiasedSizeEstimator;
    /// use hdb_interface::{HiddenDb, Schema, Table, Tuple};
    ///
    /// // 40 tuples behind a top-1 interface
    /// let tuples: Vec<Tuple> = (0..40u16)
    ///     .map(|i| Tuple::new((0..6).map(|b| (i >> b) & 1).collect()))
    ///     .collect();
    /// let db = HiddenDb::new(Table::new(Schema::boolean(6), tuples).unwrap(), 1);
    ///
    /// let mut estimator = UnbiasedSizeEstimator::plain(42).unwrap();
    /// let result = estimator.run(&db, 200).unwrap();
    /// assert_eq!(result.passes, 200);
    /// assert!((result.estimate - 40.0).abs() < 8.0);
    /// ```
    ///
    /// # Errors
    /// Propagates interface errors other than budget exhaustion after at
    /// least one completed pass.
    pub fn run<I: TopKInterface>(&mut self, iface: &I, passes: u64) -> Result<SizeEstimate> {
        self.inner.run(iface, passes)
    }

    /// Runs passes until at least `query_budget` queries are spent; see
    /// [`UnbiasedAggEstimator::run_until_budget`].
    ///
    /// # Errors
    /// Propagates interface errors other than budget exhaustion after at
    /// least one completed pass.
    pub fn run_until_budget<I: TopKInterface>(
        &mut self,
        iface: &I,
        query_budget: u64,
    ) -> Result<SizeEstimate> {
        self.inner.run_until_budget(iface, query_budget)
    }

    /// Runs `passes` passes fanned across `workers` threads; bitwise
    /// identical to [`UnbiasedSizeEstimator::run`] for any worker count.
    /// See [`UnbiasedAggEstimator::run_parallel`].
    ///
    /// # Errors
    /// Same contract as [`UnbiasedSizeEstimator::run`].
    pub fn run_parallel<I: TopKInterface + Sync>(
        &mut self,
        iface: &I,
        passes: u64,
        workers: usize,
    ) -> Result<SizeEstimate> {
        self.inner.run_parallel(iface, passes, workers)
    }

    /// Runs passes across `workers` threads until at least `query_budget`
    /// queries are spent; see
    /// [`UnbiasedAggEstimator::run_until_budget_parallel`].
    ///
    /// # Errors
    /// Same contract as [`UnbiasedSizeEstimator::run_until_budget`].
    pub fn run_until_budget_parallel<I: TopKInterface + Sync>(
        &mut self,
        iface: &I,
        query_budget: u64,
        workers: usize,
    ) -> Result<SizeEstimate> {
        self.inner.run_until_budget_parallel(iface, query_budget, workers)
    }

    /// The running size estimate, if any pass completed.
    #[must_use]
    pub fn estimate(&self) -> Option<f64> {
        self.inner.estimate()
    }

    /// Per-pass estimates.
    #[must_use]
    pub fn history(&self) -> &[f64] {
        self.inner.history()
    }

    /// Queries spent by this estimator.
    #[must_use]
    pub fn queries_spent(&self) -> u64 {
        self.inner.queries_spent()
    }

    /// Current summary, if any pass completed.
    #[must_use]
    pub fn summary(&self) -> Option<SizeEstimate> {
        self.inner.summary()
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &EstimatorConfig {
        self.inner.config()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdb_interface::{HiddenDb, Schema, Table, Tuple};

    fn db(m: u16, k: usize) -> HiddenDb {
        let tuples: Vec<Tuple> =
            (0..m).map(|i| Tuple::new((0..8).map(|b| (i >> b) & 1).collect())).collect();
        HiddenDb::new(Table::new(Schema::boolean(8), tuples).unwrap(), k)
    }

    #[test]
    fn plain_estimator_is_unbiased() {
        let db = db(100, 1);
        let mut est = UnbiasedSizeEstimator::plain(13).unwrap();
        let s = est.run(&db, 3000).unwrap();
        assert!((s.estimate - 100.0).abs() < 5.0, "estimate {}", s.estimate);
    }

    #[test]
    fn hd_estimator_is_unbiased_and_tighter() {
        let db = db(100, 1);
        let mut plain = UnbiasedSizeEstimator::plain(17).unwrap();
        let mut hd =
            UnbiasedSizeEstimator::new(EstimatorConfig::hd_default().with_dub(16), 17).unwrap();
        let sp = plain.run(&db, 800).unwrap();
        let sh = hd.run(&db, 200).unwrap();
        assert!((sp.estimate - 100.0).abs() < 10.0);
        assert!((sh.estimate - 100.0).abs() < 10.0);
    }

    #[test]
    fn larger_k_means_fewer_queries_per_pass() {
        let mut est1 = UnbiasedSizeEstimator::plain(7).unwrap();
        let db1 = db(200, 1);
        est1.run(&db1, 50).unwrap();
        let q1 = est1.queries_spent();

        let mut est2 = UnbiasedSizeEstimator::plain(7).unwrap();
        let db2 = db(200, 20);
        est2.run(&db2, 50).unwrap();
        let q2 = est2.queries_spent();
        assert!(q2 < q1, "k=20 spent {q2}, k=1 spent {q1}");
    }

    #[test]
    fn history_tracks_passes() {
        let db = db(50, 2);
        let mut est = UnbiasedSizeEstimator::plain(3).unwrap();
        est.run(&db, 10).unwrap();
        assert_eq!(est.history().len(), 10);
        assert_eq!(est.summary().unwrap().passes, 10);
        let mean = est.history().iter().sum::<f64>() / 10.0;
        assert!((est.estimate().unwrap() - mean).abs() < 1e-12);
    }
}
