//! The baseline estimators the paper compares against (§2.3–2.4):
//! `BRUTE-FORCE-SAMPLER`, `HIDDEN-DB-SAMPLER` and
//! `CAPTURE-&-RECAPTURE`. All are implemented faithfully — including
//! their weaknesses (astronomical query cost, unknown sampling bias,
//! positively biased population estimates), which are exactly what the
//! paper's figures exhibit.

pub mod brute_force;
pub mod capture_recapture;
pub mod hidden_db_sampler;

pub use brute_force::BruteForceSampler;
pub use capture_recapture::{CaptureRecapture, CrEstimate};
pub use hidden_db_sampler::{Acceptance, HiddenDbSampler, SampledTuple};
