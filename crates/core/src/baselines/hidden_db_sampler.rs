//! `HIDDEN-DB-SAMPLER` (Dasgupta, Das & Mannila, SIGMOD 2007; paper
//! §2.4): random drill-down **without backtracking**. On underflow the
//! walk restarts from the root ("early termination"); on a valid query a
//! random returned tuple is accepted with a probability that *attempts*
//! to flatten the selection bias toward shallow tuples (rejection
//! sampling).
//!
//! Two defects make it unsuitable for size estimation, which is exactly
//! why the paper's approach exists:
//!
//! 1. The early-termination probability `p_E` is unknown, so the true
//!    inclusion probability `p(q) = 1/((1-p_E)·Π|Dom(A_i)|)` cannot be
//!    computed — the sample carries an *unknown* bias (Eq. 3).
//! 2. The rejection constant `C` must be guessed. The classic rule
//!    accepts with probability `C·|q|·Π_{i≤h}|Dom(A_i)| / Π_all`, which
//!    for `C = 1` is astronomically small on wide schemas; the practical
//!    variant normalises by the largest weight seen so far (adaptive),
//!    which accepts early samples too eagerly — a bias either way.
//!
//! We implement both acceptance rules (adaptive is the default, since the
//! classic rule produces no samples at all on 40-attribute domains) and
//! reproduce the defects faithfully; `CAPTURE-&-RECAPTURE` built on top
//! inherits them.

use hdb_interface::{Query, ReturnedTuple, TopKInterface};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::Result;

/// A tuple produced by the sampler, with its cost.
#[derive(Clone, Debug)]
pub struct SampledTuple {
    /// The sampled tuple.
    pub tuple: ReturnedTuple,
    /// Queries spent producing it (including rejected walks).
    pub queries: u64,
}

/// Rejection-acceptance rule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Acceptance {
    /// Classic rule: accept with `min(1, C·|q|·Π_{i≤h}fanout_i/Π_all)`.
    Classic(f64),
    /// Adaptive rule: normalise the weight `|q|·Π_{i≤h}fanout_i` by the
    /// largest weight observed so far (self-tuning, still biased).
    Adaptive,
}

/// The rejection-sampling random-walk sampler.
#[derive(Debug)]
pub struct HiddenDbSampler {
    rng: StdRng,
    acceptance: Acceptance,
    /// Largest unnormalised weight seen (adaptive mode state).
    max_weight: f64,
    /// Abort knob: maximum restarts per sample (a real client would give
    /// up too). Exhausting it is reported as `None`.
    max_restarts: u64,
}

impl HiddenDbSampler {
    /// Creates a sampler with adaptive acceptance and a generous restart
    /// cap.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            acceptance: Acceptance::Adaptive,
            max_weight: 0.0,
            max_restarts: 100_000,
        }
    }

    /// Switches to the classic acceptance rule with constant `C`.
    #[must_use]
    pub fn with_acceptance_scale(mut self, c: f64) -> Self {
        self.acceptance = Acceptance::Classic(c);
        self
    }

    /// Overrides the restart cap.
    #[must_use]
    pub fn with_max_restarts(mut self, max_restarts: u64) -> Self {
        self.max_restarts = max_restarts;
        self
    }

    /// Attempts to produce one (approximately uniform) sample tuple,
    /// spending at most `max_queries` interface queries. Returns `None`
    /// if the restart cap or the query cap is exhausted first.
    ///
    /// # Errors
    /// Propagates interface errors.
    pub fn try_sample_within<I: TopKInterface>(
        &mut self,
        iface: &I,
        max_queries: u64,
    ) -> Result<Option<SampledTuple>> {
        let schema = iface.schema();
        let n = schema.len();
        let domain_size = schema.domain_size();
        let mut queries = 0u64;

        for _ in 0..self.max_restarts {
            if queries >= max_queries {
                return Ok(None);
            }
            let mut q = Query::all();
            let mut prefix_domain = 1.0f64;
            let mut accepted: Option<ReturnedTuple> = None;
            for attr in 0..n {
                if queries >= max_queries {
                    return Ok(None);
                }
                let fanout = schema.fanout(attr);
                let v = self.rng.random_range(0..fanout) as u16;
                q = q.and(attr, v).expect("each attribute added once");
                prefix_domain *= fanout as f64;
                let outcome = iface.query(&q)?;
                queries += 1;
                if outcome.is_underflow() {
                    break; // early termination → restart
                }
                if outcome.is_valid() {
                    let tuples = outcome.tuples();
                    let pick = self.rng.random_range(0..tuples.len());
                    let weight = tuples.len() as f64 * prefix_domain;
                    let accept = match self.acceptance {
                        Acceptance::Classic(c) => (c * weight / domain_size).min(1.0),
                        Acceptance::Adaptive => {
                            self.max_weight = self.max_weight.max(weight);
                            weight / self.max_weight
                        }
                    };
                    if self.rng.random::<f64>() < accept {
                        accepted = Some(tuples[pick].clone());
                    }
                    break;
                }
                // overflow → keep drilling
            }
            if let Some(tuple) = accepted {
                return Ok(Some(SampledTuple { tuple, queries }));
            }
        }
        Ok(None)
    }

    /// [`Self::try_sample_within`] with no query cap.
    ///
    /// # Errors
    /// Propagates interface errors.
    pub fn try_sample<I: TopKInterface>(&mut self, iface: &I) -> Result<Option<SampledTuple>> {
        self.try_sample_within(iface, u64::MAX)
    }

    /// Produces `count` samples (stopping early when the sampler gives
    /// up).
    ///
    /// # Errors
    /// Propagates interface errors.
    pub fn sample_many<I: TopKInterface>(
        &mut self,
        iface: &I,
        count: usize,
    ) -> Result<Vec<SampledTuple>> {
        let mut out = Vec::with_capacity(count);
        while out.len() < count {
            match self.try_sample(iface)? {
                Some(s) => out.push(s),
                None => break,
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdb_interface::{HiddenDb, Schema, Table, Tuple};
    use std::collections::BTreeMap;

    fn db() -> HiddenDb {
        let tuples: Vec<Tuple> = [0u16, 1, 2, 3, 8, 12, 15]
            .iter()
            .map(|&i| Tuple::new((0..4).map(|b| (i >> b) & 1).collect()))
            .collect();
        HiddenDb::new(Table::new(Schema::boolean(4), tuples).unwrap(), 1)
    }

    #[test]
    fn produces_tuples_from_the_database() {
        let db = db();
        let mut s = HiddenDbSampler::new(3);
        let samples = s.sample_many(&db, 50).unwrap();
        assert_eq!(samples.len(), 50);
        for sample in &samples {
            assert!(sample.queries >= 1);
            assert!((sample.tuple.id as usize) < 7);
        }
    }

    #[test]
    fn sampling_covers_all_tuples() {
        let db = db();
        let mut s = HiddenDbSampler::new(7);
        let mut seen: BTreeMap<u32, u32> = BTreeMap::new();
        for sample in s.sample_many(&db, 2000).unwrap() {
            *seen.entry(sample.tuple.id).or_default() += 1;
        }
        assert_eq!(seen.len(), 7, "every tuple should eventually be sampled");
    }

    #[test]
    fn classic_rule_matches_formula_on_small_domains() {
        let db = db();
        let mut s = HiddenDbSampler::new(5).with_acceptance_scale(1.0);
        // |Dom| = 16 is small enough for the classic rule to work here
        let samples = s.sample_many(&db, 30).unwrap();
        assert_eq!(samples.len(), 30);
    }

    #[test]
    fn query_cap_is_respected() {
        let db = db();
        let mut s = HiddenDbSampler::new(11).with_acceptance_scale(0.0);
        let before = hdb_interface::TopKInterface::queries_issued(&db);
        let out = s.try_sample_within(&db, 25).unwrap();
        assert!(out.is_none());
        let spent = hdb_interface::TopKInterface::queries_issued(&db) - before;
        assert!(spent <= 25 + 4, "spent {spent} queries against a cap of 25");
    }

    #[test]
    fn restart_cap_reports_none() {
        let db = db();
        // classic rule with scale 0 never accepts
        let mut s =
            HiddenDbSampler::new(2).with_acceptance_scale(0.0).with_max_restarts(20);
        assert!(s.try_sample(&db).unwrap().is_none());
    }

    #[test]
    fn adaptive_rule_accepts_on_wide_schemas() {
        // 16 attributes: the classic rule with C = 1 would essentially
        // never accept; adaptive must still produce samples.
        let tuples: Vec<Tuple> = (0..64u32)
            .map(|i| Tuple::new((0..16).map(|b| ((i >> b) & 1) as u16).collect()))
            .collect();
        let db = HiddenDb::new(Table::new(Schema::boolean(16), tuples).unwrap(), 1);
        let mut s = HiddenDbSampler::new(4);
        let samples = s.sample_many(&db, 10).unwrap();
        assert_eq!(samples.len(), 10);
    }

    #[test]
    fn budget_errors_propagate() {
        let db_budget = {
            let tuples: Vec<Tuple> = [0u16, 15]
                .iter()
                .map(|&i| Tuple::new((0..4).map(|b| (i >> b) & 1).collect()))
                .collect();
            HiddenDb::new(Table::new(Schema::boolean(4), tuples).unwrap(), 1).with_budget(2)
        };
        let mut s = HiddenDbSampler::new(1);
        let r = s.sample_many(&db_budget, 100);
        assert!(r.is_err());
    }
}
