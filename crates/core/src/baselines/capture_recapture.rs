//! `CAPTURE-&-RECAPTURE` (paper §2.3): the Lincoln–Petersen estimator
//! over two samples drawn by a hidden-database sampler. Inherits the
//! sampler's unknown bias and is itself positively biased — the paper's
//! Figure 6 baseline.

use std::collections::BTreeSet;

use hdb_interface::{TopKInterface, TupleId};

use crate::baselines::hidden_db_sampler::HiddenDbSampler;
use crate::error::Result;

/// A capture–recapture size estimate.
#[derive(Clone, Copy, Debug)]
pub struct CrEstimate {
    /// Lincoln–Petersen estimate `|C1|·|C2|/|C1∩C2|`; `None` when the
    /// samples do not overlap yet (the estimator is then undefined/∞).
    pub lincoln_petersen: Option<f64>,
    /// Chapman's bias-corrected variant
    /// `(|C1|+1)(|C2|+1)/(|C1∩C2|+1) − 1` (always finite).
    pub chapman: f64,
    /// Size of the first sample.
    pub n1: usize,
    /// Size of the second sample.
    pub n2: usize,
    /// Overlap size.
    pub overlap: usize,
}

/// Accumulates two capture samples (alternating) and produces size
/// estimates. Tuples are identified by their listing id, as a real
/// client would (VIN / item number).
#[derive(Clone, Debug, Default)]
pub struct CaptureRecapture {
    sample1: BTreeSet<TupleId>,
    sample2: BTreeSet<TupleId>,
    next_is_first: bool,
}

impl CaptureRecapture {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self { sample1: BTreeSet::new(), sample2: BTreeSet::new(), next_is_first: true }
    }

    /// Adds one captured tuple, alternating between the two samples.
    pub fn capture(&mut self, id: TupleId) {
        if self.next_is_first {
            self.sample1.insert(id);
        } else {
            self.sample2.insert(id);
        }
        self.next_is_first = !self.next_is_first;
    }

    /// Adds a capture to an explicit sample (1 or 2).
    ///
    /// # Panics
    /// Panics if `sample` is not 1 or 2.
    pub fn capture_into(&mut self, sample: u8, id: TupleId) {
        match sample {
            1 => {
                self.sample1.insert(id);
            }
            2 => {
                self.sample2.insert(id);
            }
            other => panic!("sample index must be 1 or 2, got {other}"),
        }
    }

    /// Current estimate.
    #[must_use]
    pub fn estimate(&self) -> CrEstimate {
        let n1 = self.sample1.len();
        let n2 = self.sample2.len();
        let overlap = self.sample1.intersection(&self.sample2).count();
        let lincoln_petersen =
            (overlap > 0).then(|| (n1 as f64) * (n2 as f64) / overlap as f64);
        let chapman =
            ((n1 + 1) as f64) * ((n2 + 1) as f64) / ((overlap + 1) as f64) - 1.0;
        CrEstimate { lincoln_petersen, chapman, n1, n2, overlap }
    }

    /// Total distinct tuples seen across both samples.
    #[must_use]
    pub fn distinct_seen(&self) -> usize {
        self.sample1.union(&self.sample2).count()
    }
}

/// Convenience driver: pulls `captures` tuples through a
/// [`HiddenDbSampler`], alternating them into the two samples, and
/// returns the estimate. Stops early if the sampler gives up.
///
/// # Errors
/// Propagates interface errors.
pub fn capture_recapture_size<I: TopKInterface>(
    iface: &I,
    sampler: &mut HiddenDbSampler,
    captures: usize,
) -> Result<CrEstimate> {
    let mut cr = CaptureRecapture::new();
    for _ in 0..captures {
        match sampler.try_sample(iface)? {
            Some(s) => cr.capture(s.tuple.id),
            None => break,
        }
    }
    Ok(cr.estimate())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdb_interface::{HiddenDb, Schema, Table, Tuple};

    #[test]
    fn lincoln_petersen_formula() {
        let mut cr = CaptureRecapture::new();
        for id in [1u32, 2, 3, 4] {
            cr.capture_into(1, id);
        }
        for id in [3u32, 4, 5, 6] {
            cr.capture_into(2, id);
        }
        let e = cr.estimate();
        assert_eq!(e.n1, 4);
        assert_eq!(e.n2, 4);
        assert_eq!(e.overlap, 2);
        assert_eq!(e.lincoln_petersen, Some(8.0));
        assert_eq!(e.chapman, 25.0 / 3.0 - 1.0);
    }

    #[test]
    fn no_overlap_means_undefined_lp_finite_chapman() {
        let mut cr = CaptureRecapture::new();
        cr.capture_into(1, 1);
        cr.capture_into(2, 2);
        let e = cr.estimate();
        assert_eq!(e.lincoln_petersen, None);
        assert_eq!(e.chapman, 3.0);
    }

    #[test]
    fn alternating_capture_splits_samples() {
        let mut cr = CaptureRecapture::new();
        for id in 0..10u32 {
            cr.capture(id);
        }
        let e = cr.estimate();
        assert_eq!(e.n1, 5);
        assert_eq!(e.n2, 5);
        assert_eq!(cr.distinct_seen(), 10);
    }

    #[test]
    fn duplicates_within_a_sample_collapse() {
        let mut cr = CaptureRecapture::new();
        cr.capture_into(1, 7);
        cr.capture_into(1, 7);
        cr.capture_into(2, 7);
        let e = cr.estimate();
        assert_eq!(e.n1, 1);
        assert_eq!(e.overlap, 1);
        assert_eq!(e.lincoln_petersen, Some(1.0));
    }

    #[test]
    fn end_to_end_on_a_small_database() {
        let tuples: Vec<Tuple> =
            (0..16u16).map(|i| Tuple::new((0..4).map(|b| (i >> b) & 1).collect())).collect();
        let db = HiddenDb::new(Table::new(Schema::boolean(4), tuples).unwrap(), 1);
        let mut sampler = HiddenDbSampler::new(9);
        let e = capture_recapture_size(&db, &mut sampler, 60).unwrap();
        // With 30 captures per sample over a 16-tuple (dense) database the
        // samples saturate: the estimate lands near 16.
        let lp = e.lincoln_petersen.expect("saturated samples overlap");
        assert!((lp - 16.0).abs() < 4.0, "LP estimate {lp}");
    }

    #[test]
    #[should_panic(expected = "must be 1 or 2")]
    fn bad_sample_index_panics() {
        CaptureRecapture::new().capture_into(3, 1);
    }
}
