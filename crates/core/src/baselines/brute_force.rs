//! `BRUTE-FORCE-SAMPLER` (paper §2.3): draw fully specified queries
//! uniformly from the domain; each returns either nothing or exactly one
//! tuple (the data model forbids duplicates). The size estimate
//! `|Dom| · hits / draws` is unbiased — and useless in practice, because
//! the hit probability is `m / |Dom|`, astronomically small for real
//! schemas (the paper could not get a single hit in 100,000 queries).

use hdb_interface::{Query, ReturnedTuple, TopKInterface};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::Result;

/// The brute-force fully-specified-query sampler.
#[derive(Debug)]
pub struct BruteForceSampler {
    rng: StdRng,
    draws: u64,
    hits: u64,
    measure_sum: f64,
}

impl BruteForceSampler {
    /// Creates a sampler.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed), draws: 0, hits: 0, measure_sum: 0.0 }
    }

    /// Issues one fully specified uniform-random query. Returns the tuple
    /// if the query was valid.
    ///
    /// # Errors
    /// Propagates interface errors.
    pub fn step<I: TopKInterface>(&mut self, iface: &I) -> Result<Option<ReturnedTuple>> {
        let schema = iface.schema();
        let mut q = Query::all();
        for attr in 0..schema.len() {
            let v = self.rng.random_range(0..schema.fanout(attr)) as u16;
            q = q.and(attr, v).expect("each attribute added once");
        }
        let outcome = iface.query(&q)?;
        self.draws += 1;
        debug_assert!(
            outcome.returned_count() <= 1,
            "fully specified queries match at most one tuple"
        );
        if let Some(t) = outcome.tuples().first() {
            self.hits += 1;
            self.measure_sum += 1.0;
            return Ok(Some(t.clone()));
        }
        Ok(None)
    }

    /// Runs `draws` steps.
    ///
    /// # Errors
    /// Propagates interface errors.
    pub fn run<I: TopKInterface>(&mut self, iface: &I, draws: u64) -> Result<()> {
        for _ in 0..draws {
            self.step(iface)?;
        }
        Ok(())
    }

    /// The running size estimate `|Dom| · hits / draws`; `None` before
    /// the first draw.
    #[must_use]
    pub fn size_estimate<I: TopKInterface>(&self, iface: &I) -> Option<f64> {
        (self.draws > 0)
            .then(|| iface.schema().domain_size() * self.hits as f64 / self.draws as f64)
    }

    /// Queries issued so far.
    #[must_use]
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// Valid queries (tuples found) so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdb_interface::{HiddenDb, Schema, Table, Tuple};

    #[test]
    fn unbiased_on_a_tiny_dense_database() {
        // 4 attributes → |Dom| = 16, m = 6: hits are frequent enough to test.
        let tuples: Vec<Tuple> = [0u16, 3, 5, 9, 12, 15]
            .iter()
            .map(|&i| Tuple::new((0..4).map(|b| (i >> b) & 1).collect()))
            .collect();
        let db = HiddenDb::new(Table::new(Schema::boolean(4), tuples).unwrap(), 1);
        let mut s = BruteForceSampler::new(5);
        s.run(&db, 40_000).unwrap();
        let est = s.size_estimate(&db).unwrap();
        assert!((est - 6.0).abs() < 0.3, "estimate {est}");
    }

    #[test]
    fn no_estimate_before_first_draw() {
        let db = HiddenDb::new(
            Table::new(Schema::boolean(3), vec![Tuple::new(vec![0, 0, 0])]).unwrap(),
            1,
        );
        let s = BruteForceSampler::new(1);
        assert!(s.size_estimate(&db).is_none());
    }

    #[test]
    fn hopeless_on_sparse_domains() {
        // 24 attributes → |Dom| ≈ 1.6e7, m = 16: hits are essentially
        // never found in a realistic budget — the paper's point.
        let tuples: Vec<Tuple> = (0..16u32)
            .map(|i| Tuple::new((0..24).map(|b| ((i >> b) & 1) as u16).collect()))
            .collect();
        let db = HiddenDb::new(Table::new(Schema::boolean(24), tuples).unwrap(), 1);
        let mut s = BruteForceSampler::new(2);
        s.run(&db, 2_000).unwrap();
        assert_eq!(s.hits(), 0, "a hit here would be a 1-in-a-million fluke");
        assert_eq!(s.size_estimate(&db), Some(0.0));
    }

    #[test]
    fn budget_errors_propagate() {
        let db = HiddenDb::new(
            Table::new(Schema::boolean(3), vec![Tuple::new(vec![0, 0, 0])]).unwrap(),
            1,
        )
        .with_budget(3);
        let mut s = BruteForceSampler::new(1);
        assert!(s.run(&db, 10).is_err());
        assert_eq!(s.draws(), 3);
    }
}
