//! Error types for the estimator crate.

use std::fmt;

use hdb_interface::HdbError;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, EstimatorError>;

/// Errors surfaced by estimators.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EstimatorError {
    /// The underlying interface failed (budget exhaustion, malformed
    /// query). Budget exhaustion is the common mid-run failure: the
    /// estimator surfaces it without corrupting its state, so the caller
    /// can read the running estimate accumulated so far.
    Interface(HdbError),
    /// The estimator configuration is unusable.
    InvalidConfig(String),
    /// The requested aggregate is not well defined for the target
    /// attribute (e.g. SUM over an attribute with no numeric
    /// interpretation).
    InvalidAggregate(String),
}

impl fmt::Display for EstimatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Interface(e) => write!(f, "interface error: {e}"),
            Self::InvalidConfig(msg) => write!(f, "invalid estimator config: {msg}"),
            Self::InvalidAggregate(msg) => write!(f, "invalid aggregate: {msg}"),
        }
    }
}

impl std::error::Error for EstimatorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Interface(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HdbError> for EstimatorError {
    fn from(e: HdbError) -> Self {
        Self::Interface(e)
    }
}

impl EstimatorError {
    /// Whether this error is a query-budget exhaustion (the caller may
    /// still read partial results).
    #[must_use]
    pub fn is_budget_exhausted(&self) -> bool {
        matches!(self, Self::Interface(HdbError::BudgetExhausted { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_and_classification() {
        let e: EstimatorError = HdbError::BudgetExhausted { limit: 5 }.into();
        assert!(e.is_budget_exhausted());
        let e: EstimatorError = HdbError::InvalidQuery("q".into()).into();
        assert!(!e.is_budget_exhausted());
        assert!(e.to_string().contains("interface error"));
    }

    #[test]
    fn source_is_propagated() {
        use std::error::Error as _;
        let e: EstimatorError = HdbError::InvalidQuery("q".into()).into();
        assert!(e.source().is_some());
        assert!(EstimatorError::InvalidConfig("x".into()).source().is_none());
    }
}
