//! Exhaustive crawling of a hidden database through its top-k interface —
//! the naive alternative the paper dismisses on query-cost grounds (§1),
//! implemented both as an honest baseline and as the ground-truth
//! machinery for tests (it enumerates the exact set of top-valid nodes,
//! `Ω_TV`).

use hdb_interface::{AttrId, Query, ReturnedTuple, TopKInterface, TupleId};
use std::collections::BTreeMap;

use crate::error::Result;

/// A top-valid node found by the crawl.
#[derive(Clone, Debug)]
pub struct TopValidNode {
    /// The node's query.
    pub query: Query,
    /// Its tuple count `|q|` (all returned — the node is valid).
    pub count: usize,
}

/// Result of a full crawl.
#[derive(Clone, Debug)]
pub struct CrawlResult {
    /// Every tuple in the database, keyed by listing id.
    pub tuples: BTreeMap<TupleId, ReturnedTuple>,
    /// The set `Ω_TV` of top-valid nodes (plus the root if the whole
    /// database fits in one valid query).
    pub top_valid: Vec<TopValidNode>,
    /// Queries issued by the crawl.
    pub queries: u64,
}

impl CrawlResult {
    /// The exact database size under the crawled selection.
    #[must_use]
    pub fn size(&self) -> usize {
        self.tuples.len()
    }
}

/// Crawls everything matching `base` by depth-first drill-down over
/// `levels` (every attribute not constrained in `base`).
///
/// Every node of the query tree that is reached gets exactly one query;
/// underflowing branches are pruned, valid branches are harvested,
/// overflowing branches are expanded at the next level.
///
/// # Errors
/// Propagates interface errors (a budget will typically stop a crawl long
/// before completion — that is the paper's point).
pub fn crawl<I: TopKInterface>(iface: &I, base: &Query, levels: &[AttrId]) -> Result<CrawlResult> {
    let mut result =
        CrawlResult { tuples: BTreeMap::new(), top_valid: Vec::new(), queries: 0 };
    let outcome = iface.query(base)?;
    result.queries += 1;
    if outcome.is_underflow() {
        return Ok(result);
    }
    if outcome.is_valid() {
        for t in outcome.tuples() {
            result.tuples.insert(t.id, t.clone());
        }
        result
            .top_valid
            .push(TopValidNode { query: base.clone(), count: outcome.returned_count() });
        return Ok(result);
    }
    expand(iface, base, levels, &mut result)?;
    Ok(result)
}

/// Recursive expansion below an overflowing node.
fn expand<I: TopKInterface>(
    iface: &I,
    node: &Query,
    levels: &[AttrId],
    result: &mut CrawlResult,
) -> Result<()> {
    assert!(
        !levels.is_empty(),
        "an overflowing node cannot be fully specified under duplicate-free data"
    );
    let attr = levels[0];
    let rest = &levels[1..];
    for v in 0..iface.schema().fanout(attr) {
        let child = node.and(attr, v as u16).expect("level attr unconstrained");
        let outcome = iface.query(&child)?;
        result.queries += 1;
        if outcome.is_underflow() {
            continue;
        }
        if outcome.is_valid() {
            for t in outcome.tuples() {
                result.tuples.insert(t.id, t.clone());
            }
            result
                .top_valid
                .push(TopValidNode { query: child, count: outcome.returned_count() });
        } else {
            expand(iface, &child, rest, result)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdb_interface::{HiddenDb, Schema, Table, Tuple};

    fn figure1_db(k: usize) -> HiddenDb {
        let table = Table::new(
            Schema::boolean(4),
            vec![
                Tuple::new(vec![0, 0, 0, 0]),
                Tuple::new(vec![0, 0, 0, 1]),
                Tuple::new(vec![0, 0, 1, 0]),
                Tuple::new(vec![0, 1, 1, 1]),
                Tuple::new(vec![1, 1, 1, 0]),
                Tuple::new(vec![1, 1, 1, 1]),
            ],
        )
        .unwrap();
        HiddenDb::new(table, k)
    }

    #[test]
    fn crawl_recovers_every_tuple() {
        let db = figure1_db(1);
        let result = crawl(&db, &Query::all(), &[0, 1, 2, 3]).unwrap();
        assert_eq!(result.size(), 6);
        // Figure 1 shows exactly 6 top-valid nodes for k = 1
        assert_eq!(result.top_valid.len(), 6);
        let covered: usize = result.top_valid.iter().map(|n| n.count).sum();
        assert_eq!(covered, 6, "top-valid nodes partition the tuples");
    }

    #[test]
    fn larger_k_means_fewer_shallower_top_valid_nodes() {
        let db1 = figure1_db(1);
        let r1 = crawl(&db1, &Query::all(), &[0, 1, 2, 3]).unwrap();
        let db4 = figure1_db(4);
        let r4 = crawl(&db4, &Query::all(), &[0, 1, 2, 3]).unwrap();
        assert!(r4.top_valid.len() < r1.top_valid.len());
        assert!(r4.queries < r1.queries);
        assert_eq!(r4.size(), 6);
    }

    #[test]
    fn whole_db_valid_when_k_covers_it() {
        let db = figure1_db(10);
        let result = crawl(&db, &Query::all(), &[0, 1, 2, 3]).unwrap();
        assert_eq!(result.size(), 6);
        assert_eq!(result.top_valid.len(), 1);
        assert_eq!(result.queries, 1);
    }

    #[test]
    fn crawl_respects_selection() {
        let db = figure1_db(1);
        let base = Query::all().and(0, 1).unwrap(); // t5, t6
        let result = crawl(&db, &base, &[1, 2, 3]).unwrap();
        assert_eq!(result.size(), 2);
        for t in result.tuples.values() {
            assert_eq!(t.tuple.value(0), 1);
        }
    }

    #[test]
    fn underflowing_base_is_empty() {
        let db = figure1_db(1);
        let base = Query::all().and(0, 1).unwrap().and(1, 0).unwrap();
        let result = crawl(&db, &base, &[2, 3]).unwrap();
        assert_eq!(result.size(), 0);
        assert!(result.top_valid.is_empty());
        assert_eq!(result.queries, 1);
    }

    #[test]
    fn budget_stops_the_crawl() {
        let db = {
            let table = Table::new(
                Schema::boolean(4),
                (0..16u16)
                    .map(|i| Tuple::new((0..4).map(|b| (i >> b) & 1).collect()))
                    .collect(),
            )
            .unwrap();
            HiddenDb::new(table, 1).with_budget(5)
        };
        assert!(crawl(&db, &Query::all(), &[0, 1, 2, 3]).is_err());
    }
}
