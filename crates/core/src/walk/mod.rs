//! Random drill-down machinery: the backtracking walk of §3 generalised
//! to categorical attributes (smart backtracking, §3.2) and to
//! non-uniform branch weights (weight adjustment, §4.1).
//!
//! The core correctness property, on which the Horvitz–Thompson estimate
//! rests, is that every walk terminates at a *top-valid* (or, under
//! divide-&-conquer, *bottom-overflow*) node together with the **exact
//! marginal probability** of the walk committing to that node. The
//! probability is exact because backtracking is a *deterministic circular
//! right scan*: the only randomness at a node is the initial branch pick,
//! so the probability of committing to branch `c` is the probability that
//! the initial pick lands on `c` or on the maximal run of underflowing
//! branches immediately preceding it.

mod branch;
mod drilldown;

pub use branch::{
    choose_branch, choose_branch_session, choose_branch_simple, choose_branch_simple_session,
    BranchChoice, SessionBranchChoice,
};
pub use drilldown::{
    drill_down, drill_down_session, drill_down_with, Walk, WalkLevel, WalkTerminal,
};

use hdb_interface::{AttrId, ValueId};

/// How the walk recovers from an underflowing branch pick (paper §3.2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BacktrackStrategy {
    /// *Smart backtracking*: scan right circularly from the initial pick
    /// until the first non-underflowing branch, probing left only as far
    /// as needed to compute the commit probability. Expected per-node
    /// query cost `QC = 1 + Σ_j (w_U(j)+1)²/w` (Eq. 2).
    #[default]
    Smart,
    /// *Simple backtracking*: query **every** branch of the node, then
    /// choose among the non-underflowing ones (weight-proportionally).
    /// Always costs `w` queries per node; kept for the cost ablation.
    Simple,
}

/// A `(attribute, value)` step on a drill-down path, identifying one tree
/// edge.
pub type PathStep = (AttrId, ValueId);

/// Supplies branch weights for the random drill-down and absorbs what the
/// walk learns along the way.
///
/// Implementations must return **strictly positive** weights for every
/// branch: a zero weight would make some top-valid node unreachable and
/// silently bias the estimator. (Branches known to underflow may get an
/// arbitrarily small positive weight — selecting them only costs a scan
/// step, never correctness.)
pub trait WeightProvider {
    /// Branch weights for attribute `attr` (with the given fanout) at the
    /// node identified by `path` (steps from the tree root, in drill
    /// order).
    fn weights(&self, path: &[PathStep], attr: AttrId, fanout: usize) -> Vec<f64>;

    /// Informs the provider that branch `value` of `attr` at `path` was
    /// observed to underflow. Default: ignore.
    fn observe_empty(&self, _path: &[PathStep], _attr: AttrId, _value: ValueId) {}

    /// Incorporates a completed walk below the node at `prefix`:
    /// `levels` are the committed steps and `value` the terminal measure
    /// (tuple count / SUM contribution, or the recursive subtree estimate
    /// for bottom-overflow terminals). Default: ignore.
    fn record_walk(&self, _prefix: &[PathStep], _levels: &[WalkLevel], _value: f64) {}
}

/// Uniform weights — the plain (non-weight-adjusted) drill-down of §3.
#[derive(Clone, Copy, Debug, Default)]
pub struct UniformWeights;

impl WeightProvider for UniformWeights {
    fn weights(&self, _path: &[PathStep], _attr: AttrId, fanout: usize) -> Vec<f64> {
        vec![1.0; fanout]
    }
}
