//! Single-level branch selection with smart backtracking (§3.2),
//! generalised to weighted branches (§4.1).
//!
//! Given a node whose query overflows, the walk must follow one
//! *non-underflowing* branch of the next attribute and know the exact
//! marginal probability of that choice. The procedure:
//!
//! 1. Draw an initial branch from the weight distribution.
//! 2. If it underflows, scan **right** (circularly) to the next branch,
//!    issuing one query per tested branch, until one does not underflow —
//!    commit to it.
//! 3. To compute the commit probability, probe **left** of the scan's
//!    starting region until the first non-underflowing branch: the
//!    probability is `(w_c + Σ weights of the maximal run of
//!    underflowing branches immediately preceding c) / Σ all weights`,
//!    because exactly the initial picks inside that run (or on `c`
//!    itself) deterministically commit to `c`.
//!
//! Two query-saving facts from the paper are honoured: a branch is never
//! issued twice at the same node, and for **Boolean** attributes whose
//! committed branch is *valid* the sibling is provably non-empty (the
//! overflowing parent has `> k` tuples, the valid child at most `k`), so
//! the left probe is free.

use hdb_interface::{
    AttrId, ClassifiedOutcome, Query, QueryOutcome, TopKInterface, ValueId, WalkSession,
};
use rand::Rng;

use crate::error::Result;

/// Outcome of selecting a branch at one node.
#[derive(Clone, Debug)]
pub struct BranchChoice {
    /// The committed branch value.
    pub value: ValueId,
    /// Exact marginal probability of committing to `value` under the
    /// supplied weights.
    pub probability: f64,
    /// Interface outcome of the committed branch's query (never
    /// underflow).
    pub outcome: QueryOutcome,
    /// Branches discovered to underflow at this node (for weight-model
    /// learning).
    pub discovered_empty: Vec<ValueId>,
    /// Queries issued at this node.
    pub queries: u64,
}

/// Outcome of selecting a branch at one node of a [`WalkSession`]-driven
/// walk. Unlike [`BranchChoice`], the committed branch's outcome is a
/// count-only [`ClassifiedOutcome`]: walks never read overflow pages, so
/// the session skips materialising them.
#[derive(Clone, Debug)]
pub struct SessionBranchChoice {
    /// The committed branch value.
    pub value: ValueId,
    /// Exact marginal probability of committing to `value` under the
    /// supplied weights.
    pub probability: f64,
    /// Classification of the committed branch (never underflow; carries
    /// the full page when valid).
    pub outcome: ClassifiedOutcome,
    /// Branches discovered to underflow at this node (for weight-model
    /// learning).
    pub discovered_empty: Vec<ValueId>,
    /// Queries issued at this node.
    pub queries: u64,
}

/// [`choose_branch`] over a [`WalkSession`] positioned at the overflowing
/// node: identical query sequence, RNG consumption, and commit
/// probabilities — each probe just costs one AND over the parent's match
/// set instead of a from-scratch evaluation. The session's position is
/// unchanged (committing is the caller's move).
///
/// # Errors
/// Propagates interface errors (notably budget exhaustion).
///
/// # Panics
/// Same contract as [`choose_branch`].
pub fn choose_branch_session<R: Rng + ?Sized>(
    sess: &mut WalkSession<'_>,
    attr: AttrId,
    weights: &[f64],
    rng: &mut R,
) -> Result<SessionBranchChoice> {
    let fanout = sess.schema().fanout(attr);
    assert_eq!(weights.len(), fanout, "weight vector must match fanout");
    assert!(
        weights.iter().all(|&w| w > 0.0 && w.is_finite()),
        "branch weights must be strictly positive and finite"
    );
    let total: f64 = weights.iter().sum();

    // Per-branch knowledge gathered at this node: Some(true) = non-empty,
    // Some(false) = underflow. Never issue the same branch twice.
    let mut known: Vec<Option<bool>> = vec![None; fanout];
    let mut queries = 0u64;

    // -- step 1+2: initial pick, then circular right scan ---------------
    let initial = sample_weighted(rng, weights, total);
    let mut candidate = initial;
    let committed_outcome = loop {
        let outcome = sess.classify(attr, candidate as ValueId)?;
        queries += 1;
        if outcome.is_underflow() {
            known[candidate] = Some(false);
            candidate = (candidate + 1) % fanout;
            assert!(
                candidate != initial,
                "every branch of attribute {attr} underflows: base query must overflow"
            );
        } else {
            known[candidate] = Some(true);
            break outcome;
        }
    };
    let committed = candidate;

    // -- step 3: weight of the underflow run preceding `committed` ------
    let mut run_weight = 0.0;
    // Boolean shortcut: a valid committed branch under an overflowing
    // parent implies a non-empty sibling — no query needed.
    if fanout == 2 && committed_outcome.is_valid() && known[1 - committed].is_none() {
        known[1 - committed] = Some(true);
    }
    let mut probe = (committed + fanout - 1) % fanout;
    let mut steps = 0usize;
    while probe != committed && steps < fanout - 1 {
        let nonempty = match known[probe] {
            Some(flag) => flag,
            None => {
                let outcome = sess.classify(attr, probe as ValueId)?;
                queries += 1;
                let flag = outcome.is_nonempty();
                known[probe] = Some(flag);
                flag
            }
        };
        if nonempty {
            break;
        }
        run_weight += weights[probe];
        probe = (probe + fanout - 1) % fanout;
        steps += 1;
    }

    let probability = ((weights[committed] + run_weight) / total).min(1.0);
    let discovered_empty = known
        .iter()
        .enumerate()
        .filter_map(|(v, &flag)| (flag == Some(false)).then_some(v as ValueId))
        .collect();

    Ok(SessionBranchChoice {
        value: committed as ValueId,
        probability,
        outcome: committed_outcome,
        discovered_empty,
        queries,
    })
}

/// [`choose_branch_simple`] over a [`WalkSession`]: queries every branch
/// up front (count-only), then picks weight-proportionally among the
/// non-underflowing ones. Identical query sequence and RNG consumption
/// as the fresh version.
///
/// # Errors
/// Propagates interface errors.
///
/// # Panics
/// Same contract as [`choose_branch`].
pub fn choose_branch_simple_session<R: Rng + ?Sized>(
    sess: &mut WalkSession<'_>,
    attr: AttrId,
    weights: &[f64],
    rng: &mut R,
) -> Result<SessionBranchChoice> {
    let fanout = sess.schema().fanout(attr);
    assert_eq!(weights.len(), fanout, "weight vector must match fanout");
    assert!(
        weights.iter().all(|&w| w > 0.0 && w.is_finite()),
        "branch weights must be strictly positive and finite"
    );
    let mut outcomes = Vec::with_capacity(fanout);
    let mut queries = 0u64;
    for v in 0..fanout {
        outcomes.push(sess.classify(attr, v as ValueId)?);
        queries += 1;
    }
    let live: Vec<usize> = (0..fanout).filter(|&v| outcomes[v].is_nonempty()).collect();
    assert!(
        !live.is_empty(),
        "every branch of attribute {attr} underflows: base query must overflow"
    );
    let live_total: f64 = live.iter().map(|&v| weights[v]).sum();
    let mut u: f64 = rng.random::<f64>() * live_total;
    let mut committed = *live.last().expect("live non-empty");
    for &v in &live {
        u -= weights[v];
        if u <= 0.0 {
            committed = v;
            break;
        }
    }
    let discovered_empty = (0..fanout)
        .filter(|&v| outcomes[v].is_underflow())
        .map(|v| v as ValueId)
        .collect();
    Ok(SessionBranchChoice {
        value: committed as ValueId,
        probability: weights[committed] / live_total,
        outcome: outcomes.swap_remove(committed),
        discovered_empty,
        queries,
    })
}

/// Selects a branch of `attr` below the overflowing query `base`.
///
/// This is the fresh-query reference implementation (each probe is an
/// independent [`TopKInterface::query`], full pages included);
/// [`choose_branch_session`] is the incremental equivalent the
/// estimators run on.
///
/// # Errors
/// Propagates interface errors (notably budget exhaustion).
///
/// # Panics
/// Panics if `weights` length differs from the attribute fanout, if any
/// weight is not strictly positive, or if every branch underflows — the
/// caller must guarantee `base` overflows, which implies a non-empty
/// branch exists.
pub fn choose_branch<I: TopKInterface, R: Rng + ?Sized>(
    iface: &I,
    base: &Query,
    attr: AttrId,
    weights: &[f64],
    rng: &mut R,
) -> Result<BranchChoice> {
    let fanout = iface.schema().fanout(attr);
    assert_eq!(weights.len(), fanout, "weight vector must match fanout");
    assert!(
        weights.iter().all(|&w| w > 0.0 && w.is_finite()),
        "branch weights must be strictly positive and finite"
    );
    let total: f64 = weights.iter().sum();

    // Per-branch knowledge gathered at this node: Some(true) = non-empty,
    // Some(false) = underflow. Never issue the same branch twice.
    let mut known: Vec<Option<bool>> = vec![None; fanout];
    let mut queries = 0u64;

    // -- step 1+2: initial pick, then circular right scan ---------------
    let initial = sample_weighted(rng, weights, total);
    let mut candidate = initial;
    let committed_outcome = loop {
        let q = base.and(attr, candidate as ValueId).expect("attr unconstrained in base");
        let outcome = iface.query(&q)?;
        queries += 1;
        if outcome.is_underflow() {
            known[candidate] = Some(false);
            candidate = (candidate + 1) % fanout;
            assert!(
                candidate != initial,
                "every branch of attribute {attr} underflows: base query must overflow"
            );
        } else {
            known[candidate] = Some(true);
            break outcome;
        }
    };
    let committed = candidate;

    // -- step 3: weight of the underflow run preceding `committed` ------
    let mut run_weight = 0.0;
    // Boolean shortcut: a valid committed branch under an overflowing
    // parent implies a non-empty sibling — no query needed.
    if fanout == 2 && committed_outcome.is_valid() && known[1 - committed].is_none() {
        known[1 - committed] = Some(true);
    }
    let mut probe = (committed + fanout - 1) % fanout;
    let mut steps = 0usize;
    while probe != committed && steps < fanout - 1 {
        let nonempty = match known[probe] {
            Some(flag) => flag,
            None => {
                let q = base.and(attr, probe as ValueId).expect("attr unconstrained in base");
                let outcome = iface.query(&q)?;
                queries += 1;
                let flag = outcome.is_nonempty();
                known[probe] = Some(flag);
                flag
            }
        };
        if nonempty {
            break;
        }
        run_weight += weights[probe];
        probe = (probe + fanout - 1) % fanout;
        steps += 1;
    }

    let probability = ((weights[committed] + run_weight) / total).min(1.0);
    let discovered_empty = known
        .iter()
        .enumerate()
        .filter_map(|(v, &flag)| (flag == Some(false)).then_some(v as ValueId))
        .collect();

    Ok(BranchChoice {
        value: committed as ValueId,
        probability,
        outcome: committed_outcome,
        discovered_empty,
        queries,
    })
}

/// Selects a branch using *simple backtracking* (paper §3.2): query every
/// branch of the node up front, then choose weight-proportionally among
/// the non-underflowing ones. The commit probability is exactly
/// `w_c / Σ weights of non-underflowing branches`.
///
/// Always issues one query per branch (minus nothing — there is no reuse
/// to exploit), which is the cost the paper's smart backtracking was
/// designed to avoid on large-fanout attributes.
///
/// # Errors
/// Propagates interface errors.
///
/// # Panics
/// Same contract as [`choose_branch`].
pub fn choose_branch_simple<I: TopKInterface, R: Rng + ?Sized>(
    iface: &I,
    base: &Query,
    attr: AttrId,
    weights: &[f64],
    rng: &mut R,
) -> Result<BranchChoice> {
    let fanout = iface.schema().fanout(attr);
    assert_eq!(weights.len(), fanout, "weight vector must match fanout");
    assert!(
        weights.iter().all(|&w| w > 0.0 && w.is_finite()),
        "branch weights must be strictly positive and finite"
    );
    let mut outcomes = Vec::with_capacity(fanout);
    let mut queries = 0u64;
    for v in 0..fanout {
        let q = base.and(attr, v as ValueId).expect("attr unconstrained in base");
        outcomes.push(iface.query(&q)?);
        queries += 1;
    }
    let live: Vec<usize> = (0..fanout).filter(|&v| outcomes[v].is_nonempty()).collect();
    assert!(!live.is_empty(), "every branch of attribute {attr} underflows: base query must overflow");
    let live_total: f64 = live.iter().map(|&v| weights[v]).sum();
    let mut u: f64 = rng.random::<f64>() * live_total;
    let mut committed = *live.last().expect("live non-empty");
    for &v in &live {
        u -= weights[v];
        if u <= 0.0 {
            committed = v;
            break;
        }
    }
    let discovered_empty = (0..fanout)
        .filter(|&v| outcomes[v].is_underflow())
        .map(|v| v as ValueId)
        .collect();
    Ok(BranchChoice {
        value: committed as ValueId,
        probability: weights[committed] / live_total,
        outcome: outcomes.swap_remove(committed),
        discovered_empty,
        queries,
    })
}

/// Draws an index proportionally to `weights` (all positive, summing to
/// `total`).
fn sample_weighted<R: Rng + ?Sized>(rng: &mut R, weights: &[f64], total: f64) -> usize {
    let mut u: f64 = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdb_interface::{Attribute, HiddenDb, Schema, Table, Tuple};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A5 column of the paper's running example restricted to the Figure 3
    /// situation: branches {q1, q3} non-empty, {q2, q4, q5} empty.
    fn figure3_db() -> HiddenDb {
        let schema = Schema::new(vec![
            Attribute::categorical("a5", ["1", "2", "3", "4", "5"]).unwrap(),
            Attribute::boolean("pad"),
        ])
        .unwrap();
        // several tuples under value 0 ("q1") and one under value 2 ("q3")
        let table = Table::new(
            schema,
            vec![
                Tuple::new(vec![0, 0]),
                Tuple::new(vec![0, 1]),
                Tuple::new(vec![2, 0]),
            ],
        )
        .unwrap();
        HiddenDb::new(table, 1)
    }

    #[test]
    fn commit_probabilities_match_figure3() {
        // wU(q1) = 2 (q4, q5 empty precede it), wU(q3) = 1 (q2).
        // Under uniform weights p(q1) = 3/5, p(q3) = 2/5.
        let db = figure3_db();
        let weights = vec![1.0; 5];
        let mut hits = [0u32; 5];
        let mut rng = StdRng::seed_from_u64(42);
        let trials = 20_000;
        for _ in 0..trials {
            let choice = choose_branch(&db, &Query::all(), 0, &weights, &mut rng).unwrap();
            hits[choice.value as usize] += 1;
            let expected = match choice.value {
                0 => 3.0 / 5.0,
                2 => 2.0 / 5.0,
                v => panic!("committed to empty branch {v}"),
            };
            assert!(
                (choice.probability - expected).abs() < 1e-12,
                "value {} probability {}",
                choice.value,
                choice.probability
            );
        }
        let f0 = f64::from(hits[0]) / f64::from(trials);
        assert!((f0 - 0.6).abs() < 0.02, "empirical frequency {f0}");
    }

    #[test]
    fn weighted_commit_probability_is_exact() {
        let db = figure3_db();
        // weights: q1..q5 = 5,1,2,1,1 (total 10)
        let weights = vec![5.0, 1.0, 2.0, 1.0, 1.0];
        let mut rng = StdRng::seed_from_u64(7);
        let mut freq = [0u32; 5];
        let trials = 40_000;
        for _ in 0..trials {
            let c = choose_branch(&db, &Query::all(), 0, &weights, &mut rng).unwrap();
            freq[c.value as usize] += 1;
            let expected = match c.value {
                0 => (5.0 + 1.0 + 1.0) / 10.0, // q1 + run {q4, q5}
                2 => (2.0 + 1.0) / 10.0,       // q3 + run {q2}
                v => panic!("committed to empty branch {v}"),
            };
            assert!((c.probability - expected).abs() < 1e-12);
        }
        let f0 = f64::from(freq[0]) / f64::from(trials);
        assert!((f0 - 0.7).abs() < 0.02, "empirical frequency {f0}");
    }

    #[test]
    fn all_but_one_empty_commits_with_probability_one() {
        let schema = Schema::new(vec![
            Attribute::categorical("c", ["a", "b", "c", "d"]).unwrap(),
            Attribute::boolean("pad"),
        ])
        .unwrap();
        let table = Table::new(
            schema,
            vec![Tuple::new(vec![1, 0]), Tuple::new(vec![1, 1])],
        )
        .unwrap();
        let db = HiddenDb::new(table, 1);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let c = choose_branch(&db, &Query::all(), 0, &[1.0; 4], &mut rng).unwrap();
            assert_eq!(c.value, 1);
            assert!((c.probability - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn boolean_valid_shortcut_saves_the_sibling_query() {
        // 2 tuples on branch 0, 2 on branch 1, k = 2: both branches valid.
        let table = Table::new(
            Schema::boolean(2),
            vec![
                Tuple::new(vec![0, 0]),
                Tuple::new(vec![0, 1]),
                Tuple::new(vec![1, 0]),
                Tuple::new(vec![1, 1]),
            ],
        )
        .unwrap();
        let db = HiddenDb::new(table, 2);
        let mut rng = StdRng::seed_from_u64(5);
        let c = choose_branch(&db, &Query::all(), 0, &[1.0, 1.0], &mut rng).unwrap();
        // committed branch is valid; sibling probe skipped → exactly 1 query
        assert!(c.outcome.is_valid());
        assert_eq!(c.queries, 1);
        assert!((c.probability - 0.5).abs() < 1e-12);
    }

    #[test]
    fn boolean_overflow_commit_requires_sibling_probe() {
        // 3 tuples on branch 0 (overflow at k=2), 2 on branch 1.
        let table = Table::new(
            Schema::boolean(3),
            vec![
                Tuple::new(vec![0, 0, 0]),
                Tuple::new(vec![0, 0, 1]),
                Tuple::new(vec![0, 1, 0]),
                Tuple::new(vec![1, 0, 0]),
                Tuple::new(vec![1, 0, 1]),
            ],
        )
        .unwrap();
        let db = HiddenDb::new(table, 2);
        let mut rng = StdRng::seed_from_u64(11);
        let before = db.queries_issued();
        let c = choose_branch(&db, &Query::all(), 0, &[1.0, 1.0], &mut rng).unwrap();
        let spent = db.queries_issued() - before;
        if c.value == 0 {
            // overflowing commit: sibling must be probed → 2 queries
            assert!(c.outcome.is_overflow());
            assert_eq!(spent, 2);
        } else {
            // valid commit: shortcut applies → 1 query
            assert!(c.outcome.is_valid());
            assert_eq!(spent, 1);
        }
        assert!((c.probability - 0.5).abs() < 1e-12);
        assert_eq!(c.queries, spent);
    }

    #[test]
    fn expected_query_cost_matches_equation_2() {
        // Paper §3.2 works QC for the Figure-3 node: branches {q1, q3}
        // non-empty, {q2, q4, q5} empty, so
        // QC = 1 + [(w_U(q1)+1)² + (w_U(q3)+1)²]/w = 1 + (9 + 4)/5 = 3.6.
        let db = figure3_db();
        let mut rng = StdRng::seed_from_u64(99);
        let trials = 40_000u32;
        let mut total_queries = 0u64;
        for _ in 0..trials {
            let c = choose_branch(&db, &Query::all(), 0, &[1.0; 5], &mut rng).unwrap();
            total_queries += c.queries;
        }
        let qc = total_queries as f64 / f64::from(trials);
        assert!((qc - 3.6).abs() < 0.02, "empirical QC {qc} vs Eq. 2 value 3.6");
    }

    #[test]
    fn simple_backtracking_always_queries_every_branch() {
        let db = figure3_db();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let c = choose_branch_simple(&db, &Query::all(), 0, &[1.0; 5], &mut rng).unwrap();
            assert_eq!(c.queries, 5);
            assert!(matches!(c.value, 0 | 2));
            assert!((c.probability - 0.5).abs() < 1e-12, "uniform over the two live branches");
            assert_eq!(c.discovered_empty.len(), 3);
        }
    }

    #[test]
    fn simple_backtracking_respects_weights() {
        let db = figure3_db();
        let mut rng = StdRng::seed_from_u64(8);
        let weights = [3.0, 1.0, 1.0, 1.0, 1.0];
        let mut hits0 = 0u32;
        let trials = 20_000;
        for _ in 0..trials {
            let c = choose_branch_simple(&db, &Query::all(), 0, &weights, &mut rng).unwrap();
            if c.value == 0 {
                hits0 += 1;
                assert!((c.probability - 0.75).abs() < 1e-12);
            } else {
                assert!((c.probability - 0.25).abs() < 1e-12);
            }
        }
        let f = f64::from(hits0) / f64::from(trials);
        assert!((f - 0.75).abs() < 0.02, "frequency {f}");
    }

    #[test]
    fn discovered_empties_are_reported() {
        let db = figure3_db();
        let mut rng = StdRng::seed_from_u64(1);
        let mut saw_empty = false;
        for _ in 0..50 {
            let c = choose_branch(&db, &Query::all(), 0, &[1.0; 5], &mut rng).unwrap();
            for &v in &c.discovered_empty {
                assert!(matches!(v, 1 | 3 | 4), "branch {v} is not empty");
                saw_empty = true;
            }
        }
        assert!(saw_empty);
    }

    #[test]
    #[should_panic(expected = "must overflow")]
    fn all_empty_branches_panic() {
        // base constrains pad=1 branch where value 2's tuple doesn't reach:
        // actually make a base with no matching tuples below any branch by
        // querying under an underflowing base.
        let db = figure3_db();
        let base = Query::all().and(1, 0).unwrap(); // pad = 0: tuples (0,*),(2,*) with pad 0 → branches 0,2 non-empty
        // instead use pad=1 with value 2 absent… tuple (0,1) exists so branch 0 non-empty.
        // Build a truly empty situation: base pad=1 AND a5 constrained is impossible,
        // so craft a db where base itself underflows.
        let empty_base = base.and(0, 3).unwrap(); // a5=4 & pad=0 matches nothing — but attr 0 now constrained
        // choose_branch over attr 0 requires it unconstrained; use a different db:
        drop(empty_base);
        let schema = Schema::new(vec![
            Attribute::categorical("c", ["a", "b", "c"]).unwrap(),
            Attribute::boolean("pad"),
        ])
        .unwrap();
        let table = Table::new(schema, vec![Tuple::new(vec![0, 0])]).unwrap();
        let db2 = HiddenDb::new(table, 1);
        let base = Query::all().and(1, 1).unwrap(); // pad=1 matches nothing
        let mut rng = StdRng::seed_from_u64(2);
        let _ = choose_branch(&db2, &base, 0, &[1.0; 3], &mut rng);
        let _ = db;
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn zero_weight_rejected() {
        let db = figure3_db();
        let mut rng = StdRng::seed_from_u64(2);
        let _ = choose_branch(&db, &Query::all(), 0, &[1.0, 0.0, 1.0, 1.0, 1.0], &mut rng);
    }
}
