//! The random drill-down over a (sub)tree: repeated branch selection from
//! an overflowing root until a valid node is reached or the level budget
//! is exhausted (divide-&-conquer bottom boundary).

use hdb_interface::{AttrId, ClassifiedOutcome, Query, ReturnedTuple, TopKInterface, ValueId, WalkSession};
use rand::Rng;

use crate::error::Result;
use crate::walk::branch::{choose_branch_session, choose_branch_simple_session};
use crate::walk::{BacktrackStrategy, PathStep, WeightProvider};

/// One committed level of a walk.
#[derive(Clone, Debug)]
pub struct WalkLevel {
    /// The attribute drilled at this level.
    pub attr: AttrId,
    /// The committed branch value.
    pub value: ValueId,
    /// Conditional probability of committing to `value` at this level.
    pub probability: f64,
}

/// How a walk ended.
#[derive(Clone, Debug)]
pub enum WalkTerminal {
    /// A valid node whose parent overflows: all its tuples, as returned
    /// by the interface.
    TopValid {
        /// The tuples of the top-valid node (`1 ≤ len ≤ k`).
        tuples: Vec<ReturnedTuple>,
    },
    /// All subtree levels were committed and the query still overflows —
    /// the walk stopped at the subtree's bottom boundary
    /// (divide-&-conquer recurses from here).
    BottomOverflow,
}

/// A completed drill-down.
#[derive(Clone, Debug)]
pub struct Walk {
    /// Per-level records in drill order.
    pub levels: Vec<WalkLevel>,
    /// Terminal classification.
    pub terminal: WalkTerminal,
    /// `p(terminal | subtree root)` — the product of the level
    /// probabilities. Exact by construction.
    pub probability: f64,
    /// Queries issued during this walk.
    pub queries: u64,
}

impl Walk {
    /// The query of the terminal node, given the subtree root query.
    ///
    /// # Panics
    /// Panics if a level attribute is already constrained in `root` —
    /// impossible for walks produced by [`drill_down`] with a correct
    /// level list.
    #[must_use]
    pub fn terminal_query(&self, root: &Query) -> Query {
        let mut q = root.clone();
        for level in &self.levels {
            q = q.and(level.attr, level.value).expect("walk levels are unconstrained in root");
        }
        q
    }

    /// The walk's path steps (for weight-model bookkeeping), excluding
    /// any prefix outside this subtree.
    #[must_use]
    pub fn steps(&self) -> Vec<PathStep> {
        self.levels.iter().map(|l| (l.attr, l.value)).collect()
    }

    /// Whether the walk ended at a top-valid node.
    #[must_use]
    pub fn is_top_valid(&self) -> bool {
        matches!(self.terminal, WalkTerminal::TopValid { .. })
    }
}

/// Performs one random drill-down below `root` (which **must** overflow)
/// across `levels`, with branch weights supplied per node by `weights`.
///
/// `prefix` is the global tree path of `root` (empty at the tree root);
/// it keys weight lookups so that the weight model learns positions in
/// the *global* tree even when the walk runs inside a nested subtree.
///
/// # Errors
/// Propagates interface errors (budget exhaustion aborts the walk; no
/// state is corrupted — the caller owns retry policy).
///
/// # Panics
/// Panics if `levels` is empty (a subtree must have at least one level)
/// or if `root` does not actually overflow (detected when every branch of
/// the first level underflows).
pub fn drill_down<I, W, R>(
    iface: &I,
    root: &Query,
    prefix: &[PathStep],
    levels: &[AttrId],
    weights: &W,
    rng: &mut R,
) -> Result<Walk>
where
    I: TopKInterface,
    W: WeightProvider + ?Sized,
    R: Rng + ?Sized,
{
    drill_down_with(iface, root, prefix, levels, weights, BacktrackStrategy::Smart, rng)
}

/// [`drill_down`] with an explicit backtracking strategy (the ablation
/// harness compares [`BacktrackStrategy::Smart`] against
/// [`BacktrackStrategy::Simple`]).
///
/// # Errors
/// Same contract as [`drill_down`].
///
/// # Panics
/// Same contract as [`drill_down`].
pub fn drill_down_with<I, W, R>(
    iface: &I,
    root: &Query,
    prefix: &[PathStep],
    levels: &[AttrId],
    weights: &W,
    strategy: BacktrackStrategy,
    rng: &mut R,
) -> Result<Walk>
where
    I: TopKInterface,
    W: WeightProvider + ?Sized,
    R: Rng + ?Sized,
{
    let mut sess = iface.walk_session(root.clone())?;
    drill_down_session(&mut sess, prefix, levels, weights, strategy, rng)
}

/// One random drill-down driven through a [`WalkSession`] positioned at
/// the subtree root (which **must** overflow). This is what the
/// estimators run on: each branch probe costs one AND pass over the
/// parent's materialised match set, and query order, RNG consumption,
/// outcomes, and accounting are bit-identical to the fresh-query path.
///
/// On success the session is restored to its entry node; the caller
/// re-extends along [`Walk::steps`] to recurse below a bottom-overflow
/// terminal. After an error the session's position is unspecified —
/// abandon it (the pass is aborted anyway).
///
/// # Errors
/// Propagates interface errors (budget exhaustion aborts the walk).
///
/// # Panics
/// Same contract as [`drill_down`].
pub fn drill_down_session<W, R>(
    sess: &mut WalkSession<'_>,
    prefix: &[PathStep],
    levels: &[AttrId],
    weights: &W,
    strategy: BacktrackStrategy,
    rng: &mut R,
) -> Result<Walk>
where
    W: WeightProvider + ?Sized,
    R: Rng + ?Sized,
{
    assert!(!levels.is_empty(), "drill_down requires at least one level");
    let mut path: Vec<PathStep> = prefix.to_vec();
    let mut records = Vec::with_capacity(levels.len());
    let mut probability = 1.0;
    let mut queries = 0u64;
    let mut extended = 0usize;

    for (depth, &attr) in levels.iter().enumerate() {
        let fanout = sess.schema().fanout(attr);
        let branch_weights = weights.weights(&path, attr, fanout);
        let choice = match strategy {
            BacktrackStrategy::Smart => {
                choose_branch_session(sess, attr, &branch_weights, rng)?
            }
            BacktrackStrategy::Simple => {
                choose_branch_simple_session(sess, attr, &branch_weights, rng)?
            }
        };
        queries += choice.queries;
        for &v in &choice.discovered_empty {
            weights.observe_empty(&path, attr, v);
        }
        probability *= choice.probability;
        records.push(WalkLevel { attr, value: choice.value, probability: choice.probability });
        path.push((attr, choice.value));

        if let ClassifiedOutcome::Valid(tuples) = &choice.outcome {
            let tuples = tuples.to_vec();
            for _ in 0..extended {
                sess.retract();
            }
            return Ok(Walk {
                levels: records,
                terminal: WalkTerminal::TopValid { tuples },
                probability,
                queries,
            });
        }
        debug_assert!(choice.outcome.is_overflow(), "committed branch cannot underflow");
        if depth + 1 < levels.len() {
            sess.extend(attr, choice.value);
            extended += 1;
        }
    }

    for _ in 0..extended {
        sess.retract();
    }
    Ok(Walk { levels: records, terminal: WalkTerminal::BottomOverflow, probability, queries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk::UniformWeights;
    use hdb_interface::{HiddenDb, Schema, Table, Tuple};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeMap;

    /// The paper's running example, Boolean part (Figure 1): 6 tuples
    /// over A1..A4, k = 1.
    fn figure1_db() -> HiddenDb {
        let table = Table::new(
            Schema::boolean(4),
            vec![
                Tuple::new(vec![0, 0, 0, 0]),
                Tuple::new(vec![0, 0, 0, 1]),
                Tuple::new(vec![0, 0, 1, 0]),
                Tuple::new(vec![0, 1, 1, 1]),
                Tuple::new(vec![1, 1, 1, 0]),
                Tuple::new(vec![1, 1, 1, 1]),
            ],
        )
        .unwrap();
        HiddenDb::new(table, 1)
    }

    #[test]
    fn walk_always_reaches_top_valid_at_full_depth() {
        let db = figure1_db();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let walk =
                drill_down(&db, &Query::all(), &[], &[0, 1, 2, 3], &UniformWeights, &mut rng)
                    .unwrap();
            assert!(walk.is_top_valid(), "full-depth walks cannot bottom-overflow (k ≥ 1)");
            assert!(walk.probability > 0.0 && walk.probability <= 1.0);
        }
    }

    #[test]
    fn horvitz_thompson_is_unbiased_on_figure1() {
        // E[|q| / p(q)] = m = 6 (Theorem 1). Check the Monte-Carlo mean.
        let db = figure1_db();
        let mut rng = StdRng::seed_from_u64(2);
        let trials = 40_000;
        let mut sum = 0.0;
        for _ in 0..trials {
            let walk =
                drill_down(&db, &Query::all(), &[], &[0, 1, 2, 3], &UniformWeights, &mut rng)
                    .unwrap();
            if let WalkTerminal::TopValid { tuples } = &walk.terminal {
                sum += tuples.len() as f64 / walk.probability;
            }
        }
        let mean = sum / f64::from(trials);
        assert!((mean - 6.0).abs() < 0.1, "HT mean {mean} should be ≈ 6");
    }

    #[test]
    fn example_walk_probability_matches_paper() {
        // Paper §3.1: node q4 = (A1=1, A2=1, A3=1, A4=1)… actually the
        // worked example reaches the top-valid node below q3 with
        // p(q) = 1/4 (two Scenario-I levels). Verify by enumerating the
        // walks that terminate at t6 = (1,1,1,1).
        let db = figure1_db();
        let mut rng = StdRng::seed_from_u64(3);
        let mut probs: BTreeMap<Vec<(usize, u16)>, f64> = BTreeMap::new();
        for _ in 0..5_000 {
            let walk =
                drill_down(&db, &Query::all(), &[], &[0, 1, 2, 3], &UniformWeights, &mut rng)
                    .unwrap();
            probs.insert(walk.steps(), walk.probability);
        }
        // t6's top-valid node is A1=1,A2=1,A3=1,A4=1 (its sibling t5 is
        // valid too). Levels: A1 (both non-empty, 1/2), A2 (sibling A2=0
        // underflows, 1), A3 (sibling underflows, 1), A4 (both valid, 1/2)
        // → p = 1/4.
        let key = vec![(0usize, 1u16), (1, 1), (2, 1), (3, 1)];
        let p = probs.get(&key).copied().expect("walk should reach t6 at least once");
        assert!((p - 0.25).abs() < 1e-12, "p(t6 node) = {p}");
        // t1's node (0,0,0,0): A1 1/2, A2 1/2 (A2=1 has t4 → non-empty),
        // A3 1/2 (A3=1 has t3? A1=0,A2=0,A3=1 → t3 → non-empty), A4 1/2
        // (t2 on sibling) → 1/16.
        let key = vec![(0usize, 0u16), (1, 0), (2, 0), (3, 0)];
        let p = probs.get(&key).copied().expect("walk should reach t1 at least once");
        assert!((p - 1.0 / 16.0).abs() < 1e-12, "p(t1 node) = {p}");
    }

    #[test]
    fn probability_is_product_of_level_probabilities() {
        let db = figure1_db();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let walk =
                drill_down(&db, &Query::all(), &[], &[0, 1, 2, 3], &UniformWeights, &mut rng)
                    .unwrap();
            let product: f64 = walk.levels.iter().map(|l| l.probability).product();
            assert!((walk.probability - product).abs() < 1e-15);
        }
    }

    #[test]
    fn bottom_overflow_when_levels_run_out() {
        let db = figure1_db();
        let mut rng = StdRng::seed_from_u64(5);
        // only one level: branch A1=0 holds 4 tuples (> k = 1) → any walk
        // committing to it bottoms out in overflow; A1=1 holds 2 tuples
        // → also overflow. So every 1-level walk bottom-overflows.
        let walk = drill_down(&db, &Query::all(), &[], &[0], &UniformWeights, &mut rng).unwrap();
        assert!(matches!(walk.terminal, WalkTerminal::BottomOverflow));
        assert_eq!(walk.levels.len(), 1);
    }

    #[test]
    fn walk_respects_base_selection() {
        let db = figure1_db();
        let mut rng = StdRng::seed_from_u64(6);
        // base: A2 = 1 (3 tuples: t4, t5, t6) — drill over remaining attrs
        let base = Query::all().and(1, 1).unwrap();
        for _ in 0..50 {
            let walk = drill_down(&db, &base, &[], &[0, 2, 3], &UniformWeights, &mut rng).unwrap();
            if let WalkTerminal::TopValid { tuples } = &walk.terminal {
                for t in tuples {
                    assert_eq!(t.tuple.value(1), 1);
                }
            }
        }
    }

    #[test]
    fn terminal_query_reconstructs_path() {
        let db = figure1_db();
        let mut rng = StdRng::seed_from_u64(7);
        let walk =
            drill_down(&db, &Query::all(), &[], &[0, 1, 2, 3], &UniformWeights, &mut rng).unwrap();
        let q = walk.terminal_query(&Query::all());
        assert_eq!(q.len(), walk.levels.len());
        for level in &walk.levels {
            assert_eq!(q.value_of(level.attr), Some(level.value));
        }
    }

    #[test]
    fn budget_exhaustion_surfaces_cleanly() {
        let table = Table::new(
            Schema::boolean(4),
            (0..8u16)
                .map(|i| Tuple::new(vec![i & 1, (i >> 1) & 1, (i >> 2) & 1, 0]))
                .collect(),
        )
        .unwrap();
        let db = HiddenDb::new(table, 1).with_budget(2);
        let mut rng = StdRng::seed_from_u64(8);
        let err = drill_down(&db, &Query::all(), &[], &[0, 1, 2, 3], &UniformWeights, &mut rng)
            .unwrap_err();
        assert!(err.is_budget_exhausted());
    }
}
