//! # hdb-stats — estimator-evaluation statistics
//!
//! The measurement substrate for the experiment harness: numerically
//! stable running moments ([`RunningStats`]), accuracy summaries matching
//! the paper's reported measures — MSE, relative error, error bars
//! (§6.1.4) — and the trial/checkpoint plumbing that turns many estimator
//! runs into accuracy-vs-query-cost curves ([`Trace`], [`summarize_at`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod experiment;
pub mod reduce;
pub mod running;
pub mod series;
pub mod summary;

pub use experiment::{checkpoints, summarize_at, CheckpointAccuracy, Trace};
pub use reduce::PassReducer;
pub use running::RunningStats;
pub use series::{Figure, Series};
pub use summary::{Accuracy, ConfidenceInterval, ErrorBar};
