//! Numerically stable running moments (Welford's algorithm).

/// Running mean/variance accumulator.
///
/// Estimator trials feed their per-drill-down estimates in here; the
/// experiment harness reads out mean, variance and standard error without
/// storing every observation.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by `n`); 0 when fewer than 2 samples.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n - 1`); 0 when fewer than 2 samples.
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean, `s/√n` (sample std dev based).
    #[must_use]
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.sample_variance() / self.count as f64).sqrt()
        }
    }

    /// Smallest observation (`+∞` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-∞` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9 * b.abs().max(1.0)
    }

    #[test]
    fn matches_naive_formulas() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s: RunningStats = xs.iter().copied().collect();
        assert_eq!(s.count(), 8);
        assert!(close(s.mean(), 5.0));
        assert!(close(s.variance(), 4.0));
        assert!(close(s.std_dev(), 2.0));
        assert!(close(s.sample_variance(), 32.0 / 7.0));
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_and_single() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        let s: RunningStats = [3.0].into_iter().collect();
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_error(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let all: RunningStats = xs.iter().copied().collect();
        let mut a: RunningStats = xs[..37].iter().copied().collect();
        let b: RunningStats = xs[37..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!(close(a.mean(), all.mean()));
        assert!(close(a.variance(), all.variance()));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: RunningStats = [1.0, 2.0].into_iter().collect();
        let before = a;
        a.merge(&RunningStats::new());
        assert!(close(a.mean(), before.mean()));
        let mut e = RunningStats::new();
        e.merge(&before);
        assert!(close(e.mean(), before.mean()));
        assert_eq!(e.count(), 2);
    }

    #[test]
    fn numerical_stability_large_offset() {
        let offset = 1e9;
        let s: RunningStats = (0..1000).map(|i| offset + (i % 10) as f64).collect();
        assert!((s.variance() - 8.25).abs() < 1e-3);
    }
}
