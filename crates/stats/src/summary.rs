//! Accuracy summaries: the measures the paper reports (§6.1.4) — mean
//! squared error, relative error, and error bars (one standard deviation
//! of uncertainty).

use crate::running::RunningStats;

/// Accuracy of a set of estimates against a known ground truth.
#[derive(Clone, Copy, Debug)]
pub struct Accuracy {
    /// Ground truth `θ`.
    pub truth: f64,
    /// Number of estimates.
    pub n: u64,
    /// Mean of the estimates.
    pub mean: f64,
    /// Mean squared error `E[(θ̂ − θ)²]`.
    pub mse: f64,
    /// Empirical bias `E[θ̂] − θ`.
    pub bias: f64,
    /// Empirical variance of the estimates.
    pub variance: f64,
    /// Mean relative error `E[|θ̂ − θ|/θ]`.
    pub mean_relative_error: f64,
    /// Relative error of the *mean* estimate `|E[θ̂] − θ|/θ`.
    pub relative_bias: f64,
}

impl Accuracy {
    /// Summarises `estimates` against `truth`.
    ///
    /// # Panics
    /// Panics if `truth == 0` (relative measures undefined) or
    /// `estimates` is empty.
    #[must_use]
    pub fn from_estimates(truth: f64, estimates: &[f64]) -> Self {
        assert!(truth != 0.0, "relative error undefined for zero truth");
        assert!(!estimates.is_empty(), "need at least one estimate");
        let stats: RunningStats = estimates.iter().copied().collect();
        let mse = estimates.iter().map(|e| (e - truth).powi(2)).sum::<f64>()
            / estimates.len() as f64;
        let mre = estimates.iter().map(|e| (e - truth).abs() / truth.abs()).sum::<f64>()
            / estimates.len() as f64;
        let mean = stats.mean();
        Self {
            truth,
            n: stats.count(),
            mean,
            mse,
            bias: mean - truth,
            variance: stats.variance(),
            mean_relative_error: mre,
            relative_bias: (mean - truth).abs() / truth.abs(),
        }
    }

    /// MSE decomposes as variance + bias² (paper §2.2); this returns the
    /// decomposition residual, which should be ~0 up to floating point.
    #[must_use]
    pub fn decomposition_residual(&self) -> f64 {
        self.mse - (self.variance + self.bias * self.bias)
    }
}

/// An error bar: mean ± one standard deviation, in units of the truth
/// (the paper's Figures 8/10/15 plot "relative size" bars around 1.0).
#[derive(Clone, Copy, Debug)]
pub struct ErrorBar {
    /// Mean of estimate/truth.
    pub center: f64,
    /// One standard deviation of estimate/truth.
    pub half_width: f64,
}

impl ErrorBar {
    /// Builds a relative error bar from raw estimates and the truth.
    ///
    /// # Panics
    /// Panics if `truth == 0` or `estimates` is empty.
    #[must_use]
    pub fn relative(truth: f64, estimates: &[f64]) -> Self {
        assert!(truth != 0.0 && !estimates.is_empty());
        let rel: RunningStats = estimates.iter().map(|e| e / truth).collect();
        Self { center: rel.mean(), half_width: rel.std_dev() }
    }

    /// Lower edge of the bar.
    #[must_use]
    pub fn low(&self) -> f64 {
        self.center - self.half_width
    }

    /// Upper edge of the bar.
    #[must_use]
    pub fn high(&self) -> f64 {
        self.center + self.half_width
    }

    /// Whether the bar contains a value.
    #[must_use]
    pub fn contains(&self, x: f64) -> bool {
        (self.low()..=self.high()).contains(&x)
    }
}

/// A two-sided confidence interval for the *mean* of the estimates, via
/// the central limit theorem.
#[derive(Clone, Copy, Debug)]
pub struct ConfidenceInterval {
    /// Sample mean.
    pub mean: f64,
    /// Half-width (z · standard error).
    pub half_width: f64,
    /// z-score used.
    pub z: f64,
}

impl ConfidenceInterval {
    /// CLT interval at the given z-score (1.96 ≈ 95%, 2.58 ≈ 99%,
    /// 3.29 ≈ 99.9%).
    ///
    /// # Panics
    /// Panics if `estimates` is empty.
    #[must_use]
    pub fn clt(estimates: &[f64], z: f64) -> Self {
        assert!(!estimates.is_empty());
        let stats: RunningStats = estimates.iter().copied().collect();
        Self { mean: stats.mean(), half_width: z * stats.std_error(), z }
    }

    /// Whether the interval contains `x`.
    #[must_use]
    pub fn contains(&self, x: f64) -> bool {
        (self.mean - self.half_width..=self.mean + self.half_width).contains(&x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_on_exact_estimates() {
        let a = Accuracy::from_estimates(100.0, &[100.0, 100.0, 100.0]);
        assert_eq!(a.mse, 0.0);
        assert_eq!(a.bias, 0.0);
        assert_eq!(a.mean_relative_error, 0.0);
    }

    #[test]
    fn accuracy_decomposition_holds() {
        let a = Accuracy::from_estimates(50.0, &[40.0, 55.0, 60.0, 45.0, 52.0]);
        assert!(a.decomposition_residual().abs() < 1e-9);
        assert!(a.mse > 0.0);
        assert!((a.mean - 50.4).abs() < 1e-12);
    }

    #[test]
    fn accuracy_captures_bias() {
        let a = Accuracy::from_estimates(10.0, &[12.0, 12.0, 12.0, 12.0]);
        assert!((a.bias - 2.0).abs() < 1e-12);
        assert!((a.mse - 4.0).abs() < 1e-12);
        assert_eq!(a.variance, 0.0);
        assert!((a.relative_bias - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero truth")]
    fn zero_truth_rejected() {
        let _ = Accuracy::from_estimates(0.0, &[1.0]);
    }

    #[test]
    fn error_bar_relative() {
        let bar = ErrorBar::relative(100.0, &[90.0, 110.0]);
        assert!((bar.center - 1.0).abs() < 1e-12);
        assert!((bar.half_width - 0.1).abs() < 1e-12);
        assert!(bar.contains(1.0));
        assert!(!bar.contains(1.2));
    }

    #[test]
    fn clt_interval_shrinks_with_n() {
        let small: Vec<f64> = (0..10).map(|i| 10.0 + (i % 3) as f64).collect();
        let large: Vec<f64> = (0..1000).map(|i| 10.0 + (i % 3) as f64).collect();
        let ci_small = ConfidenceInterval::clt(&small, 1.96);
        let ci_large = ConfidenceInterval::clt(&large, 1.96);
        assert!(ci_large.half_width < ci_small.half_width);
        assert!(ci_large.contains(ci_large.mean));
    }
}
