//! Named (x, y) series and lightweight rendering: the common currency
//! between experiment harnesses, CSV output and console tables.

use std::fmt::Write as _;

/// A named series of `(x, y)` points (one curve of a figure).
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Curve label, e.g. `"HD Mixed"`.
    pub name: String,
    /// Points in plot order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// An empty series.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), points: Vec::new() }
    }

    /// Builds a series from points.
    #[must_use]
    pub fn from_points(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self { name: name.into(), points }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The y values.
    #[must_use]
    pub fn ys(&self) -> Vec<f64> {
        self.points.iter().map(|&(_, y)| y).collect()
    }
}

/// A figure: several series sharing an x axis.
#[derive(Clone, Debug, Default)]
pub struct Figure {
    /// Figure title, e.g. `"Figure 6: MSE vs query cost"`.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
}

impl Figure {
    /// Creates an empty figure.
    #[must_use]
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn add(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Renders the figure as CSV: header `x,<name1>,<name2>,…`, one row
    /// per distinct x (union of all series' x values, ascending); missing
    /// values are empty cells.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, _)| x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
        xs.dedup();

        let mut out = String::new();
        let _ = write!(out, "{}", csv_escape(&self.x_label));
        for s in &self.series {
            let _ = write!(out, ",{}", csv_escape(&s.name));
        }
        out.push('\n');
        for &x in &xs {
            let _ = write!(out, "{x}");
            for s in &self.series {
                match s.points.iter().find(|&&(px, _)| px == x) {
                    Some(&(_, y)) => {
                        let _ = write!(out, ",{y}");
                    }
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders a fixed-width console table.
    #[must_use]
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = write!(out, "{:>14}", self.x_label);
        for s in &self.series {
            let _ = write!(out, " {:>18}", truncate(&s.name, 18));
        }
        out.push('\n');

        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, _)| x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
        xs.dedup();
        for &x in &xs {
            let _ = write!(out, "{x:>14.6}");
            for s in &self.series {
                match s.points.iter().find(|&&(px, _)| px == x) {
                    Some(&(_, y)) => {
                        let _ = write!(out, " {y:>18.6e}");
                    }
                    None => {
                        let _ = write!(out, " {:>18}", "-");
                    }
                }
            }
            out.push('\n');
        }
        out
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn truncate(s: &str, n: usize) -> &str {
    if s.len() <= n {
        s
    } else {
        &s[..n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_aligns_on_x() {
        let mut fig = Figure::new("t", "cost", "mse");
        fig.add(Series::from_points("a", vec![(1.0, 10.0), (2.0, 20.0)]));
        fig.add(Series::from_points("b", vec![(2.0, 200.0), (3.0, 300.0)]));
        let csv = fig.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "cost,a,b");
        assert_eq!(lines[1], "1,10,");
        assert_eq!(lines[2], "2,20,200");
        assert_eq!(lines[3], "3,,300");
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("a\"b"), "\"a\"\"b\"");
        assert_eq!(csv_escape("plain"), "plain");
    }

    #[test]
    fn table_contains_title_and_values() {
        let mut fig = Figure::new("Figure X", "x", "y");
        fig.add(Series::from_points("curve", vec![(1.0, 0.5)]));
        let table = fig.to_table();
        assert!(table.contains("# Figure X"));
        assert!(table.contains("curve"));
        assert!(table.contains("5e-1") || table.contains("5.000000e-1"));
    }

    #[test]
    fn series_helpers() {
        let mut s = Series::new("s");
        s.push(1.0, 2.0);
        s.push(3.0, 4.0);
        assert_eq!(s.ys(), vec![2.0, 4.0]);
    }
}
