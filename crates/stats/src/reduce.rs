//! Order-independent merging of per-pass estimates.
//!
//! Parallel estimation fans independent passes across worker threads;
//! each pass returns `(pass_index, estimate)`. Floating-point addition
//! is not associative, so naively summing results in arrival order would
//! make the merged estimate depend on thread scheduling. [`PassReducer`]
//! packages the discipline that removes the dependence (the engine in
//! `hdb-core` applies the same replay inline): results may be inserted
//! in **any** order, and [`PassReducer::into_ordered`] always replays
//! them in canonical pass-index order — so every downstream fold (mean,
//! variance) performs bit-identical operations regardless of how many
//! workers produced the results or how they interleaved. Use it when
//! building external harnesses on top of raw `fan_out` results.

/// Collects `(pass_index, value)` results and yields them in canonical
/// pass-index order.
///
/// Duplicate indices are a logic error (each pass runs exactly once) and
/// are rejected at merge time.
#[derive(Clone, Debug, Default)]
pub struct PassReducer {
    results: Vec<(u64, f64)>,
}

impl PassReducer {
    /// An empty reducer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A reducer with room for `capacity` results.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self { results: Vec::with_capacity(capacity) }
    }

    /// Records the result of pass `index`. Insertion order is irrelevant.
    pub fn insert(&mut self, index: u64, value: f64) {
        self.results.push((index, value));
    }

    /// Number of results collected so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Whether no results have been collected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// The collected values in ascending pass-index order — the canonical
    /// sequence every consumer must fold over.
    ///
    /// # Panics
    /// Panics if two results share a pass index: passes are independent
    /// units of work and must each be reported exactly once.
    #[must_use]
    pub fn into_ordered(mut self) -> Vec<f64> {
        self.results.sort_by_key(|&(i, _)| i);
        for pair in self.results.windows(2) {
            assert!(
                pair[0].0 != pair[1].0,
                "duplicate result for pass {} in PassReducer",
                pair[0].0
            );
        }
        self.results.into_iter().map(|(_, v)| v).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insertion_order_does_not_matter() {
        // values chosen so that summation order changes the f64 result
        let values = [1e16, 1.0, -1e16, 1.0, 3.5, -7.25];
        let mut forward = PassReducer::new();
        for (i, &v) in values.iter().enumerate() {
            forward.insert(i as u64, v);
        }
        let mut backward = PassReducer::new();
        for (i, &v) in values.iter().enumerate().rev() {
            backward.insert(i as u64, v);
        }
        assert_eq!(forward.into_ordered(), backward.into_ordered());
    }

    #[test]
    fn interleaved_batches_reduce_identically() {
        // two "workers" reporting alternating indices into one reducer
        let mut r = PassReducer::with_capacity(4);
        for (i, v) in [(0u64, 1.0f64), (2, 3.0)] {
            r.insert(i, v);
        }
        for (i, v) in [(3u64, 4.0f64), (1, 2.0)] {
            r.insert(i, v);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.into_ordered(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn empty_reducer() {
        let r = PassReducer::new();
        assert!(r.is_empty());
        assert!(r.into_ordered().is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate result")]
    fn duplicate_pass_index_rejected() {
        let mut r = PassReducer::new();
        r.insert(0, 1.0);
        r.insert(0, 2.0);
        let _ = r.into_ordered();
    }

    #[test]
    fn sparse_indices_keep_ascending_order() {
        // budget-exhausted parallel runs can complete a sparse subset
        let mut r = PassReducer::with_capacity(3);
        r.insert(7, 70.0);
        r.insert(3, 30.0);
        r.insert(11, 110.0);
        assert_eq!(r.into_ordered(), vec![30.0, 70.0, 110.0]);
    }
}
