//! Trial plumbing for query-cost/accuracy tradeoff experiments.
//!
//! Every figure of the paper that plots accuracy against query cost is
//! produced the same way: run many independent trials of an estimator,
//! record its *running* estimate after each unit of spend, align trials
//! on common query-cost checkpoints, and summarise across trials. This
//! module owns that machinery.

use crate::summary::{Accuracy, ErrorBar};

/// One trial's trajectory: the running estimate as a function of queries
/// spent. Points must be pushed in non-decreasing cost order.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    points: Vec<(u64, f64)>,
}

impl Trace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the running estimate after `cost` queries.
    ///
    /// # Panics
    /// Panics if `cost` is smaller than the previous point's cost.
    pub fn push(&mut self, cost: u64, estimate: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(cost >= last, "trace costs must be non-decreasing ({cost} < {last})");
        }
        self.points.push((cost, estimate));
    }

    /// The recorded points.
    #[must_use]
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// The running estimate available after spending at most `cost`
    /// queries: the last point with cost ≤ `cost`. `None` when the trial
    /// had produced no estimate yet at that spend.
    #[must_use]
    pub fn value_at(&self, cost: u64) -> Option<f64> {
        match self.points.binary_search_by_key(&cost, |&(c, _)| c) {
            Ok(mut i) => {
                // multiple points can share a cost; take the last
                while i + 1 < self.points.len() && self.points[i + 1].0 == cost {
                    i += 1;
                }
                Some(self.points[i].1)
            }
            Err(0) => None,
            Err(i) => Some(self.points[i - 1].1),
        }
    }

    /// Total cost of the trace (cost of its last point), 0 when empty.
    #[must_use]
    pub fn total_cost(&self) -> u64 {
        self.points.last().map_or(0, |&(c, _)| c)
    }

    /// The final estimate, if any point was recorded.
    #[must_use]
    pub fn final_estimate(&self) -> Option<f64> {
        self.points.last().map(|&(_, e)| e)
    }
}

/// Accuracy of a set of trials at one query-cost checkpoint.
#[derive(Clone, Copy, Debug)]
pub struct CheckpointAccuracy {
    /// The checkpoint (queries spent).
    pub cost: u64,
    /// Trials that had produced an estimate by this checkpoint.
    pub trials: usize,
    /// Accuracy summary over those trials.
    pub accuracy: Accuracy,
    /// Relative error bar over those trials.
    pub error_bar: ErrorBar,
}

/// Summarises many traces against `truth` at the given checkpoints.
/// Checkpoints where no trial has an estimate yet are omitted.
#[must_use]
pub fn summarize_at(traces: &[Trace], truth: f64, checkpoints: &[u64]) -> Vec<CheckpointAccuracy> {
    let mut out = Vec::with_capacity(checkpoints.len());
    for &cost in checkpoints {
        let estimates: Vec<f64> = traces.iter().filter_map(|t| t.value_at(cost)).collect();
        if estimates.is_empty() {
            continue;
        }
        out.push(CheckpointAccuracy {
            cost,
            trials: estimates.len(),
            accuracy: Accuracy::from_estimates(truth, &estimates),
            error_bar: ErrorBar::relative(truth, &estimates),
        });
    }
    out
}

/// Evenly spaced checkpoints `lo, lo+step, …, hi` (inclusive when it
/// lands on `hi`).
///
/// # Panics
/// Panics if `step == 0` or `lo > hi`.
#[must_use]
pub fn checkpoints(lo: u64, hi: u64, step: u64) -> Vec<u64> {
    assert!(step > 0, "step must be positive");
    assert!(lo <= hi, "lo must not exceed hi");
    (lo..=hi).step_by(step as usize).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_at_takes_last_point_not_exceeding_cost() {
        let mut t = Trace::new();
        t.push(10, 1.0);
        t.push(20, 2.0);
        t.push(20, 2.5);
        t.push(35, 3.0);
        assert_eq!(t.value_at(5), None);
        assert_eq!(t.value_at(10), Some(1.0));
        assert_eq!(t.value_at(19), Some(1.0));
        assert_eq!(t.value_at(20), Some(2.5));
        assert_eq!(t.value_at(34), Some(2.5));
        assert_eq!(t.value_at(100), Some(3.0));
        assert_eq!(t.total_cost(), 35);
        assert_eq!(t.final_estimate(), Some(3.0));
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_cost_rejected() {
        let mut t = Trace::new();
        t.push(10, 1.0);
        t.push(9, 2.0);
    }

    #[test]
    fn summarize_skips_unstarted_checkpoints() {
        let mut a = Trace::new();
        a.push(50, 90.0);
        a.push(100, 110.0);
        let mut b = Trace::new();
        b.push(60, 100.0);
        let summary = summarize_at(&[a, b], 100.0, &[10, 55, 100]);
        assert_eq!(summary.len(), 2);
        assert_eq!(summary[0].cost, 55);
        assert_eq!(summary[0].trials, 1);
        assert_eq!(summary[1].cost, 100);
        assert_eq!(summary[1].trials, 2);
        assert!((summary[1].accuracy.mean - 105.0).abs() < 1e-12);
    }

    #[test]
    fn checkpoint_generation() {
        assert_eq!(checkpoints(100, 500, 100), vec![100, 200, 300, 400, 500]);
        assert_eq!(checkpoints(5, 6, 10), vec![5]);
    }

    #[test]
    fn empty_trace_behaviour() {
        let t = Trace::new();
        assert_eq!(t.value_at(1000), None);
        assert_eq!(t.total_cost(), 0);
        assert_eq!(t.final_estimate(), None);
        let summary = summarize_at(&[t], 10.0, &[100]);
        assert!(summary.is_empty());
    }
}
