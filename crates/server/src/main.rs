//! The `hdb-server` binary: serves a generated hidden database over the
//! wire protocol.
//!
//! ```text
//! hdb-server [--addr 127.0.0.1:7171] [--rows 100000] [--attrs 20]
//!            [--shards 1] [--shard-workers 1] [--pool-threads N]
//!            [--shard-part I --shard-parts N]
//!            [--data-dir DIR] [--fsync always|never|every=N]
//!            [--federate SHARDS] [fleet flags]
//!            [--metrics-addr HOST:PORT]
//!            [--seed 42] [--self-test] [--probe HOST:PORT]
//! ```
//!
//! `--metrics-addr` binds a second listener serving the merged metrics
//! snapshot (query ledger, serving counters, backend series) as a
//! Prometheus text exposition — `curl http://HOST:PORT/metrics`.
//!
//! `--shards > 1` serves a [`ShardedDb`] instead of a single table (the
//! estimators cannot tell the difference — that is the point).
//! `--shard-part I --shard-parts N` serves only part `I` of the corpus
//! hash-partitioned `N` ways ([`ShardPartBackend`]) — run one process
//! per part and point a `FederatedBackend` topology at the fleet; it
//! merges their answers bit-identically to a local `ShardedDb`.
//! `--data-dir DIR` serves a crash-safe [`PersistentBackend`]: first
//! run seeds the store from the generated corpus, later runs recover
//! (snapshot + WAL replay) and ignore `--rows`/`--attrs`; SIGTERM
//! drains live walk sessions into a snapshot so a restart resumes them.
//! `--federate a:1,b:1|b:2` serves a federation *gateway*: each
//! comma-separated group is one shard, `|`-separated addresses its
//! replicas, tuned by the fleet flags (`--retries`, `--backoff-ms`,
//! `--backoff-cap-ms`, `--io-timeout-ms`, `--health-interval-ms`).
//! `--self-test` binds an ephemeral port, connects a [`RemoteBackend`]
//! client to itself, verifies a query + walk-session round trip against
//! the local backend bit-for-bit, and exits — the CI smoke path.
//! `--probe HOST:PORT` runs as a one-shot *client* instead: connect to
//! an already-running server, issue a handful of probes (so its query
//! ledger is non-trivial), print the count, and exit — CI uses it to
//! exercise a server before scraping `--metrics-addr`.

#![forbid(unsafe_code)]

use std::path::Path;
use std::sync::Arc;

use hdb_interface::reactor::TerminationSignal;
use hdb_interface::{
    FederatedBackend, FleetConfig, HiddenDb, PersistentBackend, Query, RemoteBackend,
    SearchBackend, ShardPartBackend, ShardedDb, SyncPolicy, Table, TableBackend, TopKInterface,
    Topology,
};
use hdb_server::{RunningServer, Server, ServerConfig};

/// Command-line options (std-only flag parsing).
struct Opts {
    addr: String,
    rows: usize,
    attrs: usize,
    shards: usize,
    shard_workers: usize,
    pool_threads: Option<usize>,
    shard_part: Option<usize>,
    shard_parts: Option<usize>,
    data_dir: Option<String>,
    fsync: SyncPolicy,
    federate: Option<String>,
    fleet: FleetConfig,
    metrics_addr: Option<String>,
    seed: u64,
    self_test: bool,
    probe: Option<String>,
}

impl Opts {
    fn parse() -> Self {
        let mut opts = Self {
            addr: "127.0.0.1:7171".to_string(),
            rows: 100_000,
            attrs: 20,
            shards: 1,
            shard_workers: 1,
            pool_threads: None,
            shard_part: None,
            shard_parts: None,
            data_dir: None,
            fsync: SyncPolicy::Always,
            federate: None,
            fleet: FleetConfig::default(),
            metrics_addr: None,
            seed: 42,
            self_test: false,
            probe: None,
        };
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            let mut value = |name: &str| {
                args.next().unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    std::process::exit(2);
                })
            };
            match flag.as_str() {
                "--addr" => opts.addr = value("--addr"),
                "--rows" => opts.rows = parse_num(&value("--rows"), "--rows"),
                "--attrs" => opts.attrs = parse_num(&value("--attrs"), "--attrs"),
                "--shards" => opts.shards = parse_num(&value("--shards"), "--shards"),
                "--shard-workers" => {
                    opts.shard_workers = parse_num(&value("--shard-workers"), "--shard-workers");
                }
                "--pool-threads" => {
                    opts.pool_threads =
                        Some(parse_num(&value("--pool-threads"), "--pool-threads"));
                }
                "--shard-part" => {
                    opts.shard_part = Some(parse_num(&value("--shard-part"), "--shard-part"));
                }
                "--shard-parts" => {
                    opts.shard_parts = Some(parse_num(&value("--shard-parts"), "--shard-parts"));
                }
                "--seed" => opts.seed = parse_num(&value("--seed"), "--seed") as u64,
                "--self-test" => opts.self_test = true,
                "--probe" => opts.probe = Some(value("--probe")),
                "--data-dir" => opts.data_dir = Some(value("--data-dir")),
                "--fsync" => {
                    opts.fsync = SyncPolicy::parse(&value("--fsync")).unwrap_or_else(|msg| {
                        eprintln!("invalid value for --fsync: {msg}");
                        std::process::exit(2);
                    });
                }
                "--federate" => opts.federate = Some(value("--federate")),
                "--metrics-addr" => opts.metrics_addr = Some(value("--metrics-addr")),
                "--help" | "-h" => {
                    println!(
                        "usage: hdb-server [--addr HOST:PORT] [--rows N] [--attrs N] \
                         [--shards N] [--shard-workers N] [--pool-threads N] \
                         [--shard-part I --shard-parts N] [--seed N] [--self-test]\n\
                         \n\
                         durability:\n  \
                         --data-dir DIR          crash-safe store: seed on first run, \
                         recover (snapshot + WAL) afterwards\n  \
                         --fsync MODE            WAL fsync discipline: always | never | \
                         every=N (default always)\n\
                         \n\
                         observability:\n  \
                         --metrics-addr HOST:PORT  serve Prometheus-text metrics on a \
                         second listener (curl .../metrics)\n  \
                         --probe HOST:PORT       one-shot client: probe a running \
                         server a few times and exit (CI scrape smoke)\n\
                         \n\
                         federation gateway (tuning flags also accepted by the benches):\n  \
                         --federate SHARDS       serve a FederatedBackend over shards \
                         \"a:1,b:1|b:2\" (comma: shards, pipe: replicas)\n{}",
                        FleetConfig::cli_help()
                    );
                    std::process::exit(0);
                }
                other => {
                    // Not a core flag: give the shared fleet vocabulary a
                    // chance before declaring it unknown.
                    let fleet_value = args.next();
                    match opts.fleet.apply_cli(other, fleet_value.as_deref().unwrap_or("")) {
                        Ok(true) => {}
                        Err(_) if fleet_value.is_none() => {
                            eprintln!("missing value for {other}");
                            std::process::exit(2);
                        }
                        Err(msg) => {
                            eprintln!("{msg}");
                            std::process::exit(2);
                        }
                        Ok(false) => {
                            eprintln!("unknown flag {other} (try --help)");
                            std::process::exit(2);
                        }
                    }
                }
            }
        }
        opts
    }
}

fn parse_num(s: &str, flag: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("invalid value for {flag}: {s}");
        std::process::exit(2);
    })
}

/// Generates the served corpus, clamping `rows` to half the Boolean
/// domain (distinct-tuple generation needs headroom; asking for more
/// rows than the domain holds is a config slip, not a crash).
fn dataset(rows: usize, attrs: usize, seed: u64) -> Table {
    let attrs = attrs.max(1);
    let capacity = 1usize.checked_shl(attrs.min(60) as u32).unwrap_or(usize::MAX);
    let rows = rows.min((capacity / 2).max(1));
    hdb_datagen::bool_iid(rows, attrs, seed).unwrap_or_else(|e| {
        eprintln!("dataset generation failed ({e}); try fewer --rows or more --attrs");
        std::process::exit(2);
    })
}

fn config(opts: &Opts) -> ServerConfig {
    let mut config = ServerConfig::default();
    if let Some(threads) = opts.pool_threads {
        config.pool_threads = threads.max(1);
    }
    config.metrics_addr.clone_from(&opts.metrics_addr);
    config
}

/// Self-test: serve on an ephemeral port, connect a client, and verify
/// bit-identical behaviour against the same corpus evaluated locally.
fn self_test(opts: &Opts) {
    let table = dataset(opts.rows.min(5_000), opts.attrs, opts.seed);
    let server = Server::bind_with(
        ShardedDb::new(&table, opts.shards.max(2)).with_workers(opts.shard_workers.max(1)),
        "127.0.0.1:0",
        config(opts),
    )
    .expect("ephemeral bind");
    println!("self-test server on {}", server.addr());

    let remote = RemoteBackend::connect(server.addr().to_string()).expect("connect");
    assert_eq!(remote.len(), table.len());
    let k = 10;
    let local_db = HiddenDb::new(table.clone(), k);
    let remote_db = HiddenDb::over(remote, k);

    // Fresh queries agree bit-for-bit.
    for attr in 0..table.schema().len().min(4) {
        for v in 0..2u16 {
            let q = Query::all().and(attr, v).unwrap();
            assert_eq!(
                local_db.query(&q).unwrap(),
                remote_db.query(&q).unwrap(),
                "fresh query diverged at {attr}={v}"
            );
        }
    }

    // A drill-down session agrees probe for probe.
    let mut lw = local_db.walk_session(Query::all()).unwrap();
    let mut rw = remote_db.walk_session(Query::all()).unwrap();
    for attr in 0..table.schema().len().min(6) {
        let out = lw.classify(attr, 1).unwrap();
        assert_eq!(out, rw.classify(attr, 1).unwrap(), "walk probe diverged at {attr}");
        if out.is_overflow() {
            lw.extend(attr, 1);
            rw.extend(attr, 1);
        }
    }
    assert_eq!(local_db.queries_issued(), remote_db.queries_issued());

    // A short estimator run over the socket lands on the same bits.
    let mut local_est = hdb_core::UnbiasedSizeEstimator::hd(opts.seed).unwrap();
    let mut remote_est = hdb_core::UnbiasedSizeEstimator::hd(opts.seed).unwrap();
    let a = local_est.run(&local_db, 20).unwrap();
    let b = remote_est.run(&remote_db, 20).unwrap();
    assert_eq!(a.estimate.to_bits(), b.estimate.to_bits(), "estimator diverged over the wire");
    assert_eq!(a.queries, b.queries);

    server.shutdown();
    println!("self-test OK: queries, walk sessions, and estimator runs are bit-identical");
}

/// One-shot client probe: connect to a running server, issue a handful
/// of queries and a short walk session (every outcome class the corpus
/// offers lands in the server's query ledger), report, and exit.
fn probe(addr: &str) {
    let remote = RemoteBackend::connect(addr.to_string()).unwrap_or_else(|e| {
        eprintln!("failed to connect to {addr}: {e}");
        std::process::exit(1);
    });
    let attrs = remote.schema().len();
    let db = HiddenDb::over(remote, 10);
    let out = db.query(&Query::all()).unwrap_or_else(|e| {
        eprintln!("probe failed: {e}");
        std::process::exit(1);
    });
    let root_overflows = out.is_overflow();
    for attr in 0..attrs.min(4) {
        for v in 0..2u16 {
            if let Ok(q) = Query::all().and(attr, v) {
                let _ = db.query(&q);
            }
        }
    }
    if let Ok(mut walk) = db.walk_session(Query::all()) {
        for attr in 0..attrs.min(4) {
            if let Ok(out) = walk.classify(attr, 1) {
                if out.is_overflow() {
                    walk.extend(attr, 1);
                }
            }
        }
    }
    println!(
        "probed {addr}: {} quer{} issued (root {})",
        db.queries_issued(),
        if db.queries_issued() == 1 { "y" } else { "ies" },
        if root_overflows { "overflows" } else { "fits" },
    );
}

/// Parses a `--federate` shard map: comma-separated shards, each a
/// `|`-separated replica list.
fn parse_topology(spec: &str) -> Topology {
    let mut topology = Topology::new();
    let groups = spec.split(',').map(str::trim).filter(|g| !g.is_empty());
    for (shard, group) in groups.enumerate() {
        for addr in group.split('|').map(str::trim).filter(|a| !a.is_empty()) {
            topology.add_replica(shard, addr);
        }
    }
    if topology.shard_count() == 0 {
        eprintln!("--federate needs at least one shard address, got {spec:?}");
        std::process::exit(2);
    }
    topology
}

/// Opens (recovering) or seeds the persistent store and reports what
/// recovery found.
fn open_store(dir: &str, opts: &Opts) -> Arc<PersistentBackend> {
    let backend = PersistentBackend::open_or_create(Path::new(dir), opts.fsync, || {
        Ok(dataset(opts.rows, opts.attrs, opts.seed))
    })
    .unwrap_or_else(|e| {
        eprintln!("failed to open --data-dir {dir}: {e}");
        std::process::exit(1);
    });
    let r = backend.recovery();
    println!(
        "recovered {dir}: snapshot {}, WAL replayed {}/{} record(s) from seq {}{}{}",
        r.snapshot.as_deref().unwrap_or("(none)"),
        r.wal_records_applied,
        r.wal_records_seen,
        r.base_seq,
        match r.truncated_tail_to {
            Some(len) => format!(", torn tail truncated to {len} B"),
            None => String::new(),
        },
        if r.wal_reset { ", stale WAL reset" } else { "" },
    );
    for skipped in &r.skipped_snapshots {
        eprintln!("warning: skipped damaged snapshot {skipped}");
    }
    if let Some(reason) = backend.read_only() {
        eprintln!("warning: store is READ-ONLY: {reason}");
    }
    Arc::new(backend)
}

fn main() {
    let opts = Opts::parse();
    if let Some(addr) = opts.probe.as_deref() {
        probe(addr);
        return;
    }
    if opts.self_test {
        self_test(&opts);
        return;
    }
    let part = match (opts.shard_part, opts.shard_parts) {
        (None, None) => None,
        (Some(part), Some(parts)) if part < parts => Some((part, parts)),
        (Some(part), Some(parts)) => {
            eprintln!("--shard-part {part} is out of range for --shard-parts {parts}");
            std::process::exit(2);
        }
        _ => {
            eprintln!("--shard-part and --shard-parts must be given together");
            std::process::exit(2);
        }
    };
    if part.is_some() && opts.shards > 1 {
        eprintln!("--shard-part serves one partition; it cannot be combined with --shards > 1");
        std::process::exit(2);
    }
    if opts.data_dir.is_some() && (part.is_some() || opts.shards > 1 || opts.federate.is_some()) {
        eprintln!("--data-dir persists a single-table store; it cannot be combined with --shards, --shard-part, or --federate");
        std::process::exit(2);
    }
    if opts.federate.is_some() && (part.is_some() || opts.shards > 1) {
        eprintln!("--federate serves a gateway over remote shards; it cannot be combined with --shards or --shard-part");
        std::process::exit(2);
    }
    // The persistent store (when any) outlives the server handle: the
    // SIGTERM path drains live sessions into a final snapshot after the
    // serving threads have joined.
    let mut store: Option<Arc<PersistentBackend>> = None;
    let (running, rows, attrs, role): (RunningServer, usize, usize, String) =
        if let Some(dir) = opts.data_dir.as_deref() {
            let backend = open_store(dir, &opts);
            let restored = backend.restored_sessions().clone();
            let (rows, attrs) = (backend.len(), backend.schema().len());
            store = Some(Arc::clone(&backend));
            let running = Server::bind_with(backend, &opts.addr, config(&opts))
                .unwrap_or_else(|e| {
                    eprintln!("failed to start: {e}");
                    std::process::exit(1);
                });
            running.import_sessions(&restored);
            if !restored.sessions.is_empty() {
                println!("restored {} walk session(s) from snapshot", restored.sessions.len());
            }
            (running, rows, attrs, format!("durable store in {dir}"))
        } else if let Some(spec) = opts.federate.as_deref() {
            let topology = parse_topology(spec);
            let shards = topology.shard_count();
            let backend = FederatedBackend::connect_with(topology, opts.fleet.clone())
                .unwrap_or_else(|e| {
                    eprintln!("failed to connect the federation: {e}");
                    std::process::exit(1);
                });
            let (rows, attrs) = (backend.len(), backend.schema().len());
            let running = Server::bind_with(backend, &opts.addr, config(&opts))
                .unwrap_or_else(|e| {
                    eprintln!("failed to start: {e}");
                    std::process::exit(1);
                });
            (running, rows, attrs, format!("gateway over {shards} federated shard(s)"))
        } else {
            let table = dataset(opts.rows, opts.attrs, opts.seed);
            let (rows, attrs) = (table.len(), table.schema().len());
            let running = if let Some((part, parts)) = part {
                // One part of the federation: generate the full corpus
                // (so every fleet member agrees on it for a given seed),
                // serve only the slice the shared hash partitioning
                // assigns to `part`.
                let backend = ShardPartBackend::partition(&table, parts).into_iter().nth(part);
                let backend = backend.unwrap_or_else(|| {
                    eprintln!("--shard-part {part} is out of range for --shard-parts {parts}");
                    std::process::exit(2);
                });
                Server::bind_with(backend, &opts.addr, config(&opts))
            } else if opts.shards > 1 {
                let backend = ShardedDb::new(&table, opts.shards).with_workers(opts.shard_workers);
                Server::bind_with(backend, &opts.addr, config(&opts))
            } else {
                Server::bind_with(TableBackend::new(table), &opts.addr, config(&opts))
            }
            .unwrap_or_else(|e| {
                eprintln!("failed to start: {e}");
                std::process::exit(1);
            });
            let role = match part {
                Some((part, parts)) => format!("part {part}/{parts} of the corpus"),
                None => format!("{} shard(s)", opts.shards),
            };
            (running, rows, attrs, role)
        };
    println!(
        "hdb-server on {} — {rows} rows × {attrs} attrs, {role}, {} reactor; \
         connect with RemoteBackend::connect(\"{}\")",
        running.addr(),
        running.reactor_name(),
        running.addr()
    );
    if let Some(m) = running.metrics_addr() {
        println!("metrics on http://{m}/metrics");
    }
    // Block until SIGINT/SIGTERM, then shut down gracefully: stop
    // accepting, close every connection, drain the session table (into a
    // snapshot when serving a durable store), and join the serving
    // threads before exiting 0.
    let term = TerminationSignal::install().unwrap_or_else(|e| {
        eprintln!("failed to install signal handlers: {e}");
        std::process::exit(1);
    });
    term.wait();
    let dump = running.export_sessions();
    println!("shutting down: draining {} walk session(s)", dump.sessions.len());
    running.shutdown();
    if let Some(store) = store.take() {
        match store.snapshot_with_sessions(&dump) {
            Ok(name) => println!("final snapshot {name} written"),
            Err(e) => eprintln!("failed to write the final snapshot: {e}"),
        }
    }
    println!("hdb-server stopped");
}
