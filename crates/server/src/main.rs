//! The `hdb-server` binary: serves a generated hidden database over the
//! wire protocol.
//!
//! ```text
//! hdb-server [--addr 127.0.0.1:7171] [--rows 100000] [--attrs 20]
//!            [--shards 1] [--shard-workers 1] [--pool-threads N]
//!            [--shard-part I --shard-parts N]
//!            [--seed 42] [--self-test]
//! ```
//!
//! `--shards > 1` serves a [`ShardedDb`] instead of a single table (the
//! estimators cannot tell the difference — that is the point).
//! `--shard-part I --shard-parts N` serves only part `I` of the corpus
//! hash-partitioned `N` ways ([`ShardPartBackend`]) — run one process
//! per part and point a `FederatedBackend` topology at the fleet; it
//! merges their answers bit-identically to a local `ShardedDb`.
//! `--self-test` binds an ephemeral port, connects a [`RemoteBackend`]
//! client to itself, verifies a query + walk-session round trip against
//! the local backend bit-for-bit, and exits — the CI smoke path.

#![forbid(unsafe_code)]

use hdb_interface::reactor::TerminationSignal;
use hdb_interface::{
    HiddenDb, Query, RemoteBackend, SearchBackend, ShardPartBackend, ShardedDb, Table,
    TableBackend, TopKInterface,
};
use hdb_server::{Server, ServerConfig};

/// Command-line options (std-only flag parsing).
struct Opts {
    addr: String,
    rows: usize,
    attrs: usize,
    shards: usize,
    shard_workers: usize,
    pool_threads: Option<usize>,
    shard_part: Option<usize>,
    shard_parts: Option<usize>,
    seed: u64,
    self_test: bool,
}

impl Opts {
    fn parse() -> Self {
        let mut opts = Self {
            addr: "127.0.0.1:7171".to_string(),
            rows: 100_000,
            attrs: 20,
            shards: 1,
            shard_workers: 1,
            pool_threads: None,
            shard_part: None,
            shard_parts: None,
            seed: 42,
            self_test: false,
        };
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            let mut value = |name: &str| {
                args.next().unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    std::process::exit(2);
                })
            };
            match flag.as_str() {
                "--addr" => opts.addr = value("--addr"),
                "--rows" => opts.rows = parse_num(&value("--rows"), "--rows"),
                "--attrs" => opts.attrs = parse_num(&value("--attrs"), "--attrs"),
                "--shards" => opts.shards = parse_num(&value("--shards"), "--shards"),
                "--shard-workers" => {
                    opts.shard_workers = parse_num(&value("--shard-workers"), "--shard-workers");
                }
                "--pool-threads" => {
                    opts.pool_threads =
                        Some(parse_num(&value("--pool-threads"), "--pool-threads"));
                }
                "--shard-part" => {
                    opts.shard_part = Some(parse_num(&value("--shard-part"), "--shard-part"));
                }
                "--shard-parts" => {
                    opts.shard_parts = Some(parse_num(&value("--shard-parts"), "--shard-parts"));
                }
                "--seed" => opts.seed = parse_num(&value("--seed"), "--seed") as u64,
                "--self-test" => opts.self_test = true,
                "--help" | "-h" => {
                    println!(
                        "usage: hdb-server [--addr HOST:PORT] [--rows N] [--attrs N] \
                         [--shards N] [--shard-workers N] [--pool-threads N] \
                         [--shard-part I --shard-parts N] [--seed N] [--self-test]"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other} (try --help)");
                    std::process::exit(2);
                }
            }
        }
        opts
    }
}

fn parse_num(s: &str, flag: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("invalid value for {flag}: {s}");
        std::process::exit(2);
    })
}

/// Generates the served corpus, clamping `rows` to half the Boolean
/// domain (distinct-tuple generation needs headroom; asking for more
/// rows than the domain holds is a config slip, not a crash).
fn dataset(rows: usize, attrs: usize, seed: u64) -> Table {
    let attrs = attrs.max(1);
    let capacity = 1usize.checked_shl(attrs.min(60) as u32).unwrap_or(usize::MAX);
    let rows = rows.min((capacity / 2).max(1));
    hdb_datagen::bool_iid(rows, attrs, seed).unwrap_or_else(|e| {
        eprintln!("dataset generation failed ({e}); try fewer --rows or more --attrs");
        std::process::exit(2);
    })
}

fn config(opts: &Opts) -> ServerConfig {
    let mut config = ServerConfig::default();
    if let Some(threads) = opts.pool_threads {
        config.pool_threads = threads.max(1);
    }
    config
}

/// Self-test: serve on an ephemeral port, connect a client, and verify
/// bit-identical behaviour against the same corpus evaluated locally.
fn self_test(opts: &Opts) {
    let table = dataset(opts.rows.min(5_000), opts.attrs, opts.seed);
    let server = Server::bind_with(
        ShardedDb::new(&table, opts.shards.max(2)).with_workers(opts.shard_workers.max(1)),
        "127.0.0.1:0",
        config(opts),
    )
    .expect("ephemeral bind");
    println!("self-test server on {}", server.addr());

    let remote = RemoteBackend::connect(server.addr().to_string()).expect("connect");
    assert_eq!(remote.len(), table.len());
    let k = 10;
    let local_db = HiddenDb::new(table.clone(), k);
    let remote_db = HiddenDb::over(remote, k);

    // Fresh queries agree bit-for-bit.
    for attr in 0..table.schema().len().min(4) {
        for v in 0..2u16 {
            let q = Query::all().and(attr, v).unwrap();
            assert_eq!(
                local_db.query(&q).unwrap(),
                remote_db.query(&q).unwrap(),
                "fresh query diverged at {attr}={v}"
            );
        }
    }

    // A drill-down session agrees probe for probe.
    let mut lw = local_db.walk_session(Query::all()).unwrap();
    let mut rw = remote_db.walk_session(Query::all()).unwrap();
    for attr in 0..table.schema().len().min(6) {
        let out = lw.classify(attr, 1).unwrap();
        assert_eq!(out, rw.classify(attr, 1).unwrap(), "walk probe diverged at {attr}");
        if out.is_overflow() {
            lw.extend(attr, 1);
            rw.extend(attr, 1);
        }
    }
    assert_eq!(local_db.queries_issued(), remote_db.queries_issued());

    // A short estimator run over the socket lands on the same bits.
    let mut local_est = hdb_core::UnbiasedSizeEstimator::hd(opts.seed).unwrap();
    let mut remote_est = hdb_core::UnbiasedSizeEstimator::hd(opts.seed).unwrap();
    let a = local_est.run(&local_db, 20).unwrap();
    let b = remote_est.run(&remote_db, 20).unwrap();
    assert_eq!(a.estimate.to_bits(), b.estimate.to_bits(), "estimator diverged over the wire");
    assert_eq!(a.queries, b.queries);

    server.shutdown();
    println!("self-test OK: queries, walk sessions, and estimator runs are bit-identical");
}

fn main() {
    let opts = Opts::parse();
    if opts.self_test {
        self_test(&opts);
        return;
    }
    let table = dataset(opts.rows, opts.attrs, opts.seed);
    let rows = table.len();
    let attrs = table.schema().len();
    let part = match (opts.shard_part, opts.shard_parts) {
        (None, None) => None,
        (Some(part), Some(parts)) if part < parts => Some((part, parts)),
        (Some(part), Some(parts)) => {
            eprintln!("--shard-part {part} is out of range for --shard-parts {parts}");
            std::process::exit(2);
        }
        _ => {
            eprintln!("--shard-part and --shard-parts must be given together");
            std::process::exit(2);
        }
    };
    if part.is_some() && opts.shards > 1 {
        eprintln!("--shard-part serves one partition; it cannot be combined with --shards > 1");
        std::process::exit(2);
    }
    let running = if let Some((part, parts)) = part {
        // One part of the federation: generate the full corpus (so every
        // fleet member agrees on it for a given seed), serve only the
        // slice the shared hash partitioning assigns to `part`.
        let backend = ShardPartBackend::partition(&table, parts).into_iter().nth(part);
        let backend = backend.unwrap_or_else(|| {
            eprintln!("--shard-part {part} is out of range for --shard-parts {parts}");
            std::process::exit(2);
        });
        Server::bind_with(backend, &opts.addr, config(&opts))
    } else if opts.shards > 1 {
        let backend = ShardedDb::new(&table, opts.shards).with_workers(opts.shard_workers);
        Server::bind_with(backend, &opts.addr, config(&opts))
    } else {
        Server::bind_with(TableBackend::new(table), &opts.addr, config(&opts))
    }
    .unwrap_or_else(|e| {
        eprintln!("failed to start: {e}");
        std::process::exit(1);
    });
    let role = match part {
        Some((part, parts)) => format!("part {part}/{parts} of the corpus"),
        None => format!("{} shard(s)", opts.shards),
    };
    println!(
        "hdb-server on {} — {rows} rows × {attrs} attrs, {role}, {} reactor; \
         connect with RemoteBackend::connect(\"{}\")",
        running.addr(),
        running.reactor_name(),
        running.addr()
    );
    // Block until SIGINT/SIGTERM, then shut down gracefully: stop
    // accepting, close every connection, drain the session table, and
    // join the serving threads before exiting 0.
    let term = TerminationSignal::install().unwrap_or_else(|e| {
        eprintln!("failed to install signal handlers: {e}");
        std::process::exit(1);
    });
    term.wait();
    let sessions = running.session_count();
    println!("shutting down: draining {sessions} walk session(s)");
    running.shutdown();
    println!("hdb-server stopped");
}
