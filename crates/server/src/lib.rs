//! # hdb-server — the networked hidden-database service
//!
//! Exposes any [`SearchBackend`] over the hidden-DB wire protocol
//! ([`hdb_interface::wire`]): length-prefixed binary frames over TCP,
//! covering `schema` / `len` / `evaluate` / `exact_count` / `exact_sum`
//! plus the incremental walk fast path with **server-side session state**
//! keyed by a session id, so a drill-down probe from a
//! [`RemoteBackend`](hdb_interface::RemoteBackend) costs one AND on the
//! server and one round trip on the wire — exactly the PR 4 economics,
//! now across a real socket.
//!
//! ## Concurrency model
//!
//! Connections are multiplexed over a persistent [`WorkerPool`]: the
//! accept loop hands
//! each connection to the pool as a job that serves up to a batch of
//! frames (or until a short read-timeout finds the socket idle) and then
//! re-enqueues itself. A pool of `W` threads therefore serves any number
//! of connections with batch-level fairness — no thread per connection,
//! no starvation, and an idle server parks in timed reads.
//!
//! ## Session lifecycle
//!
//! `WalkOpen` materialises the root match set and returns a `sid`;
//! `WalkExtend` pushes one level (truncating any deeper levels — the walk
//! is stack-disciplined, so a retract is simply the client re-extending
//! from a shallower level); probes reference `(sid, level)`. Sessions die
//! on `WalkClose`, or by LRU eviction once the table exceeds its cap — an
//! evicted session is *not* an error: probes fall back to fresh
//! evaluation (bit-identical, one intersection slower) and `WalkExtend`
//! answers `SessionGone` so the client re-roots.
//!
//! ## Robustness
//!
//! Every decoder is total: a malformed-but-framed payload gets a typed
//! [`Response::Error`]; an unframeable byte stream (corrupt length
//! prefix) closes the connection. The server never panics on input.
//!
//! ```no_run
//! use hdb_interface::{HiddenDb, Query, RemoteBackend, Table, Schema, TopKInterface, Tuple};
//! use hdb_server::Server;
//!
//! let table = Table::new(Schema::boolean(2), vec![Tuple::new(vec![0, 1])]).unwrap();
//! let server = Server::bind(hdb_interface::TableBackend::new(table), "127.0.0.1:0").unwrap();
//! let db = HiddenDb::over(RemoteBackend::connect(server.addr().to_string()).unwrap(), 10);
//! assert!(db.query(&Query::all()).unwrap().is_valid());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

use std::collections::BTreeMap;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use hdb_interface::par::{PoolSender, WorkerPool};
use hdb_interface::wire::{write_frame, FrameBuf, Request, Response, PROTOCOL_VERSION};
use hdb_interface::{HdbError, Predicate, Result, Schema, SearchBackend, WalkState};

/// Tuning knobs for a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker-pool threads serving connections. More threads serve more
    /// connections truly concurrently; the default covers the typical
    /// client pool (see `docs/ARCHITECTURE.md` §Serving layer on sizing).
    pub pool_threads: usize,
    /// Walk sessions kept before LRU eviction kicks in. Each session
    /// holds one materialised match set per committed walk level.
    pub session_cap: usize,
    /// Read timeout per poll of an idle connection — the batch scheduler's
    /// time slice. Smaller is more responsive, larger burns less CPU on
    /// idle connections.
    pub poll_timeout: Duration,
    /// Frames served to one connection before it re-queues behind the
    /// others (fairness batch size).
    pub frames_per_turn: usize,
    /// Write timeout per response: a client that stops reading gets its
    /// connection dropped instead of pinning a pool thread.
    pub write_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            pool_threads: hdb_interface::par::default_workers().max(4),
            session_cap: 1024,
            poll_timeout: Duration::from_millis(2),
            frames_per_turn: 64,
            write_timeout: Duration::from_secs(30),
        }
    }
}

/// One walk session: the server-side state stack, stack-disciplined
/// (level 0 is the session root). `touched` is atomic so the LRU scan
/// never takes a session's stack lock — a slow probe holding one stack
/// must not stall table-wide operations.
struct Session {
    stack: Mutex<Vec<WalkState>>,
    touched: AtomicU64,
}

/// The server-side walk-session table: sid → state stack, LRU-capped.
/// A `BTreeMap` (not `HashMap`) so the LRU eviction scan visits sessions
/// in a deterministic order — `min_by_key` ties then break toward the
/// smallest (oldest) sid on every server alike.
struct Sessions {
    table: Mutex<BTreeMap<u64, Arc<Session>>>,
    next_sid: AtomicU64,
    clock: AtomicU64,
    cap: usize,
}

impl Sessions {
    fn new(cap: usize) -> Self {
        Self {
            table: Mutex::new(BTreeMap::new()),
            next_sid: AtomicU64::new(1),
            clock: AtomicU64::new(0),
            cap: cap.max(1),
        }
    }

    fn open(&self, root_state: WalkState) -> u64 {
        let sid = self.next_sid.fetch_add(1, Ordering::Relaxed);
        let entry = Arc::new(Session {
            stack: Mutex::new(vec![root_state]),
            touched: AtomicU64::new(self.clock.fetch_add(1, Ordering::Relaxed)),
        });
        // Poison recovery: the table holds plain data (no invariant spans
        // the lock), so a panicked holder leaves it fully usable.
        let mut table = self.table.lock().unwrap_or_else(|p| p.into_inner());
        if table.len() >= self.cap {
            // LRU eviction: drop the stalest session. Eviction is safe —
            // clients fall back to fresh evaluation, bit-identically.
            if let Some(&stale) = table
                .iter()
                .min_by_key(|(_, e)| e.touched.load(Ordering::Relaxed))
                .map(|(sid, _)| sid)
            {
                table.remove(&stale);
            }
        }
        table.insert(sid, entry);
        sid
    }

    /// The session, bumped to most-recently-used.
    fn get(&self, sid: u64) -> Option<Arc<Session>> {
        let entry = self
            .table
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(&sid)
            .map(Arc::clone)?;
        entry.touched.store(self.clock.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
        Some(entry)
    }

    fn close(&self, sid: u64) {
        self.table.lock().unwrap_or_else(|p| p.into_inner()).remove(&sid);
    }

    fn len(&self) -> usize {
        self.table.lock().unwrap_or_else(|p| p.into_inner()).len()
    }
}

/// Everything a connection handler needs, shared across the pool.
struct Shared<B> {
    backend: B,
    sessions: Sessions,
    shutdown: AtomicBool,
}

/// Validates a predicate against the schema bounds (the wire is
/// untrusted: an out-of-range posting lookup must not reach the index).
fn validate_pred(schema: &Schema, pred: Predicate) -> Result<()> {
    if pred.attr >= schema.len() {
        return Err(HdbError::InvalidQuery(format!("predicate attribute {} out of range", pred.attr)));
    }
    if (pred.value as usize) >= schema.fanout(pred.attr) {
        return Err(HdbError::InvalidQuery(format!(
            "predicate value {} out of domain for attribute {}",
            pred.value, pred.attr
        )));
    }
    Ok(())
}

/// Validates a wire-supplied ranking spec: an attribute ranking must
/// reference a schema attribute (scoring would index out of bounds
/// otherwise — the wire is untrusted).
fn validate_ranking(schema: &Schema, spec: hdb_interface::RankingSpec) -> Result<()> {
    if let hdb_interface::RankingSpec::Attribute { attr, .. } = spec {
        if attr >= schema.len() {
            return Err(HdbError::InvalidQuery(format!(
                "ranking attribute {attr} out of range"
            )));
        }
    }
    Ok(())
}

/// Validates and narrows a wire `k`.
fn validate_k(k: u64) -> Result<usize> {
    match usize::try_from(k) {
        Ok(k) if k >= 1 => Ok(k),
        _ => Err(HdbError::InvalidQuery(format!("k must be in 1..=usize::MAX, got {k}"))),
    }
}

/// Answers one decoded request. Total: every failure path is a typed
/// [`Response::Error`] (or the graceful `SessionGone`), never a panic.
fn handle_request<B: SearchBackend>(shared: &Shared<B>, req: Request) -> Response {
    let schema = shared.backend.schema();
    let outcome = (|| -> Result<Response> {
        Ok(match req {
            Request::Hello { version } => {
                if version != PROTOCOL_VERSION {
                    return Err(HdbError::Transport(format!(
                        "protocol version mismatch: server {PROTOCOL_VERSION}, client {version}"
                    )));
                }
                Response::Hello { version: PROTOCOL_VERSION }
            }
            Request::Schema => Response::Schema(schema.clone()),
            Request::Len => Response::Len(shared.backend.len() as u64),
            Request::Evaluate { query, k, ranking } => {
                query.validate(schema)?;
                validate_ranking(schema, ranking)?;
                let k = validate_k(k)?;
                Response::Evaluation(shared.backend.evaluate(
                    &query,
                    k,
                    ranking.instantiate().as_ref(),
                )?)
            }
            Request::ExactCount { query } => {
                query.validate(schema)?;
                Response::Count(shared.backend.exact_count(&query)? as u64)
            }
            Request::ExactSum { attr, query } => {
                query.validate(schema)?;
                let attr = usize::try_from(attr)
                    .map_err(|_| HdbError::InvalidQuery("attribute id overflows".into()))?;
                Response::Sum(shared.backend.exact_sum(attr, &query)?)
            }
            Request::WalkOpen { root } => {
                root.validate(schema)?;
                let state = shared.backend.walk_state(&root);
                Response::Session { sid: shared.sessions.open(state) }
            }
            Request::WalkExtend { sid, parent_level, child, pred } => {
                child.validate(schema)?;
                validate_pred(schema, pred)?;
                let Some(entry) = shared.sessions.get(sid) else {
                    return Ok(Response::SessionGone);
                };
                let parent = parent_level as usize;
                // Depth cap: a legitimate walk commits at most one level
                // per attribute, so a deeper stack can only be a hostile
                // client inflating server memory — send it to the fresh
                // fallback instead.
                if parent + 1 > schema.len() {
                    return Ok(Response::SessionGone);
                }
                // A poisoned stack means some probe panicked mid-update;
                // its contents are suspect, so retire the session and
                // send the client to the fresh-evaluation fallback.
                let Ok(mut stack) = entry.stack.lock() else {
                    shared.sessions.close(sid);
                    return Ok(Response::SessionGone);
                };
                if parent >= stack.len() {
                    return Ok(Response::SessionGone);
                }
                // The walk is stack-disciplined: extending from level L
                // retires everything deeper (the client retracted).
                stack.truncate(parent + 1);
                let state = shared.backend.extend_state(
                    &stack[parent],
                    &child,
                    pred,
                    WalkState::fallback(),
                );
                stack.push(state);
                Response::Level { level: parent_level + 1 }
            }
            Request::WalkEvaluate { sid, parent_level, child, pred, k, ranking } => {
                child.validate(schema)?;
                validate_pred(schema, pred)?;
                validate_ranking(schema, ranking)?;
                let k = validate_k(k)?;
                let ranking = ranking.instantiate();
                // Missing session, poisoned stack (a probe panicked
                // mid-update — its state is suspect), or retired level
                // all take the same road: fresh evaluation, which is
                // bit-identical, just one intersection slower.
                let entry = shared.sessions.get(sid);
                let stack = entry.as_ref().and_then(|e| e.stack.lock().ok());
                let parent = stack.as_ref().and_then(|s| s.get(parent_level as usize));
                let evaluation = match parent {
                    Some(parent) => shared.backend.evaluate_from(
                        parent,
                        &child,
                        pred,
                        k,
                        ranking.as_ref(),
                    )?,
                    None => shared.backend.evaluate(&child, k, ranking.as_ref())?,
                };
                Response::Evaluation(evaluation)
            }
            Request::WalkClassify { sid, parent_level, child, pred, k } => {
                child.validate(schema)?;
                validate_pred(schema, pred)?;
                let k = validate_k(k)?;
                // Same fallback road as WalkEvaluate: missing session,
                // poisoned stack, or retired level → fresh evaluation.
                let entry = shared.sessions.get(sid);
                let stack = entry.as_ref().and_then(|e| e.stack.lock().ok());
                let parent = stack.as_ref().and_then(|s| s.get(parent_level as usize));
                let classified = match parent {
                    Some(parent) => {
                        shared.backend.classify_from(parent, &child, pred, k)?
                    }
                    None => hdb_interface::Classified::from_evaluation(
                        shared.backend.evaluate(&child, k, &hdb_interface::RowIdRanking)?,
                        k,
                    ),
                };
                Response::Classified(classified)
            }
            Request::WalkClose { sid } => {
                shared.sessions.close(sid);
                Response::Closed
            }
        })
    })();
    outcome.unwrap_or_else(Response::Error)
}

/// One connection's serving state, passed through the pool between turns.
struct ConnTask<B: SearchBackend + 'static> {
    stream: TcpStream,
    buf: FrameBuf,
    shared: Arc<Shared<B>>,
    pool: PoolSender,
    frames_per_turn: usize,
}

impl<B: SearchBackend + 'static> ConnTask<B> {
    /// Serves buffered + newly arriving frames until the batch quota is
    /// met or the socket goes idle, then re-queues; returns (dropping the
    /// connection) on EOF, I/O error, unframeable input, or shutdown.
    fn turn(mut self) {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let mut served = 0usize;
        loop {
            // Drain complete frames already buffered.
            loop {
                match self.buf.next_frame() {
                    Ok(Some(payload)) => {
                        let resp = match Request::decode(&payload) {
                            Ok(req) => handle_request(&self.shared, req),
                            // Malformed but correctly framed: the stream
                            // stays synchronised, so answer a typed error
                            // and keep serving.
                            Err(e) => Response::Error(e),
                        };
                        // An unencodable response (a length beyond the
                        // wire's u32 ranges) degrades to its typed error;
                        // if even that cannot encode, drop the connection
                        // rather than desynchronise the stream.
                        let bytes = match resp.encode() {
                            Ok(bytes) => bytes,
                            Err(e) => match Response::Error(e).encode() {
                                Ok(bytes) => bytes,
                                Err(_) => return,
                            },
                        };
                        let mut framed = Vec::new();
                        if write_frame(&mut framed, &bytes).is_err()
                            || self.stream.write_all(&framed).is_err()
                        {
                            return; // client gone
                        }
                        served += 1;
                        if served >= self.frames_per_turn {
                            return self.requeue(); // fairness: rotate
                        }
                    }
                    Ok(None) => break,
                    // Corrupt length prefix: the byte stream can never
                    // resynchronise — drop the connection.
                    Err(_) => return,
                }
            }
            // Pull more bytes (bounded by the poll timeout).
            let mut chunk = [0u8; 16 * 1024];
            match self.stream.read(&mut chunk) {
                Ok(0) => return, // clean EOF
                // `read` contracts n ≤ chunk.len(); a lying Read impl
                // gets the connection dropped, not a panic.
                Ok(n) => match chunk.get(..n) {
                    Some(got) => self.buf.extend(got),
                    None => return,
                },
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return self.requeue()
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    fn requeue(self) {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // PoolSender is non-owning: queued turns must never hold the
        // pool itself, or a worker could end up dropping (and therefore
        // joining) its own pool.
        let sender = self.pool.clone();
        sender.send(move || self.turn());
    }
}

/// Namespace for [`Server::bind`].
pub struct Server;

impl Server {
    /// Binds `backend` to `addr` (use port 0 for an ephemeral port) with
    /// the default [`ServerConfig`] and starts serving in background
    /// threads. The returned handle stops the server when dropped.
    ///
    /// # Errors
    /// [`HdbError::Transport`] if the address cannot be bound.
    pub fn bind<B: SearchBackend + 'static>(
        backend: B,
        addr: impl ToSocketAddrs,
    ) -> Result<RunningServer> {
        Self::bind_with(backend, addr, ServerConfig::default())
    }

    /// [`Server::bind`] with explicit tuning.
    ///
    /// # Errors
    /// [`HdbError::Transport`] if the address cannot be bound.
    pub fn bind_with<B: SearchBackend + 'static>(
        backend: B,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> Result<RunningServer> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| HdbError::Transport(format!("bind failed: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| HdbError::Transport(format!("local_addr failed: {e}")))?;
        let shared = Arc::new(Shared {
            backend,
            sessions: Sessions::new(config.session_cap),
            shutdown: AtomicBool::new(false),
        });
        let pool = WorkerPool::new(config.pool_threads.max(1));
        let accept_shared = Arc::clone(&shared);
        let accept_pool = pool.sender();
        let poll_timeout = config.poll_timeout;
        let write_timeout = config.write_timeout;
        let frames_per_turn = config.frames_per_turn.max(1);
        let accept = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if accept_shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                let Ok(stream) = conn else { continue };
                let setup = stream
                    .set_nodelay(true)
                    .and_then(|()| stream.set_read_timeout(Some(poll_timeout)))
                    // A client that stops reading must not pin a pool
                    // thread in write_all forever.
                    .and_then(|()| stream.set_write_timeout(Some(write_timeout)));
                if setup.is_err() {
                    continue;
                }
                let task = ConnTask {
                    stream,
                    buf: FrameBuf::new(),
                    shared: Arc::clone(&accept_shared),
                    pool: accept_pool.clone(),
                    frames_per_turn,
                };
                if !accept_pool.send(move || task.turn()) {
                    return;
                }
            }
        });
        Ok(RunningServer {
            addr: local_addr,
            shutdown: ShutdownFlag(shared),
            accept: Some(accept),
            pool: Some(pool),
        })
    }
}

/// Type-erased handle on the shared shutdown flag (the server handle must
/// not be generic over the backend).
struct ShutdownFlag(Arc<dyn ShutdownTarget>);

trait ShutdownTarget: Send + Sync {
    fn set_shutdown(&self);
    fn session_count(&self) -> usize;
}

impl<B: SearchBackend> ShutdownTarget for Shared<B> {
    fn set_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    fn session_count(&self) -> usize {
        self.sessions.len()
    }
}

/// A live server: background accept thread + connection pool. Dropping
/// it (or calling [`RunningServer::shutdown`]) stops accepting, closes
/// every connection at its next turn, and joins all threads.
pub struct RunningServer {
    addr: SocketAddr,
    shutdown: ShutdownFlag,
    accept: Option<std::thread::JoinHandle<()>>,
    pool: Option<WorkerPool>,
}

impl RunningServer {
    /// The bound address (with the real port when bound to port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live walk sessions (diagnostics for tests and ops).
    #[must_use]
    pub fn session_count(&self) -> usize {
        self.shutdown.0.session_count()
    }

    /// Stops the server and joins its threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.0.set_shutdown();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // Dropping the pool discards queued connection turns and joins
        // the worker threads; only this control thread ever owns it.
        self.pool.take();
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdb_interface::{
        HiddenDb, Query, RemoteBackend, Table, TableBackend, TopKInterface, Tuple,
    };

    fn table() -> Table {
        let tuples: Vec<Tuple> =
            (0..32u16).map(|i| Tuple::new((0..5).map(|b| (i >> b) & 1).collect())).collect();
        Table::new(Schema::boolean(5), tuples).unwrap()
    }

    fn serve() -> RunningServer {
        Server::bind(TableBackend::new(table()), "127.0.0.1:0").unwrap()
    }

    #[test]
    fn round_trip_over_loopback() {
        let server = serve();
        let remote = RemoteBackend::connect(server.addr().to_string()).unwrap();
        assert_eq!(remote.len(), 32);
        assert_eq!(remote.schema().len(), 5);
        let db = HiddenDb::over(remote, 3);
        assert!(db.query(&Query::all()).unwrap().is_overflow());
        let q = Query::all().and(0, 1).unwrap().and(1, 1).unwrap().and(2, 1).unwrap();
        let out = db.query(&q).unwrap();
        assert!(out.is_overflow());
        assert_eq!(db.queries_issued(), 2);
        server.shutdown();
    }

    #[test]
    fn walk_sessions_survive_extend_retract_and_eviction() {
        let server = Server::bind_with(
            TableBackend::new(table()),
            "127.0.0.1:0",
            ServerConfig { session_cap: 2, ..ServerConfig::default() },
        )
        .unwrap();
        let local = HiddenDb::new(table(), 2);
        let remote =
            HiddenDb::over(RemoteBackend::connect(server.addr().to_string()).unwrap(), 2);
        let mut lw = local.walk_session(Query::all()).unwrap();
        let mut rw = remote.walk_session(Query::all()).unwrap();
        assert_eq!(server.session_count(), 1);
        for (attr, v) in [(0usize, 1u16), (1, 0), (2, 1)] {
            assert_eq!(
                lw.classify(attr, v).unwrap(),
                rw.classify(attr, v).unwrap(),
                "probe {attr}={v}"
            );
            lw.extend(attr, v);
            rw.extend(attr, v);
        }
        lw.retract();
        rw.retract();
        assert_eq!(lw.classify(2, 0).unwrap(), rw.classify(2, 0).unwrap());
        // cap 2: two more sessions evict the first; probes still answer
        let _s2 = remote.walk_session(Query::all()).unwrap();
        let _s3 = remote.walk_session(Query::all()).unwrap();
        assert!(server.session_count() <= 2);
        assert_eq!(lw.classify(2, 1).unwrap(), rw.classify(2, 1).unwrap());
        assert_eq!(local.queries_issued(), remote.queries_issued());
        server.shutdown();
    }

    #[test]
    fn malformed_frames_get_typed_errors_and_garbage_drops_the_connection() {
        let server = serve();
        // Well-framed garbage payload → typed error response, connection
        // stays usable.
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write_frame(&mut stream, &[0x7F, 1, 2, 3]).unwrap();
        let payload = hdb_interface::wire::read_frame(&mut stream).unwrap().unwrap();
        assert!(matches!(
            Response::decode(&payload).unwrap(),
            Response::Error(HdbError::Transport(_))
        ));
        // The same connection still serves real requests.
        write_frame(&mut stream, &Request::Len.encode().unwrap()).unwrap();
        let payload = hdb_interface::wire::read_frame(&mut stream).unwrap().unwrap();
        assert_eq!(Response::decode(&payload).unwrap(), Response::Len(32));
        // Unframeable input (absurd length prefix) → connection dropped.
        let mut evil = TcpStream::connect(server.addr()).unwrap();
        evil.write_all(&u32::MAX.to_le_bytes()).unwrap();
        let mut buf = [0u8; 1];
        assert_eq!(evil.read(&mut buf).unwrap_or(0), 0, "server must close");
        // Invalid queries and k = 0 get typed errors, not panics.
        let remote = RemoteBackend::connect(server.addr().to_string()).unwrap();
        let bad = Query::all().and(9, 0).unwrap();
        assert!(matches!(
            remote.exact_count(&bad),
            Err(HdbError::InvalidQuery(_))
        ));
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write_frame(
            &mut stream,
            &Request::Evaluate {
                query: Query::all(),
                k: 0,
                ranking: hdb_interface::RankingSpec::RowId,
            }
            .encode()
            .unwrap(),
        )
        .unwrap();
        let payload = hdb_interface::wire::read_frame(&mut stream).unwrap().unwrap();
        assert!(matches!(
            Response::decode(&payload).unwrap(),
            Response::Error(HdbError::InvalidQuery(_))
        ));
        server.shutdown();
    }

    #[test]
    fn hostile_ranking_and_unbounded_extend_are_rejected_typed() {
        let server = serve();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let ask = |stream: &mut TcpStream, req: &Request| {
            write_frame(stream, &req.encode().unwrap()).unwrap();
            let payload = hdb_interface::wire::read_frame(stream).unwrap().unwrap();
            Response::decode(&payload).unwrap()
        };
        // An out-of-range ranking attribute must be a typed error, not an
        // index panic in the scoring kernel.
        let resp = ask(
            &mut stream,
            &Request::Evaluate {
                query: Query::all(),
                k: 1,
                ranking: hdb_interface::RankingSpec::Attribute { attr: 9999, descending: false },
            },
        );
        assert!(matches!(resp, Response::Error(HdbError::InvalidQuery(_))), "{resp:?}");
        // A client extending past one-level-per-attribute (the wire child
        // query need not be consistent with the claimed level) must hit
        // the depth cap instead of inflating the state stack unboundedly.
        let Response::Session { sid } = ask(&mut stream, &Request::WalkOpen { root: Query::all() })
        else {
            panic!("expected a session");
        };
        let child = Query::all().and(0, 0).unwrap();
        let pred = Predicate::new(0, 0);
        let mut capped = false;
        for level in 0..10u32 {
            let req = Request::WalkExtend {
                sid,
                parent_level: level,
                child: child.clone(),
                pred,
            };
            match ask(&mut stream, &req) {
                Response::Level { level: l } => assert_eq!(l, level + 1),
                Response::SessionGone => {
                    assert!(level >= 5, "cap must allow legitimate depths, hit at {level}");
                    capped = true;
                    break;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(capped, "extend depth must be capped at the schema width");
        server.shutdown();
    }

    #[test]
    fn ground_truth_crosses_the_wire() {
        let server = serve();
        let remote = RemoteBackend::connect(server.addr().to_string()).unwrap();
        let local = TableBackend::new(table());
        for q in [Query::all(), Query::all().and(0, 1).unwrap()] {
            assert_eq!(remote.exact_count(&q).unwrap(), local.exact_count(&q).unwrap());
            assert_eq!(
                remote.exact_sum(3, &q).unwrap().to_bits(),
                local.exact_sum(3, &q).unwrap().to_bits()
            );
        }
        assert!(remote.exact_sum(99, &Query::all()).is_err());
        server.shutdown();
    }
}
