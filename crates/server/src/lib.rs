//! # hdb-server — the networked hidden-database service
//!
//! Exposes any [`SearchBackend`] over the hidden-DB wire protocol
//! ([`hdb_interface::wire`]): length-prefixed binary frames over TCP,
//! covering `schema` / `len` / `evaluate` / `exact_count` / `exact_sum`
//! plus the incremental walk fast path with **server-side session state**
//! keyed by a session id, so a drill-down probe from a
//! [`RemoteBackend`](hdb_interface::RemoteBackend) costs one AND on the
//! server and one round trip on the wire — and with the fused
//! extend+probe messages, a drill-down *step* (commit a branch, probe a
//! child) costs that same single round trip.
//!
//! ## Concurrency model
//!
//! One event thread blocks in a [`reactor`](hdb_interface::reactor)
//! (`epoll` on Linux, portable `poll` elsewhere) over the listener and
//! every connection, all one-shot registered. A readiness event removes
//! the connection from the table and dispatches it to a persistent
//! [`WorkerPool`] as a batch job: flush pending output, serve up to
//! `frames_per_turn` buffered frames, read until the socket would block,
//! then re-arm. Idle connections therefore cost **zero** syscalls and
//! zero dispatches — there is no sweep — and a pool of `W` threads
//! serves any number of connections with batch-level fairness.
//!
//! ## Session lifecycle
//!
//! `WalkOpen` materialises the root match set and returns a `sid`;
//! `WalkExtend` pushes one level (truncating any deeper levels — the walk
//! is stack-disciplined, so a retract is simply the client re-extending
//! from a shallower level); probes reference `(sid, level)`. The fused
//! `WalkExtendEvaluate` / `WalkExtendClassify` messages commit an extend
//! and probe from the pushed level in one frame, and a `Batch` request
//! carries a deferred extend chain plus its probe in one round trip —
//! answered with one response frame per member, in member order.
//! Sessions die on `WalkClose`, or by LRU eviction (O(log n) via an
//! explicit recency order) once the table exceeds its cap — an evicted
//! session is *not* an error: probes fall back to fresh evaluation
//! (bit-identical, one intersection slower) and extends answer
//! `SessionGone` so the client re-roots.
//!
//! ## Observability
//!
//! The server keeps a query ledger partitioned exactly like the
//! client-side [`QueryCounter`](hdb_interface::QueryCounter): every
//! probe-shaped request (`Evaluate`, the walk probes, and the fused
//! extend+probe pair) bumps `hdb_queries_issued_total` and exactly one
//! of `underflow`/`valid`/`overflow`/`errored`, so
//! `issued == underflow + valid + overflow + errored` holds on every
//! scrape. A `Stats` request answers the merged snapshot (backend
//! series, server ledger, serving counters) over the wire; an optional
//! second listener ([`ServerConfig::metrics_addr`]) serves the same
//! snapshot as a Prometheus text exposition over HTTP. Recording
//! happens strictly after each response is computed — responses are
//! bit-identical with the ledger on or off the scrape path.
//!
//! ## Robustness
//!
//! Every decoder is total: a malformed-but-framed payload gets a typed
//! [`Response::Error`]; an unframeable byte stream (corrupt length
//! prefix) closes the connection. Valid pages longer than
//! [`STREAM_TUPLES`] leave as a
//! `Streamed` head plus bounded `PageChunk` frames, encoded one chunk at
//! a time as the socket drains — a slow reader pins one chunk of memory,
//! not the page. The server never panics on input.
//!
//! ```no_run
//! use hdb_interface::{HiddenDb, Query, RemoteBackend, Table, Schema, TopKInterface, Tuple};
//! use hdb_server::Server;
//!
//! let table = Table::new(Schema::boolean(2), vec![Tuple::new(vec![0, 1])]).unwrap();
//! let server = Server::bind(hdb_interface::TableBackend::new(table), "127.0.0.1:0").unwrap();
//! let db = HiddenDb::over(RemoteBackend::connect(server.addr().to_string()).unwrap(), 10);
//! assert!(db.query(&Query::all()).unwrap().is_valid());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use hdb_interface::par::{PoolSender, WorkerPool};
use hdb_interface::reactor::{Interest, Reactor, ReactorKind};
use hdb_interface::wire::{
    encode_page_chunk, write_frame, FrameBuf, Request, Response, PROTOCOL_VERSION, STREAM_TUPLES,
};
use hdb_interface::{
    Counter, HdbError, Histogram, MetricsRegistry, MetricsSnapshot, Predicate, Query, Result,
    ReturnedTuple, Schema, SearchBackend, SessionDump, SessionRecord, WalkState, WalkStep,
};

/// The reactor token reserved for the listener; connections count up
/// from [`FIRST_CONN_TOKEN`].
const LISTENER_TOKEN: u64 = 0;
/// The reactor token reserved for the optional metrics listener.
const METRICS_TOKEN: u64 = 1;
/// The first connection token.
const FIRST_CONN_TOKEN: u64 = 2;
/// How long the event thread blocks per reactor wait — a liveness
/// backstop only (shutdown also wakes the reactor via the listener);
/// no per-connection work happens on this cadence.
const WAIT_BACKSTOP: Duration = Duration::from_millis(500);

/// Tuning knobs for a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker-pool threads serving connections. More threads serve more
    /// connections truly concurrently; the default covers the typical
    /// client pool (see `docs/ARCHITECTURE.md` §Serving layer on sizing).
    pub pool_threads: usize,
    /// Walk sessions kept before LRU eviction kicks in. Each session
    /// holds one materialised match set per committed walk level.
    pub session_cap: usize,
    /// Frames served to one connection per dispatch before it re-queues
    /// behind the others (fairness batch size).
    pub frames_per_turn: usize,
    /// Readiness backend: `Auto` picks `epoll` on Linux; `Portable`
    /// forces the `poll` fallback (tests exercise it everywhere).
    pub reactor: ReactorKind,
    /// Address for the Prometheus-text metrics endpoint (port 0 for
    /// ephemeral). `None` (the default) binds no metrics listener; the
    /// `Stats` wire request answers regardless.
    pub metrics_addr: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            pool_threads: hdb_interface::par::default_workers().max(4),
            session_cap: 1024,
            frames_per_turn: 64,
            reactor: ReactorKind::Auto,
            metrics_addr: None,
        }
    }
}

/// One committed walk level: the materialised state plus the *recipe*
/// that produced it (the level's query, and for levels ≥ 1 the
/// predicate that extended the parent). The recipe is what snapshots
/// persist — states are backend-internal and rebuild bit-identically
/// from the recipe on import.
struct Level {
    query: Query,
    /// `None` exactly at level 0 (the root has no extending predicate).
    pred: Option<Predicate>,
    state: WalkState,
}

/// One walk session: the server-side level stack, stack-disciplined
/// (level 0 is the session root). Recency lives in the table, not here,
/// so a slow probe holding the stack lock never stalls table-wide
/// operations.
struct Session {
    stack: Mutex<Vec<Level>>,
}

/// The two sides of the session index, kept in lock-step under one lock:
/// `by_sid` answers probes, `by_recency` answers "who is stalest" in
/// O(log n). Both are ordered structures so eviction order is
/// deterministic on every server alike.
#[derive(Default)]
struct SessionTable {
    by_sid: BTreeMap<u64, (u64, Arc<Session>)>,
    by_recency: BTreeSet<(u64, u64)>,
}

/// The server-side walk-session table: sid → state stack, LRU-capped
/// with an explicit recency order (eviction is O(log n), not an O(n)
/// scan — the C10K regime holds thousands of live sessions).
struct Sessions {
    table: Mutex<SessionTable>,
    next_sid: AtomicU64,
    clock: AtomicU64,
    cap: usize,
    /// LRU evictions so far (an evicted session is not an error, but a
    /// rising rate means the cap is too small for the client fleet).
    evictions: AtomicU64,
}

impl Sessions {
    fn new(cap: usize) -> Self {
        Self {
            table: Mutex::new(SessionTable::default()),
            next_sid: AtomicU64::new(1),
            clock: AtomicU64::new(0),
            cap: cap.max(1),
            evictions: AtomicU64::new(0),
        }
    }

    fn open(&self, root: Query, root_state: WalkState) -> u64 {
        let sid = self.next_sid.fetch_add(1, Ordering::Relaxed);
        let touched = self.clock.fetch_add(1, Ordering::Relaxed);
        let entry = Arc::new(Session {
            stack: Mutex::new(vec![Level { query: root, pred: None, state: root_state }]),
        });
        self.insert(sid, touched, entry);
        sid
    }

    /// Inserts a session under an explicit `(sid, touched)` pair —
    /// shared by [`Sessions::open`] and snapshot import — evicting the
    /// stalest entry if the table is at cap.
    fn insert(&self, sid: u64, touched: u64, entry: Arc<Session>) {
        // Poison recovery: the table holds plain data (the two maps are
        // re-synchronised on every mutation), so a panicked holder
        // leaves it fully usable.
        let mut t = self.table.lock().unwrap_or_else(|p| p.into_inner());
        if t.by_sid.len() >= self.cap {
            // LRU eviction: the recency set's first pair is the stalest
            // session. Eviction is safe — clients fall back to fresh
            // evaluation, bit-identically.
            if let Some(&stale) = t.by_recency.first() {
                t.by_recency.remove(&stale);
                t.by_sid.remove(&stale.1);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Some((old, _)) = t.by_sid.insert(sid, (touched, entry)) {
            t.by_recency.remove(&(old, sid));
        }
        t.by_recency.insert((touched, sid));
    }

    /// Serialises every live session to its recipe (root query plus the
    /// predicate/child chain). Sessions whose stack lock is poisoned are
    /// skipped — their contents are suspect, exactly as probes treat
    /// them.
    fn export(&self) -> SessionDump {
        let t = self.table.lock().unwrap_or_else(|p| p.into_inner());
        let mut sessions = Vec::with_capacity(t.by_sid.len());
        for (&sid, &(touched, ref entry)) in &t.by_sid {
            let Ok(stack) = entry.stack.lock() else { continue };
            let Some(root) = stack.first() else { continue };
            let mut steps = Vec::with_capacity(stack.len().saturating_sub(1));
            for level in stack.iter().skip(1) {
                let Some(pred) = level.pred else { break };
                steps.push(WalkStep { pred, child: level.query.clone() });
            }
            if steps.len() + 1 == stack.len() {
                sessions.push(SessionRecord {
                    sid,
                    touched,
                    root: root.query.clone(),
                    steps,
                });
            }
        }
        SessionDump {
            next_sid: self.next_sid.load(Ordering::Relaxed),
            clock: self.clock.load(Ordering::Relaxed),
            sessions,
        }
    }

    /// The session, bumped to most-recently-used.
    fn get(&self, sid: u64) -> Option<Arc<Session>> {
        let touched = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut t = self.table.lock().unwrap_or_else(|p| p.into_inner());
        let (old, entry) = {
            let slot = t.by_sid.get_mut(&sid)?;
            let old = slot.0;
            slot.0 = touched;
            (old, Arc::clone(&slot.1))
        };
        t.by_recency.remove(&(old, sid));
        t.by_recency.insert((touched, sid));
        Some(entry)
    }

    fn close(&self, sid: u64) {
        let mut t = self.table.lock().unwrap_or_else(|p| p.into_inner());
        if let Some((touched, _)) = t.by_sid.remove(&sid) {
            t.by_recency.remove(&(touched, sid));
        }
    }

    fn len(&self) -> usize {
        self.table.lock().unwrap_or_else(|p| p.into_inner()).by_sid.len()
    }

    fn clear(&self) {
        let mut t = self.table.lock().unwrap_or_else(|p| p.into_inner());
        t.by_sid.clear();
        t.by_recency.clear();
    }
}

/// The server's query ledger: pre-resolved registry counters bumped
/// once per probe-shaped request, strictly after its response is
/// computed. Every recorded probe lands in `issued` plus exactly one
/// outcome bucket, so `issued == underflow + valid + overflow +
/// errored` is an invariant of every snapshot.
struct Ledger {
    issued: Counter,
    underflow: Counter,
    valid: Counter,
    overflow: Counter,
    errored: Counter,
}

impl Ledger {
    fn new(registry: &MetricsRegistry) -> Self {
        Self {
            issued: registry.counter("hdb_queries_issued_total"),
            underflow: registry.counter("hdb_queries_underflow_total"),
            valid: registry.counter("hdb_queries_valid_total"),
            overflow: registry.counter("hdb_queries_overflow_total"),
            errored: registry.counter("hdb_queries_errored_total"),
        }
    }

    /// Classifies one probe's response under the `k` it asked for.
    /// Errors and `SessionGone` (the fused probes' no-answer road) land
    /// in `errored`; everything else partitions on the true match count.
    fn record(&self, k: u64, resp: &Response) {
        let count = match resp {
            Response::Evaluation(ev) | Response::ExtendEvaluation { evaluation: ev, .. } => {
                Some(ev.count)
            }
            Response::Classified(c) | Response::ExtendClassified { classified: c, .. } => {
                Some(c.count)
            }
            _ => None,
        };
        self.issued.inc();
        match count {
            Some(0) => self.underflow.inc(),
            Some(n) if n as u64 <= k => self.valid.inc(),
            Some(_) => self.overflow.inc(),
            None => self.errored.inc(),
        }
    }
}

/// Everything the event thread and the pool workers share.
struct Inner<B> {
    backend: B,
    sessions: Sessions,
    shutdown: AtomicBool,
    reactor: Reactor,
    conns: Mutex<BTreeMap<u64, Conn>>,
    next_token: AtomicU64,
    pool: PoolSender,
    frames_per_turn: usize,
    /// Readiness dispatches to the pool (idle connections add zero).
    dispatches: AtomicU64,
    /// Request frames served (batch members count individually).
    frames: AtomicU64,
    /// Page-chunk bytes pushed through [`Conn::tail`] streaming.
    streamed_bytes: AtomicU64,
    registry: MetricsRegistry,
    ledger: Ledger,
    /// Members per batch frame.
    batch_size: Histogram,
}

impl<B: SearchBackend> Inner<B> {
    /// The merged snapshot every exposure path serves: backend-reported
    /// series, the registry (ledger + batch histogram), and the serving
    /// counters, in one ordered map.
    fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        self.backend.fill_metrics(&mut snap);
        snap.merge(self.registry.snapshot());
        snap.counters.insert(
            "hdb_server_dispatches_total".to_string(),
            self.dispatches.load(Ordering::Relaxed),
        );
        snap.counters
            .insert("hdb_server_frames_total".to_string(), self.frames.load(Ordering::Relaxed));
        snap.counters.insert(
            "hdb_server_streamed_bytes_total".to_string(),
            self.streamed_bytes.load(Ordering::Relaxed),
        );
        snap.counters.insert(
            "hdb_server_session_evictions_total".to_string(),
            self.sessions.evictions.load(Ordering::Relaxed),
        );
        snap.gauges.insert("hdb_server_sessions".to_string(), self.sessions.len() as u64);
        snap
    }

    /// Rebuilds sessions from a snapshot dump: every record replays its
    /// recipe (root `walk_state`, then one `extend_state` per step)
    /// against the live backend, so the restored states are
    /// bit-identical to the pre-crash ones. Records that no longer
    /// validate against the schema, or exceed the walk depth cap, are
    /// dropped — a missing session is not an error, clients fall back.
    fn import_sessions(&self, dump: &SessionDump) {
        let schema = self.backend.schema();
        let mut max_sid = 0u64;
        for rec in &dump.sessions {
            if rec.root.validate(schema).is_err() || rec.steps.len() > schema.len() {
                continue;
            }
            let valid = rec.steps.iter().all(|s| {
                s.child.validate(schema).is_ok() && validate_pred(schema, s.pred).is_ok()
            });
            if !valid {
                continue;
            }
            let mut stack = Vec::with_capacity(rec.steps.len() + 1);
            stack.push(Level {
                query: rec.root.clone(),
                pred: None,
                state: self.backend.walk_state(&rec.root),
            });
            for step in &rec.steps {
                let parent = stack.len() - 1;
                let state = self.backend.extend_state(
                    &stack[parent].state,
                    &step.child,
                    step.pred,
                    WalkState::fallback(),
                );
                stack.push(Level { query: step.child.clone(), pred: Some(step.pred), state });
            }
            let entry = Arc::new(Session { stack: Mutex::new(stack) });
            self.sessions.insert(rec.sid, rec.touched, entry);
            max_sid = max_sid.max(rec.sid);
        }
        // Monotonic counters: never move backwards, and never hand out a
        // sid that a restored session already owns.
        self.sessions.next_sid.fetch_max(dump.next_sid.max(max_sid + 1), Ordering::Relaxed);
        self.sessions.clock.fetch_max(dump.clock, Ordering::Relaxed);
    }
}

/// Validates a predicate against the schema bounds (the wire is
/// untrusted: an out-of-range posting lookup must not reach the index).
fn validate_pred(schema: &Schema, pred: Predicate) -> Result<()> {
    if pred.attr >= schema.len() {
        return Err(HdbError::InvalidQuery(format!("predicate attribute {} out of range", pred.attr)));
    }
    if (pred.value as usize) >= schema.fanout(pred.attr) {
        return Err(HdbError::InvalidQuery(format!(
            "predicate value {} out of domain for attribute {}",
            pred.value, pred.attr
        )));
    }
    Ok(())
}

/// Validates a wire-supplied ranking spec: an attribute ranking must
/// reference a schema attribute (scoring would index out of bounds
/// otherwise — the wire is untrusted).
fn validate_ranking(schema: &Schema, spec: hdb_interface::RankingSpec) -> Result<()> {
    if let hdb_interface::RankingSpec::Attribute { attr, .. } = spec {
        if attr >= schema.len() {
            return Err(HdbError::InvalidQuery(format!(
                "ranking attribute {attr} out of range"
            )));
        }
    }
    Ok(())
}

/// Validates and narrows a wire `k`.
fn validate_k(k: u64) -> Result<usize> {
    match usize::try_from(k) {
        Ok(k) if k >= 1 => Ok(k),
        _ => Err(HdbError::InvalidQuery(format!("k must be in 1..=usize::MAX, got {k}"))),
    }
}

/// Validates the shared preamble of an extend: child query, predicate,
/// session, level bounds. `Ok(None)` is the graceful `SessionGone` road.
fn locate_session<B: SearchBackend>(
    inner: &Inner<B>,
    schema: &Schema,
    sid: u64,
    parent_level: u32,
) -> Option<Arc<Session>> {
    let entry = inner.sessions.get(sid)?;
    // Depth cap: a legitimate walk commits at most one level per
    // attribute, so a deeper stack can only be a hostile client
    // inflating server memory — send it to the fresh fallback instead.
    if parent_level as usize + 1 > schema.len() {
        return None;
    }
    Some(entry)
}

/// Commits one extend into a locked session stack. The walk is
/// stack-disciplined: extending from level L retires everything deeper
/// (the client retracted). Returns the pushed level's index, or `None`
/// when `parent_level` references a retired level.
fn push_level<B: SearchBackend>(
    inner: &Inner<B>,
    stack: &mut Vec<Level>,
    parent_level: u32,
    child: &Query,
    pred: Predicate,
) -> Option<u32> {
    let parent = parent_level as usize;
    if parent >= stack.len() {
        return None;
    }
    stack.truncate(parent + 1);
    let state =
        inner.backend.extend_state(&stack[parent].state, child, pred, WalkState::fallback());
    stack.push(Level { query: child.clone(), pred: Some(pred), state });
    Some(parent_level + 1)
}

/// Answers one decoded request. Total: every failure path is a typed
/// [`Response::Error`] (or the graceful `SessionGone`), never a panic.
fn handle_request<B: SearchBackend>(inner: &Inner<B>, req: Request) -> Response {
    let schema = inner.backend.schema();
    // Probe-shaped requests feed the ledger; `k` is captured up front
    // because the match below consumes the request.
    let probe_k = match &req {
        Request::Evaluate { k, .. }
        | Request::WalkEvaluate { k, .. }
        | Request::WalkClassify { k, .. }
        | Request::WalkExtendEvaluate { k, .. }
        | Request::WalkExtendClassify { k, .. } => Some(*k),
        _ => None,
    };
    let outcome = (|| -> Result<Response> {
        Ok(match req {
            Request::Hello { version } => {
                if version != PROTOCOL_VERSION {
                    return Err(HdbError::Transport(format!(
                        "protocol version mismatch: server {PROTOCOL_VERSION}, client {version}"
                    )));
                }
                Response::Hello { version: PROTOCOL_VERSION }
            }
            Request::Schema => Response::Schema(schema.clone()),
            Request::Len => Response::Len(inner.backend.len() as u64),
            Request::Evaluate { query, k, ranking } => {
                query.validate(schema)?;
                validate_ranking(schema, ranking)?;
                let k = validate_k(k)?;
                Response::Evaluation(inner.backend.evaluate(
                    &query,
                    k,
                    ranking.instantiate().as_ref(),
                )?)
            }
            Request::ExactCount { query } => {
                query.validate(schema)?;
                Response::Count(inner.backend.exact_count(&query)? as u64)
            }
            Request::ExactSum { attr, query } => {
                query.validate(schema)?;
                let attr = usize::try_from(attr)
                    .map_err(|_| HdbError::InvalidQuery("attribute id overflows".into()))?;
                Response::Sum(inner.backend.exact_sum(attr, &query)?)
            }
            Request::WalkOpen { root } => {
                root.validate(schema)?;
                let state = inner.backend.walk_state(&root);
                Response::Session { sid: inner.sessions.open(root, state) }
            }
            Request::WalkExtend { sid, parent_level, child, pred } => {
                child.validate(schema)?;
                validate_pred(schema, pred)?;
                let Some(entry) = locate_session(inner, schema, sid, parent_level) else {
                    return Ok(Response::SessionGone);
                };
                // A poisoned stack means some probe panicked mid-update;
                // its contents are suspect, so retire the session and
                // send the client to the fresh-evaluation fallback.
                let Ok(mut stack) = entry.stack.lock() else {
                    inner.sessions.close(sid);
                    return Ok(Response::SessionGone);
                };
                match push_level(inner, &mut stack, parent_level, &child, pred) {
                    Some(level) => Response::Level { level },
                    None => Response::SessionGone,
                }
            }
            Request::WalkEvaluate { sid, parent_level, child, pred, k, ranking } => {
                child.validate(schema)?;
                validate_pred(schema, pred)?;
                validate_ranking(schema, ranking)?;
                let k = validate_k(k)?;
                let ranking = ranking.instantiate();
                // Missing session, poisoned stack (a probe panicked
                // mid-update — its state is suspect), or retired level
                // all take the same road: fresh evaluation, which is
                // bit-identical, just one intersection slower.
                let entry = inner.sessions.get(sid);
                let stack = entry.as_ref().and_then(|e| e.stack.lock().ok());
                let parent =
                    stack.as_ref().and_then(|s| s.get(parent_level as usize)).map(|l| &l.state);
                let evaluation = match parent {
                    Some(parent) => inner.backend.evaluate_from(
                        parent,
                        &child,
                        pred,
                        k,
                        ranking.as_ref(),
                    )?,
                    None => inner.backend.evaluate(&child, k, ranking.as_ref())?,
                };
                Response::Evaluation(evaluation)
            }
            Request::WalkClassify { sid, parent_level, child, pred, k } => {
                child.validate(schema)?;
                validate_pred(schema, pred)?;
                let k = validate_k(k)?;
                // Same fallback road as WalkEvaluate: missing session,
                // poisoned stack, or retired level → fresh evaluation.
                let entry = inner.sessions.get(sid);
                let stack = entry.as_ref().and_then(|e| e.stack.lock().ok());
                let parent =
                    stack.as_ref().and_then(|s| s.get(parent_level as usize)).map(|l| &l.state);
                let classified = match parent {
                    Some(parent) => {
                        inner.backend.classify_from(parent, &child, pred, k)?
                    }
                    None => hdb_interface::Classified::from_evaluation(
                        inner.backend.evaluate(&child, k, &hdb_interface::RowIdRanking)?,
                        k,
                    ),
                };
                Response::Classified(classified)
            }
            Request::WalkExtendEvaluate {
                sid,
                parent_level,
                ext_child,
                ext_pred,
                child,
                pred,
                k,
                ranking,
            } => {
                ext_child.validate(schema)?;
                validate_pred(schema, ext_pred)?;
                child.validate(schema)?;
                validate_pred(schema, pred)?;
                validate_ranking(schema, ranking)?;
                let k = validate_k(k)?;
                let ranking = ranking.instantiate();
                let Some(entry) = locate_session(inner, schema, sid, parent_level) else {
                    return Ok(Response::SessionGone);
                };
                let Ok(mut stack) = entry.stack.lock() else {
                    inner.sessions.close(sid);
                    return Ok(Response::SessionGone);
                };
                // Extend, then probe from the level just pushed — the
                // stack lock spans both, so the fused pair is atomic
                // against concurrent probes of the same session.
                let Some(level) = push_level(inner, &mut stack, parent_level, &ext_child, ext_pred)
                else {
                    return Ok(Response::SessionGone);
                };
                let evaluation = inner.backend.evaluate_from(
                    &stack[level as usize].state,
                    &child,
                    pred,
                    k,
                    ranking.as_ref(),
                )?;
                Response::ExtendEvaluation { level, evaluation }
            }
            Request::WalkExtendClassify {
                sid,
                parent_level,
                ext_child,
                ext_pred,
                child,
                pred,
                k,
            } => {
                ext_child.validate(schema)?;
                validate_pred(schema, ext_pred)?;
                child.validate(schema)?;
                validate_pred(schema, pred)?;
                let k = validate_k(k)?;
                let Some(entry) = locate_session(inner, schema, sid, parent_level) else {
                    return Ok(Response::SessionGone);
                };
                let Ok(mut stack) = entry.stack.lock() else {
                    inner.sessions.close(sid);
                    return Ok(Response::SessionGone);
                };
                let Some(level) = push_level(inner, &mut stack, parent_level, &ext_child, ext_pred)
                else {
                    return Ok(Response::SessionGone);
                };
                let classified =
                    inner.backend.classify_from(&stack[level as usize].state, &child, pred, k)?;
                Response::ExtendClassified { level, classified }
            }
            Request::WalkClose { sid } => {
                inner.sessions.close(sid);
                Response::Closed
            }
            Request::Stats => Response::Stats(inner.metrics_snapshot()),
            // Batches are flattened at the connection layer (one
            // response frame per member); one reaching the dispatcher
            // means a member was itself a batch, which decode rejects —
            // keep the handler total anyway.
            Request::Batch(_) => {
                return Err(HdbError::Transport("batch members cannot be batches".into()))
            }
        })
    })();
    let resp = outcome.unwrap_or_else(Response::Error);
    // Ledger recording happens strictly after the response is computed:
    // the answer is bit-identical whether or not anyone ever scrapes.
    if let Some(k) = probe_k {
        inner.ledger.record(k, &resp);
    }
    resp
}

/// An in-flight chunked page stream: the page is held un-encoded and
/// chunked into the output buffer one [`STREAM_TUPLES`] slice at a time,
/// each only after the previous chunk drained — a slow reader pins one
/// chunk, not the page.
struct PageTail {
    page: Vec<ReturnedTuple>,
    next: usize,
}

/// One connection's serving state. Lives in the connection table while
/// parked (armed in the reactor) and is owned by exactly one pool worker
/// while being served — one-shot notification makes the hand-off
/// race-free.
struct Conn {
    stream: TcpStream,
    buf: FrameBuf,
    /// Encoded-but-unsent frames (at most one response frame plus a
    /// partially written predecessor — bounded).
    out: Vec<u8>,
    out_pos: usize,
    /// A page mid-stream; no new frame is served until it completes.
    tail: Option<PageTail>,
    /// Batch members not yet answered (each gets its own response).
    queued: VecDeque<Request>,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            buf: FrameBuf::new(),
            out: Vec::new(),
            out_pos: 0,
            tail: None,
            queued: VecDeque::new(),
        }
    }
}

enum FlushState {
    Drained,
    Blocked,
    Gone,
}

/// Writes as much pending output as the socket accepts.
fn flush(conn: &mut Conn) -> FlushState {
    while conn.out_pos < conn.out.len() {
        let Some(rest) = conn.out.get(conn.out_pos..) else {
            return FlushState::Gone;
        };
        match conn.stream.write(rest) {
            Ok(0) => return FlushState::Gone,
            Ok(n) => conn.out_pos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return FlushState::Blocked,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return FlushState::Gone,
        }
    }
    conn.out.clear();
    conn.out_pos = 0;
    FlushState::Drained
}

/// Encodes `resp` into the connection's output buffer. Pages longer
/// than [`STREAM_TUPLES`] are split: the head frame goes out now, the
/// page parks in [`Conn::tail`] and streams chunk by chunk as the
/// socket drains. Failure means the connection must drop (the stream
/// would desynchronise).
fn enqueue_response(conn: &mut Conn, mut resp: Response) -> Result<()> {
    let page = match &mut resp {
        Response::Evaluation(ev) if ev.top.len() > STREAM_TUPLES => {
            Some(std::mem::take(&mut ev.top))
        }
        Response::Classified(c) if c.page.len() > STREAM_TUPLES => {
            Some(std::mem::take(&mut c.page))
        }
        Response::ExtendEvaluation { evaluation, .. }
            if evaluation.top.len() > STREAM_TUPLES =>
        {
            Some(std::mem::take(&mut evaluation.top))
        }
        Response::ExtendClassified { classified, .. }
            if classified.page.len() > STREAM_TUPLES =>
        {
            Some(std::mem::take(&mut classified.page))
        }
        _ => None,
    };
    let payload = match page {
        Some(page) => {
            let head = Response::Streamed(Box::new(resp)).encode()?;
            conn.tail = Some(PageTail { page, next: 0 });
            head
        }
        // An unencodable response (a length beyond the wire's u32
        // ranges) degrades to its typed error; if even that cannot
        // encode, the caller drops the connection.
        None => match resp.encode() {
            Ok(payload) => payload,
            Err(e) => Response::Error(e).encode()?,
        },
    };
    write_frame(&mut conn.out, &payload)
}

/// Appends the next pending page chunk to the output buffer and
/// returns its encoded byte length. `Ok(_)` leaves `conn.tail` set iff
/// more chunks remain.
fn enqueue_chunk(conn: &mut Conn, mut tail: PageTail) -> Result<u64> {
    let end = tail.page.len().min(tail.next.saturating_add(STREAM_TUPLES));
    let chunk = tail
        .page
        .get(tail.next..end)
        .ok_or_else(|| HdbError::Transport("page stream cursor out of range".into()))?;
    let last = end == tail.page.len();
    let payload = encode_page_chunk(chunk, last)?;
    write_frame(&mut conn.out, &payload)?;
    if !last {
        tail.next = end;
        conn.tail = Some(tail);
    }
    Ok(payload.len() as u64)
}

enum ReadState {
    More,
    Blocked,
    Gone,
}

/// Pulls whatever the socket has buffered (nonblocking).
fn read_more(conn: &mut Conn) -> ReadState {
    let mut chunk = [0u8; 16 * 1024];
    match conn.stream.read(&mut chunk) {
        Ok(0) => ReadState::Gone, // clean EOF
        // `read` contracts n ≤ chunk.len(); a lying Read impl gets the
        // connection dropped, not a panic.
        Ok(n) => match chunk.get(..n) {
            Some(got) => {
                conn.buf.extend(got);
                ReadState::More
            }
            None => ReadState::Gone,
        },
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => ReadState::Blocked,
        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => ReadState::More,
        Err(_) => ReadState::Gone,
    }
}

/// Drops a connection: deregister from the reactor, close the socket.
fn close_conn<B>(inner: &Inner<B>, conn: Conn) {
    inner.reactor.deregister(conn.stream.as_raw_fd());
    drop(conn);
}

/// Parks a connection back into the table and re-arms its readiness
/// interest. Insert-before-arm: one-shot registration guarantees no
/// event can fire until the arm, so the event thread always finds the
/// connection in the table.
fn park<B>(inner: &Arc<Inner<B>>, token: u64, conn: Conn, interest: Interest) {
    let fd = conn.stream.as_raw_fd();
    inner.conns.lock().unwrap_or_else(|p| p.into_inner()).insert(token, conn);
    if inner.reactor.rearm(fd, token, interest).is_err() {
        let removed = inner.conns.lock().unwrap_or_else(|p| p.into_inner()).remove(&token);
        if let Some(conn) = removed {
            close_conn(inner, conn);
        }
    }
}

/// One pool turn over a connection: flush, stream pending chunks, serve
/// up to the fairness quota of frames, read until the socket blocks,
/// then park (or re-queue if buffered work remains).
fn turn<B: SearchBackend + 'static>(inner: &Arc<Inner<B>>, token: u64, mut conn: Conn) {
    if inner.shutdown.load(Ordering::Acquire) {
        close_conn(inner, conn);
        return;
    }
    let mut served = 0usize;
    loop {
        match flush(&mut conn) {
            FlushState::Drained => {}
            FlushState::Blocked => return park(inner, token, conn, Interest::WRITE),
            FlushState::Gone => return close_conn(inner, conn),
        }
        // A page mid-stream owns the connection: its chunks must be the
        // next frames out (the client reassembles them positionally),
        // and encoding one chunk per drained buffer bounds memory.
        if let Some(tail) = conn.tail.take() {
            match enqueue_chunk(&mut conn, tail) {
                Ok(bytes) => inner.streamed_bytes.fetch_add(bytes, Ordering::Relaxed),
                Err(_) => return close_conn(inner, conn),
            };
            continue;
        }
        if served >= inner.frames_per_turn {
            // Fairness: rotate behind the other queued turns. The
            // connection is disarmed, so this worker chain keeps sole
            // ownership.
            let next = Arc::clone(inner);
            let sender = inner.pool.clone();
            if !sender.send(move || turn(&next, token, conn)) {
                // pool shutting down
            }
            return;
        }
        let resp = if let Some(req) = conn.queued.pop_front() {
            Some(handle_request(inner, req))
        } else {
            match conn.buf.next_frame() {
                Ok(Some(payload)) => Some(match Request::decode(&payload) {
                    // A batch answers with one response per member, in
                    // member order; members queue so a streamed page in
                    // the middle keeps its chunks contiguous.
                    Ok(Request::Batch(members)) => {
                        inner.batch_size.observe(members.len() as u64);
                        conn.queued.extend(members);
                        match conn.queued.pop_front() {
                            Some(req) => handle_request(inner, req),
                            None => Response::Error(HdbError::Transport(
                                "empty batch frame".into(),
                            )),
                        }
                    }
                    Ok(req) => handle_request(inner, req),
                    // Malformed but correctly framed: the stream stays
                    // synchronised, so answer a typed error and keep
                    // serving.
                    Err(e) => Response::Error(e),
                }),
                Ok(None) => None,
                // Corrupt length prefix: the byte stream can never
                // resynchronise — drop the connection.
                Err(_) => return close_conn(inner, conn),
            }
        };
        if let Some(resp) = resp {
            if enqueue_response(&mut conn, resp).is_err() {
                return close_conn(inner, conn);
            }
            inner.frames.fetch_add(1, Ordering::Relaxed);
            served += 1;
            continue;
        }
        match read_more(&mut conn) {
            ReadState::More => {}
            ReadState::Blocked => return park(inner, token, conn, Interest::READ),
            ReadState::Gone => return close_conn(inner, conn),
        }
    }
}

/// Accepts every pending connection on the (nonblocking) listener and
/// registers each with the reactor.
fn accept_ready<B>(inner: &Arc<Inner<B>>, listener: &TcpListener) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let setup =
                    stream.set_nodelay(true).and_then(|()| stream.set_nonblocking(true));
                if setup.is_err() {
                    continue;
                }
                let token = inner.next_token.fetch_add(1, Ordering::Relaxed);
                let fd = stream.as_raw_fd();
                inner
                    .conns
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .insert(token, Conn::new(stream));
                if inner.reactor.register(fd, token, Interest::READ).is_err() {
                    inner.conns.lock().unwrap_or_else(|p| p.into_inner()).remove(&token);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Serves one Prometheus scrape: drain the request head (the path is
/// ignored — every scrape gets the full exposition), write an
/// `HTTP/1.0` response, close. Runs on a pool worker with bounded
/// timeouts so a stalled scraper cannot pin a thread.
fn serve_scrape<B: SearchBackend>(inner: &Inner<B>, mut stream: TcpStream) {
    let setup = stream
        .set_nonblocking(false)
        .and_then(|()| stream.set_read_timeout(Some(Duration::from_secs(2))))
        .and_then(|()| stream.set_write_timeout(Some(Duration::from_secs(2))));
    if setup.is_err() {
        return;
    }
    // Read until the blank line ending the request head (or a bounded
    // cap — a scrape carries no body worth waiting for).
    let mut head = vec![0u8; 4096];
    let mut got = 0usize;
    while got < head.len() {
        let Some(room) = head.get_mut(got..) else { break };
        match stream.read(room) {
            Ok(0) => break,
            Ok(n) => {
                got += n;
                let read = head.get(..got).unwrap_or_default();
                if read.windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
    let body = inner.metrics_snapshot().render_prometheus();
    let resp = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(resp.as_bytes());
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Accepts every pending scrape connection on the (nonblocking) metrics
/// listener and dispatches each to the pool.
fn accept_scrapes<B: SearchBackend + 'static>(inner: &Arc<Inner<B>>, metrics: &TcpListener) {
    loop {
        match metrics.accept() {
            Ok((stream, _)) => {
                let next = Arc::clone(inner);
                if !inner.pool.send(move || serve_scrape(&next, stream)) {
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// The event loop: blocks in the reactor, accepts on listener
/// readiness, and dispatches ready connections to the pool. Runs until
/// the shutdown flag is set (the control thread wakes the reactor with
/// a throwaway connection).
fn event_loop<B: SearchBackend + 'static>(
    inner: &Arc<Inner<B>>,
    listener: &TcpListener,
    metrics: Option<&TcpListener>,
) {
    let mut events = Vec::new();
    loop {
        if inner.shutdown.load(Ordering::Acquire) {
            break;
        }
        if inner.reactor.wait(&mut events, Some(WAIT_BACKSTOP)).is_err() {
            break;
        }
        for ev in &events {
            if ev.token == LISTENER_TOKEN {
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                accept_ready(inner, listener);
                if inner
                    .reactor
                    .rearm(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)
                    .is_err()
                {
                    return;
                }
            } else if ev.token == METRICS_TOKEN {
                let Some(metrics) = metrics else { continue };
                accept_scrapes(inner, metrics);
                if inner
                    .reactor
                    .rearm(metrics.as_raw_fd(), METRICS_TOKEN, Interest::READ)
                    .is_err()
                {
                    return;
                }
            } else {
                let conn =
                    inner.conns.lock().unwrap_or_else(|p| p.into_inner()).remove(&ev.token);
                // A missing entry is a stale event for a connection that
                // already closed — ignore.
                if let Some(conn) = conn {
                    inner.dispatches.fetch_add(1, Ordering::Relaxed);
                    let next = Arc::clone(inner);
                    let token = ev.token;
                    if !inner.pool.send(move || turn(&next, token, conn)) {
                        return;
                    }
                }
            }
        }
    }
}

/// Namespace for [`Server::bind`].
pub struct Server;

impl Server {
    /// Binds `backend` to `addr` (use port 0 for an ephemeral port) with
    /// the default [`ServerConfig`] and starts serving in background
    /// threads. The returned handle stops the server when dropped.
    ///
    /// # Errors
    /// [`HdbError::Transport`] if the address cannot be bound.
    pub fn bind<B: SearchBackend + 'static>(
        backend: B,
        addr: impl ToSocketAddrs,
    ) -> Result<RunningServer> {
        Self::bind_with(backend, addr, ServerConfig::default())
    }

    /// [`Server::bind`] with explicit tuning.
    ///
    /// # Errors
    /// [`HdbError::Transport`] if the address cannot be bound or the
    /// readiness backend cannot be created.
    pub fn bind_with<B: SearchBackend + 'static>(
        backend: B,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> Result<RunningServer> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| HdbError::Transport(format!("bind failed: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| HdbError::Transport(format!("local_addr failed: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| HdbError::Transport(format!("nonblocking listener: {e}")))?;
        let reactor = Reactor::with_kind(config.reactor)
            .map_err(|e| HdbError::Transport(format!("reactor: {e}")))?;
        reactor
            .register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)
            .map_err(|e| HdbError::Transport(format!("register listener: {e}")))?;
        let metrics = match &config.metrics_addr {
            None => None,
            Some(addr) => {
                let m = TcpListener::bind(addr.as_str())
                    .map_err(|e| HdbError::Transport(format!("bind metrics {addr}: {e}")))?;
                m.set_nonblocking(true)
                    .map_err(|e| HdbError::Transport(format!("nonblocking metrics: {e}")))?;
                reactor
                    .register(m.as_raw_fd(), METRICS_TOKEN, Interest::READ)
                    .map_err(|e| HdbError::Transport(format!("register metrics: {e}")))?;
                Some(m)
            }
        };
        let metrics_addr = match &metrics {
            None => None,
            Some(m) => Some(
                m.local_addr()
                    .map_err(|e| HdbError::Transport(format!("metrics local_addr: {e}")))?,
            ),
        };
        let pool = WorkerPool::new(config.pool_threads.max(1));
        let registry = MetricsRegistry::new();
        let ledger = Ledger::new(&registry);
        let batch_size = registry.histogram("hdb_server_batch_size");
        let inner = Arc::new(Inner {
            backend,
            sessions: Sessions::new(config.session_cap),
            shutdown: AtomicBool::new(false),
            reactor,
            conns: Mutex::new(BTreeMap::new()),
            next_token: AtomicU64::new(FIRST_CONN_TOKEN),
            pool: pool.sender(),
            frames_per_turn: config.frames_per_turn.max(1),
            dispatches: AtomicU64::new(0),
            frames: AtomicU64::new(0),
            streamed_bytes: AtomicU64::new(0),
            registry,
            ledger,
            batch_size,
        });
        let event_inner = Arc::clone(&inner);
        let events = std::thread::spawn(move || {
            event_loop(&event_inner, &listener, metrics.as_ref());
            // Listeners drop (close) here; parked connections drain in
            // RunningServer::stop once the workers have joined.
        });
        Ok(RunningServer {
            addr: local_addr,
            metrics_addr,
            control: Control(inner),
            events: Some(events),
            pool: Some(pool),
        })
    }
}

/// Type-erased handle on the shared server state (the server handle
/// must not be generic over the backend).
struct Control(Arc<dyn ControlTarget>);

trait ControlTarget: Send + Sync {
    fn set_shutdown(&self);
    fn session_count(&self) -> usize;
    fn dispatch_count(&self) -> u64;
    fn frame_count(&self) -> u64;
    fn reactor_name(&self) -> &'static str;
    fn drain(&self);
    fn export_sessions(&self) -> SessionDump;
    fn import_sessions(&self, dump: &SessionDump);
    fn metrics_snapshot(&self) -> MetricsSnapshot;
}

impl<B: SearchBackend> ControlTarget for Inner<B> {
    fn set_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    fn session_count(&self) -> usize {
        self.sessions.len()
    }

    fn dispatch_count(&self) -> u64 {
        self.dispatches.load(Ordering::Relaxed)
    }

    fn frame_count(&self) -> u64 {
        self.frames.load(Ordering::Relaxed)
    }

    fn reactor_name(&self) -> &'static str {
        self.reactor.backend_name()
    }

    fn drain(&self) {
        // Workers and the event thread have joined by the time this
        // runs: every parked connection can be deregistered and closed,
        // and the session table cleared, without racing a turn.
        let parked = std::mem::take(
            &mut *self.conns.lock().unwrap_or_else(|p| p.into_inner()),
        );
        for (_, conn) in parked {
            self.reactor.deregister(conn.stream.as_raw_fd());
        }
        self.sessions.clear();
    }

    fn export_sessions(&self) -> SessionDump {
        self.sessions.export()
    }

    fn import_sessions(&self, dump: &SessionDump) {
        Inner::import_sessions(self, dump);
    }

    fn metrics_snapshot(&self) -> MetricsSnapshot {
        Inner::metrics_snapshot(self)
    }
}

/// A live server: reactor event thread + connection pool. Dropping it
/// (or calling [`RunningServer::shutdown`]) stops accepting, closes
/// every connection, drains the session table, and joins all threads.
pub struct RunningServer {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    control: Control,
    events: Option<std::thread::JoinHandle<()>>,
    pool: Option<WorkerPool>,
}

impl RunningServer {
    /// The bound address (with the real port when bound to port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound metrics-endpoint address, when
    /// [`ServerConfig::metrics_addr`] asked for one.
    #[must_use]
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// The merged metrics snapshot — the same one a `Stats` wire request
    /// or a Prometheus scrape would serve.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        self.control.0.metrics_snapshot()
    }

    /// Live walk sessions (diagnostics for tests and ops).
    #[must_use]
    pub fn session_count(&self) -> usize {
        self.control.0.session_count()
    }

    /// Readiness dispatches to the worker pool so far. Idle connections
    /// add zero — this is the regression pin for the poll-sweep defect.
    #[must_use]
    pub fn dispatch_count(&self) -> u64 {
        self.control.0.dispatch_count()
    }

    /// Request frames served so far (batch members count individually).
    #[must_use]
    pub fn frame_count(&self) -> u64 {
        self.control.0.frame_count()
    }

    /// The readiness backend in use (`"epoll"` or `"poll"`).
    #[must_use]
    pub fn reactor_name(&self) -> &'static str {
        self.control.0.reactor_name()
    }

    /// Serialises every live walk session to its recipe (root query
    /// plus the predicate chain) for inclusion in a durability snapshot
    /// — see [`hdb_interface::PersistentBackend::snapshot_with_sessions`].
    #[must_use]
    pub fn export_sessions(&self) -> SessionDump {
        self.control.0.export_sessions()
    }

    /// Rebuilds walk sessions from a snapshot dump by replaying each
    /// recipe against the live backend — restored probe answers are
    /// bit-identical to the pre-crash session's. Records that no longer
    /// validate (schema drift, depth cap) are dropped silently; the sid
    /// and recency counters only ever move forward.
    pub fn import_sessions(&self, dump: &SessionDump) {
        self.control.0.import_sessions(dump);
    }

    /// Stops the server and joins its threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.control.0.set_shutdown();
        // Unblock the reactor with a throwaway connection (listener
        // readiness wakes the event thread, which sees the flag).
        let _ = TcpStream::connect(self.addr);
        if let Some(events) = self.events.take() {
            let _ = events.join();
        }
        // Dropping the pool discards queued connection turns and joins
        // the worker threads; only this control thread ever owns it.
        self.pool.take();
        // With every serving thread joined, drain parked connections
        // and the session table.
        self.control.0.drain();
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdb_interface::wire::read_frame;
    use hdb_interface::{
        HiddenDb, Query, RemoteBackend, Table, TableBackend, TopKInterface, Tuple,
    };

    fn table() -> Table {
        let tuples: Vec<Tuple> =
            (0..32u16).map(|i| Tuple::new((0..5).map(|b| (i >> b) & 1).collect())).collect();
        Table::new(Schema::boolean(5), tuples).unwrap()
    }

    fn serve() -> RunningServer {
        Server::bind(TableBackend::new(table()), "127.0.0.1:0").unwrap()
    }

    fn ask(stream: &mut TcpStream, req: &Request) -> Response {
        write_frame(stream, &req.encode().unwrap()).unwrap();
        let payload = read_frame(stream).unwrap().unwrap();
        Response::decode(&payload).unwrap()
    }

    #[test]
    fn round_trip_over_loopback() {
        let server = serve();
        let remote = RemoteBackend::connect(server.addr().to_string()).unwrap();
        assert_eq!(remote.len(), 32);
        assert_eq!(remote.schema().len(), 5);
        let db = HiddenDb::over(remote, 3);
        assert!(db.query(&Query::all()).unwrap().is_overflow());
        let q = Query::all().and(0, 1).unwrap().and(1, 1).unwrap().and(2, 1).unwrap();
        let out = db.query(&q).unwrap();
        assert!(out.is_overflow());
        assert_eq!(db.queries_issued(), 2);
        server.shutdown();
    }

    #[test]
    fn portable_reactor_serves_identically() {
        let server = Server::bind_with(
            TableBackend::new(table()),
            "127.0.0.1:0",
            ServerConfig { reactor: ReactorKind::Portable, ..ServerConfig::default() },
        )
        .unwrap();
        assert_eq!(server.reactor_name(), "poll");
        let remote = HiddenDb::over(RemoteBackend::connect(server.addr().to_string()).unwrap(), 3);
        let local = HiddenDb::new(table(), 3);
        for q in [Query::all(), Query::all().and(0, 1).unwrap()] {
            assert_eq!(local.query(&q).unwrap(), remote.query(&q).unwrap());
        }
        server.shutdown();
    }

    #[test]
    fn idle_connections_cost_zero_dispatches() {
        let server = serve();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        assert_eq!(
            ask(&mut stream, &Request::Hello { version: PROTOCOL_VERSION }),
            Response::Hello { version: PROTOCOL_VERSION }
        );
        let after_handshake = server.dispatch_count();
        // The connection now sits idle. Under the old poll-sweep every
        // 2 ms slice cost a timed read; under readiness notification an
        // idle connection must cost nothing at all.
        std::thread::sleep(Duration::from_millis(300));
        assert_eq!(server.dispatch_count(), after_handshake, "idle connection was swept");
        // …and it is still alive and served on demand.
        assert_eq!(ask(&mut stream, &Request::Len), Response::Len(32));
        assert!(server.dispatch_count() > after_handshake);
        server.shutdown();
    }

    #[test]
    fn walk_sessions_survive_extend_retract_and_eviction() {
        let server = Server::bind_with(
            TableBackend::new(table()),
            "127.0.0.1:0",
            ServerConfig { session_cap: 2, ..ServerConfig::default() },
        )
        .unwrap();
        let local = HiddenDb::new(table(), 2);
        let remote =
            HiddenDb::over(RemoteBackend::connect(server.addr().to_string()).unwrap(), 2);
        let mut lw = local.walk_session(Query::all()).unwrap();
        let mut rw = remote.walk_session(Query::all()).unwrap();
        for (attr, v) in [(0usize, 1u16), (1, 0), (2, 1)] {
            assert_eq!(
                lw.classify(attr, v).unwrap(),
                rw.classify(attr, v).unwrap(),
                "probe {attr}={v}"
            );
            lw.extend(attr, v);
            rw.extend(attr, v);
        }
        lw.retract();
        rw.retract();
        assert_eq!(lw.classify(2, 0).unwrap(), rw.classify(2, 0).unwrap());
        // cap 2: two more sessions evict the first; probes still answer
        let _s2 = remote.walk_session(Query::all()).unwrap();
        let _s3 = remote.walk_session(Query::all()).unwrap();
        assert!(server.session_count() <= 2);
        assert_eq!(lw.classify(2, 1).unwrap(), rw.classify(2, 1).unwrap());
        assert_eq!(local.queries_issued(), remote.queries_issued());
        server.shutdown();
    }

    #[test]
    fn lru_eviction_follows_recency_not_sid_order() {
        let server = Server::bind_with(
            TableBackend::new(table()),
            "127.0.0.1:0",
            ServerConfig { session_cap: 2, ..ServerConfig::default() },
        )
        .unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let open = |stream: &mut TcpStream| match ask(stream, &Request::WalkOpen {
            root: Query::all(),
        }) {
            Response::Session { sid } => sid,
            other => panic!("expected a session, got {other:?}"),
        };
        let extend = |stream: &mut TcpStream, sid: u64| {
            ask(stream, &Request::WalkExtend {
                sid,
                parent_level: 0,
                child: Query::all().and(0, 1).unwrap(),
                pred: Predicate::new(0, 1),
            })
        };
        let s1 = open(&mut stream);
        let s2 = open(&mut stream);
        // Touch s1 so s2 is now the stalest; the next open must evict
        // s2, not the lowest sid.
        assert!(matches!(extend(&mut stream, s1), Response::Level { level: 1 }));
        let s3 = open(&mut stream);
        assert!(matches!(extend(&mut stream, s2), Response::SessionGone), "s2 must be evicted");
        assert!(matches!(extend(&mut stream, s1), Response::Level { level: 1 }));
        assert!(matches!(extend(&mut stream, s3), Response::Level { level: 1 }));
        server.shutdown();
    }

    #[test]
    fn fused_extend_probe_is_bit_identical_to_the_two_message_sequence() {
        let server = serve();
        let mut a = TcpStream::connect(server.addr()).unwrap();
        let mut b = TcpStream::connect(server.addr()).unwrap();
        let open = |stream: &mut TcpStream| match ask(stream, &Request::WalkOpen {
            root: Query::all(),
        }) {
            Response::Session { sid } => sid,
            other => panic!("expected a session, got {other:?}"),
        };
        let sid_a = open(&mut a);
        let sid_b = open(&mut b);
        let ext_child = Query::all().and(0, 1).unwrap();
        let ext_pred = Predicate::new(0, 1);
        let child = ext_child.clone().and(1, 0).unwrap();
        let pred = Predicate::new(1, 0);
        // Two-message sequence on connection a…
        assert!(matches!(
            ask(&mut a, &Request::WalkExtend {
                sid: sid_a,
                parent_level: 0,
                child: ext_child.clone(),
                pred: ext_pred,
            }),
            Response::Level { level: 1 }
        ));
        let plain = ask(&mut a, &Request::WalkClassify {
            sid: sid_a,
            parent_level: 1,
            child: child.clone(),
            pred,
            k: 2,
        });
        // …fused single message on connection b.
        let fused = ask(&mut b, &Request::WalkExtendClassify {
            sid: sid_b,
            parent_level: 0,
            ext_child,
            ext_pred,
            child,
            pred,
            k: 2,
        });
        let Response::Classified(plain) = plain else { panic!("{plain:?}") };
        let Response::ExtendClassified { level, classified } = fused else { panic!("{fused:?}") };
        assert_eq!(level, 1);
        assert_eq!(plain, classified);
        server.shutdown();
    }

    #[test]
    fn batch_frames_answer_one_response_per_member() {
        let server = serve();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let batch = Request::Batch(vec![
            Request::Len,
            Request::WalkOpen { root: Query::all() },
            Request::ExactCount { query: Query::all() },
        ]);
        write_frame(&mut stream, &batch.encode().unwrap()).unwrap();
        let mut replies = Vec::new();
        for _ in 0..3 {
            let payload = read_frame(&mut stream).unwrap().unwrap();
            replies.push(Response::decode(&payload).unwrap());
        }
        assert_eq!(replies[0], Response::Len(32));
        assert!(matches!(replies[1], Response::Session { .. }));
        assert_eq!(replies[2], Response::Count(32));
        server.shutdown();
    }

    #[test]
    fn malformed_frames_get_typed_errors_and_garbage_drops_the_connection() {
        let server = serve();
        // Well-framed garbage payload → typed error response, connection
        // stays usable.
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write_frame(&mut stream, &[0x7F, 1, 2, 3]).unwrap();
        let payload = read_frame(&mut stream).unwrap().unwrap();
        assert!(matches!(
            Response::decode(&payload).unwrap(),
            Response::Error(HdbError::Transport(_))
        ));
        // The same connection still serves real requests.
        assert_eq!(ask(&mut stream, &Request::Len), Response::Len(32));
        // Unframeable input (absurd length prefix) → connection dropped.
        let mut evil = TcpStream::connect(server.addr()).unwrap();
        evil.write_all(&u32::MAX.to_le_bytes()).unwrap();
        let mut buf = [0u8; 1];
        assert_eq!(evil.read(&mut buf).unwrap_or(0), 0, "server must close");
        // Invalid queries and k = 0 get typed errors, not panics.
        let remote = RemoteBackend::connect(server.addr().to_string()).unwrap();
        let bad = Query::all().and(9, 0).unwrap();
        assert!(matches!(
            remote.exact_count(&bad),
            Err(HdbError::InvalidQuery(_))
        ));
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let resp = ask(
            &mut stream,
            &Request::Evaluate {
                query: Query::all(),
                k: 0,
                ranking: hdb_interface::RankingSpec::RowId,
            },
        );
        assert!(matches!(resp, Response::Error(HdbError::InvalidQuery(_))));
        server.shutdown();
    }

    #[test]
    fn hostile_ranking_and_unbounded_extend_are_rejected_typed() {
        let server = serve();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        // An out-of-range ranking attribute must be a typed error, not an
        // index panic in the scoring kernel.
        let resp = ask(
            &mut stream,
            &Request::Evaluate {
                query: Query::all(),
                k: 1,
                ranking: hdb_interface::RankingSpec::Attribute { attr: 9999, descending: false },
            },
        );
        assert!(matches!(resp, Response::Error(HdbError::InvalidQuery(_))), "{resp:?}");
        // A client extending past one-level-per-attribute (the wire child
        // query need not be consistent with the claimed level) must hit
        // the depth cap instead of inflating the state stack unboundedly.
        let Response::Session { sid } = ask(&mut stream, &Request::WalkOpen { root: Query::all() })
        else {
            panic!("expected a session");
        };
        let child = Query::all().and(0, 0).unwrap();
        let pred = Predicate::new(0, 0);
        let mut capped = false;
        for level in 0..10u32 {
            let req = Request::WalkExtend {
                sid,
                parent_level: level,
                child: child.clone(),
                pred,
            };
            match ask(&mut stream, &req) {
                Response::Level { level: l } => assert_eq!(l, level + 1),
                Response::SessionGone => {
                    assert!(level >= 5, "cap must allow legitimate depths, hit at {level}");
                    capped = true;
                    break;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(capped, "extend depth must be capped at the schema width");
        server.shutdown();
    }

    #[test]
    fn exported_sessions_reimport_with_bit_identical_probes() {
        let server = serve();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let Response::Session { sid } = ask(&mut stream, &Request::WalkOpen { root: Query::all() })
        else {
            panic!("expected a session");
        };
        for (attr, v) in [(0usize, 1u16), (1, 0)] {
            let req = Request::WalkExtend {
                sid,
                parent_level: attr as u32,
                child: Query::all().and(attr, v).unwrap(),
                pred: Predicate::new(attr, v),
            };
            assert!(matches!(ask(&mut stream, &req), Response::Level { .. }));
        }
        let probe = Request::WalkClassify {
            sid,
            parent_level: 2,
            child: Query::all().and(2, 1).unwrap(),
            pred: Predicate::new(2, 1),
            k: 2,
        };
        let before = ask(&mut stream, &probe);
        let dump = server.export_sessions();
        assert_eq!(dump.sessions.len(), 1);
        assert_eq!(dump.sessions[0].steps.len(), 2);
        server.shutdown();
        // A brand-new server process restores the dump and answers the
        // same probe on the same sid, bit-identically.
        let revived = serve();
        revived.import_sessions(&dump);
        assert_eq!(revived.session_count(), 1);
        let mut stream = TcpStream::connect(revived.addr()).unwrap();
        assert_eq!(ask(&mut stream, &probe), before);
        // New sessions never collide with restored sids.
        let Response::Session { sid: sid2 } =
            ask(&mut stream, &Request::WalkOpen { root: Query::all() })
        else {
            panic!("expected a session");
        };
        assert!(sid2 > sid);
        revived.shutdown();
    }

    /// The four outcome buckets of a snapshot's query ledger, plus the
    /// issued total — for asserting the partition invariant.
    fn ledger_of(snap: &hdb_interface::MetricsSnapshot) -> (u64, u64) {
        let c = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
        let issued = c("hdb_queries_issued_total");
        let sum = c("hdb_queries_underflow_total")
            + c("hdb_queries_valid_total")
            + c("hdb_queries_overflow_total")
            + c("hdb_queries_errored_total");
        (issued, sum)
    }

    #[test]
    fn stats_frame_serves_a_partitioned_ledger() {
        let server = serve();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        // One overflow (32 > k=3), one valid (2 ≤ 3), one errored (k=0).
        let ranking = hdb_interface::RankingSpec::RowId;
        let overflow =
            ask(&mut stream, &Request::Evaluate { query: Query::all(), k: 3, ranking });
        assert!(matches!(overflow, Response::Evaluation(_)));
        let narrow = Query::all()
            .and(0, 1)
            .unwrap()
            .and(1, 1)
            .unwrap()
            .and(2, 1)
            .unwrap()
            .and(3, 1)
            .unwrap();
        let valid = ask(
            &mut stream,
            &Request::Evaluate { query: narrow, k: 3, ranking: hdb_interface::RankingSpec::RowId },
        );
        assert!(matches!(valid, Response::Evaluation(_)));
        let errored = ask(
            &mut stream,
            &Request::Evaluate {
                query: Query::all(),
                k: 0,
                ranking: hdb_interface::RankingSpec::RowId,
            },
        );
        assert!(matches!(errored, Response::Error(_)));

        let Response::Stats(snap) = ask(&mut stream, &Request::Stats) else {
            panic!("expected a Stats response");
        };
        let (issued, sum) = ledger_of(&snap);
        assert_eq!(issued, 3);
        assert_eq!(issued, sum, "ledger must partition");
        assert_eq!(snap.counters.get("hdb_queries_overflow_total"), Some(&1));
        assert_eq!(snap.counters.get("hdb_queries_valid_total"), Some(&1));
        assert_eq!(snap.counters.get("hdb_queries_errored_total"), Some(&1));
        // Serving counters ride along (the Stats frame snapshots before
        // its own frame-count bump, so the three probes are the floor).
        assert!(snap.counters.get("hdb_server_frames_total").copied().unwrap_or(0) >= 3);
        server.shutdown();
    }

    #[test]
    fn metrics_endpoint_serves_a_prometheus_scrape() {
        let server = Server::bind_with(
            TableBackend::new(table()),
            "127.0.0.1:0",
            ServerConfig { metrics_addr: Some("127.0.0.1:0".into()), ..ServerConfig::default() },
        )
        .unwrap();
        let metrics_addr = server.metrics_addr().expect("metrics listener bound");
        // Issue a probe so the ledger is non-trivial.
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let resp = ask(
            &mut stream,
            &Request::Evaluate {
                query: Query::all(),
                k: 3,
                ranking: hdb_interface::RankingSpec::RowId,
            },
        );
        assert!(matches!(resp, Response::Evaluation(_)));

        let mut scrape = TcpStream::connect(metrics_addr).unwrap();
        scrape.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut text = String::new();
        scrape.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.0 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Type: text/plain"), "{text}");
        assert!(text.contains("# TYPE hdb_queries_issued_total counter\n"), "{text}");
        assert!(text.contains("\nhdb_queries_issued_total 1\n"), "{text}");
        assert!(text.contains("\nhdb_queries_overflow_total 1\n"), "{text}");
        // The scrape agrees with the in-process snapshot's partition.
        let (issued, sum) = ledger_of(&server.metrics());
        assert_eq!(issued, 1);
        assert_eq!(issued, sum);
        server.shutdown();
    }

    #[test]
    fn session_evictions_and_batches_are_counted() {
        let server = Server::bind_with(
            TableBackend::new(table()),
            "127.0.0.1:0",
            ServerConfig { session_cap: 1, ..ServerConfig::default() },
        )
        .unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        for _ in 0..3 {
            let resp = ask(&mut stream, &Request::WalkOpen { root: Query::all() });
            assert!(matches!(resp, Response::Session { .. }));
        }
        let batch = Request::Batch(vec![Request::Len, Request::Len]);
        write_frame(&mut stream, &batch.encode().unwrap()).unwrap();
        for _ in 0..2 {
            let payload = read_frame(&mut stream).unwrap().unwrap();
            assert_eq!(Response::decode(&payload).unwrap(), Response::Len(32));
        }
        let snap = server.metrics();
        assert_eq!(snap.counters.get("hdb_server_session_evictions_total"), Some(&2));
        assert_eq!(snap.gauges.get("hdb_server_sessions"), Some(&1));
        let batches = snap.histograms.get("hdb_server_batch_size").expect("batch histogram");
        assert_eq!(batches.count, 1);
        assert_eq!(batches.sum, 2);
        server.shutdown();
    }

    #[test]
    fn ground_truth_crosses_the_wire() {
        let server = serve();
        let remote = RemoteBackend::connect(server.addr().to_string()).unwrap();
        let local = TableBackend::new(table());
        for q in [Query::all(), Query::all().and(0, 1).unwrap()] {
            assert_eq!(remote.exact_count(&q).unwrap(), local.exact_count(&q).unwrap());
            assert_eq!(
                remote.exact_sum(3, &q).unwrap().to_bits(),
                local.exact_sum(3, &q).unwrap().to_bits()
            );
        }
        assert!(remote.exact_sum(99, &Query::all()).is_err());
        server.shutdown();
    }
}
