//! Rule-level tests: each fixture below is modelled on a real pre-fix
//! violation this lint surfaced in the workspace (see the PR that
//! introduced `hdb-lint`), plus lexer-correctness pins — banned names
//! inside strings and comments must never be flagged.

use hdb_lint::rules::{check_crate, CrateSummary};
use hdb_lint::{lint_file, Config};

fn rules_hit(path: &str, src: &str) -> Vec<&'static str> {
    let cfg = Config::default();
    let mut rules: Vec<&'static str> =
        lint_file(path, src, &cfg).into_iter().map(|d| d.rule).collect();
    rules.dedup();
    rules
}

// ---------------------------------------------------------------------------
// Determinism

#[test]
fn d01_flags_hashmap_in_estimator_code() {
    // Pre-fix weight.rs: f64 fold over HashMap::values() — iteration
    // order (per-instance RandomState) reached the estimate bits.
    let src = r#"
        use std::collections::HashMap;
        struct Node { stats: HashMap<u16, f64> }
        fn total(n: &Node) -> f64 { n.stats.values().sum() }
    "#;
    assert_eq!(rules_hit("crates/core/src/weight.rs", src), vec!["HDB-D01"]);
}

#[test]
fn d01_is_scoped_to_result_affecting_crates() {
    let src = "use std::collections::HashMap; fn f() -> HashMap<u8, u8> { HashMap::new() }";
    assert!(rules_hit("crates/lint/src/engine.rs", src).is_empty());
}

#[test]
fn d01_respects_the_allowlist() {
    let cfg = Config::parse(
        "[allow.HDB-D01]\n\"crates/hidden-db/src/cache.rs\" = \"keyed lookups only\"",
    )
    .unwrap();
    let src = "use std::collections::HashMap; struct M { m: HashMap<u64, u64> }";
    assert!(lint_file("crates/hidden-db/src/cache.rs", src, &cfg).is_empty());
    assert!(!lint_file("crates/hidden-db/src/index.rs", src, &cfg).is_empty());
}

#[test]
fn o01_flags_wall_clock_outside_timing_scope() {
    let src = "fn now() -> std::time::Instant { std::time::Instant::now() }";
    assert_eq!(rules_hit("crates/core/src/engine.rs", src), vec!["HDB-O01"]);
    assert!(rules_hit("crates/bench/src/runner.rs", src).is_empty());
    assert!(rules_hit("crates/shims/criterion/src/lib.rs", src).is_empty());
}

#[test]
fn o01_exempts_only_the_clock_module_of_obs() {
    // obs/clock.rs is the one production wall-clock site (WallClock,
    // precise_wait); the rest of the obs module records pre-measured
    // nanos and must stay clock-free like any estimator code.
    let src = "fn f() { let _t = std::time::SystemTime::now(); }";
    assert!(rules_hit("crates/hidden-db/src/obs/clock.rs", src).is_empty());
    assert_eq!(rules_hit("crates/hidden-db/src/obs/registry.rs", src), vec!["HDB-O01"]);
    assert_eq!(rules_hit("crates/hidden-db/src/latency.rs", src), vec!["HDB-O01"]);
}

#[test]
fn o01_respects_the_allowlist() {
    let cfg = Config::parse(
        "[allow.HDB-O01]\n\"examples/parallel_engine.rs\" = \"demo prints wall-clock speedups\"",
    )
    .unwrap();
    let src = "fn f() { let _t = std::time::Instant::now(); }";
    assert!(lint_file("examples/parallel_engine.rs", src, &cfg).is_empty());
    assert!(!lint_file("examples/other.rs", src, &cfg).is_empty());
}

#[test]
fn d03_flags_entropy_rng_everywhere_but_shims() {
    let src = "fn mk() { let _r = rand::thread_rng(); }";
    assert_eq!(rules_hit("crates/core/src/size.rs", src), vec!["HDB-D03"]);
    assert_eq!(rules_hit("crates/bench/src/runner.rs", src), vec!["HDB-D03"]);
    assert!(rules_hit("crates/shims/rand/src/lib.rs", src).is_empty());
    let seeded = "fn mk() { let _r = StdRng::seed_from_u64(42); }";
    assert!(rules_hit("crates/core/src/size.rs", seeded).is_empty());
}

// ---------------------------------------------------------------------------
// Panic-safety

#[test]
fn p01_flags_expect_in_wire_decoder() {
    // Pre-fix wire.rs Dec::u32: a length-4 slice "cannot fail" — until a
    // truncated frame arrives over the socket.
    let src = r#"
        fn u32_at(buf: &[u8]) -> u32 {
            u32::from_le_bytes(buf[0..4].try_into().expect("len 4"))
        }
    "#;
    let hits = rules_hit("crates/hidden-db/src/wire.rs", src);
    assert!(hits.contains(&"HDB-P01"), "expect + range indexing must flag: {hits:?}");
}

#[test]
fn p01_flags_panic_macros_but_not_debug_assert() {
    let src = "fn f(x: u8) { if x > 7 { panic!(\"bad\") } }";
    assert_eq!(rules_hit("crates/server/src/lib.rs", src), vec!["HDB-P01"]);
    let dbg = "fn f(x: u8) { debug_assert!(x <= 7); }";
    assert!(rules_hit("crates/server/src/lib.rs", dbg).is_empty());
}

#[test]
fn p01_skips_test_code_and_other_paths() {
    let src = r#"
        fn ok() -> u8 { 1 }
        #[cfg(test)]
        mod tests {
            #[test]
            fn t() { assert_eq!(super::ok(), 1); Some(3).unwrap(); }
        }
    "#;
    assert!(rules_hit("crates/hidden-db/src/wire.rs", src).is_empty());
    // unwrap in a crate outside the panic scope is not P01's business.
    let elsewhere = "fn f() { Some(1).unwrap(); }";
    assert!(rules_hit("crates/core/src/agg.rs", elsewhere).is_empty());
}

#[test]
fn p01_range_indexing_only_inside_brackets() {
    let src = "fn f(b: &[u8], n: usize) -> &[u8] { &b[..n] }";
    assert_eq!(rules_hit("crates/hidden-db/src/wire.rs", src), vec!["HDB-P01"]);
    // A plain range expression (no indexing) is fine.
    let loop_src = "fn f(n: usize) { for _i in 0..n {} }";
    assert!(rules_hit("crates/hidden-db/src/wire.rs", loop_src).is_empty());
}

#[test]
fn p02_flags_as_casts_in_wire_framing_only() {
    // Pre-fix read_frame: `u32::from_le_bytes(header) as usize`.
    let src = "fn f(x: u32) -> usize { x as usize }";
    assert_eq!(rules_hit("crates/hidden-db/src/wire.rs", src), vec!["HDB-P02"]);
    assert!(rules_hit("crates/hidden-db/src/table.rs", src).is_empty());
    // Non-numeric `as` (imports, trait casts) is not a truncation risk.
    let import = "use std::collections::BTreeMap as Map; fn f(m: Map<u8, u8>) {}";
    assert!(rules_hit("crates/hidden-db/src/wire.rs", import).is_empty());
}

// ---------------------------------------------------------------------------
// Unsafe hygiene

#[test]
fn u01_requires_adjacent_safety_comment() {
    // Pre-fix par.rs: a raw-pointer deref whose justification lived only
    // in the function docs, not at the unsafe block.
    let bad = r#"
        fn run(ptr: *mut u8) {
            unsafe { *ptr = 1 };
        }
    "#;
    assert_eq!(rules_hit("crates/hidden-db/src/par.rs", bad), vec!["HDB-U01"]);
    let good = r#"
        fn run(ptr: *mut u8) {
            // SAFETY: caller guarantees ptr is valid and exclusively owned.
            unsafe { *ptr = 1 };
        }
    "#;
    assert!(rules_hit("crates/hidden-db/src/par.rs", good).is_empty());
}

#[test]
fn u01_comment_must_be_close() {
    let far = r#"
        // SAFETY: way up here.
        fn a() {}
        fn b() {}
        fn c() {}
        fn d() {}
        fn e() {}
        fn run(ptr: *mut u8) {
            unsafe { *ptr = 1 };
        }
    "#;
    assert_eq!(rules_hit("crates/hidden-db/src/par.rs", far), vec!["HDB-U01"]);
}

#[test]
fn u02_census_demands_forbid_when_no_unsafe() {
    let cfg = Config::default();
    let clean = CrateSummary {
        root_file: "crates/datagen/src/lib.rs".to_string(),
        unsafe_tokens: 0,
        has_forbid: false,
    };
    let diag = check_crate(&clean, &cfg).expect("must flag");
    assert_eq!(diag.rule, "HDB-U02");
    let pinned = CrateSummary { has_forbid: true, ..clean };
    assert!(check_crate(&pinned, &cfg).is_none());
    let has_unsafe = CrateSummary {
        root_file: "crates/hidden-db/src/lib.rs".to_string(),
        unsafe_tokens: 3,
        has_forbid: false,
    };
    assert!(check_crate(&has_unsafe, &cfg).is_none());
}

#[test]
fn u02_recognises_the_forbid_attribute_in_tokens() {
    use hdb_lint::lexer::lex;
    use hdb_lint::rules::has_forbid_unsafe;
    assert!(has_forbid_unsafe(&lex("//! docs\n#![forbid(unsafe_code)]\npub fn f() {}")));
    assert!(!has_forbid_unsafe(&lex("// #![forbid(unsafe_code)] in a comment only")));
    assert!(!has_forbid_unsafe(&lex("#![deny(unsafe_code)]")));
}

#[test]
fn u03_confines_extern_to_the_reactor_module() {
    // A raw FFI binding anywhere else scatters platform surface the
    // determinism contract cannot see.
    let src = r#"
        extern "C" {
            fn epoll_create1(flags: i32) -> i32;
        }
    "#;
    assert_eq!(rules_hit("crates/hidden-db/src/par.rs", src), vec!["HDB-U03"]);
    assert_eq!(rules_hit("crates/server/src/lib.rs", src), vec!["HDB-U03"]);
    // Tests are NOT exempt: FFI in a test is still FFI.
    let test_src = r#"
        #[cfg(test)]
        mod tests {
            extern "C" { fn getpid() -> i32; }
        }
    "#;
    assert_eq!(rules_hit("crates/core/src/size.rs", test_src), vec!["HDB-U03"]);
}

#[test]
fn u03_respects_the_reactor_allowlist() {
    let cfg = Config::parse(
        "[allow.HDB-U03]\n\"crates/hidden-db/src/reactor.rs\" = \"the reviewed FFI boundary\"",
    )
    .unwrap();
    let src = "extern \"C\" { fn poll(fds: *mut PollFd, n: u64, timeout: i32) -> i32; }";
    assert!(lint_file("crates/hidden-db/src/reactor.rs", src, &cfg).is_empty());
    assert!(!lint_file("crates/hidden-db/src/remote.rs", src, &cfg).is_empty());
}

#[test]
fn p01_scope_covers_the_reactor() {
    // The reactor sits on the server's event path; a panic there takes
    // the whole process down, so unwrap is banned like in wire code.
    let src = "fn f() { Some(1).unwrap(); }";
    assert_eq!(rules_hit("crates/hidden-db/src/reactor.rs", src), vec!["HDB-P01"]);
}

// ---------------------------------------------------------------------------
// Accounting

#[test]
fn a01_flags_backend_calls_off_the_charge_path() {
    // Pre-fix shape: an estimator probing the backend directly would
    // silently skip the query-cost ledger.
    let src = r#"
        fn sneak(b: &dyn Backend, q: &Query) -> usize {
            b.evaluate(q).len()
        }
    "#;
    assert_eq!(rules_hit("crates/core/src/size.rs", src), vec!["HDB-A01"]);
}

#[test]
fn a01_spares_tests_and_allowlisted_delegation() {
    let test_src = r#"
        #[cfg(test)]
        mod tests {
            fn ground_truth(b: &B, q: &Q) -> usize { b.evaluate(q).len() }
        }
    "#;
    assert!(rules_hit("crates/core/src/size.rs", test_src).is_empty());
    let cfg = Config::parse(
        "[allow.HDB-A01]\n\"crates/hidden-db/src/interface.rs\" = \"the charge path\"",
    )
    .unwrap();
    let src = "fn charge(b: &B, q: &Q) -> R { b.evaluate(q) }";
    assert!(lint_file("crates/hidden-db/src/interface.rs", src, &cfg).is_empty());
    // A fn *named* evaluate (definition, not `.call()`) is fine anywhere.
    let def = "fn evaluate(q: &Q) -> R { todo() }";
    assert!(rules_hit("crates/core/src/size.rs", def).is_empty());
}

// ---------------------------------------------------------------------------
// Lexer correctness: banned names in non-code positions never flag.

// ---------------------------------------------------------------------------
// Storage durability contract

#[test]
fn s01_flags_discarded_results_in_storage_code() {
    // The two swallow shapes a durability layer must never use on a
    // write/fsync result.
    let let_discard = "fn f(io: &dyn StorageIo) { let _ = io.sync(\"wal.log\"); }";
    let terminal_ok = "fn f(io: &dyn StorageIo) { io.append(\"wal.log\", b\"x\").ok(); }";
    assert_eq!(rules_hit("crates/hidden-db/src/storage/wal.rs", let_discard), vec!["HDB-S01"]);
    assert_eq!(
        rules_hit("crates/hidden-db/src/storage/persistent.rs", terminal_ok),
        vec!["HDB-S01"]
    );
    // Out of storage scope the same shapes are legal…
    assert!(rules_hit("crates/hidden-db/src/cache.rs", let_discard).is_empty());
    // …and non-terminal `.ok()` (a conversion feeding `?` or a match) is
    // legal even inside it.
    let converted = "fn f(s: &str) -> Option<u64> { s.parse().ok() }";
    assert!(rules_hit("crates/hidden-db/src/storage/snapshot.rs", converted).is_empty());
}

#[test]
fn s01_exempts_test_code_and_respects_the_allowlist() {
    let src = r#"
        #[cfg(test)]
        mod tests {
            #[test]
            fn t() { let _ = std::fs::remove_file("scratch"); }
        }
    "#;
    assert!(rules_hit("crates/hidden-db/src/storage/io.rs", src).is_empty());
    let cfg = Config::parse(
        "[allow.HDB-S01]\n\"crates/hidden-db/src/storage/io.rs\" = \"reviewed best-effort\"",
    )
    .unwrap();
    let live = "fn f(io: &dyn StorageIo) { let _ = io.sync(\"wal.log\"); }";
    assert!(lint_file("crates/hidden-db/src/storage/io.rs", live, &cfg).is_empty());
}

#[test]
fn p01_scope_covers_the_storage_layer() {
    // Disk bytes are untrusted input: a decoder unwrap in storage code
    // is the same crash vector as one in the wire decoders.
    let src = "fn f(b: &[u8]) -> u8 { b.first().copied().unwrap() }";
    assert_eq!(rules_hit("crates/hidden-db/src/storage/wal.rs", src), vec!["HDB-P01"]);
}

#[test]
fn banned_names_in_strings_and_comments_are_invisible() {
    let src = r###"
        // HashMap, Instant::now, unwrap(), thread_rng — just a comment.
        /* nested /* HashSet */ still a comment: b.evaluate(q) */
        fn f() -> &'static str {
            let _c = 'x';
            let _raw = r#"HashMap::new().unwrap() as usize"#;
            "SystemTime thread_rng panic! b[0..4] evaluate("
        }
    "###;
    assert!(rules_hit("crates/core/src/weight.rs", src).is_empty());
    assert!(rules_hit("crates/hidden-db/src/wire.rs", src).is_empty());
}

#[test]
fn diagnostics_carry_position_and_rule_id() {
    let src = "use std::collections::HashMap;\n";
    let diags = lint_file("crates/core/src/weight.rs", src, &Config::default());
    assert_eq!(diags.len(), 1);
    let d = &diags[0];
    assert_eq!((d.line, d.rule), (1, "HDB-D01"));
    assert!(d.col > 1);
    let shown = format!("{d}");
    assert!(
        shown.starts_with("crates/core/src/weight.rs:1:") && shown.contains("deny[HDB-D01]"),
        "rustc-style rendering, got: {shown}"
    );
}
