//! A small, self-contained Rust lexer — just enough structure for rule
//! matching to be sound.
//!
//! The rules in this crate match on *tokens*, never on raw text, so a
//! banned name inside a string literal, a `//` comment, a nested
//! `/* /* */ */` block comment, a raw string (`r#"…"#`), or a char
//! literal is never flagged. The lexer therefore must classify exactly
//! those forms correctly; everything else (precise number grammar,
//! operator gluing) can stay loose because the rules only inspect
//! identifier text and single-character punctuation adjacency.
//!
//! Every token carries a 1-based line and column so diagnostics point at
//! the offending source position in the familiar `file:line:col` shape.

/// What a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `unsafe`, `as`, …), including
    /// raw identifiers (`r#type` yields text `type`).
    Ident,
    /// One punctuation character (`.`, `(`, `[`, `!`, …).
    Punct,
    /// A string, raw string, byte string, or C string literal.
    Str,
    /// A character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// A numeric literal (integer or float, any base, with suffix).
    Num,
    /// A lifetime or loop label (`'a`, `'static`).
    Lifetime,
    /// A `//` comment (plain, `///`, or `//!`), text without newline.
    LineComment,
    /// A `/* … */` comment (nesting handled), text with delimiters.
    BlockComment,
}

/// One lexed token.
#[derive(Clone, Debug)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// The token's text. For [`TokenKind::Ident`] this is the identifier
    /// itself (raw-identifier prefix stripped); for comments and literals
    /// it is the raw source slice.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (bytes).
    pub col: u32,
}

impl Token {
    /// Whether this token is a comment (trivia for code-matching rules).
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Lexes `src` into tokens. Never fails: unterminated literals or
/// comments simply consume to end-of-input (rule matching degrades
/// gracefully on half-written code; the compiler rejects it anyway).
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    Lexer { src: src.as_bytes(), pos: 0, line: 1, col: 1 }.run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        let mut out = Vec::new();
        while let Some(&c) = self.src.get(self.pos) {
            let (line, col) = (self.line, self.col);
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => {
                    let text = self.take_line_comment();
                    out.push(Token { kind: TokenKind::LineComment, text, line, col });
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    let text = self.take_block_comment();
                    out.push(Token { kind: TokenKind::BlockComment, text, line, col });
                }
                b'"' => {
                    let text = self.take_string();
                    out.push(Token { kind: TokenKind::Str, text, line, col });
                }
                b'\'' => {
                    let (kind, text) = self.take_char_or_lifetime();
                    out.push(Token { kind, text, line, col });
                }
                c if c.is_ascii_digit() => {
                    let text = self.take_number();
                    out.push(Token { kind: TokenKind::Num, text, line, col });
                }
                c if c == b'_' || c.is_ascii_alphabetic() || c >= 0x80 => {
                    out.push(self.take_ident_like(line, col));
                }
                _ => {
                    self.bump();
                    out.push(Token {
                        kind: TokenKind::Punct,
                        text: (c as char).to_string(),
                        line,
                        col,
                    });
                }
            }
        }
        out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) {
        if self.src.get(self.pos) == Some(&b'\n') {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.pos += 1;
    }

    fn take_while(&mut self, start: usize, pred: impl Fn(u8) -> bool) -> String {
        while self.peek(0).is_some_and(&pred) {
            self.bump();
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn take_line_comment(&mut self) -> String {
        let start = self.pos;
        self.take_while(start, |c| c != b'\n')
    }

    fn take_block_comment(&mut self) -> String {
        let start = self.pos;
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => self.bump(),
                (None, _) => break, // unterminated: consume to EOF
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    /// A plain `"…"` string with escape handling (cursor on the `"`).
    fn take_string(&mut self) -> String {
        let start = self.pos;
        self.bump(); // opening quote
        loop {
            match self.peek(0) {
                Some(b'\\') => {
                    self.bump();
                    if self.peek(0).is_some() {
                        self.bump();
                    }
                }
                Some(b'"') => {
                    self.bump();
                    break;
                }
                Some(_) => self.bump(),
                None => break,
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    /// A raw string `r"…"` / `r#"…"#…` (cursor on the first `#` or `"`
    /// after the `r`/`br`/`cr` prefix, which the caller consumed).
    fn take_raw_string_body(&mut self, start: usize) -> String {
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) == Some(b'"') {
            self.bump();
            'scan: loop {
                match self.peek(0) {
                    Some(b'"') => {
                        // A closing quote must be followed by `hashes` #s.
                        for i in 0..hashes {
                            if self.peek(1 + i) != Some(b'#') {
                                self.bump();
                                continue 'scan;
                            }
                        }
                        for _ in 0..=hashes {
                            self.bump();
                        }
                        break;
                    }
                    Some(_) => self.bump(),
                    None => break,
                }
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime/label): a lifetime
    /// is a quote followed by an identifier not closed by another quote.
    fn take_char_or_lifetime(&mut self) -> (TokenKind, String) {
        let start = self.pos;
        let next = self.peek(1);
        let is_lifetime = next.is_some_and(|c| c == b'_' || c.is_ascii_alphabetic())
            && {
                // scan the identifier run after the quote
                let mut i = 2;
                while self.peek(i).is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric()) {
                    i += 1;
                }
                self.peek(i) != Some(b'\'') || i == 1
            };
        if is_lifetime {
            self.bump(); // quote
            let text = self.take_while(start, |c| c == b'_' || c.is_ascii_alphanumeric());
            return (TokenKind::Lifetime, text);
        }
        // char/byte literal with escapes
        self.bump(); // opening quote
        loop {
            match self.peek(0) {
                Some(b'\\') => {
                    self.bump();
                    if self.peek(0).is_some() {
                        self.bump();
                    }
                }
                Some(b'\'') => {
                    self.bump();
                    break;
                }
                Some(_) => self.bump(),
                None => break,
            }
        }
        (TokenKind::Char, String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    /// A numeric literal: digits, base prefixes, `_` separators, suffixes,
    /// a fraction part (only when followed by a digit, so `1..2` stays a
    /// range), and exponents.
    fn take_number(&mut self) -> String {
        let start = self.pos;
        self.bump();
        loop {
            match self.peek(0) {
                Some(c) if c.is_ascii_alphanumeric() || c == b'_' => {
                    // exponent sign: 1e-3 / 2E+5
                    let is_exp = (c == b'e' || c == b'E')
                        && matches!(self.peek(1), Some(b'+') | Some(b'-'))
                        && self.peek(2).is_some_and(|d| d.is_ascii_digit());
                    self.bump();
                    if is_exp {
                        self.bump(); // the sign
                    }
                }
                Some(b'.') if self.peek(1).is_some_and(|d| d.is_ascii_digit()) => {
                    self.bump();
                }
                _ => break,
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    /// An identifier, keyword, raw identifier, or a string-ish literal
    /// introduced by a prefix (`r"…"`, `r#"…"#`, `b"…"`, `b'x'`, `br#`,
    /// `c"…"`).
    fn take_ident_like(&mut self, line: u32, col: u32) -> Token {
        let start = self.pos;
        let first = self.peek(0).unwrap_or(0);
        // r"…" | r#"…" | b"…" | br"…" | c"…" | cr#"…" | b'…'
        let prefix2 = self.peek(1);
        let is_str_prefix = |c: u8| c == b'"' || c == b'#';
        match (first, prefix2) {
            (b'r' | b'c', Some(p)) if is_str_prefix(p) => {
                self.bump();
                // `r#ident` is a raw identifier, not a raw string: only
                // treat as a string when a quote follows the #-run.
                if p == b'"' || self.raw_hashes_end_in_quote() {
                    let text = self.take_raw_string_body(start);
                    return Token { kind: TokenKind::Str, text, line, col };
                }
                self.bump(); // the '#'
                let text =
                    self.take_while(self.pos, |c| c == b'_' || c.is_ascii_alphanumeric());
                return Token { kind: TokenKind::Ident, text, line, col };
            }
            (b'b', Some(b'"')) => {
                self.bump();
                let text = self.take_string();
                let text = format!("b{text}");
                return Token { kind: TokenKind::Str, text, line, col };
            }
            (b'b', Some(b'\'')) => {
                self.bump();
                let (_, text) = self.take_char_or_lifetime();
                return Token { kind: TokenKind::Char, text, line, col };
            }
            (b'b', Some(b'r')) if self.peek(2).is_some_and(is_str_prefix) => {
                self.bump();
                self.bump();
                let text = self.take_raw_string_body(start);
                return Token { kind: TokenKind::Str, text, line, col };
            }
            _ => {}
        }
        let text = self.take_while(start, |c| c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80);
        Token { kind: TokenKind::Ident, text, line, col }
    }

    /// After an `r` / `cr`, with the cursor on a `#`: does the run of
    /// `#`s end in a `"` (raw string) rather than an identifier (raw
    /// identifier)?
    fn raw_hashes_end_in_quote(&self) -> bool {
        let mut i = 0;
        while self.peek(i) == Some(b'#') {
            i += 1;
        }
        self.peek(i) == Some(b'"')
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn banned_names_inside_strings_are_not_idents() {
        let src = r#"let x = "HashMap::new() and unwrap()";"#;
        assert_eq!(idents(src), vec!["let", "x"]);
    }

    #[test]
    fn banned_names_inside_raw_strings_are_not_idents() {
        let src = r###"let x = r#"an "unsafe" HashMap"# ;"###;
        assert_eq!(idents(src), vec!["let", "x"]);
        let src = r#"let y = r"unwrap()";"#;
        assert_eq!(idents(src), vec!["let", "y"]);
    }

    #[test]
    fn banned_names_inside_comments_are_not_idents() {
        let src = "// HashMap here\nlet a = 1; /* unwrap() /* nested unsafe */ still comment */ let b = 2;";
        assert_eq!(idents(src), vec!["let", "a", "let", "b"]);
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let toks = lex("/* a /* b */ c */ HashMap");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].kind, TokenKind::BlockComment);
        assert_eq!(toks[1].text, "HashMap");
        assert_eq!(toks[1].col, 19);
    }

    #[test]
    fn char_literals_and_lifetimes_disambiguate() {
        let src = "let c: char = '\\''; fn f<'a>(x: &'a str) {} let q = 'x';";
        let toks = lex(src);
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Char).collect();
        let lifetimes: Vec<_> =
            toks.iter().filter(|t| t.kind == TokenKind::Lifetime).collect();
        assert_eq!(chars.len(), 2, "{toks:?}");
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(lifetimes[0].text, "'a");
    }

    #[test]
    fn quoted_unsafe_in_char_run_is_not_an_ident() {
        // 'u' is a char literal, not the start of an identifier
        assert_eq!(idents("let x = 'u';"), vec!["let", "x"]);
    }

    #[test]
    fn raw_identifiers_keep_their_name() {
        assert_eq!(idents("let r#type = 3;"), vec!["let", "type"]);
    }

    #[test]
    fn byte_strings_are_literals() {
        let src = "let x = b\"unwrap\"; let y = br#\"expect\"#;";
        assert_eq!(idents(src), vec!["let", "x", "let", "y"]);
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let toks = lex("a\n  bb\n");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn ranges_do_not_swallow_floats() {
        let toks = lex("x[1..2] + 1.5 + 0x_ff + 1e-3");
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["1", "2", "1.5", "0x_ff", "1e-3"]);
    }
}
