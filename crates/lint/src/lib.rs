//! `hdb-lint`: the workspace's static-analysis pass.
//!
//! The acceptance bar for every PR in this repro is *bit-identical
//! results* across backends, shard counts, and worker counts, plus a
//! server that cannot be crashed by a malformed frame. Those are
//! dynamic properties; this crate makes the underlying coding contracts
//! static. It ships its own small Rust lexer (the workspace has no
//! crates.io access) so rules match on real tokens — a `"HashMap"`
//! inside a string literal or a comment is never flagged.
//!
//! Layers:
//! - [`lexer`] — tokens out of Rust source, skipping strings, raw
//!   strings, char literals, and nested block comments;
//! - [`config`] — the `lint.toml` allowlist (minimal TOML subset);
//! - [`rules`] — the eight `HDB-*` rules over token streams;
//! - [`engine`] — workspace walking and per-crate aggregation.
//!
//! Run it as `cargo run -p hdb-lint -- --workspace`.

#![forbid(unsafe_code)]

pub mod config;
pub mod engine;
pub mod lexer;
pub mod rules;

pub use config::Config;
pub use engine::{lint_file, lint_workspace};
pub use rules::Diagnostic;
