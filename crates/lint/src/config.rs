//! `lint.toml`: per-rule allowlists with mandatory reasons.
//!
//! The rules are deny-by-default; the only way to quiet one is an
//! explicit entry here, and every entry must say *why* — the allowlist
//! is the audit trail of every place the contracts are intentionally
//! relaxed (see `docs/ARCHITECTURE.md` §Correctness tooling).
//!
//! The format is a hand-rolled subset of TOML (the workspace has no
//! crates.io access): `[allow.<RULE-ID>]` tables whose entries map a
//! workspace-relative path to a reason string:
//!
//! ```toml
//! [allow.HDB-D01]
//! "crates/hidden-db/src/cache.rs" = "memo shards are keyed lookups only"
//! ```
//!
//! Supported syntax: table headers in `[…]` (dotted, possibly quoted
//! segments), `key = "value"` pairs with plain or quoted keys, basic
//! strings with `\"`/`\\`/`\n`/`\t` escapes, `#` comments, and blank
//! lines. Anything else is a hard error — a config that does not parse
//! must fail the lint run loudly, not silently allow everything.

use std::collections::BTreeMap;

/// Parsed allowlists: rule id → (path → reason).
#[derive(Clone, Debug, Default)]
pub struct Config {
    allow: BTreeMap<String, BTreeMap<String, String>>,
}

impl Config {
    /// Whether `path` (workspace-relative, `/`-separated) is allowlisted
    /// for `rule`.
    #[must_use]
    pub fn is_allowed(&self, rule: &str, path: &str) -> bool {
        self.allow.get(rule).is_some_and(|paths| paths.contains_key(path))
    }

    /// All allowlisted (path, reason) pairs for `rule`.
    #[must_use]
    pub fn allowed_paths(&self, rule: &str) -> Vec<(&str, &str)> {
        self.allow
            .get(rule)
            .map(|m| m.iter().map(|(p, r)| (p.as_str(), r.as_str())).collect())
            .unwrap_or_default()
    }

    /// Parses the `lint.toml` subset described in the module docs.
    ///
    /// # Errors
    /// A human-readable message naming the offending line.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut config = Self::default();
        // Current table path, e.g. ["allow", "HDB-D01"].
        let mut table: Vec<String> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let Some(inner) = rest.strip_suffix(']') else {
                    return Err(format!("lint.toml:{lineno}: unterminated table header"));
                };
                table = parse_dotted_key(inner)
                    .map_err(|e| format!("lint.toml:{lineno}: {e}"))?;
                continue;
            }
            let Some(eq) = find_unquoted(line, '=') else {
                return Err(format!("lint.toml:{lineno}: expected `key = \"value\"`"));
            };
            let key = parse_key(line[..eq].trim())
                .map_err(|e| format!("lint.toml:{lineno}: {e}"))?;
            let value = parse_string(line[eq + 1..].trim())
                .map_err(|e| format!("lint.toml:{lineno}: {e}"))?;
            match table.as_slice() {
                [allow, rule] if allow == "allow" => {
                    config
                        .allow
                        .entry(rule.clone())
                        .or_default()
                        .insert(key, value);
                }
                _ => {
                    return Err(format!(
                        "lint.toml:{lineno}: entries must live under an [allow.<RULE-ID>] table, \
                         found table {table:?}"
                    ));
                }
            }
        }
        Ok(config)
    }
}

/// Strips a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    match find_unquoted(line, '#') {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Position of the first `needle` outside any `"…"` string.
fn find_unquoted(line: &str, needle: char) -> Option<usize> {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            c if c == needle && !in_str => return Some(i),
            _ => {}
        }
    }
    None
}

/// A dotted table path: `allow.HDB-D01` or `allow."odd.id"`.
fn parse_dotted_key(s: &str) -> Result<Vec<String>, String> {
    s.split('.').map(|seg| parse_key(seg.trim())).collect()
}

/// A single key: bare (`A-Za-z0-9_-`) or quoted.
fn parse_key(s: &str) -> Result<String, String> {
    if s.starts_with('"') {
        return parse_string(s);
    }
    if !s.is_empty()
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        return Ok(s.to_string());
    }
    Err(format!("invalid key `{s}` (bare keys are [A-Za-z0-9_-]+; quote anything else)"))
}

/// A basic `"…"` string with a small escape set.
fn parse_string(s: &str) -> Result<String, String> {
    let Some(body) = s.strip_prefix('"').and_then(|r| r.strip_suffix('"')) else {
        return Err(format!("expected a \"quoted string\", found `{s}`"));
    };
    let mut out = String::with_capacity(body.len());
    let mut chars = body.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            other => return Err(format!("unsupported escape `\\{}`", other.unwrap_or(' '))),
        }
    }
    // A lone interior quote means the strip_suffix above matched an
    // escaped quote; reject rather than silently mis-parse.
    if body.ends_with('\\') && !body.ends_with("\\\\") {
        return Err("string ends in an unfinished escape".to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_allow_tables() {
        let cfg = Config::parse(
            r##"
# comment
[allow.HDB-D01]
"crates/hidden-db/src/cache.rs" = "keyed lookups only" # trailing comment

[allow.HDB-P01]
"crates/server/src/main.rs" = "self-test binary: panics are the failure report"
"##,
        )
        .unwrap();
        assert!(cfg.is_allowed("HDB-D01", "crates/hidden-db/src/cache.rs"));
        assert!(!cfg.is_allowed("HDB-D01", "crates/server/src/main.rs"));
        assert!(cfg.is_allowed("HDB-P01", "crates/server/src/main.rs"));
        assert_eq!(
            cfg.allowed_paths("HDB-D01"),
            vec![("crates/hidden-db/src/cache.rs", "keyed lookups only")]
        );
    }

    #[test]
    fn rejects_entries_outside_allow_tables() {
        assert!(Config::parse("x = \"y\"").is_err());
        assert!(Config::parse("[other]\nx = \"y\"").is_err());
        assert!(Config::parse("[allow.A.B]\nx = \"y\"").is_err());
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Config::parse("[allow.R\n").is_err());
        assert!(Config::parse("[allow.R]\nkey value").is_err());
        assert!(Config::parse("[allow.R]\nkey = unquoted").is_err());
        assert!(Config::parse("[allow.R]\nbad key! = \"v\"").is_err());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let cfg = Config::parse("[allow.R]\n\"a#b.rs\" = \"uses # in name\"").unwrap();
        assert!(cfg.is_allowed("R", "a#b.rs"));
    }

    #[test]
    fn escapes_round_trip() {
        let cfg =
            Config::parse("[allow.R]\n\"p.rs\" = \"say \\\"hi\\\" and \\\\ back\"").unwrap();
        assert_eq!(cfg.allowed_paths("R")[0].1, "say \"hi\" and \\ back");
    }

    #[test]
    fn empty_config_allows_nothing() {
        let cfg = Config::parse("").unwrap();
        assert!(!cfg.is_allowed("HDB-D01", "anything.rs"));
    }
}
