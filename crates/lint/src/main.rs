//! The `hdb-lint` binary: `cargo run -p hdb-lint -- --workspace`.
//!
//! Prints rustc-style `file:line:col: deny[RULE-ID]: message`
//! diagnostics and exits nonzero when any violation is found, so it
//! gates CI the same way `cargo clippy -- -D warnings` does.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};

use hdb_lint::{lint_workspace, Config};

struct Opts {
    root: PathBuf,
    config: Option<PathBuf>,
    workspace: bool,
}

fn parse_opts() -> Opts {
    let mut opts = Opts { root: PathBuf::from("."), config: None, workspace: false };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--workspace" => opts.workspace = true,
            "--root" => opts.root = PathBuf::from(value("--root")),
            "--config" => opts.config = Some(PathBuf::from(value("--config"))),
            "--help" | "-h" => {
                println!(
                    "usage: hdb-lint --workspace [--root DIR] [--config lint.toml]\n\n\
                     Lints every .rs file under DIR (default: the nearest ancestor\n\
                     containing lint.toml, else the current directory) against the\n\
                     HDB-* contract rules. Exits 1 on violations."
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// Walks up from the current directory to a `lint.toml`, so the tool
/// works from any crate subdirectory (like `cargo` finds its workspace).
fn find_root(start: &Path) -> PathBuf {
    let mut dir = match start.canonicalize() {
        Ok(d) => d,
        Err(_) => return start.to_path_buf(),
    };
    loop {
        if dir.join("lint.toml").exists() {
            return dir;
        }
        if !dir.pop() {
            return start.to_path_buf();
        }
    }
}

fn main() {
    let opts = parse_opts();
    if !opts.workspace {
        eprintln!("hdb-lint: pass --workspace to lint the tree (see --help)");
        std::process::exit(2);
    }
    let root = find_root(&opts.root);
    let config_path = opts.config.clone().unwrap_or_else(|| root.join("lint.toml"));
    let config = match std::fs::read_to_string(&config_path) {
        Ok(text) => match Config::parse(&text) {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("hdb-lint: {e}");
                std::process::exit(2);
            }
        },
        // No allowlist file at all: deny-by-default with zero escapes.
        Err(_) => Config::default(),
    };
    match lint_workspace(&root, &config) {
        Ok(diags) if diags.is_empty() => {
            println!("hdb-lint: clean ({} allowlist file)", config_path.display());
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            eprintln!("hdb-lint: {} violation(s)", diags.len());
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("hdb-lint: {e}");
            std::process::exit(2);
        }
    }
}
