//! The rule set: machine-checked statements of the workspace's
//! determinism, panic-safety, unsafe-hygiene, and accounting contracts.
//!
//! Every rule is deny-by-default inside its scope; the only escape hatch
//! is a reasoned entry in `lint.toml` (see [`crate::config`]). Rule IDs
//! are stable — they appear in diagnostics, in the allowlist, and in
//! `docs/ARCHITECTURE.md` §Correctness tooling:
//!
//! | id        | contract |
//! |-----------|----------|
//! | `HDB-D01` | no `HashMap`/`HashSet` in result-affecting crates |
//! | `HDB-D03` | no entropy-seeded RNG construction anywhere |
//! | `HDB-O01` | wall-clock reads confined to `obs/clock.rs` + timing crates |
//! | `HDB-P01` | no panic paths in wire decoders / server connection code |
//! | `HDB-P02` | no `as` numeric casts in wire framing |
//! | `HDB-U01` | every `unsafe` needs an adjacent `// SAFETY:` comment |
//! | `HDB-U02` | crates with zero `unsafe` must `#![forbid(unsafe_code)]` |
//! | `HDB-U03` | no `extern` FFI declarations outside the reactor module |
//! | `HDB-A01` | backend `evaluate*` calls only on the charge path |
//! | `HDB-S01` | no discarded `Result`s (`let _ =`, `.ok();`) in storage code |

use crate::config::Config;
use crate::lexer::{Token, TokenKind};

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Stable rule id (`HDB-D01`, …).
    pub rule: &'static str,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: deny[{}]: {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// A lexed file plus the precomputed views the rules need.
pub struct FileContext<'a> {
    /// Workspace-relative `/`-separated path.
    pub path: &'a str,
    /// All tokens, comments included.
    pub tokens: &'a [Token],
    /// Indices into `tokens` of non-comment tokens (code view).
    pub code: Vec<usize>,
    /// Line ranges (1-based, inclusive) covered by `#[cfg(test)]` items.
    pub test_ranges: Vec<(u32, u32)>,
}

impl<'a> FileContext<'a> {
    /// Builds the context for one lexed file.
    #[must_use]
    pub fn new(path: &'a str, tokens: &'a [Token]) -> Self {
        let code: Vec<usize> =
            (0..tokens.len()).filter(|&i| !tokens[i].is_comment()).collect();
        let test_ranges = find_test_ranges(tokens, &code);
        Self { path, tokens, code, test_ranges }
    }

    /// Whether `line` falls inside a `#[cfg(test)]` item.
    #[must_use]
    pub fn in_test_code(&self, line: u32) -> bool {
        self.test_ranges.iter().any(|&(lo, hi)| (lo..=hi).contains(&line))
    }

    /// The code token at code-index `ci`.
    fn code_tok(&self, ci: usize) -> Option<&Token> {
        self.code.get(ci).map(|&i| &self.tokens[i])
    }

    /// Whether the code token at `ci` has the given punct text.
    fn punct_at(&self, ci: usize, p: &str) -> bool {
        self.code_tok(ci)
            .is_some_and(|t| t.kind == TokenKind::Punct && t.text == p)
    }
}

/// Scans `#[cfg(test)]`-attributed items and returns their line spans.
///
/// The pattern matched is the attribute token run `# [ cfg ( test ) ]`
/// followed (possibly after more attributes) by an item whose body is the
/// next `{ … }` block; the span covers attribute through closing brace.
/// This intentionally over-approximates (any `cfg(test)` item, not just
/// `mod tests`) — over-approximation only *relaxes* rules that skip test
/// code, never tightens them.
fn find_test_ranges(tokens: &[Token], code: &[usize]) -> Vec<(u32, u32)> {
    let tok = |ci: usize| -> Option<&Token> { code.get(ci).map(|&i| &tokens[i]) };
    let is = |ci: usize, kind: TokenKind, text: &str| {
        tok(ci).is_some_and(|t| t.kind == kind && t.text == text)
    };
    let mut ranges = Vec::new();
    let mut ci = 0;
    while ci < code.len() {
        let is_cfg_test = is(ci, TokenKind::Punct, "#")
            && is(ci + 1, TokenKind::Punct, "[")
            && is(ci + 2, TokenKind::Ident, "cfg")
            && is(ci + 3, TokenKind::Punct, "(")
            && is(ci + 4, TokenKind::Ident, "test")
            && is(ci + 5, TokenKind::Punct, ")")
            && is(ci + 6, TokenKind::Punct, "]");
        if !is_cfg_test {
            ci += 1;
            continue;
        }
        let start_line = tok(ci).map_or(1, |t| t.line);
        // Find the item's opening brace, skipping anything that is not a
        // brace or a statement terminator (`#[cfg(test)] use x;` has no
        // body — then the span is just that line).
        let mut j = ci + 7;
        let mut open = None;
        while let Some(t) = tok(j) {
            if t.kind == TokenKind::Punct && t.text == "{" {
                open = Some(j);
                break;
            }
            if t.kind == TokenKind::Punct && t.text == ";" {
                break;
            }
            j += 1;
        }
        let Some(open) = open else {
            let end = tok(j).or_else(|| tok(ci)).map_or(start_line, |t| t.line);
            ranges.push((start_line, end));
            ci = j.max(ci + 7);
            continue;
        };
        // Match braces to the item's end.
        let mut depth = 0usize;
        let mut end_line = start_line;
        let mut k = open;
        while let Some(t) = tok(k) {
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            end_line = t.line;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            end_line = t.line;
            k += 1;
        }
        ranges.push((start_line, end_line));
        ci = k + 1;
    }
    ranges
}

/// Emits a diagnostic unless `path` is allowlisted for `rule`.
fn emit(
    out: &mut Vec<Diagnostic>,
    cfg: &Config,
    ctx: &FileContext<'_>,
    rule: &'static str,
    tok: &Token,
    message: String,
) {
    if cfg.is_allowed(rule, ctx.path) {
        return;
    }
    out.push(Diagnostic {
        path: ctx.path.to_string(),
        line: tok.line,
        col: tok.col,
        rule,
        message,
    });
}

// ---------------------------------------------------------------------------
// Scopes

/// Result-affecting crates: estimator maths, statistics, and the
/// hidden-DB evaluation substrate. Randomized iteration order here can
/// change emitted bits across *runs* (std's `RandomState` reseeds per
/// process), which the bit-identicality contract forbids.
fn in_determinism_scope(path: &str) -> bool {
    ["crates/core/", "crates/stats/", "crates/hidden-db/", "crates/server/"]
        .iter()
        .any(|p| path.starts_with(p))
}

/// Files allowed to read wall clocks: the bench harness, the criterion
/// shim, and the one reviewed adapter behind the `Clock` trait
/// (`obs/clock.rs` — everything observability times flows through it,
/// so determinism suites can substitute `ManualClock`). Everything else
/// must stay clock-free so seeded runs reproduce bit-for-bit.
fn in_timing_scope(path: &str) -> bool {
    path.starts_with("crates/bench/")
        || path.starts_with("crates/shims/criterion/")
        || path == "crates/hidden-db/src/obs/clock.rs"
}

/// Wire decoders and server connection paths: code fed by untrusted
/// bytes, where a panic is a remote crash vector. The storage layer is
/// in scope too — it decodes untrusted *disk* bytes (a torn tail or a
/// flipped bit must degrade typed, never crash recovery).
fn in_panic_scope(path: &str) -> bool {
    [
        "crates/hidden-db/src/wire.rs",
        "crates/hidden-db/src/remote.rs",
        "crates/hidden-db/src/federated.rs",
        "crates/hidden-db/src/reactor.rs",
        "crates/server/src/lib.rs",
        "crates/server/src/main.rs",
    ]
    .contains(&path)
        || in_storage_scope(path)
}

/// The durability layer: every write/fsync result decides whether the
/// store may keep accepting writes, so none may be discarded.
fn in_storage_scope(path: &str) -> bool {
    path.starts_with("crates/hidden-db/src/storage/")
}

/// Wire framing: where every numeric narrowing must be a checked
/// `try_from` (a silent `as` truncation corrupts frames).
fn in_cast_scope(path: &str) -> bool {
    path == "crates/hidden-db/src/wire.rs"
}

// ---------------------------------------------------------------------------
// Per-file rules

/// Runs every per-file rule over one lexed file.
#[must_use]
pub fn check_file(ctx: &FileContext<'_>, cfg: &Config) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    rule_d01_hash_collections(ctx, cfg, &mut out);
    rule_o01_wall_clock(ctx, cfg, &mut out);
    rule_d03_entropy_rng(ctx, cfg, &mut out);
    rule_p01_panic_paths(ctx, cfg, &mut out);
    rule_p02_wire_casts(ctx, cfg, &mut out);
    rule_u01_safety_comments(ctx, cfg, &mut out);
    rule_u03_ffi_confinement(ctx, cfg, &mut out);
    rule_a01_accounting(ctx, cfg, &mut out);
    rule_s01_discarded_results(ctx, cfg, &mut out);
    out
}

/// HDB-D01: `HashMap`/`HashSet` are banned in result-affecting crates.
/// `RandomState` gives every map instance its own iteration order; any
/// fold, merge, or RNG-consuming loop over it diverges across runs.
/// Applies to test code too — pinned test values must also reproduce.
fn rule_d01_hash_collections(ctx: &FileContext<'_>, cfg: &Config, out: &mut Vec<Diagnostic>) {
    if !in_determinism_scope(ctx.path) {
        return;
    }
    for &i in &ctx.code {
        let t = &ctx.tokens[i];
        if t.kind == TokenKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            emit(
                out,
                cfg,
                ctx,
                "HDB-D01",
                t,
                format!(
                    "{} has randomized iteration order; use BTreeMap/BTreeSet or a sorted \
                     structure in result-affecting code",
                    t.text
                ),
            );
        }
    }
}

/// HDB-O01 (supersedes HDB-D02): wall-clock reads (`Instant`,
/// `SystemTime`) outside the bench harness, the criterion shim, and the
/// observability clock adapter (`obs/clock.rs`). Clocks in estimator
/// code leak scheduling into results; production timing must flow
/// through the `Clock` trait so tests can substitute `ManualClock` and
/// stay deterministic.
fn rule_o01_wall_clock(ctx: &FileContext<'_>, cfg: &Config, out: &mut Vec<Diagnostic>) {
    if in_timing_scope(ctx.path) {
        return;
    }
    for &i in &ctx.code {
        let t = &ctx.tokens[i];
        if t.kind == TokenKind::Ident && (t.text == "Instant" || t.text == "SystemTime") {
            emit(
                out,
                cfg,
                ctx,
                "HDB-O01",
                t,
                format!(
                    "{} is a wall-clock read; only crates/bench, the criterion shim, and \
                     obs/clock.rs may touch wall clocks — take an Arc<dyn Clock> instead \
                     (allowlist a reviewed timing site otherwise)",
                    t.text
                ),
            );
        }
    }
}

/// HDB-D03: entropy-seeded RNG construction. All randomness flows from
/// `StdRng::seed_from_u64` so every run is replayable from its seed.
fn rule_d03_entropy_rng(ctx: &FileContext<'_>, cfg: &Config, out: &mut Vec<Diagnostic>) {
    const BANNED: &[&str] =
        &["thread_rng", "from_entropy", "from_os_rng", "OsRng", "ThreadRng", "getrandom"];
    if ctx.path.starts_with("crates/shims/") {
        return; // the shims define the RNG surface itself
    }
    for &i in &ctx.code {
        let t = &ctx.tokens[i];
        if t.kind == TokenKind::Ident && BANNED.contains(&t.text.as_str()) {
            emit(
                out,
                cfg,
                ctx,
                "HDB-D03",
                t,
                format!(
                    "{} draws OS entropy; construct RNGs with StdRng::seed_from_u64 so runs \
                     replay from their seed",
                    t.text
                ),
            );
        }
    }
}

/// HDB-P01: panic paths in wire decoders and server connection code:
/// `unwrap()` / `expect()` / `panic!` / `unreachable!` / `todo!` /
/// `unimplemented!` / `assert*!` and range-indexing `buf[a..b]` (a typed
/// `HdbError` or a checked `.get(..)` is required — these functions eat
/// untrusted bytes). Test code is exempt.
fn rule_p01_panic_paths(ctx: &FileContext<'_>, cfg: &Config, out: &mut Vec<Diagnostic>) {
    const PANIC_MACROS: &[&str] =
        &["panic", "unreachable", "todo", "unimplemented", "assert", "assert_eq", "assert_ne"];
    if !in_panic_scope(ctx.path) {
        return;
    }
    let mut bracket_stack: Vec<&'static str> = Vec::new();
    for (ci, &i) in ctx.code.iter().enumerate() {
        let t = &ctx.tokens[i];
        if ctx.in_test_code(t.line) {
            continue;
        }
        match t.kind {
            TokenKind::Ident => {
                let next_is = |p: &str| ctx.punct_at(ci + 1, p);
                if (t.text == "unwrap" || t.text == "expect")
                    && ctx.punct_at(ci.wrapping_sub(1), ".")
                    && next_is("(")
                {
                    emit(
                        out,
                        cfg,
                        ctx,
                        "HDB-P01",
                        t,
                        format!(
                            ".{}() panics on the error path; return a typed HdbError instead",
                            t.text
                        ),
                    );
                } else if PANIC_MACROS.contains(&t.text.as_str()) && next_is("!") {
                    // `debug_assert!` is a distinct ident and stays legal:
                    // it vanishes in release builds and pins invariants in
                    // debug CI.
                    emit(
                        out,
                        cfg,
                        ctx,
                        "HDB-P01",
                        t,
                        format!("{}! panics; surface a typed HdbError instead", t.text),
                    );
                }
            }
            TokenKind::Punct => match t.text.as_str() {
                "[" => bracket_stack.push("["),
                "]" => {
                    bracket_stack.pop();
                }
                // `..` inside `[ ]`: range indexing, which panics when
                // out of bounds. (The last guard reports only on the
                // first dot of the pair.)
                "." if !bracket_stack.is_empty()
                    && ctx.punct_at(ci + 1, ".")
                    && !ctx.punct_at(ci.wrapping_sub(1), ".") =>
                {
                    emit(
                        out,
                        cfg,
                        ctx,
                        "HDB-P01",
                        t,
                        "range indexing `[a..b]` panics out of bounds; use \
                         `.get(a..b)` with a typed error"
                            .to_string(),
                    );
                }
                _ => {}
            },
            _ => {}
        }
    }
}

/// HDB-P02: `as` numeric casts in wire framing. `as` silently truncates;
/// a length that does not fit must be a typed error, so framing uses
/// checked `try_from` exclusively.
fn rule_p02_wire_casts(ctx: &FileContext<'_>, cfg: &Config, out: &mut Vec<Diagnostic>) {
    const NUMERIC: &[&str] = &[
        "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128",
        "isize", "f32", "f64",
    ];
    if !in_cast_scope(ctx.path) {
        return;
    }
    for (ci, &i) in ctx.code.iter().enumerate() {
        let t = &ctx.tokens[i];
        if ctx.in_test_code(t.line) || t.kind != TokenKind::Ident || t.text != "as" {
            continue;
        }
        if ctx
            .code_tok(ci + 1)
            .is_some_and(|n| n.kind == TokenKind::Ident && NUMERIC.contains(&n.text.as_str()))
        {
            emit(
                out,
                cfg,
                ctx,
                "HDB-P02",
                t,
                "`as` numeric casts silently truncate; wire framing must use checked \
                 try_from with a typed error"
                    .to_string(),
            );
        }
    }
}

/// HDB-U01: every `unsafe` token needs a comment containing `SAFETY`
/// within the six preceding lines (doc comments count). Applies
/// everywhere, tests included — a test's unsafe is no safer.
fn rule_u01_safety_comments(ctx: &FileContext<'_>, cfg: &Config, out: &mut Vec<Diagnostic>) {
    /// How far above an `unsafe` token its SAFETY comment may sit.
    const WINDOW: u32 = 6;
    for &i in &ctx.code {
        let t = &ctx.tokens[i];
        if t.kind != TokenKind::Ident || t.text != "unsafe" {
            continue;
        }
        let covered = ctx.tokens[..i]
            .iter()
            .rev()
            .take_while(|c| t.line - c.line.min(t.line) <= WINDOW)
            .any(|c| c.is_comment() && c.text.contains("SAFETY"));
        if !covered {
            emit(
                out,
                cfg,
                ctx,
                "HDB-U01",
                t,
                format!(
                    "unsafe without an adjacent `// SAFETY:` comment (within {WINDOW} lines \
                     above); document why this is sound"
                ),
            );
        }
    }
}

/// HDB-U03: `extern` declarations (FFI blocks, `extern "C"` fns) are
/// confined to the reactor module, the one reviewed place the workspace
/// touches the OS below std. Applies everywhere, tests included — a
/// stray binding elsewhere would scatter platform surface the
/// determinism contract cannot see. The only legitimate site is
/// enumerated in `lint.toml`.
fn rule_u03_ffi_confinement(ctx: &FileContext<'_>, cfg: &Config, out: &mut Vec<Diagnostic>) {
    for &i in &ctx.code {
        let t = &ctx.tokens[i];
        if t.kind == TokenKind::Ident && t.text == "extern" {
            emit(
                out,
                cfg,
                ctx,
                "HDB-U03",
                t,
                "`extern` FFI declarations are confined to the reactor module; \
                 route OS access through hdb_interface::reactor"
                    .to_string(),
            );
        }
    }
}

/// HDB-A01: backend `evaluate` / `evaluate_from` / `classify_from` method
/// calls outside the accounting charge path. Every probe must flow
/// through `HiddenDb`'s validate → charge → round-trip → memo → tally
/// pipeline or the query-cost numbers lie; the legitimate call sites
/// (the charge path itself, backend delegation, the server's owner-side
/// execution) are enumerated in `lint.toml`. Test code is exempt (tests
/// legitimately compute ground truth directly).
fn rule_a01_accounting(ctx: &FileContext<'_>, cfg: &Config, out: &mut Vec<Diagnostic>) {
    const CHARGED: &[&str] = &["evaluate", "evaluate_from", "classify_from"];
    for (ci, &i) in ctx.code.iter().enumerate() {
        let t = &ctx.tokens[i];
        if t.kind != TokenKind::Ident
            || !CHARGED.contains(&t.text.as_str())
            || ctx.in_test_code(t.line)
        {
            continue;
        }
        if ctx.punct_at(ci.wrapping_sub(1), ".") && ctx.punct_at(ci + 1, "(") {
            emit(
                out,
                cfg,
                ctx,
                "HDB-A01",
                t,
                format!(
                    ".{}() bypasses HiddenDb's query accounting; go through the TopKInterface \
                     charge path (or allowlist a backend-internal delegation site)",
                    t.text
                ),
            );
        }
    }
}

/// HDB-S01: discarded `Result`s in the storage layer. A swallowed write
/// or fsync error means the store keeps acknowledging ingests whose
/// bytes may not be durable — the one lie a durability layer must never
/// tell. Two shapes are banned outside test code: the `let _ = …;`
/// binding and the terminal `.ok();` call (both compile away the
/// `#[must_use]` on `Result`). Handle the error or poison the store
/// read-only; a reviewed exception goes in `lint.toml`.
fn rule_s01_discarded_results(ctx: &FileContext<'_>, cfg: &Config, out: &mut Vec<Diagnostic>) {
    if !in_storage_scope(ctx.path) {
        return;
    }
    for (ci, &i) in ctx.code.iter().enumerate() {
        let t = &ctx.tokens[i];
        if ctx.in_test_code(t.line) || t.kind != TokenKind::Ident {
            continue;
        }
        let is_let_discard = t.text == "let"
            && ctx.code_tok(ci + 1).is_some_and(|n| n.kind == TokenKind::Ident && n.text == "_")
            && ctx.punct_at(ci + 2, "=");
        let is_terminal_ok = t.text == "ok"
            && ctx.punct_at(ci.wrapping_sub(1), ".")
            && ctx.punct_at(ci + 1, "(")
            && ctx.punct_at(ci + 2, ")")
            && ctx.punct_at(ci + 3, ";");
        if is_let_discard {
            emit(
                out,
                cfg,
                ctx,
                "HDB-S01",
                t,
                "`let _ =` discards a Result in storage code; a swallowed write/fsync \
                 error breaks the durability contract — handle it or poison read-only"
                    .to_string(),
            );
        } else if is_terminal_ok {
            emit(
                out,
                cfg,
                ctx,
                "HDB-S01",
                t,
                "terminal `.ok();` discards a Result in storage code; a swallowed \
                 write/fsync error breaks the durability contract — handle it or poison \
                 read-only"
                    .to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Crate-level rule

/// HDB-U02 input: one crate's root file and the unsafe census across its
/// `src/` files.
pub struct CrateSummary {
    /// Workspace-relative path of `src/lib.rs` (or `src/main.rs`).
    pub root_file: String,
    /// Number of `unsafe` tokens across the crate's `src/` code.
    pub unsafe_tokens: usize,
    /// Whether the root file carries `#![forbid(unsafe_code)]`.
    pub has_forbid: bool,
}

/// HDB-U02: a crate whose `src/` has zero `unsafe` must pin that with
/// `#![forbid(unsafe_code)]` in its root file, so unsafe cannot creep in
/// without a reviewed lint change.
#[must_use]
pub fn check_crate(summary: &CrateSummary, cfg: &Config) -> Option<Diagnostic> {
    if summary.unsafe_tokens > 0 || summary.has_forbid {
        return None;
    }
    if cfg.is_allowed("HDB-U02", &summary.root_file) {
        return None;
    }
    Some(Diagnostic {
        path: summary.root_file.clone(),
        line: 1,
        col: 1,
        rule: "HDB-U02",
        message: "crate has no unsafe code; add #![forbid(unsafe_code)] so it stays that way"
            .to_string(),
    })
}

/// Scans a token stream for the `# ! [ forbid ( unsafe_code ) ]`
/// attribute.
#[must_use]
pub fn has_forbid_unsafe(tokens: &[Token]) -> bool {
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    code.windows(8).any(|w| {
        w[0].text == "#"
            && w[1].text == "!"
            && w[2].text == "["
            && w[3].text == "forbid"
            && w[4].text == "("
            && w[5].text == "unsafe_code"
            && w[6].text == ")"
            && w[7].text == "]"
    })
}

/// Counts `unsafe` identifier tokens (the U02 census).
#[must_use]
pub fn count_unsafe(tokens: &[Token]) -> usize {
    tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Ident && t.text == "unsafe")
        .count()
}
