//! Workspace walking: find `.rs` files, attribute them to crates, run
//! the per-file rules, and run the per-crate U02 census.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::config::Config;
use crate::lexer;
use crate::rules::{self, CrateSummary, Diagnostic, FileContext};

/// Lints one file's source text under its workspace-relative `path`.
///
/// Exposed (rather than only the workspace walk) so tests can feed
/// fixture sources through the exact production path.
#[must_use]
pub fn lint_file(path: &str, source: &str, cfg: &Config) -> Vec<Diagnostic> {
    let tokens = lexer::lex(source);
    let ctx = FileContext::new(path, &tokens);
    rules::check_file(&ctx, cfg)
}

/// Lints the whole workspace rooted at `root`.
///
/// # Errors
/// I/O failures walking the tree or reading sources.
pub fn lint_workspace(root: &Path, cfg: &Config) -> Result<Vec<Diagnostic>, String> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();

    let mut diagnostics = Vec::new();
    // crate root dir (workspace-relative) → unsafe census across src/.
    let mut crates: BTreeMap<String, CrateState> = BTreeMap::new();

    for rel in &files {
        let abs = root.join(rel);
        let source = std::fs::read_to_string(&abs)
            .map_err(|e| format!("read {}: {e}", abs.display()))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let tokens = lexer::lex(&source);
        let ctx = FileContext::new(&rel_str, &tokens);
        diagnostics.extend(rules::check_file(&ctx, cfg));

        // U02 census: only `src/` files count toward a crate's unsafe
        // total (tests/benches/examples are separate compilation units
        // and cannot be forbidden from the library root).
        if let Some(crate_dir) = crate_src_owner(root, rel) {
            let state = crates.entry(crate_dir.clone()).or_default();
            state.unsafe_tokens += rules::count_unsafe(&tokens);
            let is_root = rel_str == format!("{crate_dir}/src/lib.rs")
                || (crate_dir.is_empty() && rel_str == "src/lib.rs");
            if is_root {
                state.root_file = Some(rel_str.clone());
                state.has_forbid = rules::has_forbid_unsafe(&tokens);
            }
        }
    }

    for state in crates.values() {
        let Some(root_file) = &state.root_file else { continue };
        let summary = CrateSummary {
            root_file: root_file.clone(),
            unsafe_tokens: state.unsafe_tokens,
            has_forbid: state.has_forbid,
        };
        diagnostics.extend(rules::check_crate(&summary, cfg));
    }

    diagnostics.sort_by(|a, b| {
        (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule))
    });
    Ok(diagnostics)
}

/// Per-crate running state for the U02 census.
#[derive(Default)]
struct CrateState {
    unsafe_tokens: usize,
    root_file: Option<String>,
    has_forbid: bool,
}

/// If `rel` is a `src/` file of some crate, returns that crate's
/// workspace-relative directory ("" for the umbrella crate at the root).
fn crate_src_owner(root: &Path, rel: &Path) -> Option<String> {
    // Walk ancestors of the file looking for dir/Cargo.toml with the
    // file under dir/src/.
    let mut dir = rel.parent()?;
    loop {
        let candidate = dir.parent();
        if dir.file_name().is_some_and(|n| n == "src") {
            let crate_dir = candidate.unwrap_or(Path::new(""));
            if root.join(crate_dir).join("Cargo.toml").exists() {
                return Some(crate_dir.to_string_lossy().replace('\\', "/"));
            }
        }
        dir = candidate?;
        if dir.as_os_str().is_empty() {
            // Root-level: the umbrella crate's src/ is handled above when
            // dir == "src" and candidate == "".
            return None;
        }
    }
}

/// Recursively collects workspace-relative `.rs` paths, skipping build
/// output and VCS metadata.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == ".github" {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("strip_prefix {}: {e}", path.display()))?;
            out.push(rel.to_path_buf());
        }
    }
    Ok(())
}
