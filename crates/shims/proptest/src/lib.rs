//! # proptest (offline shim)
//!
//! A minimal property-testing harness standing in for the subset of the
//! `proptest` 1.x API used by `tests/property.rs`. The build environment
//! has no crates.io access, so the workspace pins `proptest` to this
//! path crate (see the root `Cargo.toml`).
//!
//! What is implemented: the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`collection::vec`],
//! [`any`], the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! and the `prop_assert*` / `prop_assume` macros.
//!
//! What is *not* implemented: shrinking. A failing case panics with the
//! deterministic case index and RNG seed so it can be replayed exactly
//! (set `PROPTEST_SEED` to override the seed).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration. Only `cases` is interpreted; the rest of the
/// real crate's fields are absent.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases each property must pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config that runs `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the input out; try another one.
    Reject,
    /// A `prop_assert*!` failed.
    Fail(String),
}

/// A generator of values of type `Value`.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a seeded random generator.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and samples it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Boxes the strategy (API-compatibility helper).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        let first = self.inner.generate(rng);
        (self.f)(first).generate(rng)
    }
}

/// A heap-allocated strategy, as returned by [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn StrategyObject<Value = T>>);

/// Object-safe subset of [`Strategy`] backing [`BoxedStrategy`].
trait StrategyObject {
    type Value;
    fn generate_obj(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy> StrategyObject for S {
    type Value = S::Value;
    fn generate_obj(&self, rng: &mut StdRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.generate_obj(rng)
    }
}

// --- range strategies ---------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// --- tuple strategies ---------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// --- `any` --------------------------------------------------------------

/// Types with a canonical whole-domain strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_via_random {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.random()
            }
        }
    )*};
}
// Floats are deliberately absent: real proptest's `any::<f64>()` covers
// the whole domain (negatives, infinities, NaN), which `rng.random()`'s
// [0, 1) does not — better a compile error than a silently narrower
// input space. Add a full-domain impl if a test ever needs it.
impl_arbitrary_via_random!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// Strategy over the whole domain of `T` (`any::<u64>()`, …).
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

// --- collections --------------------------------------------------------

/// Collection strategies ([`collection::vec`]).
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of values from `element`, with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// An inclusive length range for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    /// Minimum length (inclusive).
    pub min: usize,
    /// Maximum length (inclusive).
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        Self {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

// --- runner -------------------------------------------------------------

/// Drives one property: draws inputs until `config.cases` accepted
/// cases pass, panicking on the first failure. Called by [`proptest!`];
/// not part of the public proptest API.
pub fn run_property<S, F>(name: &str, config: &ProptestConfig, strategy: S, mut test: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x5EED_CA5E_u64);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut passed: u32 = 0;
    let mut rejected: u64 = 0;
    let max_rejects = u64::from(config.cases) * 50 + 1_000;
    let mut case_index: u64 = 0;
    while passed < config.cases {
        let value = strategy.generate(&mut rng);
        match test(value) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "property `{name}`: too many rejected cases \
                         ({rejected} rejects for {passed} accepted; seed {seed:#x})"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property `{name}` failed at case {case_index} (seed {seed:#x}):\n{msg}"
                );
            }
        }
        case_index += 1;
    }
}

/// Everything `use proptest::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        BoxedStrategy, ProptestConfig, Strategy, TestCaseError,
    };
}

// --- macros -------------------------------------------------------------

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let __strategy = ($($strategy,)+);
            $crate::run_property(
                stringify!($name),
                &__config,
                __strategy,
                |__case| {
                    let ($($arg,)+) = __case;
                    $crate::__unit_ok($body)
                },
            );
        }
    )*};
}

/// Implementation detail: coerces a test body's `()` to `Ok(())` while
/// letting `prop_assert*` / `prop_assume` early-return errors.
#[doc(hidden)]
pub fn __unit_ok(_: ()) -> Result<(), TestCaseError> {
    Ok(())
}

/// Asserts a condition inside a property, failing the case (not the
/// whole process) so the runner can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: `{:?} == {:?}`", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: `{:?} == {:?}`: {}", __l, __r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: `{:?} != {:?}`", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: `{:?} != {:?}`: {}", __l, __r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Rejects the current case (drawing a fresh one) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 5u64..=8) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((5..=8).contains(&y));
        }

        #[test]
        fn vec_strategy_obeys_size(v in prop::collection::vec(0u8..4, 2..=5)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5, "len {}", v.len());
            for &e in &v {
                prop_assert!(e < 4);
            }
        }

        #[test]
        fn maps_and_flat_maps_compose(
            pair in (1usize..4).prop_flat_map(|n| {
                (0usize..n).prop_map(move |m| (n, m))
            }),
        ) {
            let (n, m) = pair;
            prop_assert!(m < n);
        }

        #[test]
        fn assume_rejects_cleanly(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x % 2, 1);
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_panic_with_context() {
        crate::run_property(
            "always_fails",
            &ProptestConfig::with_cases(4),
            0u8..4,
            |_| Err(TestCaseError::Fail("boom".into())),
        );
    }

    #[test]
    fn any_draws_values() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let s = any::<u64>();
        let a = s.generate(&mut rng);
        let b = s.generate(&mut rng);
        assert_ne!(a, b);
    }

    use rand::SeedableRng;
}
