//! # rand (offline shim)
//!
//! A minimal, dependency-free drop-in for the subset of the `rand` 0.9
//! API this workspace uses. The build environment has no access to
//! crates.io, so the workspace pins `rand` to this path crate instead
//! (see the root `Cargo.toml`); swapping back to the real crate is a
//! one-line manifest change and requires no source edits.
//!
//! Provided surface:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator, seeded
//!   via SplitMix64 from a `u64` ([`SeedableRng::seed_from_u64`]).
//!   Every estimator in the workspace is reproducible from that single
//!   `u64` seed; nothing here ever touches OS entropy.
//! * [`Rng::random`], [`Rng::random_bool`], [`Rng::random_range`] —
//!   the rand 0.9 method names used at the workspace's call sites.
//!
//! Integer ranges are sampled with rejection (no modulo bias) and
//! floats with the standard 53-bit mantissa scaling, so the
//! unbiasedness tests see genuinely uniform draws.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits (upper half of
    /// [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Builds the generator from a full-entropy raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it to a full seed
    /// deterministically. This is the only constructor the workspace
    /// uses — all randomness is reproducible from one `u64`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (uniform over the type for integers, uniform in `[0, 1)` for
    /// floats, fair coin for `bool`).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} not in [0,1]");
        // `random::<f64>()` is in [0, 1), so p == 1.0 is always true
        // and p == 0.0 always false.
        self.random::<f64>() < p
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::random`].
pub trait StandardUniform: Sized {
    /// Draws one value from the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardUniform for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl StandardUniform for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    /// Uniform in `[0, 1)` with the full 53-bit mantissa.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    /// Uniform in `[0, 1)` with the full 24-bit mantissa.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, n)` by rejection sampling (no modulo bias).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    // Largest multiple of n that fits in u64: values at or above it are
    // rejected so the remainder is exactly uniform.
    let zone = (u64::MAX / n) * n;
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // full u64 domain
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let u: $t = StandardUniform::sample_standard(rng);
                let v = self.start + (self.end - self.start) * u;
                // start + (end-start)*u can round up to exactly `end`;
                // keep the range half-open like real rand does.
                if v < self.end {
                    v
                } else {
                    self.end.next_down().max(self.start)
                }
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256++ generator standing in for rand's
    /// `StdRng`. Not cryptographically secure — statistical quality
    /// only, which is all the estimators need.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// One step of SplitMix64 — used to expand a `u64` seed into the
    /// four xoshiro state words.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // xoshiro must not be seeded with all zeros
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, 2019)
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = rng.random_range(3usize..10);
            assert!((3..10).contains(&v));
            seen[v - 3] = true;
            let w = rng.random_range(5u64..=8);
            assert!((5..=8).contains(&w));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
        assert!(seen.iter().all(|&b| b), "all 7 values hit");
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[rng.random_range(0usize..5)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn random_bool_edges_and_rate() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(rng.random_bool(1.0));
        assert!(!rng.random_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn takes_dynish<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let x = takes_dynish(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
