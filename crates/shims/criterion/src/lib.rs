//! # criterion (offline shim)
//!
//! A minimal stand-in for the subset of the `criterion` 0.5 API used by
//! the benches in `crates/bench/benches/`. The build environment has no
//! crates.io access, so the workspace pins `criterion` to this path
//! crate (see the root `Cargo.toml`).
//!
//! Semantics: each `bench_function` warms up once, picks an iteration
//! count targeting ~`measurement_ms` of wall-clock (bounded), runs it,
//! and prints the mean time per iteration. No statistics, plots, or
//! baselines — just enough to exercise the hot paths and print honest
//! numbers. Swapping in real criterion is a one-line manifest change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (the real crate forwards
/// to `std::hint::black_box` on recent toolchains too).
pub use std::hint::black_box;

/// Top-level benchmark driver, handed to every `criterion_group!`
/// target function.
pub struct Criterion {
    measurement_ms: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // HDB_BENCH_MS overrides the per-benchmark time budget.
        let measurement_ms = std::env::var("HDB_BENCH_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300);
        Self { measurement_ms }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let budget_ms = self.measurement_ms;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            budget_ms,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), self.measurement_ms, &mut f);
        self
    }
}

/// A named group of benchmarks (`sample_size` is accepted for API
/// compatibility but ignored — the shim sizes runs by wall-clock).
pub struct BenchmarkGroup<'a> {
    // Held to keep the group's exclusive-borrow semantics identical to
    // real criterion, so code written against the shim keeps compiling
    // after a swap.
    _criterion: &'a mut Criterion,
    name: String,
    budget_ms: u64,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility with real criterion; the shim sizes
    /// runs by wall-clock budget instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the wall-clock budget for each benchmark in this group
    /// only (like real criterion, the setting dies with the group).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.budget_ms = d.as_millis() as u64;
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.budget_ms, &mut f);
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, budget_ms: u64, f: &mut F) {
    let mut bencher = Bencher {
        budget: Duration::from_millis(budget_ms),
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher);
    let mean = if bencher.iters > 0 {
        bencher.total / bencher.iters as u32
    } else {
        Duration::ZERO
    };
    println!(
        "bench: {label:<50} {:>12.3?}/iter  ({} iters)",
        mean, bencher.iters
    );
}

/// Passed to the benchmark closure; runs and times the routine.
pub struct Bencher {
    budget: Duration,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, repeating until the time budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration run.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = (self.budget.as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000) as u64;
        let start = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        self.total = start.elapsed();
        self.iters = target;
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Calibration.
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = (self.budget.as_nanos() / once.as_nanos().max(1)).clamp(1, 1_000) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..target {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.total = total;
        self.iters = target;
    }
}

/// Batch sizing hint (ignored by the shim).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards harness flags like --bench; accept
            // and ignore whatever argv contains.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion {
            measurement_ms: 1,
        };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut c = Criterion {
            measurement_ms: 1,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut count = 0;
        group.bench_function("batched", |b| {
            b.iter_batched(|| 5, |x| x * 2, BatchSize::LargeInput);
            count += 1;
        });
        group.finish();
        assert_eq!(count, 1);
    }
}
