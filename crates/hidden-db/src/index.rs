//! Query-evaluation index: one posting bitmap per `(attribute, value)`
//! pair. A conjunctive query is evaluated by intersecting the bitmaps of
//! its predicates.
//!
//! This is the *server-side* machinery of the hidden database simulator —
//! the part the paper's real-world counterpart (Yahoo! Auto's backend)
//! implements for us. Estimators never touch it.

use crate::bitmap::{Bitmap, OnesIter};
use crate::query::Query;
use crate::table::Table;
use crate::tuple::TupleId;

/// The matching-row set of a query, in the cheapest representation the
/// query shape allows: the zero-predicate query matches *all* rows (no
/// bitmap needed), a single predicate borrows its posting bitmap, and
/// only multi-predicate queries materialise an intersection.
pub enum Selection<'a> {
    /// Every row matches (zero predicates).
    All {
        /// Number of rows in the table.
        rows: usize,
    },
    /// Exactly the rows of one borrowed posting bitmap.
    Posting(&'a Bitmap),
    /// A materialised intersection of two or more postings.
    Owned(Bitmap),
}

impl Selection<'_> {
    /// Number of matching rows.
    #[must_use]
    pub fn count(&self) -> usize {
        match self {
            Self::All { rows } => *rows,
            Self::Posting(b) => b.count(),
            Self::Owned(b) => b.count(),
        }
    }

    /// Iterator over matching row ids, ascending.
    pub fn iter_ones(&self) -> SelectionOnes<'_> {
        match self {
            Self::All { rows } => SelectionOnes::All(0..*rows),
            Self::Posting(b) => SelectionOnes::Bits(b.iter_ones()),
            Self::Owned(b) => SelectionOnes::Bits(b.iter_ones()),
        }
    }

    /// Materialises the selection as an owned bitmap.
    #[must_use]
    pub fn into_bitmap(self) -> Bitmap {
        match self {
            Self::All { rows } => Bitmap::ones(rows),
            Self::Posting(b) => b.clone(),
            Self::Owned(b) => b,
        }
    }
}

/// Iterator over the row ids of a [`Selection`], ascending.
pub enum SelectionOnes<'a> {
    /// All rows: a plain index range.
    All(std::ops::Range<usize>),
    /// Set bits of a bitmap.
    Bits(OnesIter<'a>),
}

impl Iterator for SelectionOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match self {
            Self::All(r) => r.next(),
            Self::Bits(it) => it.next(),
        }
    }
}

/// Bitmap index over a table.
#[derive(Clone, Debug)]
pub struct TableIndex {
    /// `postings[attr][value]` = bitmap of rows with `A_attr = value`.
    postings: Vec<Vec<Bitmap>>,
    rows: usize,
}

impl TableIndex {
    /// Builds the index in one pass over the table.
    #[must_use]
    pub fn build(table: &Table) -> Self {
        let schema = table.schema();
        let rows = table.len();
        let mut postings: Vec<Vec<Bitmap>> = (0..schema.len())
            .map(|a| (0..schema.fanout(a)).map(|_| Bitmap::zeros(rows)).collect())
            .collect();
        for (row, tuple) in table.tuples().iter().enumerate() {
            for (attr, &value) in tuple.values().iter().enumerate() {
                postings[attr][value as usize].set(row);
            }
        }
        Self { postings, rows }
    }

    /// Number of rows indexed.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Evaluates `q`, returning the matching row-id set as a bitmap.
    ///
    /// Predicates are intersected in ascending selectivity order (smallest
    /// posting first) so the working bitmap sparsifies early. Callers that
    /// only need to *read* the match set should prefer
    /// [`TableIndex::selection`], which avoids allocating for zero- and
    /// one-predicate queries.
    #[must_use]
    pub fn eval(&self, q: &Query) -> Bitmap {
        self.selection(q).into_bitmap()
    }

    /// Evaluates `q` into the cheapest [`Selection`] representation:
    /// zero predicates allocate nothing (no more `Bitmap::ones` per root
    /// query), one predicate borrows its posting, two or more materialise
    /// the intersection (smallest posting first).
    #[must_use]
    pub fn selection(&self, q: &Query) -> Selection<'_> {
        let mut preds: Vec<&Bitmap> =
            q.predicates().iter().map(|p| &self.postings[p.attr][p.value as usize]).collect();
        match preds.len() {
            0 => Selection::All { rows: self.rows },
            1 => Selection::Posting(preds[0]),
            _ => {
                preds.sort_by_key(|b| b.count());
                let mut acc = preds[0].clone();
                for b in &preds[1..] {
                    acc.and_with(b);
                }
                Selection::Owned(acc)
            }
        }
    }

    /// The posting bitmap of one `(attr, value)` pair.
    ///
    /// # Panics
    /// Panics if out of range.
    #[must_use]
    pub fn posting(&self, attr: usize, value: usize) -> &Bitmap {
        &self.postings[attr][value]
    }

    /// `|Sel(q)|` — the number of tuples matching `q`.
    #[must_use]
    pub fn count(&self, q: &Query) -> usize {
        let post = |i: usize| {
            let p = &q.predicates()[i];
            &self.postings[p.attr][p.value as usize]
        };
        match q.predicates().len() {
            0 => self.rows,
            1 => post(0).count(),
            2 => post(0).and_count(post(1)),
            3 => post(0).and_count_3(post(1), post(2)),
            _ => self.selection(q).count(),
        }
    }

    /// Matching row ids in ascending order, truncated to `limit`.
    #[must_use]
    pub fn matching_rows(&self, q: &Query, limit: usize) -> Vec<TupleId> {
        self.selection(q).iter_ones().take(limit).map(|r| r as TupleId).collect()
    }

    /// Posting-list cardinality of a single `(attr, value)` pair.
    ///
    /// # Panics
    /// Panics if out of range.
    #[must_use]
    pub fn value_frequency(&self, attr: usize, value: usize) -> usize {
        self.postings[attr][value].count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};
    use crate::tuple::Tuple;

    fn table() -> Table {
        // The running example of the paper (Table 1): 6 tuples, 4 Boolean
        // attributes + 1 categorical with domain [1,5].
        let schema = Schema::new(vec![
            Attribute::boolean("A1"),
            Attribute::boolean("A2"),
            Attribute::boolean("A3"),
            Attribute::boolean("A4"),
            Attribute::categorical("A5", ["1", "2", "3", "4", "5"]).unwrap(),
        ])
        .unwrap();
        Table::new(
            schema,
            vec![
                Tuple::new(vec![0, 0, 0, 0, 0]),
                Tuple::new(vec![0, 0, 0, 1, 0]),
                Tuple::new(vec![0, 0, 1, 0, 0]),
                Tuple::new(vec![0, 1, 1, 1, 0]),
                Tuple::new(vec![1, 1, 1, 0, 2]),
                Tuple::new(vec![1, 1, 1, 1, 0]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn counts_match_exact_scan() {
        let t = table();
        let idx = TableIndex::build(&t);
        assert_eq!(idx.count(&Query::all()), 6);
        for attr in 0..5 {
            for value in 0..t.schema().fanout(attr) {
                let q = Query::all().and(attr, value as u16).unwrap();
                assert_eq!(idx.count(&q), t.exact_count(&q), "attr {attr} value {value}");
            }
        }
        // multi-predicate queries
        let q = Query::all().and(0, 0).unwrap().and(2, 1).unwrap();
        assert_eq!(idx.count(&q), t.exact_count(&q));
        let q3 = q.and(4, 0).unwrap();
        assert_eq!(idx.count(&q3), t.exact_count(&q3));
    }

    #[test]
    fn matching_rows_ascending_and_truncated() {
        let t = table();
        let idx = TableIndex::build(&t);
        let q = Query::all().and(2, 1).unwrap(); // t3, t4, t5, t6
        assert_eq!(idx.matching_rows(&q, 10), vec![2, 3, 4, 5]);
        assert_eq!(idx.matching_rows(&q, 2), vec![2, 3]);
    }

    #[test]
    fn empty_query_result() {
        let t = table();
        let idx = TableIndex::build(&t);
        let q = Query::all().and(4, 4).unwrap(); // A5=5 never appears
        assert_eq!(idx.count(&q), 0);
        assert!(idx.matching_rows(&q, 10).is_empty());
    }

    #[test]
    fn selection_representations_agree_with_eval() {
        let t = table();
        let idx = TableIndex::build(&t);
        let queries = [
            Query::all(),
            Query::all().and(2, 1).unwrap(),
            Query::all().and(0, 0).unwrap().and(2, 1).unwrap(),
            Query::all().and(0, 0).unwrap().and(2, 1).unwrap().and(3, 0).unwrap(),
            Query::all()
                .and(0, 0)
                .unwrap()
                .and(1, 0)
                .unwrap()
                .and(2, 0)
                .unwrap()
                .and(3, 0)
                .unwrap(),
        ];
        for q in &queries {
            let sel = idx.selection(q);
            let bits = idx.eval(q);
            assert_eq!(sel.count(), bits.count(), "count for {q}");
            assert_eq!(
                sel.iter_ones().collect::<Vec<_>>(),
                bits.iter_ones().collect::<Vec<_>>(),
                "rows for {q}"
            );
            assert_eq!(idx.count(q), bits.count(), "fused count for {q}");
            // zero predicates must not have materialised anything
            if q.is_empty() {
                assert!(matches!(sel, Selection::All { rows: 6 }));
            }
        }
        assert_eq!(idx.posting(2, 1).count(), 4);
    }

    #[test]
    fn value_frequencies() {
        let t = table();
        let idx = TableIndex::build(&t);
        assert_eq!(idx.value_frequency(0, 1), 2);
        assert_eq!(idx.value_frequency(4, 0), 5);
        assert_eq!(idx.value_frequency(4, 2), 1);
    }
}
