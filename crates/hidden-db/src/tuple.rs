//! Tuples: fully-specified rows of a hidden database table.

use crate::schema::{Schema, ValueId};

/// Identifier of a tuple within a table (its row index).
pub type TupleId = u32;

/// A fully specified tuple: one [`ValueId`] per schema attribute, in schema
/// order.
///
/// Tuples are deliberately compact (`Vec<u16>`) because the experiment
/// datasets hold hundreds of thousands of rows over ~40 attributes.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    values: Vec<ValueId>,
}

impl Tuple {
    /// Creates a tuple from raw value ids. Validation against a schema
    /// happens at table insertion time ([`crate::table::Table::push`]).
    #[must_use]
    pub fn new(values: Vec<ValueId>) -> Self {
        Self { values }
    }

    /// Number of attributes.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Value of attribute `attr`.
    ///
    /// # Panics
    /// Panics if `attr` is out of range.
    #[must_use]
    pub fn value(&self, attr: usize) -> ValueId {
        self.values[attr]
    }

    /// All values in schema order.
    #[must_use]
    pub fn values(&self) -> &[ValueId] {
        &self.values
    }

    /// Checks conformance against a schema: arity and domain membership.
    #[must_use]
    pub fn conforms_to(&self, schema: &Schema) -> bool {
        self.values.len() == schema.len()
            && self
                .values
                .iter()
                .enumerate()
                .all(|(i, &v)| (v as usize) < schema.fanout(i))
    }

    /// Renders the tuple with value labels from `schema`, for debugging
    /// and example output.
    #[must_use]
    pub fn display(&self, schema: &Schema) -> String {
        let mut out = String::from("(");
        for (i, &v) in self.values.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(schema.attribute(i).name());
            out.push('=');
            out.push_str(schema.attribute(i).value_label(v));
        }
        out.push(')');
        out
    }
}

impl From<Vec<ValueId>> for Tuple {
    fn from(values: Vec<ValueId>) -> Self {
        Self::new(values)
    }
}

impl From<&[ValueId]> for Tuple {
    fn from(values: &[ValueId]) -> Self {
        Self::new(values.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::boolean("a"),
            Attribute::categorical("b", ["x", "y", "z"]).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn conformance_checks_arity_and_domain() {
        let s = schema();
        assert!(Tuple::new(vec![0, 2]).conforms_to(&s));
        assert!(!Tuple::new(vec![0]).conforms_to(&s));
        assert!(!Tuple::new(vec![0, 3]).conforms_to(&s));
        assert!(!Tuple::new(vec![2, 0]).conforms_to(&s));
    }

    #[test]
    fn display_uses_labels() {
        let s = schema();
        let t = Tuple::new(vec![1, 2]);
        assert_eq!(t.display(&s), "(a=1, b=z)");
    }

    #[test]
    fn conversions() {
        let t: Tuple = vec![1u16, 2].into();
        assert_eq!(t.value(0), 1);
        let t2: Tuple = t.values().into();
        assert_eq!(t, t2);
    }
}
