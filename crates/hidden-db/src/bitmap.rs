//! A fixed-width bitset used as the posting-list representation of the
//! query-evaluation index.
//!
//! The hidden-database experiments evaluate millions of conjunctive
//! queries against tables of a few hundred thousand rows; a flat `u64`
//! bitset per `(attribute, value)` pair makes each query an AND of `s`
//! bitsets plus a popcount, which is the dominant cost of the whole
//! harness. The implementation is deliberately simple — no compression —
//! because the densities involved (each value matches a sizeable fraction
//! of rows) make compressed formats slower.

/// A fixed-length bitset over `len` bits backed by `u64` words.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An all-zeros bitmap over `len` bits.
    #[must_use]
    pub fn zeros(len: usize) -> Self {
        Self { words: vec![0; len.div_ceil(64)], len }
    }

    /// An all-ones bitmap over `len` bits.
    #[must_use]
    pub fn ones(len: usize) -> Self {
        let mut b = Self { words: vec![u64::MAX; len.div_ceil(64)], len };
        b.clear_tail();
        b
    }

    /// Zeroes any bits beyond `len` in the final word, maintaining the
    /// invariant that trailing bits are always 0 (required for `count`).
    fn clear_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Number of bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap has zero length.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Tests bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of set bits.
    #[must_use]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// In-place intersection with `other`.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn and_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// Number of set bits in `self & other` without materialising the
    /// intersection.
    ///
    /// # Panics
    /// Panics if lengths differ.
    #[must_use]
    pub fn and_count(&self, other: &Bitmap) -> usize {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Number of set bits in `self & b & c` in one fused pass — the
    /// 3-predicate counting kernel (no intermediate bitmap, one traversal
    /// instead of two).
    ///
    /// # Panics
    /// Panics if lengths differ.
    #[must_use]
    pub fn and_count_3(&self, b: &Bitmap, c: &Bitmap) -> usize {
        assert_eq!(self.len, b.len, "bitmap length mismatch");
        assert_eq!(self.len, c.len, "bitmap length mismatch");
        self.words
            .iter()
            .zip(&b.words)
            .zip(&c.words)
            .map(|((x, y), z)| (x & y & z).count_ones() as usize)
            .sum()
    }

    /// Makes `self` the intersection `a & b` in one fused copy-and-AND
    /// pass, reusing `self`'s allocation when it is large enough — the
    /// scratch-buffer kernel behind walk-session `extend` steps.
    ///
    /// # Panics
    /// Panics if `a` and `b` differ in length.
    pub fn assign_and(&mut self, a: &Bitmap, b: &Bitmap) {
        assert_eq!(a.len, b.len, "bitmap length mismatch");
        self.len = a.len;
        self.words.clear();
        self.words.extend(a.words.iter().zip(&b.words).map(|(x, y)| x & y));
    }

    /// Makes `self` a copy of `other`, reusing `self`'s allocation when it
    /// is large enough (the derived `Clone::clone_from` always
    /// reallocates).
    pub fn copy_from(&mut self, other: &Bitmap) {
        self.len = other.len;
        self.words.clear();
        self.words.extend_from_slice(&other.words);
    }

    /// Iterator over the indices of set bits of `self & other`, ascending,
    /// without materialising the intersection.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn iter_and_ones<'a>(&'a self, other: &'a Bitmap) -> AndOnesIter<'a> {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        let current = match (self.words.first(), other.words.first()) {
            (Some(a), Some(b)) => a & b,
            _ => 0,
        };
        AndOnesIter { a: &self.words, b: &other.words, word_idx: 0, current }
    }

    /// Whether `self & other` has any set bit (with early exit).
    ///
    /// # Panics
    /// Panics if lengths differ.
    #[must_use]
    pub fn intersects(&self, other: &Bitmap) -> bool {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Iterator over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> OnesIter<'_> {
        OnesIter { words: &self.words, word_idx: 0, current: self.words.first().copied().unwrap_or(0) }
    }

    /// Collects up to `limit` set-bit indices, ascending. Used by the
    /// top-k interface to cut off result materialisation at `k`.
    #[must_use]
    pub fn first_ones(&self, limit: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(limit.min(self.len));
        for i in self.iter_ones() {
            if out.len() == limit {
                break;
            }
            out.push(i);
        }
        out
    }
}

/// Iterator over set-bit positions of a [`Bitmap`].
pub struct OnesIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for OnesIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

/// Iterator over set-bit positions of the intersection of two [`Bitmap`]s
/// (see [`Bitmap::iter_and_ones`]).
pub struct AndOnesIter<'a> {
    a: &'a [u64],
    b: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for AndOnesIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.a.len() {
                return None;
            }
            self.current = self.a[self.word_idx] & self.b[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = Bitmap::zeros(130);
        assert_eq!(z.count(), 0);
        let o = Bitmap::ones(130);
        assert_eq!(o.count(), 130);
        assert!(o.get(129));
    }

    #[test]
    fn ones_clears_tail_bits() {
        // count must not include bits beyond len in the last word
        let o = Bitmap::ones(65);
        assert_eq!(o.count(), 65);
        let o = Bitmap::ones(64);
        assert_eq!(o.count(), 64);
    }

    #[test]
    fn set_get_clear() {
        let mut b = Bitmap::zeros(100);
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(99);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(99));
        assert!(!b.get(1));
        assert_eq!(b.count(), 4);
        b.clear(63);
        assert!(!b.get(63));
        assert_eq!(b.count(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        Bitmap::zeros(10).set(10);
    }

    #[test]
    fn and_operations_agree() {
        let mut a = Bitmap::zeros(200);
        let mut b = Bitmap::zeros(200);
        for i in (0..200).step_by(3) {
            a.set(i);
        }
        for i in (0..200).step_by(5) {
            b.set(i);
        }
        let expected: Vec<usize> = (0..200).step_by(15).collect();
        assert_eq!(a.and_count(&b), expected.len());
        assert!(a.intersects(&b));
        let mut c = a.clone();
        c.and_with(&b);
        assert_eq!(c.iter_ones().collect::<Vec<_>>(), expected);
    }

    #[test]
    fn disjoint_bitmaps_do_not_intersect() {
        let mut a = Bitmap::zeros(70);
        let mut b = Bitmap::zeros(70);
        a.set(3);
        b.set(4);
        assert!(!a.intersects(&b));
        assert_eq!(a.and_count(&b), 0);
    }

    #[test]
    fn fused_kernels_agree_with_composed_operations() {
        let mut a = Bitmap::zeros(300);
        let mut b = Bitmap::zeros(300);
        let mut c = Bitmap::zeros(300);
        for i in (0..300).step_by(2) {
            a.set(i);
        }
        for i in (0..300).step_by(3) {
            b.set(i);
        }
        for i in (0..300).step_by(5) {
            c.set(i);
        }
        // and_count_3 == count of a & b & c
        let mut ab = a.clone();
        ab.and_with(&b);
        let mut abc = ab.clone();
        abc.and_with(&c);
        assert_eq!(a.and_count_3(&b, &c), abc.count());
        // assign_and reuses the target buffer and matches and_with
        let mut scratch = Bitmap::zeros(1);
        scratch.assign_and(&a, &b);
        assert_eq!(scratch, ab);
        scratch.assign_and(&ab, &c);
        assert_eq!(scratch, abc);
        // iter_and_ones enumerates the same set
        assert_eq!(
            a.iter_and_ones(&b).collect::<Vec<_>>(),
            ab.iter_ones().collect::<Vec<_>>()
        );
        assert_eq!(a.iter_and_ones(&b).count(), a.and_count(&b));
    }

    #[test]
    fn and_ones_iterator_handles_empty_and_disjoint() {
        let a = Bitmap::zeros(0);
        assert_eq!(a.iter_and_ones(&a).count(), 0);
        let mut x = Bitmap::zeros(70);
        let mut y = Bitmap::zeros(70);
        x.set(3);
        y.set(4);
        assert_eq!(x.iter_and_ones(&y).count(), 0);
        y.set(3);
        assert_eq!(x.iter_and_ones(&y).collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn first_ones_truncates() {
        let mut a = Bitmap::zeros(100);
        for i in 0..50 {
            a.set(i * 2);
        }
        assert_eq!(a.first_ones(3), vec![0, 2, 4]);
        assert_eq!(a.first_ones(100).len(), 50);
    }

    #[test]
    fn iter_ones_across_word_boundaries() {
        let mut a = Bitmap::zeros(192);
        for &i in &[0usize, 63, 64, 127, 128, 191] {
            a.set(i);
        }
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![0, 63, 64, 127, 128, 191]);
    }

    #[test]
    fn empty_bitmap() {
        let b = Bitmap::zeros(0);
        assert!(b.is_empty());
        assert_eq!(b.count(), 0);
        assert_eq!(b.iter_ones().count(), 0);
    }
}
