//! The restrictive top-k web interface (paper §2.1): the *only* channel
//! through which estimators may observe the hidden database.
//!
//! Semantics, with `k` the interface constant and `Sel(q)` the matching
//! tuples:
//! * `|Sel(q)| == 0`  → **underflow** (empty result),
//! * `1 ≤ |Sel(q)| ≤ k` → **valid**: *all* matching tuples are returned,
//! * `|Sel(q)| > k`  → **overflow**: the top-`k` tuples under the ranking
//!   function are returned together with an overflow flag. The true count
//!   is *not* disclosed, and the client cannot page past `k`.
//!
//! [`HiddenDb`] implements these semantics over any physical
//! [`SearchBackend`] — a single in-memory table by default, a
//! hash-partitioned [`ShardedDb`](crate::ShardedDb), or a simulated
//! remote API ([`LatencyBackend`](crate::LatencyBackend)). The *logical*
//! behaviour (outcome classification, query accounting, budgets, the
//! server-side hot-response memo) lives here and is identical for every
//! backend.

use std::sync::Arc;

use crate::backend::{EvalMode, SearchBackend, TableBackend};
use crate::cache::ShardedMemo;
use crate::counter::{OutcomeKind, QueryCounter};
use crate::error::Result;
use crate::obs::{Counter, Gauge, MetricsRegistry, MetricsSnapshot, TraceRing};
use crate::query::Query;
use crate::ranking::{RankingFunction, RowIdRanking};
use crate::schema::Schema;
use crate::session::{SessionMode, WalkSession};
use crate::table::Table;
use crate::tuple::{Tuple, TupleId};

/// Whether a response is expensive enough for the server-side
/// hot-response memo: an overflow whose match count far exceeds `k`
/// (those few shallow tree nodes dominate top-k selection CPU).
pub(crate) fn expensive_response(count: usize, k: usize) -> bool {
    count > k.saturating_mul(8)
}

/// The interface layer's observability handles, resolved once at
/// construction so the hot path records through pre-bound atomics.
/// Recording happens strictly after outcomes are computed, which is what
/// keeps instrumentation bit-invisible (the obs-on/off equivalence
/// proptest pins it).
pub(crate) struct DbObs {
    /// The registry every handle below resolves from; `HiddenDb::metrics`
    /// snapshots it.
    pub(crate) registry: MetricsRegistry,
    /// Hot-response memo hits (expensive overflow pages served without
    /// re-evaluation).
    pub(crate) memo_response_hits: Counter,
    /// Count-only memo hits (drill-down probes served without an
    /// AND-count).
    pub(crate) memo_count_hits: Counter,
    /// Charged walk-session probes.
    pub(crate) walk_probes: Counter,
    /// Walk-session branch commitments.
    pub(crate) walk_extends: Counter,
    /// Walk-session retreats toward the root.
    pub(crate) walk_retracts: Counter,
    /// High-water mark of the walk scratch arena (retired states held for
    /// buffer recycling).
    pub(crate) walk_scratch_high: Gauge,
    /// Span recorder for queries and walk probes — disabled unless
    /// [`HiddenDb::with_trace`] installs a ring.
    pub(crate) trace: TraceRing,
}

impl DbObs {
    fn over(registry: MetricsRegistry) -> Self {
        Self {
            memo_response_hits: registry.counter("hdb_memo_response_hits_total"),
            memo_count_hits: registry.counter("hdb_memo_count_hits_total"),
            walk_probes: registry.counter("hdb_walk_probes_total"),
            walk_extends: registry.counter("hdb_walk_extends_total"),
            walk_retracts: registry.counter("hdb_walk_retracts_total"),
            walk_scratch_high: registry.gauge("hdb_walk_scratch_high_water"),
            trace: TraceRing::disabled(),
            registry,
        }
    }
}

/// The accounting class of an outcome.
pub(crate) fn outcome_kind(outcome: &QueryOutcome) -> OutcomeKind {
    match outcome {
        QueryOutcome::Underflow => OutcomeKind::Underflow,
        QueryOutcome::Valid(_) => OutcomeKind::Valid,
        QueryOutcome::Overflow(_) => OutcomeKind::Overflow,
    }
}

/// A tuple as seen through the interface: the listing id (real sites
/// expose one — a VIN, an item number) plus the attribute values.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ReturnedTuple {
    /// Stable identifier of the listing; capture–recapture relies on it.
    pub id: TupleId,
    /// Attribute values in schema order.
    pub tuple: Tuple,
}

/// Result of issuing one query through the interface.
///
/// Result pages are shared (`Arc`), so cloning an outcome — which the
/// server-side hot-response memo and the client-side
/// [`CachingInterface`](crate::CachingInterface) do on every hit — bumps
/// a reference count instead of deep-cloning the top-k tuple vector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryOutcome {
    /// No tuple matches.
    Underflow,
    /// All matching tuples (`1 ≤ len ≤ k`).
    Valid(Arc<Vec<ReturnedTuple>>),
    /// The `k` top-ranked matching tuples; more exist but are hidden.
    Overflow(Arc<Vec<ReturnedTuple>>),
}

impl QueryOutcome {
    /// Whether the query underflowed.
    #[must_use]
    pub fn is_underflow(&self) -> bool {
        matches!(self, Self::Underflow)
    }

    /// Whether the query was valid (neither underflow nor overflow).
    #[must_use]
    pub fn is_valid(&self) -> bool {
        matches!(self, Self::Valid(_))
    }

    /// Whether the query overflowed.
    #[must_use]
    pub fn is_overflow(&self) -> bool {
        matches!(self, Self::Overflow(_))
    }

    /// Whether the query returned at least one tuple (valid or overflow) —
    /// "non-empty" in the paper's backtracking discussion.
    #[must_use]
    pub fn is_nonempty(&self) -> bool {
        !self.is_underflow()
    }

    /// The returned tuples (empty for underflow).
    #[must_use]
    pub fn tuples(&self) -> &[ReturnedTuple] {
        match self {
            Self::Underflow => &[],
            Self::Valid(t) | Self::Overflow(t) => t,
        }
    }

    /// Number of returned tuples `|q| = min(k, |Sel(q)|)`.
    #[must_use]
    pub fn returned_count(&self) -> usize {
        self.tuples().len()
    }
}

/// The client-facing interface trait. Estimators are generic over it, so
/// they run identically against the in-process simulator, a caching
/// wrapper, or (in principle) a live HTTP adapter.
pub trait TopKInterface {
    /// The public schema of the search form (attribute names and their
    /// drop-down values). Real forms disclose exactly this.
    fn schema(&self) -> &Schema;

    /// The interface constant `k`.
    fn k(&self) -> usize;

    /// Issues a conjunctive query.
    ///
    /// # Errors
    /// Returns [`crate::HdbError::InvalidQuery`] for malformed queries and
    /// [`crate::HdbError::BudgetExhausted`] once the query budget is spent.
    fn query(&self, q: &Query) -> Result<QueryOutcome>;

    /// Total queries charged so far.
    fn queries_issued(&self) -> u64;

    /// Remaining query budget, if this interface meters one (`None` means
    /// unmetered). The parallel estimation engine consults this to keep
    /// the completed-pass set of budget-cut runs deterministic: a metered
    /// interface has its passes claimed in canonical index order.
    fn budget_remaining(&self) -> Option<u64> {
        None
    }

    /// Opens a drill-down [`WalkSession`] rooted at `root`.
    ///
    /// The default implementation issues every child probe as an
    /// independent fresh [`TopKInterface::query`] — correct for any
    /// interface, with no fast path. [`HiddenDb`] overrides it with an
    /// incremental session that reuses the parent node's materialised
    /// match set, while keeping budgets, query accounting, and outcomes
    /// exactly as if each query were issued fresh.
    ///
    /// # Errors
    /// Returns [`crate::HdbError::InvalidQuery`] if `root` does not
    /// validate against the schema (nothing is charged).
    fn walk_session(&self, root: Query) -> Result<WalkSession<'_>>
    where
        Self: Sized,
    {
        WalkSession::fresh(self, root)
    }
}

/// The in-process hidden database: a [`SearchBackend`] behind a
/// [`TopKInterface`].
///
/// `HiddenDb` is `Sync` whenever its backend is: query accounting is
/// atomic and the hot-response memo is sharded-locked, so a single
/// instance can serve every worker of the parallel estimation engine.
///
/// The default backend is a single bitmap-indexed [`Table`]
/// ([`TableBackend`]); [`HiddenDb::over`] accepts any other substrate:
///
/// ```
/// use hdb_interface::{HiddenDb, Query, Schema, ShardedDb, Table, TopKInterface, Tuple};
///
/// let table = Table::new(
///     Schema::boolean(3),
///     vec![Tuple::new(vec![0, 0, 1]), Tuple::new(vec![1, 0, 1])],
/// ).unwrap();
/// let db = HiddenDb::over(ShardedDb::new(&table, 2), 1);
/// assert!(db.query(&Query::all()).unwrap().is_overflow());
/// ```
pub struct HiddenDb<B: SearchBackend = TableBackend> {
    pub(crate) backend: B,
    pub(crate) ranking: Arc<dyn RankingFunction>,
    pub(crate) k: usize,
    pub(crate) counter: QueryCounter,
    /// Server-side memo of *expensive* responses (overflow queries whose
    /// match count far exceeds `k`): those are the few shallow tree nodes
    /// every drill-down revisits, and their top-k selection dominates the
    /// simulator's CPU time. Purely an implementation detail of the
    /// simulated server — every query is still charged to the counter.
    pub(crate) hot_responses: ShardedMemo,
    /// The count-only sibling of `hot_responses`: classifications of
    /// *expensive* count-only probes (the same `count > 8k` rule), so a
    /// repeated count-only probe is memo-served instead of re-running its
    /// AND-count. Count-only probes never produce an overflow page, so
    /// they can never feed `hot_responses`; without this memo every
    /// repeat paid the count again (the PR 4 memo gap). Memo hits are
    /// charged exactly like `hot_responses` hits.
    pub(crate) hot_counts: ShardedMemo<crate::session::ClassifiedOutcome>,
    /// How [`HiddenDb::walk_session`] evaluates drill-down probes
    /// (incremental count-only by default; see [`SessionMode`]).
    pub(crate) session: SessionMode,
    /// Pre-resolved metric handles and the (opt-in) span ring. Enabled by
    /// default; [`HiddenDb::with_metrics_disabled`] swaps in no-op
    /// handles. Either way, results are bit-identical.
    pub(crate) obs: DbObs,
}

impl HiddenDb<TableBackend> {
    /// Wraps `table` behind a top-`k` interface with the default
    /// (row-id) ranking and no query budget.
    ///
    /// # Panics
    /// Panics if `k == 0` — a form that can return nothing is not a
    /// database interface.
    ///
    /// ```
    /// use hdb_interface::{HiddenDb, Query, Schema, Table, TopKInterface, Tuple};
    ///
    /// let table = Table::new(
    ///     Schema::boolean(2),
    ///     vec![Tuple::new(vec![0, 0]), Tuple::new(vec![0, 1]), Tuple::new(vec![1, 1])],
    /// ).unwrap();
    /// let db = HiddenDb::new(table, 2);
    ///
    /// // Three matches against k = 2 → overflow.
    /// assert!(db.query(&Query::all()).unwrap().is_overflow());
    /// // Narrow enough → valid, all matches returned.
    /// let q = Query::all().and(0, 0).unwrap();
    /// assert_eq!(db.query(&q).unwrap().returned_count(), 2);
    /// assert_eq!(db.queries_issued(), 2);
    /// ```
    #[must_use]
    pub fn new(table: Table, k: usize) -> Self {
        Self::over(TableBackend::new(table), k)
    }

    /// Selects the query-evaluation path (bitmap by default).
    #[must_use]
    pub fn with_eval_mode(mut self, mode: EvalMode) -> Self {
        self.backend.set_eval_mode(mode);
        self
    }

    /// The query-evaluation path in use.
    #[must_use]
    pub fn eval_mode(&self) -> EvalMode {
        self.backend.eval_mode()
    }

    /// Owner-side access to the underlying table (ground truth for
    /// experiments; never used by estimators).
    #[must_use]
    pub fn table(&self) -> &Table {
        self.backend.table()
    }
}

impl<B: SearchBackend> HiddenDb<B> {
    /// Wraps an arbitrary [`SearchBackend`] behind a top-`k` interface
    /// with the default (row-id) ranking and no query budget.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    #[must_use]
    pub fn over(backend: B, k: usize) -> Self {
        assert!(k > 0, "top-k interface requires k >= 1");
        Self {
            backend,
            ranking: Arc::new(RowIdRanking),
            k,
            counter: QueryCounter::unlimited(),
            hot_responses: ShardedMemo::new(),
            hot_counts: ShardedMemo::new(),
            session: SessionMode::default(),
            obs: DbObs::over(MetricsRegistry::new()),
        }
    }

    /// Selects how [`HiddenDb::walk_session`] evaluates drill-down probes
    /// (incremental count-only by default). All modes produce bit-identical
    /// outcomes, query counts, and estimates; the fresh and materialising
    /// modes exist as reference points for the equivalence tests and the
    /// `scale03_incremental_walk` benchmark.
    #[must_use]
    pub fn with_session_mode(mut self, mode: SessionMode) -> Self {
        self.session = mode;
        self
    }

    /// The walk-session evaluation mode in use.
    #[must_use]
    pub fn session_mode(&self) -> SessionMode {
        self.session
    }

    /// Replaces the ranking function.
    #[must_use]
    pub fn with_ranking(mut self, ranking: Arc<dyn RankingFunction>) -> Self {
        self.ranking = ranking;
        self
    }

    /// Imposes a hard query budget (per-user/IP limit simulation).
    #[must_use]
    pub fn with_budget(mut self, limit: u64) -> Self {
        self.counter = QueryCounter::limited(limit);
        self
    }

    /// Strips the observability layer: every metric handle becomes a
    /// no-op and [`HiddenDb::metrics`] reports only the query-cost
    /// ledger. Outcomes are bit-identical either way (pinned by the
    /// obs-on/off equivalence proptest); the `scale08_observability`
    /// bench measures the difference in µs/probe.
    #[must_use]
    pub fn with_metrics_disabled(mut self) -> Self {
        self.obs = DbObs::over(MetricsRegistry::disabled());
        self
    }

    /// Installs a span [`TraceRing`] holding at most `capacity` events
    /// (tracing is off by default — a ring push takes a mutex). Spans
    /// cover issued queries and walk probes; timestamps are 0 (no clock),
    /// so traces are deterministic.
    #[must_use]
    pub fn with_trace(mut self, capacity: usize) -> Self {
        self.obs.trace = TraceRing::new(capacity);
        self
    }

    /// The installed span ring (disabled unless [`HiddenDb::with_trace`]
    /// was called).
    #[must_use]
    pub fn trace(&self) -> &TraceRing {
        &self.obs.trace
    }

    /// An ordered snapshot of every metric this interface and its
    /// backend stack expose: the query-cost ledger (always present, read
    /// from the [`QueryCounter`] — `hdb_queries_issued_total` equals the
    /// sum of the four outcome tallies), the interface-layer series
    /// (memo hits, walk counters), and whatever the backend contributes
    /// through [`SearchBackend::fill_metrics`].
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.obs.registry.snapshot();
        let c = &self.counter;
        snap.counters.insert("hdb_queries_issued_total".into(), c.issued());
        snap.counters.insert("hdb_queries_underflow_total".into(), c.underflow_count());
        snap.counters.insert("hdb_queries_valid_total".into(), c.valid_count());
        snap.counters.insert("hdb_queries_overflow_total".into(), c.overflow_count());
        snap.counters.insert("hdb_queries_errored_total".into(), c.errored_count());
        self.backend.fill_metrics(&mut snap);
        snap
    }

    /// The physical backend (owner-side; estimators never see it).
    #[must_use]
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The query counter (for harnesses that need outcome tallies or
    /// resets between trials).
    #[must_use]
    pub fn counter(&self) -> &QueryCounter {
        &self.counter
    }

    /// Distinct queries held by the server-side count-only memo
    /// (owner-side diagnostic; the memo itself is unobservable through
    /// the interface — it only saves server CPU).
    #[must_use]
    pub fn memoised_counts(&self) -> usize {
        self.hot_counts.len()
    }

    fn respond(&self, q: &Query) -> Result<QueryOutcome> {
        // Every issued query crosses to the backend's "server" exactly
        // once — remote simulations charge their round trip here, memo
        // hit or not (the memo saves server CPU, never the network hop).
        self.backend.round_trip();
        // Serve memoised expensive responses without re-evaluating.
        if let Some(hit) = self.hot_responses.get(q) {
            self.obs.memo_response_hits.inc();
            return Ok(hit);
        }
        let eval = self.backend.evaluate(q, self.k, self.ranking.as_ref())?;
        // Memoise expensive overflow responses (top-k over many matches).
        let expensive = expensive_response(eval.count, self.k);
        let outcome = eval.into_outcome(self.k);
        if expensive {
            self.hot_responses.insert(q.clone(), outcome.clone());
        }
        Ok(outcome)
    }
}

impl<B: SearchBackend> TopKInterface for HiddenDb<B> {
    fn schema(&self) -> &Schema {
        self.backend.schema()
    }

    fn k(&self) -> usize {
        self.k
    }

    fn query(&self, q: &Query) -> Result<QueryOutcome> {
        q.validate(self.backend.schema())?;
        self.counter.charge()?;
        // A failure after the charge (transport, server-side rejection)
        // still cost the budget — the request went out on the wire, so the
        // site metered it. Tally it as an errored outcome so the ledger
        // keeps partitioning `issued` exactly.
        let span = self.obs.trace.open("query", 0, 0);
        let outcome = match self.respond(q) {
            Ok(outcome) => outcome,
            Err(e) => {
                self.counter.record_outcome(OutcomeKind::Errored);
                self.obs.trace.close(span, "query", 0);
                return Err(e);
            }
        };
        self.counter.record_outcome(outcome_kind(&outcome));
        self.obs.trace.close(span, "query", 0);
        Ok(outcome)
    }

    fn queries_issued(&self) -> u64 {
        self.counter.issued()
    }

    fn budget_remaining(&self) -> Option<u64> {
        self.counter.remaining()
    }

    fn walk_session(&self, root: Query) -> Result<WalkSession<'_>> {
        WalkSession::for_db(self, root)
    }
}

impl<T: TopKInterface> TopKInterface for &T {
    fn schema(&self) -> &Schema {
        (**self).schema()
    }

    fn k(&self) -> usize {
        (**self).k()
    }

    fn query(&self, q: &Query) -> Result<QueryOutcome> {
        (**self).query(q)
    }

    fn queries_issued(&self) -> u64 {
        (**self).queries_issued()
    }

    fn budget_remaining(&self) -> Option<u64> {
        (**self).budget_remaining()
    }

    fn walk_session(&self, root: Query) -> Result<WalkSession<'_>> {
        (**self).walk_session(root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};

    /// The paper's running example (Table 1).
    pub(crate) fn running_example() -> Table {
        let schema = Schema::new(vec![
            Attribute::boolean("A1"),
            Attribute::boolean("A2"),
            Attribute::boolean("A3"),
            Attribute::boolean("A4"),
            Attribute::categorical("A5", ["1", "2", "3", "4", "5"]).unwrap(),
        ])
        .unwrap();
        Table::new(
            schema,
            vec![
                Tuple::new(vec![0, 0, 0, 0, 0]),
                Tuple::new(vec![0, 0, 0, 1, 0]),
                Tuple::new(vec![0, 0, 1, 0, 0]),
                Tuple::new(vec![0, 1, 1, 1, 0]),
                Tuple::new(vec![1, 1, 1, 0, 2]),
                Tuple::new(vec![1, 1, 1, 1, 0]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn outcome_classification_matches_paper_model() {
        let db = HiddenDb::new(running_example(), 1);
        // root overflows (6 tuples, k = 1)
        assert!(db.query(&Query::all()).unwrap().is_overflow());
        // A1=1&A2=0 underflows (q2 in Figure 1)
        let q2 = Query::all().and(0, 1).unwrap().and(1, 0).unwrap();
        assert!(db.query(&q2).unwrap().is_underflow());
        // A1=1&A2=1&A3=1&A4=0 is valid and returns exactly t5
        let q = Query::all()
            .and(0, 1)
            .unwrap()
            .and(1, 1)
            .unwrap()
            .and(2, 1)
            .unwrap()
            .and(3, 0)
            .unwrap();
        let out = db.query(&q).unwrap();
        assert!(out.is_valid());
        assert_eq!(out.returned_count(), 1);
        assert_eq!(out.tuples()[0].id, 4);
    }

    #[test]
    fn valid_returns_all_matches_overflow_exactly_k() {
        let db = HiddenDb::new(running_example(), 3);
        // A1=0 matches t1..t4 → overflow, 3 returned
        let q = Query::all().and(0, 0).unwrap();
        let out = db.query(&q).unwrap();
        assert!(out.is_overflow());
        assert_eq!(out.returned_count(), 3);
        // A1=1 matches t5,t6 → valid, both returned
        let q = Query::all().and(0, 1).unwrap();
        let out = db.query(&q).unwrap();
        assert!(out.is_valid());
        assert_eq!(out.returned_count(), 2);
    }

    #[test]
    fn returned_count_is_min_k_sel() {
        let db = HiddenDb::new(running_example(), 100);
        let out = db.query(&Query::all()).unwrap();
        assert!(out.is_valid());
        assert_eq!(out.returned_count(), 6);
    }

    #[test]
    fn query_counting_and_budget() {
        let db = HiddenDb::new(running_example(), 1).with_budget(2);
        assert_eq!(db.queries_issued(), 0);
        assert_eq!(db.budget_remaining(), Some(2));
        db.query(&Query::all()).unwrap();
        db.query(&Query::all()).unwrap();
        assert!(db.query(&Query::all()).is_err());
        assert_eq!(db.queries_issued(), 2);
        assert_eq!(db.budget_remaining(), Some(0));
        // unmetered interfaces report no budget
        assert_eq!(HiddenDb::new(running_example(), 1).budget_remaining(), None);
    }

    #[test]
    fn invalid_queries_rejected_without_charge() {
        let db = HiddenDb::new(running_example(), 1);
        let bad = Query::all().and(9, 0).unwrap();
        assert!(db.query(&bad).is_err());
        assert_eq!(db.queries_issued(), 0);
    }

    #[test]
    fn overflow_respects_ranking() {
        use crate::ranking::AttributeRanking;
        // rank by A5 value ascending; with k=1 and query ⊤ the single
        // returned tuple must be one of the A5=1 rows (lowest), tie-broken
        // by row id → t1.
        let db = HiddenDb::new(running_example(), 1)
            .with_ranking(Arc::new(AttributeRanking { attr: 4, descending: false }));
        let out = db.query(&Query::all()).unwrap();
        assert_eq!(out.tuples()[0].id, 0);
        // descending → the A5=3 row, t5 (id 4)
        let db = HiddenDb::new(running_example(), 1)
            .with_ranking(Arc::new(AttributeRanking { attr: 4, descending: true }));
        let out = db.query(&Query::all()).unwrap();
        assert_eq!(out.tuples()[0].id, 4);
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_rejected() {
        let _ = HiddenDb::new(running_example(), 0);
    }

    #[test]
    fn interface_types_are_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HiddenDb>();
        assert_send_sync::<HiddenDb<crate::ShardedDb>>();
        assert_send_sync::<HiddenDb<crate::LatencyBackend<TableBackend>>>();
        assert_send_sync::<crate::cache::CachingInterface<HiddenDb>>();
        assert_send_sync::<crate::counter::QueryCounter>();
        assert_send_sync::<Table>();
    }

    #[test]
    fn scan_and_bitmap_modes_answer_identically() {
        let bitmap = HiddenDb::new(running_example(), 2);
        let scan = HiddenDb::new(running_example(), 2).with_eval_mode(EvalMode::Scan);
        assert_eq!(scan.eval_mode(), EvalMode::Scan);
        let mut queries = vec![Query::all()];
        for attr in 0..5 {
            for v in 0..bitmap.schema().fanout(attr) {
                queries.push(Query::all().and(attr, v as u16).unwrap());
            }
        }
        queries.push(Query::all().and(0, 0).unwrap().and(2, 1).unwrap());
        for q in &queries {
            assert_eq!(bitmap.query(q).unwrap(), scan.query(q).unwrap(), "query {q:?}");
        }
    }

    /// Pins the query-cost accounting contract: exactly one counter
    /// increment per issued query, with the outcome tallied in exactly
    /// one bucket — underflow and overflow included.
    #[test]
    fn one_counter_increment_per_issued_query() {
        let db = HiddenDb::new(running_example(), 1);
        // overflow (6 matches, k=1)
        db.query(&Query::all()).unwrap();
        assert_eq!(db.queries_issued(), 1);
        assert_eq!(db.counter().overflow_count(), 1);
        // underflow (A1=1 ∧ A2=0 matches nothing)
        let q_under = Query::all().and(0, 1).unwrap().and(1, 0).unwrap();
        db.query(&q_under).unwrap();
        assert_eq!(db.queries_issued(), 2);
        assert_eq!(db.counter().underflow_count(), 1);
        // valid (exactly t5)
        let q_valid = Query::all()
            .and(0, 1)
            .unwrap()
            .and(1, 1)
            .unwrap()
            .and(2, 1)
            .unwrap()
            .and(3, 0)
            .unwrap();
        db.query(&q_valid).unwrap();
        assert_eq!(db.queries_issued(), 3);
        assert_eq!(db.counter().valid_count(), 1);
        // a repeat served from the server-side hot memo is still charged:
        // the client issued it, so the site meters it
        db.query(&Query::all()).unwrap();
        assert_eq!(db.queries_issued(), 4);
        assert_eq!(db.counter().overflow_count(), 2);
        // the tallies partition the issued count exactly
        let c = db.counter();
        assert_eq!(
            c.underflow_count() + c.valid_count() + c.overflow_count() + c.errored_count(),
            db.queries_issued()
        );
        // rejected queries are never counted anywhere
        assert!(db.query(&Query::all().and(9, 0).unwrap()).is_err());
        assert_eq!(db.queries_issued(), 4);
    }

    #[test]
    fn backend_accessor_exposes_ground_truth() {
        use crate::backend::SearchBackend as _;
        let db = HiddenDb::new(running_example(), 1);
        assert_eq!(db.backend().len(), 6);
        assert_eq!(db.table().len(), 6);
        let sharded = HiddenDb::over(crate::ShardedDb::new(&running_example(), 3), 1);
        assert_eq!(sharded.backend().len(), 6);
    }
}
