//! [`RemoteBackend`]: a [`SearchBackend`] living on the other side of a
//! TCP socket, served by the `hdb-server` crate.
//!
//! This is the real counterpart of the simulated
//! [`LatencyBackend`](crate::LatencyBackend): every evaluation is one
//! request/response exchange over the [`wire`](crate::wire) protocol, so
//! `HiddenDb::over(RemoteBackend::connect(addr)?, k)` puts an actual
//! network between the paper's estimators and the corpus while the whole
//! budget / accounting / memo / session stack runs unchanged on the
//! client.
//!
//! Connections are pooled: each request checks one out (opening a new
//! socket only when the pool is empty), so concurrent estimation workers
//! ride concurrent connections and a serial drill-down reuses one warm
//! socket. The incremental walk fast path maps onto server-side sessions:
//! [`SearchBackend::walk_state`] opens a session (the server materialises
//! the root match set) and probes reference it by `(sid, level)`.
//!
//! ## Pipelined extends
//!
//! [`SearchBackend::extend_state`] costs **zero** round trips: it only
//! records a pending branch commitment in the client-side walk node. The
//! next probe resolves the pending chain in one exchange — a single
//! fused `WalkExtendEvaluate` / `WalkExtendClassify` frame when one
//! extend is pending, or one `Batch` frame (extends + fused probe,
//! answered with one response per member) when several are. A drill-down
//! step — commit a branch, probe a child — therefore costs exactly one
//! round trip, down from two. Extends replay idempotently on the server
//! (extend-from-level truncates deeper levels first), which is what
//! makes the pooled-connection stale retry safe — and the retry paths
//! enforce it structurally: [`Request::replayable`] gates every re-send,
//! so a message that must not be replayed (`WalkOpen` allocates a fresh
//! session per send) can never ride a retry, whichever method a caller
//! picks.
//!
//! Every fast-path degradation (evicted session, failed open) falls back
//! to re-rooting a fresh session or fresh evaluation, both bit-identical,
//! so transport hiccups can slow a walk down but never change a result;
//! hard failures surface as [`HdbError::Transport`].

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::backend::{Classified, Evaluation, SearchBackend, WalkState};
use crate::error::{HdbError, Result};
use crate::obs::MetricsSnapshot;
use crate::query::{Predicate, Query};
use crate::ranking::{RankingFunction, RankingSpec};
use crate::schema::{AttrId, Schema};
use crate::wire::{read_response, write_frame, Request, Response, PROTOCOL_VERSION};

/// Default cap on pooled idle connections.
const DEFAULT_MAX_IDLE: usize = 8;

/// Default per-operation I/O timeout: long enough for a paper-scale
/// evaluation, short enough that a hung server surfaces as a typed error
/// rather than a stuck client.
const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(30);

/// The connection pool + request plumbing shared by a [`RemoteBackend`]
/// and the walk-session handles it spawns.
struct ClientCore {
    addr: String,
    idle: Mutex<Vec<TcpStream>>,
    max_idle: usize,
    io_timeout: Duration,
    /// Wire exchanges performed (one per request frame sent, batches
    /// included) — the round-trip economics evidence.
    requests: AtomicU64,
    /// Exchanges re-sent on a fresh socket after a pooled connection
    /// turned out stale. Every retry is also counted in `requests`.
    retries: AtomicU64,
}

impl ClientCore {
    fn open(&self) -> Result<TcpStream> {
        let stream = TcpStream::connect(&self.addr)
            .map_err(|e| HdbError::Transport(format!("connect to {} failed: {e}", self.addr)))?;
        let setup = stream
            .set_nodelay(true)
            .and_then(|()| stream.set_read_timeout(Some(self.io_timeout)))
            .and_then(|()| stream.set_write_timeout(Some(self.io_timeout)));
        setup.map_err(|e| HdbError::Transport(format!("socket setup failed: {e}")))?;
        Ok(stream)
    }

    fn checkin(&self, stream: TcpStream) {
        // Poison recovery throughout this file: the idle pool is a plain
        // Vec of sockets with no cross-field invariant, so a panicked
        // holder leaves it fully usable — recover instead of unwinding.
        let mut idle = self.idle.lock().unwrap_or_else(|p| p.into_inner());
        if idle.len() < self.max_idle {
            idle.push(stream);
        } // else: drop (close) the surplus connection
    }

    /// One request/response exchange on an open connection. Streamed
    /// (chunked-page) responses are reassembled transparently.
    fn roundtrip(&self, stream: &mut TcpStream, req: &Request) -> Result<Response> {
        // Assemble the frame first so the request hits the wire in one
        // write (one segment on loopback).
        let mut framed = Vec::new();
        write_frame(&mut framed, &req.encode()?)?;
        self.requests.fetch_add(1, Ordering::Relaxed);
        stream
            .write_all(&framed)
            .map_err(|e| HdbError::Transport(format!("write failed: {e}")))?;
        read_response(stream)?
            .ok_or_else(|| HdbError::Transport("server closed the connection".into()))
    }

    /// One multi-request exchange: the pre-framed bytes go out in one
    /// write, `n` responses come back (one per batch member).
    fn exchange(&self, stream: &mut TcpStream, framed: &[u8], n: usize) -> Result<Vec<Response>> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        stream
            .write_all(framed)
            .map_err(|e| HdbError::Transport(format!("write failed: {e}")))?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let resp = read_response(stream)?.ok_or_else(|| {
                HdbError::Transport("server closed the connection mid-batch".into())
            })?;
            out.push(resp);
        }
        Ok(out)
    }

    /// Sends `req` on a pooled connection, falling back to a fresh one if
    /// the pooled socket turned out stale (the server may have dropped it
    /// while idle). The single retry is gated on
    /// [`Request::replayable`] **structurally** — a non-replayable
    /// request (`WalkOpen`, which allocates a fresh session per send) is
    /// routed through the single-attempt [`ClientCore::request_once`]
    /// path no matter who calls, so no future call site can accidentally
    /// double-apply an effect by picking the convenient method.
    fn request(&self, req: &Request) -> Result<Response> {
        if !req.replayable() {
            return self.request_once(req);
        }
        let pooled = self.idle.lock().unwrap_or_else(|p| p.into_inner()).pop();
        if let Some(mut stream) = pooled {
            if let Ok(resp) = self.roundtrip(&mut stream, req) {
                self.checkin(stream);
                return Ok(resp);
            }
            // stale pooled connection: drop it and retry fresh below
            self.retries.fetch_add(1, Ordering::Relaxed);
        }
        let mut stream = self.open()?;
        let resp = self.roundtrip(&mut stream, req)?;
        self.checkin(stream);
        Ok(resp)
    }

    /// Sends several requests in one frame (a singleton skips the batch
    /// wrapper) and reads one response per member, in member order, with
    /// the same stale-retry as [`ClientCore::request`]. The retry
    /// re-sends the **whole** frame, so it is gated on every member being
    /// [`Request::replayable`]: extends replay idempotently (the server
    /// truncates the stack to the parent before pushing, so a batch whose
    /// fused probe already committed server-side converges to the same
    /// stack on the second pass) and probes are reads — but a frame
    /// carrying a non-replayable member gets exactly one attempt.
    fn request_many(&self, reqs: Vec<Request>) -> Result<Vec<Response>> {
        let n = reqs.len();
        let replayable = reqs.iter().all(Request::replayable);
        let mut reqs = reqs;
        let payload = match n {
            0 => return Ok(Vec::new()),
            1 => match reqs.pop() {
                Some(req) => req.encode()?,
                None => return Ok(Vec::new()),
            },
            _ => Request::Batch(reqs).encode()?,
        };
        let mut framed = Vec::new();
        write_frame(&mut framed, &payload)?;
        let pooled = self.idle.lock().unwrap_or_else(|p| p.into_inner()).pop();
        if let Some(mut stream) = pooled {
            match self.exchange(&mut stream, &framed, n) {
                Ok(resps) => {
                    self.checkin(stream);
                    return Ok(resps);
                }
                Err(e) if !replayable => return Err(e),
                Err(_) => {
                    // stale pooled connection: retry fresh below
                    self.retries.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let mut stream = self.open()?;
        let resps = self.exchange(&mut stream, &framed, n)?;
        self.checkin(stream);
        Ok(resps)
    }

    /// [`ClientCore::request`] without the stale-connection retry, for
    /// requests with server-side effects (`WalkOpen`): a retry after a
    /// processed-but-unanswered attempt would leak an orphan session into
    /// the server's table. Failing is fine — the caller falls back to
    /// fresh evaluation.
    fn request_once(&self, req: &Request) -> Result<Response> {
        let mut stream = match self.idle.lock().unwrap_or_else(|p| p.into_inner()).pop() {
            Some(stream) => stream,
            None => self.open()?,
        };
        let resp = self.roundtrip(&mut stream, req)?;
        self.checkin(stream);
        Ok(resp)
    }
}

/// Converts a protocol-level error response into `Err`, handing every
/// other variant to the caller's matcher.
fn ok_or_err(resp: Response) -> Result<Response> {
    match resp {
        Response::Error(e) => Err(e),
        other => Ok(other),
    }
}

fn unexpected(what: &str, got: &Response) -> HdbError {
    HdbError::Transport(format!("protocol error: expected {what}, got {got:?}"))
}

/// Client-side handle of one server-side walk session. All levels of a
/// walk share the handle; dropping the last clone closes the session
/// (best effort — the server also evicts by LRU).
struct RemoteSessionHandle {
    core: Arc<ClientCore>,
    sid: u64,
}

impl Drop for RemoteSessionHandle {
    fn drop(&mut self) {
        // Close only over an already-idle connection: a drop must never
        // block on a dead server, and an unclosed session just ages out
        // of the server's LRU table.
        let pooled = self.core.idle.lock().unwrap_or_else(|p| p.into_inner()).pop();
        if let Some(mut stream) = pooled {
            let core = Arc::clone(&self.core);
            if core.roundtrip(&mut stream, &Request::WalkClose { sid: self.sid }).is_ok() {
                self.core.checkin(stream);
            }
        }
    }
}

/// Where one walk node stands with respect to the server.
enum NodeState {
    /// The server knows this node: `(sid, level)` in a live session.
    Committed { session: Arc<RemoteSessionHandle>, level: u32 },
    /// The extend that created this node has not crossed the wire yet —
    /// it will piggyback on the next probe. `pred` extends the parent;
    /// the node's full query lives on [`RemoteNode::query`].
    Pending { pred: Predicate },
    /// The server rejected this node's extend with a typed error; probes
    /// through it go to fresh evaluation instead of retrying forever.
    Broken,
}

/// One node of the client-side walk tree. Children keep their parent
/// chain alive (`Arc`), so a pending node can always resolve upward to
/// the nearest committed ancestor.
struct RemoteNode {
    /// The node's full query — the re-root anchor after an eviction.
    query: Query,
    parent: Option<Arc<RemoteNode>>,
    state: Mutex<NodeState>,
}

impl RemoteNode {
    fn set_state(&self, state: NodeState) {
        *self.state.lock().unwrap_or_else(|p| p.into_inner()) = state;
    }
}

/// The payload a [`RemoteBackend`] stores in a [`WalkState`].
struct RemoteWalk {
    node: Arc<RemoteNode>,
}

/// How a probe should reach the server, resolved from the walk tree.
enum Anchor {
    /// Nearest committed ancestor plus the pending chain (shallowest
    /// first) that must commit on the way to the probed node.
    Chain {
        session: Arc<RemoteSessionHandle>,
        level: u32,
        pendings: Vec<Arc<RemoteNode>>,
    },
    /// No usable server session behind this node — evaluate fresh.
    Fresh,
}

/// Walks from `node` up to the nearest committed ancestor, collecting
/// pending nodes along the way.
fn anchor_of(node: &Arc<RemoteNode>) -> Anchor {
    let mut pendings = Vec::new();
    let mut cur = Arc::clone(node);
    loop {
        let next = {
            let state = cur.state.lock().unwrap_or_else(|p| p.into_inner());
            match &*state {
                NodeState::Committed { session, level } => {
                    let (session, level) = (Arc::clone(session), *level);
                    pendings.reverse();
                    return Anchor::Chain { session, level, pendings };
                }
                NodeState::Broken => return Anchor::Fresh,
                NodeState::Pending { .. } => cur.parent.clone(),
            }
        };
        pendings.push(Arc::clone(&cur));
        match next {
            Some(parent) => cur = parent,
            None => return Anchor::Fresh,
        }
    }
}

/// The pending `pred` of a node (the node must be in `Pending` state;
/// a concurrent commit makes this `None` and the caller re-resolves).
fn pending_pred(node: &RemoteNode) -> Option<Predicate> {
    match &*node.state.lock().unwrap_or_else(|p| p.into_inner()) {
        NodeState::Pending { pred } => Some(*pred),
        _ => None,
    }
}

/// What the batched resolution of a pending chain concluded.
enum Resolved {
    /// The probe's response (the chain committed up to it).
    Probe(Response),
    /// The session disappeared server-side; re-root and retry plainly.
    Gone,
    /// An extend was rejected with a typed error; fall back fresh.
    Broken,
}

/// A [`SearchBackend`] speaking the hidden-DB wire protocol to an
/// `hdb-server` over pooled TCP connections.
///
/// The schema and corpus size are fetched once at connect time (the
/// hidden-database model is static); every other operation is one
/// request/response round trip — including a drill-down extend+probe,
/// which travels as one fused or batched frame (see the module docs).
pub struct RemoteBackend {
    core: Arc<ClientCore>,
    schema: Schema,
    len: usize,
}

impl std::fmt::Debug for RemoteBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteBackend")
            .field("addr", &self.core.addr)
            .field("len", &self.len)
            .finish()
    }
}

impl RemoteBackend {
    /// Connects to an `hdb-server` at `addr` (e.g. `"127.0.0.1:7171"`),
    /// performs the version handshake, and fetches the schema and corpus
    /// size.
    ///
    /// # Errors
    /// [`HdbError::Transport`] if the server is unreachable, speaks a
    /// different protocol version, or answers malformed frames.
    pub fn connect(addr: impl Into<String>) -> Result<Self> {
        Self::connect_with(addr, DEFAULT_MAX_IDLE, DEFAULT_IO_TIMEOUT)
    }

    /// [`RemoteBackend::connect`] with an explicit idle-connection cap and
    /// per-operation I/O timeout.
    ///
    /// # Errors
    /// Same as [`RemoteBackend::connect`].
    pub fn connect_with(
        addr: impl Into<String>,
        max_idle: usize,
        io_timeout: Duration,
    ) -> Result<Self> {
        let core = Arc::new(ClientCore {
            addr: addr.into(),
            idle: Mutex::new(Vec::new()),
            max_idle: max_idle.max(1),
            io_timeout,
            requests: AtomicU64::new(0),
            retries: AtomicU64::new(0),
        });
        match ok_or_err(core.request(&Request::Hello { version: PROTOCOL_VERSION })?)? {
            Response::Hello { version } if version == PROTOCOL_VERSION => {}
            Response::Hello { version } => {
                return Err(HdbError::Transport(format!(
                    "protocol version mismatch: client {PROTOCOL_VERSION}, server {version}"
                )))
            }
            other => return Err(unexpected("Hello", &other)),
        }
        let schema = match ok_or_err(core.request(&Request::Schema)?)? {
            Response::Schema(s) => s,
            other => return Err(unexpected("Schema", &other)),
        };
        let len = match ok_or_err(core.request(&Request::Len)?)? {
            Response::Len(n) => usize::try_from(n)
                .map_err(|_| HdbError::Transport("corpus size overflows usize".into()))?,
            other => return Err(unexpected("Len", &other)),
        };
        Ok(Self { core, schema, len })
    }

    /// The server address this backend talks to.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.core.addr
    }

    /// Idle pooled connections right now (diagnostics).
    #[must_use]
    pub fn idle_connections(&self) -> usize {
        self.core.idle.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// Wire exchanges performed so far (one per frame sent — a batched
    /// extend chain plus probe counts once). This is the round-trip
    /// economics evidence: with pipelined extends, a drill-down step
    /// adds exactly one.
    #[must_use]
    pub fn requests_sent(&self) -> u64 {
        self.core.requests.load(Ordering::Relaxed)
    }

    /// Exchanges that were re-sent on a fresh socket after a pooled
    /// connection turned out stale. Retries are replay-gated (see the
    /// module docs) and each one is also counted in
    /// [`RemoteBackend::requests_sent`].
    #[must_use]
    pub fn retries_sent(&self) -> u64 {
        self.core.retries.load(Ordering::Relaxed)
    }

    /// Fetches the **server's** metrics snapshot over the wire
    /// ([`Request::Stats`]) — the same series its Prometheus endpoint
    /// renders, so a client can audit the server-side query ledger
    /// without scraping a second port.
    ///
    /// # Errors
    /// [`HdbError::Transport`] when the exchange fails or the server
    /// answers with anything but a snapshot.
    pub fn server_stats(&self) -> Result<MetricsSnapshot> {
        match ok_or_err(self.core.request(&Request::Stats)?)? {
            Response::Stats(snap) => Ok(snap),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// One cheap request/response round trip ([`Request::Len`]) proving
    /// the server is alive and answering protocol — the fleet health
    /// checker's probe. Also re-validates that the server still reports
    /// the corpus size learned at connect time, so a restarted server
    /// with different data is detected instead of silently merged.
    ///
    /// # Errors
    /// [`HdbError::Transport`] when the exchange fails or the reported
    /// size changed.
    pub fn ping(&self) -> Result<()> {
        match ok_or_err(self.core.request(&Request::Len)?)? {
            Response::Len(n) if usize::try_from(n) == Ok(self.len) => Ok(()),
            Response::Len(n) => Err(HdbError::Transport(format!(
                "server at {} now reports {n} rows (expected {})",
                self.core.addr, self.len
            ))),
            other => Err(unexpected("Len", &other)),
        }
    }

    fn spec_of(ranking: &dyn RankingFunction) -> Result<RankingSpec> {
        ranking.wire_spec().ok_or_else(|| {
            HdbError::Transport(
                "ranking function has no wire spec; only RankingSpec-describable rankings \
                 can cross the network"
                    .into(),
            )
        })
    }

    /// Re-roots a walk node after its session vanished server-side:
    /// opens a fresh session whose root *is* the node's query, so probes
    /// from the node stay incremental. Returns the new handle, or `None`
    /// when the open failed (callers then evaluate fresh).
    fn re_root(&self, node: &Arc<RemoteNode>) -> Option<Arc<RemoteSessionHandle>> {
        match self.core.request_once(&Request::WalkOpen { root: node.query.clone() }) {
            Ok(Response::Session { sid }) => {
                let session =
                    Arc::new(RemoteSessionHandle { core: Arc::clone(&self.core), sid });
                node.set_state(NodeState::Committed { session: Arc::clone(&session), level: 0 });
                Some(session)
            }
            _ => None,
        }
    }

    /// Sends the pending chain plus the probe in one exchange and
    /// commits each acknowledged extend into its node. `make_probe`
    /// builds the final (fused) request from `(sid, parent_level)`;
    /// `probe_of` extracts and commits the fused response.
    fn resolve_chain(
        &self,
        session: &Arc<RemoteSessionHandle>,
        base_level: u32,
        pendings: &[Arc<RemoteNode>],
        make_probe: impl FnOnce(u64, u32, Query, Predicate) -> Request,
    ) -> Result<Resolved> {
        let sid = session.sid;
        let mut reqs = Vec::with_capacity(pendings.len());
        let mut level = base_level;
        let Some((last, body)) = pendings.split_last() else {
            return Ok(Resolved::Broken);
        };
        for node in body {
            let Some(pred) = pending_pred(node) else {
                // Concurrently committed under us — rare; degrade fresh.
                return Ok(Resolved::Broken);
            };
            reqs.push(Request::WalkExtend {
                sid,
                parent_level: level,
                child: node.query.clone(),
                pred,
            });
            level += 1;
        }
        let Some(last_pred) = pending_pred(last) else {
            return Ok(Resolved::Broken);
        };
        reqs.push(make_probe(sid, level, last.query.clone(), last_pred));
        let resps = self.core.request_many(reqs)?;
        if resps.len() != pendings.len() {
            return Err(HdbError::Transport(format!(
                "protocol error: {} responses to a {}-member batch",
                resps.len(),
                pendings.len()
            )));
        }
        let mut resps = resps.into_iter();
        for node in body {
            match resps.next() {
                Some(Response::Level { level }) => {
                    node.set_state(NodeState::Committed {
                        session: Arc::clone(session),
                        level,
                    });
                }
                Some(Response::SessionGone) => return Ok(Resolved::Gone),
                Some(_) | None => {
                    node.set_state(NodeState::Broken);
                    return Ok(Resolved::Broken);
                }
            }
        }
        match resps.next() {
            Some(Response::SessionGone) => Ok(Resolved::Gone),
            Some(resp) => Ok(Resolved::Probe(resp)),
            None => Ok(Resolved::Broken),
        }
    }
}

impl SearchBackend for RemoteBackend {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn len(&self) -> usize {
        self.len
    }

    fn evaluate(&self, q: &Query, k: usize, ranking: &dyn RankingFunction) -> Result<Evaluation> {
        let req = Request::Evaluate {
            query: q.clone(),
            k: k as u64,
            ranking: Self::spec_of(ranking)?,
        };
        match ok_or_err(self.core.request(&req)?)? {
            Response::Evaluation(ev) => Ok(ev),
            other => Err(unexpected("Evaluation", &other)),
        }
    }

    fn fill_metrics(&self, snap: &mut MetricsSnapshot) {
        snap.counters.insert("hdb_remote_requests_total".into(), self.requests_sent());
        snap.counters.insert("hdb_remote_retries_total".into(), self.retries_sent());
    }

    fn exact_count(&self, q: &Query) -> Result<usize> {
        match ok_or_err(self.core.request(&Request::ExactCount { query: q.clone() })?)? {
            Response::Count(n) => usize::try_from(n)
                .map_err(|_| HdbError::Transport("count overflows usize".into())),
            other => Err(unexpected("Count", &other)),
        }
    }

    fn exact_sum(&self, attr: AttrId, q: &Query) -> Result<f64> {
        let req = Request::ExactSum { attr: attr as u64, query: q.clone() };
        match ok_or_err(self.core.request(&req)?)? {
            Response::Sum(x) => Ok(x),
            other => Err(unexpected("Sum", &other)),
        }
    }

    fn walk_state(&self, q: &Query) -> WalkState {
        // A failed open falls back to fresh evaluation: correctness is
        // preserved and a genuinely dead server will surface a Transport
        // error on the next charged probe.
        match self.core.request_once(&Request::WalkOpen { root: q.clone() }) {
            Ok(Response::Session { sid }) => WalkState::with_payload(RemoteWalk {
                node: Arc::new(RemoteNode {
                    query: q.clone(),
                    parent: None,
                    state: Mutex::new(NodeState::Committed {
                        session: Arc::new(RemoteSessionHandle {
                            core: Arc::clone(&self.core),
                            sid,
                        }),
                        level: 0,
                    }),
                }),
            }),
            _ => WalkState::fallback(),
        }
    }

    /// Zero round trips: the branch commitment is recorded client-side
    /// and piggybacks onto the next probe (see the module docs).
    fn extend_state(
        &self,
        parent: &WalkState,
        child: &Query,
        pred: Predicate,
        _recycled: WalkState,
    ) -> WalkState {
        let Some(walk) = parent.payload::<RemoteWalk>() else {
            // No server session behind the parent: open one rooted at
            // the child so the subtree below is still incremental.
            return self.walk_state(child);
        };
        WalkState::with_payload(RemoteWalk {
            node: Arc::new(RemoteNode {
                query: child.clone(),
                parent: Some(Arc::clone(&walk.node)),
                state: Mutex::new(NodeState::Pending { pred }),
            }),
        })
    }

    fn evaluate_from(
        &self,
        parent: &WalkState,
        child: &Query,
        pred: Predicate,
        k: usize,
        ranking: &dyn RankingFunction,
    ) -> Result<Evaluation> {
        let Some(walk) = parent.payload::<RemoteWalk>() else {
            return self.evaluate(child, k, ranking);
        };
        let spec = Self::spec_of(ranking)?;
        let plain = |sid: u64, parent_level: u32| -> Result<Evaluation> {
            let req = Request::WalkEvaluate {
                sid,
                parent_level,
                child: child.clone(),
                pred,
                k: k as u64,
                ranking: spec,
            };
            match ok_or_err(self.core.request(&req)?)? {
                Response::Evaluation(ev) => Ok(ev),
                Response::SessionGone => self.evaluate(child, k, ranking),
                other => Err(unexpected("Evaluation", &other)),
            }
        };
        match anchor_of(&walk.node) {
            Anchor::Fresh => self.evaluate(child, k, ranking),
            Anchor::Chain { session, level, pendings } if pendings.is_empty() => {
                plain(session.sid, level)
            }
            Anchor::Chain { session, level, pendings } => {
                let resolved = self.resolve_chain(
                    &session,
                    level,
                    &pendings,
                    |sid, parent_level, ext_child, ext_pred| Request::WalkExtendEvaluate {
                        sid,
                        parent_level,
                        ext_child,
                        ext_pred,
                        child: child.clone(),
                        pred,
                        k: k as u64,
                        ranking: spec,
                    },
                )?;
                match resolved {
                    Resolved::Probe(resp) => match ok_or_err(resp)? {
                        Response::ExtendEvaluation { level, evaluation } => {
                            if let Some(last) = pendings.last() {
                                last.set_state(NodeState::Committed { session, level });
                            }
                            Ok(evaluation)
                        }
                        other => Err(unexpected("ExtendEvaluation", &other)),
                    },
                    Resolved::Gone => match self.re_root(&walk.node) {
                        Some(session) => plain(session.sid, 0),
                        None => self.evaluate(child, k, ranking),
                    },
                    Resolved::Broken => self.evaluate(child, k, ranking),
                }
            }
        }
    }

    fn classify_from(
        &self,
        parent: &WalkState,
        child: &Query,
        pred: Predicate,
        k: usize,
    ) -> Result<Classified> {
        let fresh = || -> Result<Classified> {
            Ok(Classified::from_evaluation(
                self.evaluate(child, k, &crate::ranking::RowIdRanking)?,
                k,
            ))
        };
        let Some(walk) = parent.payload::<RemoteWalk>() else {
            return fresh();
        };
        let plain = |sid: u64, parent_level: u32| -> Result<Classified> {
            let req = Request::WalkClassify {
                sid,
                parent_level,
                child: child.clone(),
                pred,
                k: k as u64,
            };
            match ok_or_err(self.core.request(&req)?)? {
                Response::Classified(c) => Ok(c),
                Response::SessionGone => fresh(),
                other => Err(unexpected("Classified", &other)),
            }
        };
        match anchor_of(&walk.node) {
            Anchor::Fresh => fresh(),
            Anchor::Chain { session, level, pendings } if pendings.is_empty() => {
                plain(session.sid, level)
            }
            Anchor::Chain { session, level, pendings } => {
                let resolved = self.resolve_chain(
                    &session,
                    level,
                    &pendings,
                    |sid, parent_level, ext_child, ext_pred| Request::WalkExtendClassify {
                        sid,
                        parent_level,
                        ext_child,
                        ext_pred,
                        child: child.clone(),
                        pred,
                        k: k as u64,
                    },
                )?;
                match resolved {
                    Resolved::Probe(resp) => match ok_or_err(resp)? {
                        Response::ExtendClassified { level, classified } => {
                            if let Some(last) = pendings.last() {
                                last.set_state(NodeState::Committed { session, level });
                            }
                            Ok(classified)
                        }
                        other => Err(unexpected("ExtendClassified", &other)),
                    },
                    Resolved::Gone => match self.re_root(&walk.node) {
                        Some(session) => plain(session.sid, 0),
                        None => fresh(),
                    },
                    Resolved::Broken => fresh(),
                }
            }
        }
    }
}
