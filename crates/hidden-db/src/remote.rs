//! [`RemoteBackend`]: a [`SearchBackend`] living on the other side of a
//! TCP socket, served by the `hdb-server` crate.
//!
//! This is the real counterpart of the simulated
//! [`LatencyBackend`](crate::LatencyBackend): every evaluation is one
//! request/response exchange over the [`wire`](crate::wire) protocol, so
//! `HiddenDb::over(RemoteBackend::connect(addr)?, k)` puts an actual
//! network between the paper's estimators and the corpus while the whole
//! budget / accounting / memo / session stack runs unchanged on the
//! client.
//!
//! Connections are pooled: each request checks one out (opening a new
//! socket only when the pool is empty), so concurrent estimation workers
//! ride concurrent connections and a serial drill-down reuses one warm
//! socket. The incremental walk fast path maps onto server-side sessions:
//! [`SearchBackend::walk_state`] opens a session (the server materialises
//! the root match set), extends and probes reference it by id, and the
//! session is closed — best-effort — when the last client-side state
//! referencing it drops. Every fast-path degradation (evicted session,
//! failed open) falls back to fresh evaluation, which is bit-identical,
//! so transport hiccups can slow a walk down but never change a result;
//! hard failures surface as [`HdbError::Transport`].

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::backend::{Classified, Evaluation, SearchBackend, WalkState};
use crate::error::{HdbError, Result};
use crate::query::{Predicate, Query};
use crate::ranking::{RankingFunction, RankingSpec};
use crate::schema::{AttrId, Schema};
use crate::wire::{read_frame, write_frame, Request, Response, PROTOCOL_VERSION};

/// Default cap on pooled idle connections.
const DEFAULT_MAX_IDLE: usize = 8;

/// Default per-operation I/O timeout: long enough for a paper-scale
/// evaluation, short enough that a hung server surfaces as a typed error
/// rather than a stuck client.
const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(30);

/// The connection pool + request plumbing shared by a [`RemoteBackend`]
/// and the walk-session handles it spawns.
struct ClientCore {
    addr: String,
    idle: Mutex<Vec<TcpStream>>,
    max_idle: usize,
    io_timeout: Duration,
}

impl ClientCore {
    fn open(&self) -> Result<TcpStream> {
        let stream = TcpStream::connect(&self.addr)
            .map_err(|e| HdbError::Transport(format!("connect to {} failed: {e}", self.addr)))?;
        let setup = stream
            .set_nodelay(true)
            .and_then(|()| stream.set_read_timeout(Some(self.io_timeout)))
            .and_then(|()| stream.set_write_timeout(Some(self.io_timeout)));
        setup.map_err(|e| HdbError::Transport(format!("socket setup failed: {e}")))?;
        Ok(stream)
    }

    fn checkin(&self, stream: TcpStream) {
        // Poison recovery throughout this file: the idle pool is a plain
        // Vec of sockets with no cross-field invariant, so a panicked
        // holder leaves it fully usable — recover instead of unwinding.
        let mut idle = self.idle.lock().unwrap_or_else(|p| p.into_inner());
        if idle.len() < self.max_idle {
            idle.push(stream);
        } // else: drop (close) the surplus connection
    }

    /// One request/response exchange on an open connection.
    fn roundtrip(stream: &mut TcpStream, req: &Request) -> Result<Response> {
        // Assemble the frame first so the request hits the wire in one
        // write (one segment on loopback).
        let mut framed = Vec::new();
        write_frame(&mut framed, &req.encode()?)?;
        stream
            .write_all(&framed)
            .map_err(|e| HdbError::Transport(format!("write failed: {e}")))?;
        let payload = read_frame(stream)?
            .ok_or_else(|| HdbError::Transport("server closed the connection".into()))?;
        Response::decode(&payload)
    }

    /// Sends `req` on a pooled connection, falling back to a fresh one if
    /// the pooled socket turned out stale (the server may have dropped it
    /// while idle). Every request routed here is an idempotent read, so
    /// the single retry can never double-apply an effect — `WalkOpen`,
    /// which creates server state, goes through
    /// [`ClientCore::request_once`] instead.
    fn request(&self, req: &Request) -> Result<Response> {
        let pooled = self.idle.lock().unwrap_or_else(|p| p.into_inner()).pop();
        if let Some(mut stream) = pooled {
            if let Ok(resp) = Self::roundtrip(&mut stream, req) {
                self.checkin(stream);
                return Ok(resp);
            }
            // stale pooled connection: drop it and retry fresh below
        }
        let mut stream = self.open()?;
        let resp = Self::roundtrip(&mut stream, req)?;
        self.checkin(stream);
        Ok(resp)
    }

    /// [`ClientCore::request`] without the stale-connection retry, for
    /// requests with server-side effects (`WalkOpen`): a retry after a
    /// processed-but-unanswered attempt would leak an orphan session into
    /// the server's table. Failing is fine — the caller falls back to
    /// fresh evaluation.
    fn request_once(&self, req: &Request) -> Result<Response> {
        let mut stream = match self.idle.lock().unwrap_or_else(|p| p.into_inner()).pop() {
            Some(stream) => stream,
            None => self.open()?,
        };
        let resp = Self::roundtrip(&mut stream, req)?;
        self.checkin(stream);
        Ok(resp)
    }
}

/// Converts a protocol-level error response into `Err`, handing every
/// other variant to the caller's matcher.
fn ok_or_err(resp: Response) -> Result<Response> {
    match resp {
        Response::Error(e) => Err(e),
        other => Ok(other),
    }
}

fn unexpected(what: &str, got: &Response) -> HdbError {
    HdbError::Transport(format!("protocol error: expected {what}, got {got:?}"))
}

/// Client-side handle of one server-side walk session. All levels of a
/// walk share the handle; dropping the last clone closes the session
/// (best effort — the server also evicts by LRU).
struct RemoteSessionHandle {
    core: Arc<ClientCore>,
    sid: u64,
}

impl Drop for RemoteSessionHandle {
    fn drop(&mut self) {
        // Close only over an already-idle connection: a drop must never
        // block on a dead server, and an unclosed session just ages out
        // of the server's LRU table.
        let pooled = self.core.idle.lock().unwrap_or_else(|p| p.into_inner()).pop();
        if let Some(mut stream) = pooled {
            if ClientCore::roundtrip(&mut stream, &Request::WalkClose { sid: self.sid }).is_ok() {
                self.core.checkin(stream);
            }
        }
    }
}

/// The payload a [`RemoteBackend`] stores in a [`WalkState`]: which
/// server-side session and which level of its state stack this node is.
struct RemoteWalk {
    session: Arc<RemoteSessionHandle>,
    level: u32,
}

/// A [`SearchBackend`] speaking the hidden-DB wire protocol to an
/// `hdb-server` over pooled TCP connections.
///
/// The schema and corpus size are fetched once at connect time (the
/// hidden-database model is static); every other operation is one
/// request/response round trip. See the module docs for the walk-session
/// mapping.
pub struct RemoteBackend {
    core: Arc<ClientCore>,
    schema: Schema,
    len: usize,
}

impl std::fmt::Debug for RemoteBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteBackend")
            .field("addr", &self.core.addr)
            .field("len", &self.len)
            .finish()
    }
}

impl RemoteBackend {
    /// Connects to an `hdb-server` at `addr` (e.g. `"127.0.0.1:7171"`),
    /// performs the version handshake, and fetches the schema and corpus
    /// size.
    ///
    /// # Errors
    /// [`HdbError::Transport`] if the server is unreachable, speaks a
    /// different protocol version, or answers malformed frames.
    pub fn connect(addr: impl Into<String>) -> Result<Self> {
        Self::connect_with(addr, DEFAULT_MAX_IDLE, DEFAULT_IO_TIMEOUT)
    }

    /// [`RemoteBackend::connect`] with an explicit idle-connection cap and
    /// per-operation I/O timeout.
    ///
    /// # Errors
    /// Same as [`RemoteBackend::connect`].
    pub fn connect_with(
        addr: impl Into<String>,
        max_idle: usize,
        io_timeout: Duration,
    ) -> Result<Self> {
        let core = Arc::new(ClientCore {
            addr: addr.into(),
            idle: Mutex::new(Vec::new()),
            max_idle: max_idle.max(1),
            io_timeout,
        });
        match ok_or_err(core.request(&Request::Hello { version: PROTOCOL_VERSION })?)? {
            Response::Hello { version } if version == PROTOCOL_VERSION => {}
            Response::Hello { version } => {
                return Err(HdbError::Transport(format!(
                    "protocol version mismatch: client {PROTOCOL_VERSION}, server {version}"
                )))
            }
            other => return Err(unexpected("Hello", &other)),
        }
        let schema = match ok_or_err(core.request(&Request::Schema)?)? {
            Response::Schema(s) => s,
            other => return Err(unexpected("Schema", &other)),
        };
        let len = match ok_or_err(core.request(&Request::Len)?)? {
            Response::Len(n) => usize::try_from(n)
                .map_err(|_| HdbError::Transport("corpus size overflows usize".into()))?,
            other => return Err(unexpected("Len", &other)),
        };
        Ok(Self { core, schema, len })
    }

    /// The server address this backend talks to.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.core.addr
    }

    /// Idle pooled connections right now (diagnostics).
    #[must_use]
    pub fn idle_connections(&self) -> usize {
        self.core.idle.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    fn spec_of(ranking: &dyn RankingFunction) -> Result<RankingSpec> {
        ranking.wire_spec().ok_or_else(|| {
            HdbError::Transport(
                "ranking function has no wire spec; only RankingSpec-describable rankings \
                 can cross the network"
                    .into(),
            )
        })
    }
}

impl SearchBackend for RemoteBackend {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn len(&self) -> usize {
        self.len
    }

    fn evaluate(&self, q: &Query, k: usize, ranking: &dyn RankingFunction) -> Result<Evaluation> {
        let req = Request::Evaluate {
            query: q.clone(),
            k: k as u64,
            ranking: Self::spec_of(ranking)?,
        };
        match ok_or_err(self.core.request(&req)?)? {
            Response::Evaluation(ev) => Ok(ev),
            other => Err(unexpected("Evaluation", &other)),
        }
    }

    fn exact_count(&self, q: &Query) -> Result<usize> {
        match ok_or_err(self.core.request(&Request::ExactCount { query: q.clone() })?)? {
            Response::Count(n) => usize::try_from(n)
                .map_err(|_| HdbError::Transport("count overflows usize".into())),
            other => Err(unexpected("Count", &other)),
        }
    }

    fn exact_sum(&self, attr: AttrId, q: &Query) -> Result<f64> {
        let req = Request::ExactSum { attr: attr as u64, query: q.clone() };
        match ok_or_err(self.core.request(&req)?)? {
            Response::Sum(x) => Ok(x),
            other => Err(unexpected("Sum", &other)),
        }
    }

    fn walk_state(&self, q: &Query) -> WalkState {
        // A failed open falls back to fresh evaluation: correctness is
        // preserved and a genuinely dead server will surface a Transport
        // error on the next charged probe.
        match self.core.request_once(&Request::WalkOpen { root: q.clone() }) {
            Ok(Response::Session { sid }) => WalkState::with_payload(RemoteWalk {
                session: Arc::new(RemoteSessionHandle { core: Arc::clone(&self.core), sid }),
                level: 0,
            }),
            _ => WalkState::fallback(),
        }
    }

    fn extend_state(
        &self,
        parent: &WalkState,
        child: &Query,
        pred: Predicate,
        _recycled: WalkState,
    ) -> WalkState {
        let Some(walk) = parent.payload::<RemoteWalk>() else {
            return self.walk_state(child);
        };
        let req = Request::WalkExtend {
            sid: walk.session.sid,
            parent_level: walk.level,
            child: child.clone(),
            pred,
        };
        match self.core.request(&req) {
            Ok(Response::Level { level }) => WalkState::with_payload(RemoteWalk {
                session: Arc::clone(&walk.session),
                level,
            }),
            // Session evicted / transport hiccup: open a fresh session
            // rooted at the child (still incremental below this node).
            _ => self.walk_state(child),
        }
    }

    fn evaluate_from(
        &self,
        parent: &WalkState,
        child: &Query,
        pred: Predicate,
        k: usize,
        ranking: &dyn RankingFunction,
    ) -> Result<Evaluation> {
        let Some(walk) = parent.payload::<RemoteWalk>() else {
            return self.evaluate(child, k, ranking);
        };
        let req = Request::WalkEvaluate {
            sid: walk.session.sid,
            parent_level: walk.level,
            child: child.clone(),
            pred,
            k: k as u64,
            ranking: Self::spec_of(ranking)?,
        };
        match ok_or_err(self.core.request(&req)?)? {
            Response::Evaluation(ev) => Ok(ev),
            Response::SessionGone => self.evaluate(child, k, ranking),
            other => Err(unexpected("Evaluation", &other)),
        }
    }

    fn classify_from(
        &self,
        parent: &WalkState,
        child: &Query,
        pred: Predicate,
        k: usize,
    ) -> Result<Classified> {
        let Some(walk) = parent.payload::<RemoteWalk>() else {
            return Ok(Classified::from_evaluation(
                self.evaluate(child, k, &crate::ranking::RowIdRanking)?,
                k,
            ));
        };
        let req = Request::WalkClassify {
            sid: walk.session.sid,
            parent_level: walk.level,
            child: child.clone(),
            pred,
            k: k as u64,
        };
        match ok_or_err(self.core.request(&req)?)? {
            Response::Classified(c) => Ok(c),
            Response::SessionGone => Ok(Classified::from_evaluation(
                self.evaluate(child, k, &crate::ranking::RowIdRanking)?,
                k,
            )),
            other => Err(unexpected("Classified", &other)),
        }
    }
}
