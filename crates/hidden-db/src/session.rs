//! Incremental drill-down evaluation: [`WalkSession`].
//!
//! The paper's estimators spend essentially all of their query budget on
//! *drill-down chains* — sequences of conjunctive queries where each
//! child extends its parent by exactly one predicate, and where all the
//! fanout branches of one attribute extend the **same** parent. A fresh
//! [`TopKInterface::query`] re-intersects every posting bitmap of the
//! query from scratch; a `WalkSession` instead keeps the parent node's
//! materialised match set in a walk-local scratch arena (the state
//! stack), so that
//!
//! * probing a branch costs **one AND-count pass** over the parent set
//!   ([`WalkSession::classify`], no bitmap and no top-k materialised),
//! * committing to a branch ([`WalkSession::extend`]) costs one fused
//!   copy-AND pass into a recycled buffer, and
//! * backtracking ([`WalkSession::retract`]) is free.
//!
//! **The session changes only server CPU time, never observable
//! behaviour.** Every probe is validated, charged to the
//! [`QueryCounter`](crate::QueryCounter), paid as a backend round trip,
//! and answered through the server-side hot-response memo exactly as an
//! independently issued query would be — budgets, accounting tallies,
//! outcomes, and therefore whole estimator runs are **bit-identical** to
//! the fresh path (pinned by the incremental-equivalence property
//! tests). [`SessionMode`] keeps the fresh path selectable as a
//! reference, and a materialising middle mode isolates what the
//! count-only classification saves on its own.

use std::sync::Arc;

use crate::backend::{SearchBackend, WalkState};
use crate::counter::OutcomeKind;
use crate::error::Result;
use crate::interface::{
    expensive_response, outcome_kind, HiddenDb, QueryOutcome, ReturnedTuple, TopKInterface,
};
use crate::query::{Predicate, Query};
use crate::schema::{AttrId, Schema, ValueId};

/// How [`HiddenDb::walk_session`] evaluates drill-down probes. All modes
/// are observationally identical (outcomes, query counts, estimates);
/// they differ only in server CPU cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SessionMode {
    /// Incremental evaluation with count-only probes (the default and
    /// fastest path): a probe is one AND-count over the parent's match
    /// set; overflow pages are never materialised.
    #[default]
    Incremental,
    /// Incremental evaluation, but every probe materialises its full
    /// top-k page (isolates the count-only saving in benchmarks; feeds
    /// the hot-response memo exactly like fresh queries do).
    IncrementalMaterialized,
    /// Every probe is an independent fresh query — the pre-session
    /// reference path.
    Fresh,
}

/// The count-only classification of a probed branch.
///
/// This is [`QueryOutcome`] minus the overflow page: drill-down walks
/// only ever inspect an overflow outcome's *class*, so the top-k
/// selection behind its page is wasted work the session skips. Valid
/// outcomes still carry their full page (all matches, ascending id) —
/// that is what a top-valid terminal measures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClassifiedOutcome {
    /// No tuple matches.
    Underflow,
    /// All matching tuples (`1 ≤ len ≤ k`).
    Valid(Arc<Vec<ReturnedTuple>>),
    /// More than `k` tuples match; the page was not materialised.
    Overflow,
}

impl ClassifiedOutcome {
    /// Whether the probe underflowed.
    #[must_use]
    pub fn is_underflow(&self) -> bool {
        matches!(self, Self::Underflow)
    }

    /// Whether the probe was valid.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        matches!(self, Self::Valid(_))
    }

    /// Whether the probe overflowed.
    #[must_use]
    pub fn is_overflow(&self) -> bool {
        matches!(self, Self::Overflow)
    }

    /// Whether the probe returned at least one tuple.
    #[must_use]
    pub fn is_nonempty(&self) -> bool {
        !self.is_underflow()
    }

    /// The returned tuples (non-empty only for valid probes).
    #[must_use]
    pub fn tuples(&self) -> &[ReturnedTuple] {
        match self {
            Self::Valid(t) => t,
            _ => &[],
        }
    }

    /// Derives the classification from a full outcome, sharing the valid
    /// page.
    #[must_use]
    pub fn from_outcome(outcome: QueryOutcome) -> Self {
        match outcome {
            QueryOutcome::Underflow => Self::Underflow,
            QueryOutcome::Valid(t) => Self::Valid(t),
            QueryOutcome::Overflow(_) => Self::Overflow,
        }
    }

    fn kind(&self) -> OutcomeKind {
        match self {
            Self::Underflow => OutcomeKind::Underflow,
            Self::Valid(_) => OutcomeKind::Valid,
            Self::Overflow => OutcomeKind::Overflow,
        }
    }
}

/// An incremental drill-down session over one interface (see the module
/// docs). Obtain one from [`TopKInterface::walk_session`]; the walk
/// drives it with [`WalkSession::classify`] / [`WalkSession::probe`]
/// (charged like fresh queries) and [`WalkSession::extend`] /
/// [`WalkSession::retract`] (free — the client merely narrows or widens
/// what it asks next, exactly like `Query::and` on the fresh path).
///
/// ```
/// use hdb_interface::{HiddenDb, Query, Schema, Table, TopKInterface, Tuple};
///
/// let table = Table::new(
///     Schema::boolean(3),
///     vec![
///         Tuple::new(vec![0, 0, 1]),
///         Tuple::new(vec![0, 1, 1]),
///         Tuple::new(vec![1, 1, 0]),
///     ],
/// ).unwrap();
/// let db = HiddenDb::new(table, 1);
///
/// let mut walk = db.walk_session(Query::all()).unwrap();
/// assert!(walk.classify(0, 0).unwrap().is_overflow()); // two matches, k = 1
/// walk.extend(0, 0);                                   // commit, no query issued
/// let leaf = walk.classify(1, 1).unwrap();             // one AND over the parent set
/// assert_eq!(leaf.tuples()[0].id, 1);
/// walk.retract();                                      // back to the root, free
/// assert_eq!(db.queries_issued(), 2);                  // probes charged, moves not
/// ```
pub struct WalkSession<'a> {
    schema: &'a Schema,
    k: usize,
    /// Committed node queries, root first; the last entry is the current
    /// node.
    stack: Vec<Query>,
    core: Box<dyn SessionCore + 'a>,
}

impl<'a> WalkSession<'a> {
    /// A session that issues every probe as an independent fresh query
    /// against `iface` (the universal fallback behind the default
    /// [`TopKInterface::walk_session`]).
    pub(crate) fn fresh(iface: &'a dyn TopKInterface, root: Query) -> Result<Self> {
        root.validate(iface.schema())?;
        Ok(Self {
            schema: iface.schema(),
            k: iface.k(),
            stack: vec![root],
            core: Box::new(FreshCore { iface }),
        })
    }

    /// The incremental session over a [`HiddenDb`], honouring its
    /// configured [`SessionMode`].
    pub(crate) fn for_db<B: SearchBackend>(db: &'a HiddenDb<B>, root: Query) -> Result<Self> {
        if db.session == SessionMode::Fresh {
            return Self::fresh(db, root);
        }
        root.validate(db.backend.schema())?;
        let state = db.backend.walk_state(&root);
        Ok(Self {
            schema: db.backend.schema(),
            k: db.k,
            stack: vec![root],
            core: Box::new(DbCore {
                db,
                states: vec![state],
                spare: Vec::new(),
                materialize: db.session == SessionMode::IncrementalMaterialized,
            }),
        })
    }

    /// The public schema of the interface.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        self.schema
    }

    /// The interface constant `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The current node's query.
    #[must_use]
    pub fn query(&self) -> &Query {
        self.stack.last().expect("session stack holds at least the root")
    }

    /// Levels committed below the session root.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.stack.len() - 1
    }

    /// Validates a child predicate exactly as a fresh issue of the child
    /// query would, so invalid probes error *without* being charged.
    fn child(&self, attr: AttrId, value: ValueId) -> Result<(Query, Predicate)> {
        let child = self.query().and(attr, value)?;
        child.validate(self.schema)?;
        Ok((child, Predicate::new(attr, value)))
    }

    /// Issues the child query `current ∧ attr=value` with full top-k
    /// materialisation — observationally identical to
    /// [`TopKInterface::query`] on that query, including the charge.
    ///
    /// # Errors
    /// [`crate::HdbError::InvalidQuery`] for invalid predicates (not
    /// charged), [`crate::HdbError::BudgetExhausted`] once the budget is
    /// spent.
    pub fn probe(&mut self, attr: AttrId, value: ValueId) -> Result<QueryOutcome> {
        let (child, pred) = self.child(attr, value)?;
        self.core.probe(&child, pred, self.k)
    }

    /// Issues the child query `current ∧ attr=value` count-only: the
    /// outcome class, with the full page materialised only when valid.
    /// Charged exactly like [`WalkSession::probe`].
    ///
    /// # Errors
    /// Same contract as [`WalkSession::probe`].
    pub fn classify(&mut self, attr: AttrId, value: ValueId) -> Result<ClassifiedOutcome> {
        let (child, pred) = self.child(attr, value)?;
        self.core.classify(&child, pred, self.k)
    }

    /// Commits the walk to the branch `attr = value`. No query is issued
    /// — on the fresh path this is `Query::and`, here it additionally
    /// advances the backend's incremental state by one AND pass.
    ///
    /// # Panics
    /// Panics if `attr` is already constrained at the current node (walk
    /// logic bug, exactly like the fresh path's `expect`).
    pub fn extend(&mut self, attr: AttrId, value: ValueId) {
        let child = self
            .query()
            .and(attr, value)
            .expect("walk committed to an attribute already constrained at this node");
        debug_assert!((value as usize) < self.schema.fanout(attr), "value out of domain");
        self.core.extend(&child, Predicate::new(attr, value));
        self.stack.push(child);
    }

    /// Pops the most recently committed level (free, like dropping a
    /// predicate on the fresh path).
    ///
    /// # Panics
    /// Panics when the session is already at its root.
    pub fn retract(&mut self) {
        assert!(self.stack.len() > 1, "cannot retract past the session root");
        self.stack.pop();
        self.core.retract();
    }
}

/// The engine behind a [`WalkSession`]: how probes are answered and how
/// node state moves. Object-safe so the session type stays free of the
/// backend type parameter.
trait SessionCore {
    fn probe(&mut self, child: &Query, pred: Predicate, k: usize) -> Result<QueryOutcome>;
    fn classify(&mut self, child: &Query, pred: Predicate, k: usize) -> Result<ClassifiedOutcome>;
    fn extend(&mut self, child: &Query, pred: Predicate);
    fn retract(&mut self);
}

/// Fresh-query engine: every probe goes through `iface.query`, moves are
/// no-ops (the wrapper's query stack is the only state).
struct FreshCore<'a> {
    iface: &'a dyn TopKInterface,
}

impl SessionCore for FreshCore<'_> {
    fn probe(&mut self, child: &Query, _pred: Predicate, _k: usize) -> Result<QueryOutcome> {
        self.iface.query(child)
    }

    fn classify(&mut self, child: &Query, _pred: Predicate, _k: usize) -> Result<ClassifiedOutcome> {
        Ok(ClassifiedOutcome::from_outcome(self.iface.query(child)?))
    }

    fn extend(&mut self, _child: &Query, _pred: Predicate) {}

    fn retract(&mut self) {}
}

/// Incremental engine over a [`HiddenDb`]: mirrors
/// `HiddenDb::query`/`respond` step for step (charge → round trip → hot
/// memo → evaluate → memoise-if-expensive → tally), with the evaluation
/// replaced by the backend's `evaluate_from`/`classify_from` fast path
/// over the parent state stack. The `spare` list recycles retired state
/// buffers — the walk-local scratch arena.
struct DbCore<'a, B: SearchBackend> {
    db: &'a HiddenDb<B>,
    states: Vec<WalkState>,
    spare: Vec<WalkState>,
    materialize: bool,
}

impl<B: SearchBackend> DbCore<'_, B> {
    fn parent(&self) -> &WalkState {
        self.states.last().expect("state stack holds at least the root")
    }

    /// The full-materialisation response for a charged child query —
    /// identical, including memo reads and writes, to what
    /// `HiddenDb::respond` computes for a fresh issue of `child`.
    fn respond_full(&self, child: &Query, pred: Predicate, k: usize) -> Result<QueryOutcome> {
        if let Some(hit) = self.db.hot_responses.get(child) {
            self.db.obs.memo_response_hits.inc();
            return Ok(hit);
        }
        let eval = self
            .db
            .backend
            .evaluate_from(self.parent(), child, pred, k, self.db.ranking.as_ref())?;
        let expensive = expensive_response(eval.count, k);
        let outcome = eval.into_outcome(k);
        if expensive {
            self.db.hot_responses.insert(child.clone(), outcome.clone());
        }
        Ok(outcome)
    }
}

impl<B: SearchBackend> SessionCore for DbCore<'_, B> {
    fn probe(&mut self, child: &Query, pred: Predicate, k: usize) -> Result<QueryOutcome> {
        self.db.counter.charge()?;
        // One round trip per issued query, memo hit or not — exactly the
        // fresh path's contract.
        self.db.backend.round_trip();
        let span = self.db.obs.trace.open("walk_probe", 0, 0);
        let outcome = match self.respond_full(child, pred, k) {
            Ok(outcome) => outcome,
            Err(e) => {
                // Charged and sent, but no outcome class came back: the
                // budget is spent either way, so tally the failure.
                self.db.counter.record_outcome(OutcomeKind::Errored);
                self.db.obs.trace.close(span, "walk_probe", 0);
                return Err(e);
            }
        };
        self.db.counter.record_outcome(outcome_kind(&outcome));
        self.db.obs.walk_probes.inc();
        self.db.obs.trace.close(span, "walk_probe", 0);
        Ok(outcome)
    }

    fn classify(&mut self, child: &Query, pred: Predicate, k: usize) -> Result<ClassifiedOutcome> {
        self.db.counter.charge()?;
        self.db.backend.round_trip();
        let span = self.db.obs.trace.open("walk_probe", 0, 0);
        let computed = (|| if let Some(hit) = self.db.hot_responses.get(child) {
            // Memoised responses are served exactly as to a fresh query.
            self.db.obs.memo_response_hits.inc();
            Ok(ClassifiedOutcome::from_outcome(hit))
        } else if self.materialize {
            Ok(ClassifiedOutcome::from_outcome(self.respond_full(child, pred, k)?))
        } else if let Some(hit) = self.db.hot_counts.get(child) {
            // A repeated count-only probe of an expensive node: served
            // from the count memo, charged like any other memo hit.
            self.db.obs.memo_count_hits.inc();
            Ok(hit)
        } else {
            // Count-only: one AND-count pass; valid pages (≤ k tuples,
            // ranking-independent) are the only materialisation. There is
            // no overflow page to feed `hot_responses`, so expensive
            // classifications go to the dedicated count memo instead —
            // all of it unobservable: memos only ever save server CPU.
            let c = self.db.backend.classify_from(self.parent(), child, pred, k)?;
            let expensive = expensive_response(c.count, k);
            let out = if c.count == 0 {
                ClassifiedOutcome::Underflow
            } else if c.count <= k {
                ClassifiedOutcome::Valid(Arc::new(c.page))
            } else {
                ClassifiedOutcome::Overflow
            };
            if expensive {
                self.db.hot_counts.insert(child.clone(), out.clone());
            }
            Ok(out)
        })();
        let out = match computed {
            Ok(out) => out,
            Err(e) => {
                // Charged and sent, but the response failed: tally the
                // spent budget as an errored outcome.
                self.db.counter.record_outcome(OutcomeKind::Errored);
                self.db.obs.trace.close(span, "walk_probe", 0);
                return Err(e);
            }
        };
        self.db.counter.record_outcome(out.kind());
        self.db.obs.walk_probes.inc();
        self.db.obs.trace.close(span, "walk_probe", 0);
        Ok(out)
    }

    fn extend(&mut self, child: &Query, pred: Predicate) {
        let recycled = self.spare.pop().unwrap_or_default();
        let state = self.db.backend.extend_state(self.parent(), child, pred, recycled);
        self.states.push(state);
        self.db.obs.walk_extends.inc();
    }

    fn retract(&mut self) {
        let retired = self.states.pop().expect("retract below session root");
        self.spare.push(retired);
        self.db.obs.walk_retracts.inc();
        self.db.obs.walk_scratch_high.record_max(self.spare.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::EvalMode;
    use crate::schema::Attribute;
    use crate::table::Table;
    use crate::tuple::Tuple;

    /// The paper's running example (Table 1).
    fn running_example() -> Table {
        let schema = Schema::new(vec![
            Attribute::boolean("A1"),
            Attribute::boolean("A2"),
            Attribute::boolean("A3"),
            Attribute::boolean("A4"),
            Attribute::categorical("A5", ["1", "2", "3", "4", "5"]).unwrap(),
        ])
        .unwrap();
        Table::new(
            schema,
            vec![
                Tuple::new(vec![0, 0, 0, 0, 0]),
                Tuple::new(vec![0, 0, 0, 1, 0]),
                Tuple::new(vec![0, 0, 1, 0, 0]),
                Tuple::new(vec![0, 1, 1, 1, 0]),
                Tuple::new(vec![1, 1, 1, 0, 2]),
                Tuple::new(vec![1, 1, 1, 1, 0]),
            ],
        )
        .unwrap()
    }

    /// Drives the same probe script through a session and through fresh
    /// queries on an identical twin database, asserting lockstep
    /// equality of outcomes and accounting.
    fn assert_session_matches_fresh(mode: SessionMode, k: usize) {
        let session_db = HiddenDb::new(running_example(), k).with_session_mode(mode);
        let fresh_db = HiddenDb::new(running_example(), k);
        let mut walk = session_db.walk_session(Query::all()).unwrap();

        // Script: fan over A1, commit A1=0, fan over A3, commit A3=1,
        // probe A2 branches, retract, fan over A4.
        let script: &[(usize, u16, bool)] = &[
            (0, 0, false),
            (0, 1, false),
            (0, 0, true), // extend after probing
            (2, 0, false),
            (2, 1, true),
            (1, 0, false),
            (1, 1, false),
        ];
        let mut current = Query::all();
        for &(attr, value, commit) in script {
            let got = walk.classify(attr, value).unwrap();
            let want = fresh_db.query(&current.and(attr, value).unwrap()).unwrap();
            assert_eq!(got.is_underflow(), want.is_underflow(), "{attr}={value}");
            assert_eq!(got.is_valid(), want.is_valid(), "{attr}={value}");
            assert_eq!(got.is_overflow(), want.is_overflow(), "{attr}={value}");
            if want.is_valid() {
                assert_eq!(got.tuples(), want.tuples(), "{attr}={value}");
            }
            if commit {
                walk.extend(attr, value);
                current = current.and(attr, value).unwrap();
            }
        }
        walk.retract();
        current = current.without(2);
        for v in 0..2u16 {
            let got = walk.probe(3, v).unwrap();
            let want = fresh_db.query(&current.and(3, v).unwrap()).unwrap();
            assert_eq!(got, want, "full probe A4={v}");
        }
        // identical charging and tallies, probe for probe
        assert_eq!(session_db.queries_issued(), fresh_db.queries_issued());
        let (sc, fc) = (session_db.counter(), fresh_db.counter());
        assert_eq!(sc.underflow_count(), fc.underflow_count());
        assert_eq!(sc.valid_count(), fc.valid_count());
        assert_eq!(sc.overflow_count(), fc.overflow_count());
    }

    #[test]
    fn session_modes_match_fresh_queries() {
        for k in [1usize, 2, 4] {
            assert_session_matches_fresh(SessionMode::Incremental, k);
            assert_session_matches_fresh(SessionMode::IncrementalMaterialized, k);
            assert_session_matches_fresh(SessionMode::Fresh, k);
        }
    }

    #[test]
    fn sharded_and_latency_sessions_match_fresh() {
        use crate::latency::LatencyBackend;
        use crate::sharded::ShardedDb;
        use std::time::Duration;
        let table = running_example();
        for k in [1usize, 3] {
            let fresh = HiddenDb::new(table.clone(), k);
            let sharded = HiddenDb::over(ShardedDb::new(&table, 3), k);
            let remote = HiddenDb::over(
                LatencyBackend::new(ShardedDb::new(&table, 2), Duration::ZERO),
                k,
            );
            let mut ws = sharded.walk_session(Query::all()).unwrap();
            let mut wr = remote.walk_session(Query::all()).unwrap();
            for attr in 0..5usize {
                for v in 0..table.schema().fanout(attr) {
                    let want = ClassifiedOutcome::from_outcome(
                        fresh.query(&Query::all().and(attr, v as u16).unwrap()).unwrap(),
                    );
                    assert_eq!(ws.classify(attr, v as u16).unwrap(), want);
                    assert_eq!(wr.classify(attr, v as u16).unwrap(), want);
                }
            }
            // the remote wrapper pays one round trip per charged probe
            assert_eq!(remote.backend().round_trips(), remote.queries_issued());
        }
    }

    #[test]
    fn memo_hits_are_charged_and_identical() {
        // k=1 over the running example: the root's A1=0 branch holds 4
        // tuples (> 8·k? no — craft with k small and repeats instead).
        let db = HiddenDb::new(running_example(), 1);
        // issue A1=0 fresh first so the memo may hold it, then probe the
        // same query through a session: same outcome, still charged.
        let fresh_outcome = db.query(&Query::all().and(0, 0).unwrap()).unwrap();
        let before = db.queries_issued();
        let mut walk = db.walk_session(Query::all()).unwrap();
        let got = walk.classify(0, 0).unwrap();
        assert_eq!(got, ClassifiedOutcome::from_outcome(fresh_outcome));
        assert_eq!(db.queries_issued(), before + 1);
    }

    #[test]
    fn budget_exhaustion_mid_session_matches_fresh() {
        let session_db =
            HiddenDb::new(running_example(), 1).with_budget(2);
        let mut walk = session_db.walk_session(Query::all()).unwrap();
        walk.classify(0, 0).unwrap();
        walk.classify(0, 1).unwrap();
        let err = walk.classify(1, 0).unwrap_err();
        assert!(matches!(err, crate::HdbError::BudgetExhausted { limit: 2 }));
        assert_eq!(session_db.queries_issued(), 2);
    }

    #[test]
    fn invalid_probes_rejected_without_charge() {
        let db = HiddenDb::new(running_example(), 1);
        let mut walk = db.walk_session(Query::all()).unwrap();
        assert!(walk.classify(9, 0).is_err());
        assert!(walk.probe(4, 9).is_err());
        walk.extend(0, 0);
        assert!(walk.classify(0, 1).is_err(), "attr 0 already constrained");
        assert_eq!(db.queries_issued(), 0);
        // root validation also rejects without charging
        assert!(db.walk_session(Query::all().and(9, 0).unwrap()).is_err());
    }

    #[test]
    fn extend_and_retract_track_the_query() {
        let db = HiddenDb::new(running_example(), 2);
        let mut walk = db.walk_session(Query::all()).unwrap();
        assert_eq!(walk.depth(), 0);
        assert_eq!(walk.k(), 2);
        assert_eq!(walk.schema().len(), 5);
        walk.extend(0, 1);
        walk.extend(1, 1);
        assert_eq!(walk.depth(), 2);
        assert_eq!(walk.query().value_of(0), Some(1));
        assert_eq!(walk.query().value_of(1), Some(1));
        walk.retract();
        assert_eq!(walk.depth(), 1);
        assert_eq!(walk.query().value_of(1), None);
        // deep extend after recycling a retracted buffer still answers
        walk.extend(1, 1);
        assert!(walk.classify(2, 1).unwrap().is_nonempty());
    }

    #[test]
    #[should_panic(expected = "past the session root")]
    fn retracting_the_root_panics() {
        let db = HiddenDb::new(running_example(), 1);
        let mut walk = db.walk_session(Query::all()).unwrap();
        walk.retract();
    }

    #[test]
    fn scan_mode_db_sessions_fall_back_but_agree() {
        let scan =
            HiddenDb::new(running_example(), 2).with_eval_mode(EvalMode::Scan);
        let fresh = HiddenDb::new(running_example(), 2);
        let mut walk = scan.walk_session(Query::all()).unwrap();
        for attr in 0..5usize {
            for v in 0..scan.schema().fanout(attr) {
                let want = ClassifiedOutcome::from_outcome(
                    fresh.query(&Query::all().and(attr, v as u16).unwrap()).unwrap(),
                );
                assert_eq!(walk.classify(attr, v as u16).unwrap(), want);
            }
        }
    }

    #[test]
    fn sessions_over_borrowed_interfaces_delegate() {
        // &HiddenDb must still open the incremental session (the &T
        // blanket impl forwards walk_session instead of defaulting to
        // fresh).
        let db = HiddenDb::new(running_example(), 1);
        let by_ref = &db;
        let mut walk = by_ref.walk_session(Query::all()).unwrap();
        assert!(walk.classify(0, 0).unwrap().is_overflow());
        assert_eq!(db.queries_issued(), 1);
    }
}
