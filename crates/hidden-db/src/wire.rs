//! The hidden-DB wire protocol: length-prefixed binary frames carrying
//! [`Request`]/[`Response`] messages between a
//! [`RemoteBackend`](crate::RemoteBackend) client and an `hdb-server`.
//!
//! One frame is a little-endian `u32` payload length followed by the
//! payload; the payload's first byte is the message tag. Every message
//! covers exactly one [`SearchBackend`](crate::SearchBackend) operation —
//! `schema` / `len` / `evaluate` / `exact_count` / `exact_sum` plus the
//! incremental walk fast path (`WalkOpen` / `WalkExtend` /
//! `WalkEvaluate` / `WalkClassify` / `WalkClose`), whose server-side
//! state is keyed by a session id so a drill-down probe stays one AND
//! (and one round trip) across the network.
//!
//! Version 2 pipelines the protocol three ways:
//!
//! * **Fused walk steps** — [`Request::WalkExtendEvaluate`] /
//!   [`Request::WalkExtendClassify`] commit a branch *and* probe it in
//!   one message, so a drill-down step costs zero standalone round
//!   trips (down from one `WalkExtend` RTT per step).
//! * **Batched requests** — [`Request::Batch`] carries several requests
//!   in one frame. The server answers with one response frame *per
//!   member, in member order* (there is deliberately no `Response::Batch`
//!   — keeping responses flat lets any member's page stream).
//! * **Chunked page streaming** — a page-carrying response whose page
//!   exceeds [`STREAM_TUPLES`] is shipped as a [`Response::Streamed`]
//!   head (page stripped) followed by [`Response::PageChunk`] frames,
//!   the last one marked terminal, so neither side ever materialises a
//!   single near-[`MAX_FRAME_LEN`] frame. [`write_response`] /
//!   [`read_response`] implement both ends of the split and are what the
//!   server and `RemoteBackend` use.
//!
//! The protocol is deliberately *static*-schema: values are fixed-width
//! little-endian integers, strings are `u32`-length-prefixed UTF-8, and
//! every decoder is total — malformed bytes surface as
//! [`HdbError::Transport`], never as a panic, so a server survives
//! garbage input and a client survives a lying server. Nothing here is
//! `unsafe` and nothing allocates beyond the decoded values themselves.

use crate::backend::{Classified, Evaluation};
use crate::error::{HdbError, Result};
use crate::interface::ReturnedTuple;
use crate::obs::{HistogramSnapshot, MetricsSnapshot};
use crate::query::{Predicate, Query};
use crate::ranking::RankingSpec;
use crate::schema::{Attribute, Schema};
use crate::tuple::Tuple;

/// Protocol version; [`Request::Hello`] / [`Response::Hello`] exchange it
/// and a mismatch is a connect-time [`HdbError::Transport`]. Version 2
/// added the fused walk messages, request batching, and chunked page
/// streaming.
pub const PROTOCOL_VERSION: u32 = 2;

/// Upper bound on a frame payload (64 MiB): anything larger is treated as
/// a corrupt length prefix and rejected before allocation.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Pages longer than this stream as [`Response::PageChunk`] frames of at
/// most this many tuples each, instead of one monolithic frame.
pub const STREAM_TUPLES: usize = 1024;

/// Ceiling on tuples accumulated while reassembling a chunked stream: a
/// lying server cannot make [`read_response`] allocate without bound.
pub const STREAM_REASSEMBLY_CAP: usize = 1 << 24;

/// One client → server message.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Version handshake; the first message on every new connection.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// The public schema of the served corpus.
    Schema,
    /// The corpus size `m`.
    Len,
    /// Full top-k evaluation of a query.
    Evaluate {
        /// The (client-validated, server-revalidated) query.
        query: Query,
        /// The interface constant `k` (must be ≥ 1).
        k: u64,
        /// The ranking to select the top `k` under.
        ranking: RankingSpec,
    },
    /// Owner-side exact `COUNT(*) WHERE q`.
    ExactCount {
        /// The query.
        query: Query,
    },
    /// Owner-side exact `SUM(attr) WHERE q`.
    ExactSum {
        /// The attribute to sum.
        attr: u64,
        /// The query.
        query: Query,
    },
    /// Opens a walk session rooted at `root`; the server materialises the
    /// root's match-set state and returns a session id.
    WalkOpen {
        /// The session root query.
        root: Query,
    },
    /// Extends the state at `parent_level` by one predicate (the walk
    /// committed to a branch). Truncates any deeper levels first — the
    /// walk is stack-disciplined.
    WalkExtend {
        /// The session id from [`Response::Session`].
        sid: u64,
        /// Index of the parent level in the session's state stack.
        parent_level: u32,
        /// The child's full query (fallback path + revalidation).
        child: Query,
        /// The predicate extending the parent.
        pred: Predicate,
    },
    /// Full top-k evaluation of `parent ∧ pred` against session state.
    WalkEvaluate {
        /// The session id.
        sid: u64,
        /// Index of the parent level.
        parent_level: u32,
        /// The child's full query (fallback path + revalidation).
        child: Query,
        /// The probed predicate.
        pred: Predicate,
        /// The interface constant `k` (must be ≥ 1).
        k: u64,
        /// The ranking to select the top `k` under.
        ranking: RankingSpec,
    },
    /// Count-only classification of `parent ∧ pred` against session
    /// state — the drill-down probe fast path: one AND on the server, one
    /// round trip on the wire.
    WalkClassify {
        /// The session id.
        sid: u64,
        /// Index of the parent level.
        parent_level: u32,
        /// The child's full query (fallback path + revalidation).
        child: Query,
        /// The probed predicate.
        pred: Predicate,
        /// The interface constant `k` (must be ≥ 1).
        k: u64,
    },
    /// Evicts a walk session (sent when the client session drops).
    WalkClose {
        /// The session id.
        sid: u64,
    },
    /// Several requests in one frame, answered with one response frame
    /// per member in member order. Must be non-empty; members cannot
    /// themselves be batches. This is how a deferred chain of walk
    /// extends piggybacks onto the probe that finally needs them.
    Batch(Vec<Request>),
    /// Fused [`Request::WalkExtend`] + [`Request::WalkEvaluate`]: commit
    /// the branch `ext_pred` at `parent_level`, then evaluate the probe
    /// on the level just pushed — one message, one round trip, and
    /// bit-identical to the two-message sequence.
    WalkExtendEvaluate {
        /// The session id.
        sid: u64,
        /// Index of the parent level the extend applies to.
        parent_level: u32,
        /// The extend's full child query (fallback path + revalidation).
        ext_child: Query,
        /// The predicate the extend commits.
        ext_pred: Predicate,
        /// The probe's full child query (fallback path + revalidation).
        child: Query,
        /// The probed predicate (applied on the level the extend pushed).
        pred: Predicate,
        /// The interface constant `k` (must be ≥ 1).
        k: u64,
        /// The ranking to select the top `k` under.
        ranking: RankingSpec,
    },
    /// Fused [`Request::WalkExtend`] + [`Request::WalkClassify`]: the
    /// count-only sibling of [`Request::WalkExtendEvaluate`].
    WalkExtendClassify {
        /// The session id.
        sid: u64,
        /// Index of the parent level the extend applies to.
        parent_level: u32,
        /// The extend's full child query (fallback path + revalidation).
        ext_child: Query,
        /// The predicate the extend commits.
        ext_pred: Predicate,
        /// The probe's full child query (fallback path + revalidation).
        child: Query,
        /// The probed predicate (applied on the level the extend pushed).
        pred: Predicate,
        /// The interface constant `k` (must be ≥ 1).
        k: u64,
    },
    /// Asks the server for its own metrics snapshot — the same series the
    /// Prometheus endpoint renders, delivered over the query wire so a
    /// client can audit the server-side ledger without a second port.
    /// A pure read: issues no corpus query and mutates no session state.
    Stats,
}

/// One server → client message.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Version handshake reply.
    Hello {
        /// The server's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// The served schema.
    Schema(Schema),
    /// The corpus size.
    Len(u64),
    /// A full evaluation.
    Evaluation(Evaluation),
    /// An exact count.
    Count(u64),
    /// An exact sum.
    Sum(f64),
    /// A newly opened walk session.
    Session {
        /// Key for subsequent walk requests.
        sid: u64,
    },
    /// A successful extend: the new level's index.
    Level {
        /// Index of the pushed level.
        level: u32,
    },
    /// A count-only classification.
    Classified(Classified),
    /// Acknowledges a [`Request::WalkClose`].
    Closed,
    /// The referenced session/level was evicted or never existed; the
    /// client falls back to fresh evaluation (bit-identical, just
    /// slower). Not an error.
    SessionGone,
    /// Reply to a fused [`Request::WalkExtendEvaluate`]: the level the
    /// extend pushed plus the probe's evaluation.
    ExtendEvaluation {
        /// Index of the pushed level.
        level: u32,
        /// The probe's full evaluation.
        evaluation: Evaluation,
    },
    /// Reply to a fused [`Request::WalkExtendClassify`].
    ExtendClassified {
        /// Index of the pushed level.
        level: u32,
        /// The probe's count-only classification.
        classified: Classified,
    },
    /// Reply to [`Request::Stats`]: the server's metrics snapshot at the
    /// moment the request was dispatched.
    Stats(MetricsSnapshot),
    /// Head of a chunked page stream: the inner page-carrying response
    /// with its page stripped; [`Response::PageChunk`] frames follow
    /// until one with `last` set. Only valid at the top level of a frame.
    Streamed(Box<Response>),
    /// One chunk of a streamed page (at most [`STREAM_TUPLES`] tuples).
    PageChunk {
        /// Whether this chunk completes the stream.
        last: bool,
        /// The chunk's tuples, in page order.
        tuples: Vec<ReturnedTuple>,
    },
    /// A typed error (invalid query, unsupported request, …).
    Error(HdbError),
}

// ---------------------------------------------------------------------------
// Byte-level codec

/// Append-only payload encoder.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// A fresh, empty payload.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded payload.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    pub(crate) fn usize(&mut self, v: usize, what: &str) -> Result<()> {
        self.u64(u64::try_from(v).map_err(|_| oversize(what))?);
        Ok(())
    }

    /// A `u32` sequence-length prefix for `n` elements.
    pub(crate) fn seq(&mut self, n: usize, what: &str) -> Result<()> {
        self.u32(u32::try_from(n).map_err(|_| oversize(what))?);
        Ok(())
    }

    pub(crate) fn str(&mut self, s: &str) -> Result<()> {
        self.u32(u32::try_from(s.len()).map_err(|_| oversize("string"))?);
        self.buf.extend_from_slice(s.as_bytes());
        Ok(())
    }
}

/// Cursor-based payload decoder; every method is total and reports
/// malformed input as [`HdbError::Transport`].
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn truncated(what: &str) -> HdbError {
    HdbError::Transport(format!("malformed frame: truncated {what}"))
}

fn oversize(what: &str) -> HdbError {
    HdbError::Transport(format!("unencodable message: {what} exceeds the wire's u32 range"))
}

impl<'a> Dec<'a> {
    /// Starts decoding `buf` from its first byte.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        let Some(end) = end else { return Err(truncated(what)) };
        let Some(s) = self.buf.get(self.pos..end) else { return Err(truncated(what)) };
        self.pos = end;
        Ok(s)
    }

    fn take_array<const N: usize>(&mut self, what: &str) -> Result<[u8; N]> {
        <[u8; N]>::try_from(self.take(N, what)?).map_err(|_| truncated(what))
    }

    pub(crate) fn u8(&mut self, what: &str) -> Result<u8> {
        self.take(1, what)?.first().copied().ok_or_else(|| truncated(what))
    }

    pub(crate) fn u16(&mut self, what: &str) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take_array(what)?))
    }

    pub(crate) fn u32(&mut self, what: &str) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take_array(what)?))
    }

    pub(crate) fn u64(&mut self, what: &str) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take_array(what)?))
    }

    pub(crate) fn f64(&mut self, what: &str) -> Result<f64> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    pub(crate) fn usize(&mut self, what: &str) -> Result<usize> {
        usize::try_from(self.u64(what)?)
            .map_err(|_| HdbError::Transport(format!("malformed frame: {what} overflows usize")))
    }

    /// A `u32` length prefix that cannot plausibly exceed the remaining
    /// payload (each element is ≥ 1 byte) — rejects absurd lengths before
    /// any allocation.
    pub(crate) fn seq_len(&mut self, what: &str) -> Result<usize> {
        let n = usize::try_from(self.u32(what)?)
            .map_err(|_| HdbError::Transport(format!("malformed frame: {what} overflows usize")))?;
        if n > self.buf.len().saturating_sub(self.pos) {
            return Err(HdbError::Transport(format!(
                "malformed frame: {what} claims {n} elements with {} bytes left",
                self.buf.len() - self.pos
            )));
        }
        Ok(n)
    }

    pub(crate) fn str(&mut self, what: &str) -> Result<String> {
        let n = usize::try_from(self.u32(what)?)
            .map_err(|_| HdbError::Transport(format!("malformed frame: {what} overflows usize")))?;
        let bytes = self.take(n, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| HdbError::Transport(format!("malformed frame: {what} is not UTF-8")))
    }

    /// Fails unless the whole payload was consumed (trailing garbage is a
    /// framing bug worth surfacing, not ignoring).
    pub(crate) fn finish(self) -> Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(HdbError::Transport(format!(
                "malformed frame: {} trailing bytes",
                self.buf.len() - self.pos
            )))
        }
    }
}

// ---------------------------------------------------------------------------
// Domain-type codecs

pub(crate) fn enc_predicate(e: &mut Enc, p: Predicate) -> Result<()> {
    e.usize(p.attr, "predicate attr")?;
    e.u16(p.value);
    Ok(())
}

pub(crate) fn dec_predicate(d: &mut Dec<'_>) -> Result<Predicate> {
    let attr = d.usize("predicate attr")?;
    let value = d.u16("predicate value")?;
    Ok(Predicate::new(attr, value))
}

pub(crate) fn enc_query(e: &mut Enc, q: &Query) -> Result<()> {
    e.seq(q.predicates().len(), "query predicate count")?;
    for &p in q.predicates() {
        enc_predicate(e, p)?;
    }
    Ok(())
}

pub(crate) fn dec_query(d: &mut Dec<'_>) -> Result<Query> {
    let n = d.seq_len("query predicate count")?;
    let mut preds = Vec::with_capacity(n);
    for _ in 0..n {
        preds.push(dec_predicate(d)?);
    }
    // `Query::new` re-checks the no-duplicate-attribute invariant, so a
    // hostile frame cannot construct a query the type forbids.
    Query::new(preds)
}

pub(crate) fn enc_tuple(e: &mut Enc, t: &Tuple) -> Result<()> {
    e.seq(t.arity(), "tuple arity")?;
    for &v in t.values() {
        e.u16(v);
    }
    Ok(())
}

pub(crate) fn dec_tuple(d: &mut Dec<'_>) -> Result<Tuple> {
    let n = d.seq_len("tuple arity")?;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(d.u16("tuple value")?);
    }
    Ok(Tuple::new(values))
}

fn enc_page(e: &mut Enc, page: &[ReturnedTuple]) -> Result<()> {
    e.seq(page.len(), "page length")?;
    for t in page {
        e.u32(t.id);
        enc_tuple(e, &t.tuple)?;
    }
    Ok(())
}

fn dec_page(d: &mut Dec<'_>) -> Result<Vec<ReturnedTuple>> {
    let n = d.seq_len("page length")?;
    let mut page = Vec::with_capacity(n);
    for _ in 0..n {
        let id = d.u32("tuple id")?;
        let tuple = dec_tuple(d)?;
        page.push(ReturnedTuple { id, tuple });
    }
    Ok(page)
}

pub(crate) fn enc_schema(e: &mut Enc, s: &Schema) -> Result<()> {
    e.seq(s.len(), "schema attribute count")?;
    for a in s.attributes() {
        e.str(a.name())?;
        e.seq(a.fanout(), "attribute fanout")?;
        for v in 0..a.fanout() {
            let vid = crate::schema::ValueId::try_from(v)
                .map_err(|_| oversize("attribute fanout"))?;
            e.str(a.value_label(vid))?;
        }
        match a.is_numeric() {
            false => e.u8(0),
            true => {
                e.u8(1);
                for v in 0..a.fanout() {
                    let vid = crate::schema::ValueId::try_from(v)
                        .map_err(|_| oversize("attribute fanout"))?;
                    let Some(x) = a.numeric_value(vid) else {
                        return Err(HdbError::Transport(format!(
                            "unencodable message: numeric attribute `{}` lacks a value for {v}",
                            a.name()
                        )));
                    };
                    e.f64(x);
                }
            }
        }
    }
    Ok(())
}

pub(crate) fn dec_schema(d: &mut Dec<'_>) -> Result<Schema> {
    let n = d.seq_len("schema attribute count")?;
    let mut attrs = Vec::with_capacity(n);
    for _ in 0..n {
        let name = d.str("attribute name")?;
        let fanout = d.seq_len("attribute fanout")?;
        let mut values = Vec::with_capacity(fanout);
        for _ in 0..fanout {
            values.push(d.str("value label")?);
        }
        let mut attr = Attribute::categorical(name, values)?;
        if d.u8("numeric flag")? != 0 {
            let mut numeric = Vec::with_capacity(fanout);
            for _ in 0..fanout {
                numeric.push(d.f64("numeric value")?);
            }
            attr = attr.with_numeric(numeric)?;
        }
        attrs.push(attr);
    }
    Schema::new(attrs)
}

fn enc_ranking(e: &mut Enc, r: RankingSpec) -> Result<()> {
    match r {
        RankingSpec::RowId => e.u8(0),
        RankingSpec::Attribute { attr, descending } => {
            e.u8(1);
            e.usize(attr, "ranking attr")?;
            e.u8(u8::from(descending));
        }
        RankingSpec::SeededRandom { seed } => {
            e.u8(2);
            e.u64(seed);
        }
    }
    Ok(())
}

fn dec_ranking(d: &mut Dec<'_>) -> Result<RankingSpec> {
    match d.u8("ranking tag")? {
        0 => Ok(RankingSpec::RowId),
        1 => Ok(RankingSpec::Attribute {
            attr: d.usize("ranking attr")?,
            descending: d.u8("ranking direction")? != 0,
        }),
        2 => Ok(RankingSpec::SeededRandom { seed: d.u64("ranking seed")? }),
        t => Err(HdbError::Transport(format!("malformed frame: unknown ranking tag {t}"))),
    }
}

fn enc_error(e: &mut Enc, err: &HdbError) -> Result<()> {
    match err {
        HdbError::InvalidSchema(m) => {
            e.u8(0);
            e.str(m)?;
        }
        HdbError::InvalidTuple(m) => {
            e.u8(1);
            e.str(m)?;
        }
        HdbError::InvalidQuery(m) => {
            e.u8(2);
            e.str(m)?;
        }
        HdbError::BudgetExhausted { limit } => {
            e.u8(3);
            e.u64(*limit);
        }
        HdbError::Transport(m) => {
            e.u8(4);
            e.str(m)?;
        }
        HdbError::Storage(m) => {
            e.u8(5);
            e.str(m)?;
        }
        HdbError::Corrupt(m) => {
            e.u8(6);
            e.str(m)?;
        }
        HdbError::ReadOnly(m) => {
            e.u8(7);
            e.str(m)?;
        }
    }
    Ok(())
}

fn dec_error(d: &mut Dec<'_>) -> Result<HdbError> {
    Ok(match d.u8("error tag")? {
        0 => HdbError::InvalidSchema(d.str("error message")?),
        1 => HdbError::InvalidTuple(d.str("error message")?),
        2 => HdbError::InvalidQuery(d.str("error message")?),
        3 => HdbError::BudgetExhausted { limit: d.u64("budget limit")? },
        4 => HdbError::Transport(d.str("error message")?),
        5 => HdbError::Storage(d.str("error message")?),
        6 => HdbError::Corrupt(d.str("error message")?),
        7 => HdbError::ReadOnly(d.str("error message")?),
        t => return Err(HdbError::Transport(format!("malformed frame: unknown error tag {t}"))),
    })
}

fn enc_snapshot(e: &mut Enc, snap: &MetricsSnapshot) -> Result<()> {
    e.seq(snap.counters.len(), "counter count")?;
    for (name, v) in &snap.counters {
        e.str(name)?;
        e.u64(*v);
    }
    e.seq(snap.gauges.len(), "gauge count")?;
    for (name, v) in &snap.gauges {
        e.str(name)?;
        e.u64(*v);
    }
    e.seq(snap.histograms.len(), "histogram count")?;
    for (name, h) in &snap.histograms {
        e.str(name)?;
        e.seq(h.buckets.len(), "histogram bucket count")?;
        for b in &h.buckets {
            e.u64(*b);
        }
        e.u64(h.count);
        e.u64(h.sum);
    }
    Ok(())
}

fn dec_snapshot(d: &mut Dec<'_>) -> Result<MetricsSnapshot> {
    let mut snap = MetricsSnapshot::default();
    for _ in 0..d.seq_len("counter count")? {
        let name = d.str("counter name")?;
        let value = d.u64("counter value")?;
        snap.counters.insert(name, value);
    }
    for _ in 0..d.seq_len("gauge count")? {
        let name = d.str("gauge name")?;
        let value = d.u64("gauge value")?;
        snap.gauges.insert(name, value);
    }
    for _ in 0..d.seq_len("histogram count")? {
        let name = d.str("histogram name")?;
        let n_buckets = d.seq_len("histogram bucket count")?;
        let mut buckets = Vec::with_capacity(n_buckets);
        for _ in 0..n_buckets {
            buckets.push(d.u64("histogram bucket")?);
        }
        let count = d.u64("histogram observation count")?;
        let sum = d.u64("histogram sum")?;
        snap.histograms.insert(name, HistogramSnapshot { buckets, count, sum });
    }
    Ok(snap)
}

// ---------------------------------------------------------------------------
// Message codecs

impl Request {
    /// Whether this request may be sent **again** after a failed exchange
    /// without changing server state beyond what a single send would.
    ///
    /// Reads ([`Request::Schema`], [`Request::Len`], evaluations, exact
    /// aggregates) are trivially replayable. The walk-session mutations
    /// are replayable **by construction**: the server's state stack is
    /// truncated to `parent_level + 1` before every extend, so re-sending
    /// the same extend (alone, fused, or inside a [`Request::Batch`])
    /// converges to the same stack no matter how much of the first
    /// attempt the server executed before the connection died.
    /// [`Request::WalkClose`] is an idempotent evict.
    ///
    /// The one exception is [`Request::WalkOpen`]: every send allocates a
    /// **fresh** session id, so a blind replay leaks a session and — far
    /// worse — leaves the client unsure *which* sid its later messages
    /// commit into. The retry paths in `remote` consult this method and
    /// refuse to replay such requests; callers route them through the
    /// single-attempt API instead.
    #[must_use]
    pub fn replayable(&self) -> bool {
        match self {
            Self::WalkOpen { .. } => false,
            Self::Batch(members) => members.iter().all(Self::replayable),
            _ => true,
        }
    }

    /// Encodes this request as a frame payload.
    ///
    /// # Errors
    /// [`HdbError::Transport`] if a length in the message does not fit
    /// the wire's `u32` ranges (a message that big could never be framed),
    /// or the message nests batches / is an empty batch.
    pub fn encode(&self) -> Result<Vec<u8>> {
        let mut e = Enc::new();
        self.enc_into(&mut e, true)?;
        Ok(e.into_bytes())
    }

    fn enc_into(&self, e: &mut Enc, top: bool) -> Result<()> {
        match self {
            Self::Hello { version } => {
                e.u8(0x01);
                e.u32(*version);
            }
            Self::Schema => e.u8(0x02),
            Self::Len => e.u8(0x03),
            Self::Evaluate { query, k, ranking } => {
                e.u8(0x04);
                enc_query(e, query)?;
                e.u64(*k);
                enc_ranking(e, *ranking)?;
            }
            Self::ExactCount { query } => {
                e.u8(0x05);
                enc_query(e, query)?;
            }
            Self::ExactSum { attr, query } => {
                e.u8(0x06);
                e.u64(*attr);
                enc_query(e, query)?;
            }
            Self::WalkOpen { root } => {
                e.u8(0x07);
                enc_query(e, root)?;
            }
            Self::WalkExtend { sid, parent_level, child, pred } => {
                e.u8(0x08);
                e.u64(*sid);
                e.u32(*parent_level);
                enc_query(e, child)?;
                enc_predicate(e, *pred)?;
            }
            Self::WalkEvaluate { sid, parent_level, child, pred, k, ranking } => {
                e.u8(0x09);
                e.u64(*sid);
                e.u32(*parent_level);
                enc_query(e, child)?;
                enc_predicate(e, *pred)?;
                e.u64(*k);
                enc_ranking(e, *ranking)?;
            }
            Self::WalkClassify { sid, parent_level, child, pred, k } => {
                e.u8(0x0A);
                e.u64(*sid);
                e.u32(*parent_level);
                enc_query(e, child)?;
                enc_predicate(e, *pred)?;
                e.u64(*k);
            }
            Self::WalkClose { sid } => {
                e.u8(0x0B);
                e.u64(*sid);
            }
            Self::Batch(members) => {
                if !top {
                    return Err(HdbError::Transport(
                        "unencodable message: batches cannot nest".into(),
                    ));
                }
                if members.is_empty() {
                    return Err(HdbError::Transport(
                        "unencodable message: empty batch".into(),
                    ));
                }
                e.u8(0x0C);
                e.seq(members.len(), "batch member count")?;
                for m in members {
                    m.enc_into(e, false)?;
                }
            }
            Self::WalkExtendEvaluate {
                sid,
                parent_level,
                ext_child,
                ext_pred,
                child,
                pred,
                k,
                ranking,
            } => {
                e.u8(0x0D);
                e.u64(*sid);
                e.u32(*parent_level);
                enc_query(e, ext_child)?;
                enc_predicate(e, *ext_pred)?;
                enc_query(e, child)?;
                enc_predicate(e, *pred)?;
                e.u64(*k);
                enc_ranking(e, *ranking)?;
            }
            Self::WalkExtendClassify { sid, parent_level, ext_child, ext_pred, child, pred, k } => {
                e.u8(0x0E);
                e.u64(*sid);
                e.u32(*parent_level);
                enc_query(e, ext_child)?;
                enc_predicate(e, *ext_pred)?;
                enc_query(e, child)?;
                enc_predicate(e, *pred)?;
                e.u64(*k);
            }
            Self::Stats => e.u8(0x0F),
        }
        Ok(())
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    /// [`HdbError::Transport`] for any malformed payload.
    pub fn decode(payload: &[u8]) -> Result<Self> {
        let mut d = Dec::new(payload);
        let req = Self::dec_from(&mut d, true)?;
        d.finish()?;
        Ok(req)
    }

    fn dec_from(d: &mut Dec<'_>, top: bool) -> Result<Self> {
        let req = match d.u8("request tag")? {
            0x01 => Self::Hello { version: d.u32("hello version")? },
            0x02 => Self::Schema,
            0x03 => Self::Len,
            0x04 => Self::Evaluate {
                query: dec_query(d)?,
                k: d.u64("k")?,
                ranking: dec_ranking(d)?,
            },
            0x05 => Self::ExactCount { query: dec_query(d)? },
            0x06 => Self::ExactSum { attr: d.u64("sum attr")?, query: dec_query(d)? },
            0x07 => Self::WalkOpen { root: dec_query(d)? },
            0x08 => Self::WalkExtend {
                sid: d.u64("sid")?,
                parent_level: d.u32("parent level")?,
                child: dec_query(d)?,
                pred: dec_predicate(d)?,
            },
            0x09 => Self::WalkEvaluate {
                sid: d.u64("sid")?,
                parent_level: d.u32("parent level")?,
                child: dec_query(d)?,
                pred: dec_predicate(d)?,
                k: d.u64("k")?,
                ranking: dec_ranking(d)?,
            },
            0x0A => Self::WalkClassify {
                sid: d.u64("sid")?,
                parent_level: d.u32("parent level")?,
                child: dec_query(d)?,
                pred: dec_predicate(d)?,
                k: d.u64("k")?,
            },
            0x0B => Self::WalkClose { sid: d.u64("sid")? },
            0x0C => {
                if !top {
                    return Err(HdbError::Transport("malformed frame: nested batch".into()));
                }
                let n = d.seq_len("batch member count")?;
                if n == 0 {
                    return Err(HdbError::Transport("malformed frame: empty batch".into()));
                }
                let mut members = Vec::with_capacity(n);
                for _ in 0..n {
                    members.push(Self::dec_from(d, false)?);
                }
                Self::Batch(members)
            }
            0x0D => Self::WalkExtendEvaluate {
                sid: d.u64("sid")?,
                parent_level: d.u32("parent level")?,
                ext_child: dec_query(d)?,
                ext_pred: dec_predicate(d)?,
                child: dec_query(d)?,
                pred: dec_predicate(d)?,
                k: d.u64("k")?,
                ranking: dec_ranking(d)?,
            },
            0x0E => Self::WalkExtendClassify {
                sid: d.u64("sid")?,
                parent_level: d.u32("parent level")?,
                ext_child: dec_query(d)?,
                ext_pred: dec_predicate(d)?,
                child: dec_query(d)?,
                pred: dec_predicate(d)?,
                k: d.u64("k")?,
            },
            0x0F => Self::Stats,
            t => {
                return Err(HdbError::Transport(format!(
                    "malformed frame: unknown request tag {t:#04x}"
                )))
            }
        };
        Ok(req)
    }
}

impl Response {
    /// Encodes this response as a frame payload.
    ///
    /// # Errors
    /// [`HdbError::Transport`] if a length in the message does not fit
    /// the wire's `u32` ranges (a message that big could never be framed),
    /// or a [`Response::Streamed`] head is not a page carrier.
    pub fn encode(&self) -> Result<Vec<u8>> {
        let mut e = Enc::new();
        self.enc_into(&mut e, true)?;
        Ok(e.into_bytes())
    }

    fn enc_into(&self, e: &mut Enc, top: bool) -> Result<()> {
        match self {
            Self::Hello { version } => {
                e.u8(0x81);
                e.u32(*version);
            }
            Self::Schema(s) => {
                e.u8(0x82);
                enc_schema(e, s)?;
            }
            Self::Len(n) => {
                e.u8(0x83);
                e.u64(*n);
            }
            Self::Evaluation(ev) => {
                e.u8(0x84);
                e.usize(ev.count, "evaluation count")?;
                enc_page(e, &ev.top)?;
            }
            Self::Count(n) => {
                e.u8(0x85);
                e.u64(*n);
            }
            Self::Sum(x) => {
                e.u8(0x86);
                e.f64(*x);
            }
            Self::Session { sid } => {
                e.u8(0x87);
                e.u64(*sid);
            }
            Self::Level { level } => {
                e.u8(0x88);
                e.u32(*level);
            }
            Self::Classified(c) => {
                e.u8(0x89);
                e.usize(c.count, "classified count")?;
                enc_page(e, &c.page)?;
            }
            Self::Closed => e.u8(0x8A),
            Self::SessionGone => e.u8(0x8B),
            Self::ExtendEvaluation { level, evaluation } => {
                e.u8(0x8D);
                e.u32(*level);
                e.usize(evaluation.count, "evaluation count")?;
                enc_page(e, &evaluation.top)?;
            }
            Self::ExtendClassified { level, classified } => {
                e.u8(0x8E);
                e.u32(*level);
                e.usize(classified.count, "classified count")?;
                enc_page(e, &classified.page)?;
            }
            Self::Streamed(head) => {
                if !top {
                    return Err(HdbError::Transport(
                        "unencodable message: stream heads cannot nest".into(),
                    ));
                }
                if !head.carries_page() {
                    return Err(HdbError::Transport(
                        "unencodable message: stream head must carry a page".into(),
                    ));
                }
                e.u8(0x90);
                head.enc_into(e, false)?;
            }
            Self::PageChunk { last, tuples } => {
                if !top {
                    return Err(HdbError::Transport(
                        "unencodable message: page chunks cannot nest".into(),
                    ));
                }
                e.u8(0x91);
                e.u8(u8::from(*last));
                enc_page(e, tuples)?;
            }
            Self::Error(err) => {
                e.u8(0x8F);
                enc_error(e, err)?;
            }
            Self::Stats(snap) => {
                e.u8(0x8C);
                enc_snapshot(e, snap)?;
            }
        }
        Ok(())
    }

    /// Whether this response carries a tuple page — the variants eligible
    /// to head a chunked stream.
    fn carries_page(&self) -> bool {
        matches!(
            self,
            Self::Evaluation(_)
                | Self::Classified(_)
                | Self::ExtendEvaluation { .. }
                | Self::ExtendClassified { .. }
        )
    }

    /// The carried page, mutably (see [`Response::carries_page`]).
    fn page_mut_check(&mut self) -> Option<&mut Vec<ReturnedTuple>> {
        match self {
            Self::Evaluation(ev) => Some(&mut ev.top),
            Self::Classified(c) => Some(&mut c.page),
            Self::ExtendEvaluation { evaluation, .. } => Some(&mut evaluation.top),
            Self::ExtendClassified { classified, .. } => Some(&mut classified.page),
            _ => None,
        }
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    /// [`HdbError::Transport`] for any malformed payload.
    pub fn decode(payload: &[u8]) -> Result<Self> {
        let mut d = Dec::new(payload);
        let resp = Self::dec_from(&mut d, true)?;
        d.finish()?;
        Ok(resp)
    }

    fn dec_from(d: &mut Dec<'_>, top: bool) -> Result<Self> {
        let resp = match d.u8("response tag")? {
            0x81 => Self::Hello { version: d.u32("hello version")? },
            0x82 => Self::Schema(dec_schema(d)?),
            0x83 => Self::Len(d.u64("len")?),
            0x84 => {
                let count = d.usize("evaluation count")?;
                Self::Evaluation(Evaluation { count, top: dec_page(d)? })
            }
            0x85 => Self::Count(d.u64("count")?),
            0x86 => Self::Sum(d.f64("sum")?),
            0x87 => Self::Session { sid: d.u64("sid")? },
            0x88 => Self::Level { level: d.u32("level")? },
            0x89 => {
                let count = d.usize("classified count")?;
                Self::Classified(Classified { count, page: dec_page(d)? })
            }
            0x8A => Self::Closed,
            0x8B => Self::SessionGone,
            0x8D => {
                let level = d.u32("level")?;
                let count = d.usize("evaluation count")?;
                Self::ExtendEvaluation {
                    level,
                    evaluation: Evaluation { count, top: dec_page(d)? },
                }
            }
            0x8E => {
                let level = d.u32("level")?;
                let count = d.usize("classified count")?;
                Self::ExtendClassified {
                    level,
                    classified: Classified { count, page: dec_page(d)? },
                }
            }
            0x90 => {
                if !top {
                    return Err(HdbError::Transport(
                        "malformed frame: nested stream head".into(),
                    ));
                }
                let mut head = Self::dec_from(d, false)?;
                if head.page_mut_check().is_none() {
                    return Err(HdbError::Transport(
                        "malformed frame: stream head does not carry a page".into(),
                    ));
                }
                Self::Streamed(Box::new(head))
            }
            0x91 => {
                if !top {
                    return Err(HdbError::Transport(
                        "malformed frame: nested page chunk".into(),
                    ));
                }
                Self::PageChunk { last: d.u8("chunk terminator")? != 0, tuples: dec_page(d)? }
            }
            0x8C => Self::Stats(dec_snapshot(d)?),
            0x8F => Self::Error(dec_error(d)?),
            t => {
                return Err(HdbError::Transport(format!(
                    "malformed frame: unknown response tag {t:#04x}"
                )))
            }
        };
        Ok(resp)
    }
}

// ---------------------------------------------------------------------------
// Framing

/// Writes one frame (length prefix + payload) to `w`.
///
/// # Errors
/// [`HdbError::Transport`] on any I/O failure or an over-long payload.
pub fn write_frame(w: &mut impl std::io::Write, payload: &[u8]) -> Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(HdbError::Transport(format!(
            "frame payload of {} bytes exceeds the {MAX_FRAME_LEN}-byte cap",
            payload.len()
        )));
    }
    let len = u32::try_from(payload.len()).map_err(|_| oversize("frame payload"))?;
    let io = w
        .write_all(&len.to_le_bytes())
        .and_then(|()| w.write_all(payload))
        .and_then(|()| w.flush());
    io.map_err(|e| HdbError::Transport(format!("write failed: {e}")))
}

/// Reads one frame from `r` (blocking). Returns `Ok(None)` on a clean
/// end-of-stream *before* any header byte — the peer closed between
/// frames.
///
/// # Errors
/// [`HdbError::Transport`] on I/O failure, a mid-frame disconnect, or a
/// corrupt length prefix.
pub fn read_frame(r: &mut impl std::io::Read) -> Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while let Some(rest) = header.get_mut(filled..).filter(|r| !r.is_empty()) {
        match r.read(rest) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(HdbError::Transport("connection closed mid-frame".into())),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(HdbError::Transport(format!("read failed: {e}"))),
        }
    }
    let len = usize::try_from(u32::from_le_bytes(header))
        .map_err(|_| HdbError::Transport("frame length overflows usize".into()))?;
    if len > MAX_FRAME_LEN {
        return Err(HdbError::Transport(format!(
            "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap"
        )));
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    while let Some(rest) = payload.get_mut(filled..).filter(|r| !r.is_empty()) {
        match r.read(rest) {
            Ok(0) => return Err(HdbError::Transport("connection closed mid-frame".into())),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(HdbError::Transport(format!("read failed: {e}"))),
        }
    }
    Ok(Some(payload))
}

/// Encodes one [`Response::PageChunk`] frame payload straight from a
/// borrowed tuple slice — the server's streaming path uses this to emit
/// chunks without cloning the page into a `Response` first. The bytes
/// are identical to `Response::PageChunk { last, tuples }.encode()`.
///
/// # Errors
/// [`HdbError::Transport`] if a tuple's arity exceeds the wire's `u32`
/// range.
pub fn encode_page_chunk(tuples: &[ReturnedTuple], last: bool) -> Result<Vec<u8>> {
    let mut e = Enc::new();
    e.u8(0x91);
    e.u8(u8::from(last));
    enc_page(&mut e, tuples)?;
    Ok(e.into_bytes())
}

/// Writes one logical response to `w`, splitting page-carrying responses
/// whose page exceeds [`STREAM_TUPLES`] into a [`Response::Streamed`]
/// head plus [`Response::PageChunk`] frames. The receiving side is
/// [`read_response`].
///
/// # Errors
/// [`HdbError::Transport`] on any I/O or encoding failure.
pub fn write_response(w: &mut impl std::io::Write, resp: &Response) -> Result<()> {
    match stream_parts(resp) {
        Some((head, page)) if page.len() > STREAM_TUPLES => {
            write_frame(w, &Response::Streamed(Box::new(head)).encode()?)?;
            let mut chunks = page.chunks(STREAM_TUPLES).peekable();
            while let Some(chunk) = chunks.next() {
                write_frame(w, &encode_page_chunk(chunk, chunks.peek().is_none())?)?;
            }
            Ok(())
        }
        _ => write_frame(w, &resp.encode()?),
    }
}

/// Splits a page-carrying response into a page-less head plus its
/// borrowed page; `None` for responses that cannot stream.
fn stream_parts(resp: &Response) -> Option<(Response, &[ReturnedTuple])> {
    match resp {
        Response::Evaluation(ev) => Some((
            Response::Evaluation(Evaluation { count: ev.count, top: Vec::new() }),
            &ev.top,
        )),
        Response::Classified(c) => Some((
            Response::Classified(Classified { count: c.count, page: Vec::new() }),
            &c.page,
        )),
        Response::ExtendEvaluation { level, evaluation } => Some((
            Response::ExtendEvaluation {
                level: *level,
                evaluation: Evaluation { count: evaluation.count, top: Vec::new() },
            },
            &evaluation.top,
        )),
        Response::ExtendClassified { level, classified } => Some((
            Response::ExtendClassified {
                level: *level,
                classified: Classified { count: classified.count, page: Vec::new() },
            },
            &classified.page,
        )),
        _ => None,
    }
}

/// Reads one *logical* response from `r` (blocking), reassembling a
/// chunked page stream back into the head response. Returns `Ok(None)` on
/// a clean end-of-stream before any bytes, like [`read_frame`].
///
/// # Errors
/// [`HdbError::Transport`] on I/O failure, malformed frames, a stream
/// truncated before its terminal chunk, a bare [`Response::PageChunk`]
/// outside a stream, or a stream exceeding [`STREAM_REASSEMBLY_CAP`]
/// tuples.
pub fn read_response(r: &mut impl std::io::Read) -> Result<Option<Response>> {
    let Some(payload) = read_frame(r)? else { return Ok(None) };
    let head = match Response::decode(&payload)? {
        Response::Streamed(head) => *head,
        Response::PageChunk { .. } => {
            return Err(HdbError::Transport(
                "malformed stream: page chunk without a stream head".into(),
            ))
        }
        resp => return Ok(Some(resp)),
    };
    let mut head = head;
    let mut page: Vec<ReturnedTuple> = Vec::new();
    loop {
        let Some(chunk) = read_frame(r)? else {
            return Err(HdbError::Transport(
                "malformed stream: connection closed before the terminal chunk".into(),
            ));
        };
        match Response::decode(&chunk)? {
            Response::PageChunk { last, tuples } => {
                if page.len().saturating_add(tuples.len()) > STREAM_REASSEMBLY_CAP {
                    return Err(HdbError::Transport(format!(
                        "malformed stream: more than {STREAM_REASSEMBLY_CAP} tuples"
                    )));
                }
                page.extend(tuples);
                if last {
                    break;
                }
            }
            _ => {
                return Err(HdbError::Transport(
                    "malformed stream: expected a page chunk mid-stream".into(),
                ))
            }
        }
    }
    match head.page_mut_check() {
        Some(slot) => *slot = page,
        None => {
            return Err(HdbError::Transport(
                "malformed stream: head does not carry a page".into(),
            ))
        }
    }
    Ok(Some(head))
}

/// Incremental frame accumulator for servers that poll connections with
/// short read timeouts: bytes arrive in arbitrary chunks via
/// [`FrameBuf::extend`], complete frames come out of
/// [`FrameBuf::next_frame`], and partial frames persist across polls.
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
}

impl FrameBuf {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds freshly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame payload, if one is buffered.
    ///
    /// # Errors
    /// [`HdbError::Transport`] if the buffered length prefix is corrupt
    /// (over the [`MAX_FRAME_LEN`] cap) — the connection should be
    /// dropped, as the byte stream can never resynchronise.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>> {
        let Some(prefix) = self.buf.get(..4) else { return Ok(None) };
        let header =
            <[u8; 4]>::try_from(prefix).map_err(|_| truncated("frame header"))?;
        let len = usize::try_from(u32::from_le_bytes(header))
            .map_err(|_| HdbError::Transport("frame length overflows usize".into()))?;
        if len > MAX_FRAME_LEN {
            return Err(HdbError::Transport(format!(
                "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap"
            )));
        }
        let total = len.saturating_add(4);
        let Some(frame) = self.buf.get(4..total) else { return Ok(None) };
        let payload = frame.to_vec();
        self.buf.drain(..total);
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ValueId;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::boolean("a"),
            Attribute::categorical("c", ["x", "y", "z"])
                .unwrap()
                .with_numeric(vec![1.5, -2.0, 0.25])
                .unwrap(),
            Attribute::categorical("plain", ["p", "q"]).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn requests_roundtrip() {
        let q = Query::all().and(0, 1).unwrap().and(1, 2).unwrap();
        let requests = vec![
            Request::Hello { version: PROTOCOL_VERSION },
            Request::Schema,
            Request::Len,
            Request::Evaluate { query: q.clone(), k: 7, ranking: RankingSpec::RowId },
            Request::Evaluate {
                query: Query::all(),
                k: 1,
                ranking: RankingSpec::Attribute { attr: 3, descending: true },
            },
            Request::ExactCount { query: q.clone() },
            Request::ExactSum { attr: 2, query: q.clone() },
            Request::WalkOpen { root: Query::all() },
            Request::WalkExtend {
                sid: 9,
                parent_level: 2,
                child: q.clone(),
                pred: Predicate::new(1, 2),
            },
            Request::WalkEvaluate {
                sid: 9,
                parent_level: 0,
                child: q.clone(),
                pred: Predicate::new(0, 1),
                k: 3,
                ranking: RankingSpec::SeededRandom { seed: 42 },
            },
            Request::WalkClassify {
                sid: u64::MAX,
                parent_level: 1,
                child: q.clone(),
                pred: Predicate::new(2, 0),
                k: 10,
            },
            Request::WalkClose { sid: 5 },
            Request::WalkExtendEvaluate {
                sid: 11,
                parent_level: 3,
                ext_child: q.clone(),
                ext_pred: Predicate::new(1, 2),
                child: q.clone().and(2, 1).unwrap(),
                pred: Predicate::new(2, 1),
                k: 4,
                ranking: RankingSpec::SeededRandom { seed: 7 },
            },
            Request::WalkExtendClassify {
                sid: 12,
                parent_level: 0,
                ext_child: q.clone(),
                ext_pred: Predicate::new(0, 1),
                child: q.clone().and(2, 0).unwrap(),
                pred: Predicate::new(2, 0),
                k: 9,
            },
            Request::Batch(vec![
                Request::WalkExtend {
                    sid: 9,
                    parent_level: 0,
                    child: q.clone(),
                    pred: Predicate::new(1, 2),
                },
                Request::WalkClassify {
                    sid: 9,
                    parent_level: 1,
                    child: q.clone(),
                    pred: Predicate::new(2, 0),
                    k: 10,
                },
            ]),
            Request::Stats,
        ];
        for req in requests {
            let bytes = req.encode().unwrap();
            assert_eq!(Request::decode(&bytes).unwrap(), req);
        }
    }

    #[test]
    fn batch_requests_cannot_nest_or_be_empty() {
        assert!(Request::Batch(vec![]).encode().is_err());
        assert!(Request::Batch(vec![Request::Batch(vec![Request::Len])]).encode().is_err());
        // Hand-craft a nested batch: outer 0x0C with one member 0x0C.
        let mut e = Enc::new();
        e.u8(0x0C);
        e.u32(1);
        e.u8(0x0C);
        e.u32(1);
        e.u8(0x03);
        assert!(Request::decode(&e.into_bytes()).is_err());
        // Hand-craft an empty batch.
        let mut e = Enc::new();
        e.u8(0x0C);
        e.u32(0);
        assert!(Request::decode(&e.into_bytes()).is_err());
    }

    #[test]
    fn responses_roundtrip() {
        let page = vec![
            ReturnedTuple { id: 0, tuple: Tuple::new(vec![0, 2, 1]) },
            ReturnedTuple { id: 41, tuple: Tuple::new(vec![1, 0, 0]) },
        ];
        let responses = vec![
            Response::Hello { version: PROTOCOL_VERSION },
            Response::Schema(schema()),
            Response::Len(123_456),
            Response::Evaluation(Evaluation { count: 99, top: page.clone() }),
            Response::Count(7),
            Response::Sum(-1234.5),
            Response::Session { sid: 3 },
            Response::Level { level: 4 },
            Response::Classified(Classified { count: 2, page: page.clone() }),
            Response::Closed,
            Response::SessionGone,
            Response::ExtendEvaluation {
                level: 5,
                evaluation: Evaluation { count: 12, top: page.clone() },
            },
            Response::ExtendClassified {
                level: 1,
                classified: Classified { count: 2, page: page.clone() },
            },
            Response::Streamed(Box::new(Response::Classified(Classified {
                count: 9,
                page: Vec::new(),
            }))),
            Response::PageChunk { last: false, tuples: page.clone() },
            Response::PageChunk { last: true, tuples: Vec::new() },
            Response::Error(HdbError::InvalidQuery("nope".into())),
            Response::Error(HdbError::BudgetExhausted { limit: 1000 }),
            Response::Error(HdbError::Transport("boom".into())),
            Response::Stats(MetricsSnapshot::default()),
            Response::Stats(sample_snapshot()),
        ];
        for resp in responses {
            let bytes = resp.encode().unwrap();
            assert_eq!(Response::decode(&bytes).unwrap(), resp);
        }
    }

    fn sample_snapshot() -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("hdb_queries_issued_total".into(), 42);
        snap.counters.insert("hdb_queries_valid_total".into(), 40);
        snap.gauges.insert("hdb_server_sessions".into(), 3);
        snap.gauges.insert("hdb_walk_scratch_high_water".into(), u64::MAX);
        snap.histograms.insert(
            "hdb_wal_append_nanos".into(),
            HistogramSnapshot { buckets: vec![0, 1, 2, 0, 7], count: 10, sum: 123_456 },
        );
        snap.histograms.insert(
            "hdb_server_batch_size".into(),
            HistogramSnapshot { buckets: Vec::new(), count: 0, sum: 0 },
        );
        snap
    }

    #[test]
    fn stats_frames_are_total_under_truncation() {
        // A Stats request is a single tag byte; anything appended is
        // trailing garbage and anything removed is an empty payload.
        let req = Request::Stats.encode().unwrap();
        assert_eq!(req, vec![0x0F]);
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[0x0F, 0x00]).is_err());
        // Every proper prefix of an encoded Stats response is rejected
        // with a typed transport error, never a panic or a short read.
        let bytes = Response::Stats(sample_snapshot()).encode().unwrap();
        for cut in 0..bytes.len() {
            assert!(
                Response::decode(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded cleanly"
            );
        }
        assert!(Response::decode(&bytes).is_ok());
    }

    #[test]
    fn stream_heads_must_carry_a_page_and_cannot_nest() {
        // A head without a page slot is rejected at encode and decode.
        assert!(Response::Streamed(Box::new(Response::Closed)).encode().is_err());
        let mut e = Enc::new();
        e.u8(0x90);
        e.u8(0x8A); // Closed
        assert!(Response::decode(&e.into_bytes()).is_err());
        // Streamed(Streamed(..)) rejected both ways.
        let inner = Response::Classified(Classified { count: 0, page: Vec::new() });
        let nested = Response::Streamed(Box::new(Response::Streamed(Box::new(inner))));
        assert!(nested.encode().is_err());
        let mut e = Enc::new();
        e.u8(0x90);
        e.u8(0x90);
        e.u8(0x89);
        e.u64(0);
        e.u32(0);
        assert!(Response::decode(&e.into_bytes()).is_err());
    }

    fn big_page(n: usize) -> Vec<ReturnedTuple> {
        (0..n)
            .map(|i| ReturnedTuple {
                id: u32::try_from(i).unwrap(),
                tuple: Tuple::new(vec![u16::try_from(i % 7).unwrap(), 1]),
            })
            .collect()
    }

    #[test]
    fn oversized_pages_stream_in_chunks_and_reassemble_bitwise() {
        for (count, len) in [(0usize, 0usize), (5, 5), (STREAM_TUPLES, STREAM_TUPLES),
            (100_000, STREAM_TUPLES + 1), (100_000, 3 * STREAM_TUPLES + 17)]
        {
            let resp = Response::Evaluation(Evaluation { count, top: big_page(len) });
            let mut stream = Vec::new();
            write_response(&mut stream, &resp).unwrap();
            if len > STREAM_TUPLES {
                // Head frame + ceil(len / STREAM_TUPLES) chunk frames.
                let head = Response::decode(
                    &read_frame(&mut std::io::Cursor::new(stream.clone())).unwrap().unwrap(),
                )
                .unwrap();
                assert!(matches!(head, Response::Streamed(_)), "len={len}");
            }
            let mut cursor = std::io::Cursor::new(stream);
            assert_eq!(read_response(&mut cursor).unwrap(), Some(resp), "len={len}");
            assert_eq!(read_response(&mut cursor).unwrap(), None);
        }
        // The fused variants stream too.
        let resp = Response::ExtendClassified {
            level: 3,
            classified: Classified { count: 4000, page: big_page(4000) },
        };
        let mut stream = Vec::new();
        write_response(&mut stream, &resp).unwrap();
        assert_eq!(read_response(&mut std::io::Cursor::new(stream)).unwrap(), Some(resp));
    }

    #[test]
    fn truncated_streams_and_bare_chunks_are_typed_errors() {
        let resp = Response::Classified(Classified { count: 5000, page: big_page(5000) });
        let mut stream = Vec::new();
        write_response(&mut stream, &resp).unwrap();
        // Cut the stream anywhere after the head frame: a typed error,
        // never a short page silently returned.
        let head_len = {
            let mut c = std::io::Cursor::new(stream.clone());
            read_frame(&mut c).unwrap().unwrap();
            usize::try_from(c.position()).unwrap()
        };
        for cut in [head_len, head_len + 3, stream.len() - 1] {
            let mut c = std::io::Cursor::new(stream[..cut].to_vec());
            assert!(
                matches!(read_response(&mut c), Err(HdbError::Transport(_))),
                "cut={cut}"
            );
        }
        // A PageChunk with no stream head is a protocol violation.
        let mut bare = Vec::new();
        write_frame(
            &mut bare,
            &Response::PageChunk { last: true, tuples: big_page(3) }.encode().unwrap(),
        )
        .unwrap();
        assert!(read_response(&mut std::io::Cursor::new(bare)).is_err());
        // A non-chunk frame mid-stream is a protocol violation.
        let mut mixed = Vec::new();
        write_frame(
            &mut mixed,
            &Response::Streamed(Box::new(Response::Classified(Classified {
                count: 9,
                page: Vec::new(),
            })))
            .encode()
            .unwrap(),
        )
        .unwrap();
        write_frame(&mut mixed, &Response::Closed.encode().unwrap()).unwrap();
        assert!(read_response(&mut std::io::Cursor::new(mixed)).is_err());
    }

    #[test]
    fn schema_roundtrip_preserves_numeric_interpretation() {
        let s = schema();
        let mut e = Enc::new();
        enc_schema(&mut e, &s).unwrap();
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let back = dec_schema(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(back, s);
        assert_eq!(back.attribute(1).numeric_value(2 as ValueId), Some(0.25));
        assert!(!back.attribute(2).is_numeric());
    }

    #[test]
    fn malformed_payloads_are_typed_errors_not_panics() {
        // every prefix of a valid message must fail cleanly
        let full = Request::WalkEvaluate {
            sid: 1,
            parent_level: 0,
            child: Query::all().and(0, 1).unwrap(),
            pred: Predicate::new(0, 1),
            k: 2,
            ranking: RankingSpec::RowId,
        }
        .encode()
        .unwrap();
        for cut in 0..full.len() {
            let err = Request::decode(&full[..cut]).unwrap_err();
            assert!(matches!(err, HdbError::Transport(_)), "cut={cut}");
        }
        // unknown tags
        assert!(Request::decode(&[0x7F]).is_err());
        assert!(Response::decode(&[0x00]).is_err());
        // trailing garbage
        let mut bytes = Request::Len.encode().unwrap();
        bytes.push(9);
        assert!(Request::decode(&bytes).is_err());
        // absurd sequence length: claims 4 billion predicates
        let mut e = Enc::new();
        e.u8(0x05);
        e.u32(u32::MAX);
        assert!(Request::decode(&e.into_bytes()).is_err());
        // duplicate-attribute query rejected at decode
        let mut e = Enc::new();
        e.u8(0x05);
        e.u32(2);
        e.usize(0, "attr").unwrap();
        e.u16(0);
        e.usize(0, "attr").unwrap();
        e.u16(1);
        assert!(matches!(
            Request::decode(&e.into_bytes()),
            Err(HdbError::InvalidQuery(_))
        ));
    }

    #[test]
    fn frames_roundtrip_over_a_byte_stream() {
        let payloads: Vec<Vec<u8>> =
            vec![Request::Len.encode().unwrap(), Request::Schema.encode().unwrap(), vec![], vec![0u8; 4096]];
        let mut stream = Vec::new();
        for p in &payloads {
            write_frame(&mut stream, p).unwrap();
        }
        let mut cursor = std::io::Cursor::new(stream.clone());
        for p in &payloads {
            assert_eq!(read_frame(&mut cursor).unwrap().as_deref(), Some(p.as_slice()));
        }
        assert_eq!(read_frame(&mut cursor).unwrap(), None, "clean EOF between frames");

        // a truncated stream is a mid-frame disconnect
        let mut cut = std::io::Cursor::new(stream[..stream.len() - 1].to_vec());
        for _ in 0..payloads.len() - 1 {
            read_frame(&mut cut).unwrap();
        }
        assert!(matches!(read_frame(&mut cut), Err(HdbError::Transport(_))));

        // an oversized length prefix is rejected before allocation
        let mut evil = std::io::Cursor::new(u32::MAX.to_le_bytes().to_vec());
        assert!(matches!(read_frame(&mut evil), Err(HdbError::Transport(_))));
    }

    #[test]
    fn frame_buf_reassembles_arbitrary_chunks() {
        let payloads = [Request::Len.encode().unwrap(), Request::Schema.encode().unwrap()];
        let mut stream = Vec::new();
        for p in &payloads {
            write_frame(&mut stream, p).unwrap();
        }
        for chunk in [1usize, 2, 3, 5, stream.len()] {
            let mut fb = FrameBuf::new();
            let mut got = Vec::new();
            for bytes in stream.chunks(chunk) {
                fb.extend(bytes);
                while let Some(p) = fb.next_frame().unwrap() {
                    got.push(p);
                }
            }
            assert_eq!(got.len(), payloads.len(), "chunk={chunk}");
            assert_eq!(got[0], payloads[0]);
            assert_eq!(got[1], payloads[1]);
        }
        // corrupt prefix surfaces as an error
        let mut fb = FrameBuf::new();
        fb.extend(&u32::MAX.to_le_bytes());
        assert!(fb.next_frame().is_err());
    }
}
