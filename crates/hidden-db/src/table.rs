//! In-memory tables: the ground-truth data behind a hidden database.
//!
//! The table is the *owner's* view; estimators never see it directly.
//! It also exposes exact aggregates (size, SUM, conditional COUNT/SUM)
//! used as ground truth when scoring estimators. Aggregates are answered
//! through a lazily built, cached [`TableIndex`] (bitmap AND + popcount
//! per query) rather than rescanning the tuple vector on every call; the
//! scan path survives as `*_scan` methods so property tests and benches
//! can pit the two against each other.

use std::collections::BTreeSet;
use std::sync::OnceLock;

use crate::error::{HdbError, Result};
use crate::index::TableIndex;
use crate::query::Query;
use crate::schema::{AttrId, Schema};
use crate::tuple::{Tuple, TupleId};

/// A validated, duplicate-free table over a [`Schema`].
///
/// The paper assumes no duplicate tuples and no NULLs (§2.1); `Table`
/// enforces both at construction.
#[derive(Debug)]
pub struct Table {
    schema: Schema,
    tuples: Vec<Tuple>,
    /// Bitmap index over the current tuples, built on first aggregate
    /// call and dropped by any mutation. `OnceLock` keeps the table
    /// `Sync` without locking the read path.
    index: OnceLock<TableIndex>,
}

impl Clone for Table {
    fn clone(&self) -> Self {
        // The clone starts with a cold index cache: cloning is common in
        // dataset generators that mutate the copy next, where a cloned
        // index would be rebuilt anyway.
        Self { schema: self.schema.clone(), tuples: self.tuples.clone(), index: OnceLock::new() }
    }
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn empty(schema: Schema) -> Self {
        Self { schema, tuples: Vec::new(), index: OnceLock::new() }
    }

    /// Builds a table from tuples, validating conformance and rejecting
    /// duplicates.
    ///
    /// # Errors
    /// Returns [`HdbError::InvalidTuple`] on the first non-conforming or
    /// duplicate tuple.
    pub fn new(schema: Schema, tuples: Vec<Tuple>) -> Result<Self> {
        let mut table = Self::empty(schema);
        table.extend(tuples)?;
        Ok(table)
    }

    /// Builds a table from tuples, silently dropping duplicates (keeps
    /// the first occurrence). Non-conforming tuples are still errors.
    ///
    /// Dataset generators use this: resampling-based enlargement (the
    /// paper's DBGen step) can produce collisions that must be dropped to
    /// preserve the no-duplicates model.
    ///
    /// # Errors
    /// Returns [`HdbError::InvalidTuple`] on a non-conforming tuple.
    pub fn new_dedup(schema: Schema, tuples: Vec<Tuple>) -> Result<Self> {
        let mut seen: BTreeSet<Tuple> = BTreeSet::new();
        let mut kept = Vec::with_capacity(tuples.len());
        for t in tuples {
            if !t.conforms_to(&schema) {
                return Err(HdbError::InvalidTuple(format!(
                    "tuple {:?} does not conform to schema {}",
                    t.values(),
                    schema
                )));
            }
            if seen.insert(t.clone()) {
                kept.push(t);
            }
        }
        let mut table = Self::empty(schema);
        table.tuples = kept;
        Ok(table)
    }

    /// Appends a tuple, validating conformance and uniqueness.
    ///
    /// # Errors
    /// Returns [`HdbError::InvalidTuple`] if the tuple does not conform or
    /// duplicates an existing row. (Uniqueness check is O(m); use
    /// [`Table::new`]/[`Table::new_dedup`] for bulk loads.)
    pub fn push(&mut self, tuple: Tuple) -> Result<()> {
        if !tuple.conforms_to(&self.schema) {
            return Err(HdbError::InvalidTuple(format!(
                "tuple {:?} does not conform to schema {}",
                tuple.values(),
                self.schema
            )));
        }
        if self.tuples.contains(&tuple) {
            return Err(HdbError::InvalidTuple(format!(
                "duplicate tuple {:?}",
                tuple.values()
            )));
        }
        self.tuples.push(tuple);
        self.index.take();
        Ok(())
    }

    /// Appends a tuple the caller has already validated (conformance and
    /// uniqueness) — the persistent backend's ingest path, which keeps
    /// its own `BTreeSet` of seen tuples so ingest stays O(log m) rather
    /// than the O(m) scan of [`Table::push`]. Drops the cached index.
    pub(crate) fn push_validated(&mut self, tuple: Tuple) {
        self.tuples.push(tuple);
        self.index.take();
    }

    fn extend(&mut self, tuples: Vec<Tuple>) -> Result<()> {
        let mut seen: BTreeSet<&Tuple> = self.tuples.iter().collect();
        let mut validated = Vec::with_capacity(tuples.len());
        for t in &tuples {
            if !t.conforms_to(&self.schema) {
                return Err(HdbError::InvalidTuple(format!(
                    "tuple {:?} does not conform to schema {}",
                    t.values(),
                    self.schema
                )));
            }
            if !seen.insert(t) {
                return Err(HdbError::InvalidTuple(format!("duplicate tuple {:?}", t.values())));
            }
            validated.push(t.clone());
        }
        drop(seen);
        self.tuples.extend(validated);
        self.index.take();
        Ok(())
    }

    /// The schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples `m` — the quantity the paper's estimators target.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// All tuples.
    #[must_use]
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// A tuple by id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn tuple(&self, id: TupleId) -> &Tuple {
        &self.tuples[id as usize]
    }

    // ------------------------------------------------------------------
    // Ground-truth aggregates (owner-side; not available to estimators)
    // ------------------------------------------------------------------

    /// The bitmap index over the current tuples, building it on first
    /// use. All aggregate methods route through this; mutations
    /// ([`Table::push`]) drop the cache.
    #[must_use]
    pub fn index(&self) -> &TableIndex {
        self.index.get_or_init(|| TableIndex::build(self))
    }

    /// Exact `COUNT(*) WHERE q` via the cached bitmap index.
    #[must_use]
    pub fn exact_count(&self, q: &Query) -> usize {
        self.index().count(q)
    }

    /// Exact `COUNT(*) WHERE q` by linear scan — the pre-index reference
    /// path, kept so equivalence with the bitmap path stays testable (and
    /// benchmarkable).
    #[must_use]
    pub fn exact_count_scan(&self, q: &Query) -> usize {
        self.tuples.iter().filter(|t| q.matches(t)).count()
    }

    /// Exact `SUM(attr) WHERE q` using the attribute's numeric
    /// interpretation, via the cached bitmap index.
    ///
    /// # Errors
    /// Returns [`HdbError::InvalidQuery`] if `attr` has no numeric
    /// interpretation or is out of range.
    pub fn exact_sum(&self, attr: AttrId, q: &Query) -> Result<f64> {
        let a = self.checked_numeric(attr)?;
        Ok(self
            .index()
            .selection(q)
            .iter_ones()
            .map(|r| {
                a.numeric_value(self.tuples[r].value(attr)).expect("checked numeric")
            })
            .sum())
    }

    /// Exact `SUM(attr) WHERE q` by linear scan (reference path, see
    /// [`Table::exact_count_scan`]).
    ///
    /// # Errors
    /// Same conditions as [`Table::exact_sum`].
    pub fn exact_sum_scan(&self, attr: AttrId, q: &Query) -> Result<f64> {
        let a = self.checked_numeric(attr)?;
        Ok(self
            .tuples
            .iter()
            .filter(|t| q.matches(t))
            .map(|t| a.numeric_value(t.value(attr)).expect("checked numeric"))
            .sum())
    }

    fn checked_numeric(&self, attr: AttrId) -> Result<&crate::schema::Attribute> {
        if attr >= self.schema.len() {
            return Err(HdbError::InvalidQuery(format!("attribute id {attr} out of range")));
        }
        let a = self.schema.attribute(attr);
        if !a.is_numeric() {
            return Err(HdbError::InvalidQuery(format!(
                "attribute `{}` has no numeric interpretation",
                a.name()
            )));
        }
        Ok(a)
    }

    /// Exact `AVG(attr) WHERE q`. Returns `None` when no tuple matches.
    ///
    /// # Errors
    /// Same conditions as [`Table::exact_sum`].
    pub fn exact_avg(&self, attr: AttrId, q: &Query) -> Result<Option<f64>> {
        let count = self.exact_count(q);
        if count == 0 {
            return Ok(None);
        }
        Ok(Some(self.exact_sum(attr, q)? / count as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::boolean("a"),
            Attribute::boolean("b"),
            Attribute::categorical("c", ["x", "y", "z"])
                .unwrap()
                .with_numeric(vec![10.0, 20.0, 30.0])
                .unwrap(),
        ])
        .unwrap()
    }

    fn table() -> Table {
        Table::new(
            schema(),
            vec![
                Tuple::new(vec![0, 0, 0]),
                Tuple::new(vec![0, 1, 1]),
                Tuple::new(vec![1, 1, 1]),
                Tuple::new(vec![1, 1, 2]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn rejects_duplicates() {
        let err = Table::new(
            schema(),
            vec![Tuple::new(vec![0, 0, 0]), Tuple::new(vec![0, 0, 0])],
        );
        assert!(err.is_err());
    }

    #[test]
    fn dedup_keeps_first() {
        let t = Table::new_dedup(
            schema(),
            vec![
                Tuple::new(vec![0, 0, 0]),
                Tuple::new(vec![0, 0, 0]),
                Tuple::new(vec![1, 0, 0]),
            ],
        )
        .unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn rejects_nonconforming() {
        let err = Table::new(schema(), vec![Tuple::new(vec![0, 0])]);
        assert!(err.is_err());
        let err = Table::new(schema(), vec![Tuple::new(vec![0, 0, 3])]);
        assert!(err.is_err());
    }

    #[test]
    fn push_validates() {
        let mut t = table();
        assert!(t.push(Tuple::new(vec![0, 0, 0])).is_err());
        assert!(t.push(Tuple::new(vec![0, 0, 1])).is_ok());
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn exact_count_matches_scan() {
        let t = table();
        assert_eq!(t.exact_count(&Query::all()), 4);
        let q = Query::all().and(1, 1).unwrap();
        assert_eq!(t.exact_count(&q), 3);
        let q = q.and(0, 0).unwrap();
        assert_eq!(t.exact_count(&q), 1);
    }

    #[test]
    fn exact_sum_and_avg() {
        let t = table();
        assert_eq!(t.exact_sum(2, &Query::all()).unwrap(), 10.0 + 20.0 + 20.0 + 30.0);
        let q = Query::all().and(0, 1).unwrap();
        assert_eq!(t.exact_sum(2, &q).unwrap(), 50.0);
        assert_eq!(t.exact_avg(2, &q).unwrap(), Some(25.0));
        let q_none = Query::all().and(0, 1).unwrap().and(1, 0).unwrap();
        assert_eq!(t.exact_avg(2, &q_none).unwrap(), None);
    }

    #[test]
    fn index_survives_reads_and_is_dropped_by_mutation() {
        let mut t = table();
        let q = Query::all().and(1, 1).unwrap();
        assert_eq!(t.exact_count(&q), 3);
        // the cached index must not serve stale answers after a push
        t.push(Tuple::new(vec![0, 1, 2])).unwrap();
        assert_eq!(t.exact_count(&q), 4);
        assert_eq!(t.exact_count_scan(&q), 4);
    }

    #[test]
    fn bitmap_and_scan_paths_agree() {
        let t = table();
        let queries = [
            Query::all(),
            Query::all().and(0, 1).unwrap(),
            Query::all().and(0, 0).unwrap().and(1, 1).unwrap(),
            Query::all().and(2, 2).unwrap().and(0, 0).unwrap(),
        ];
        for q in &queries {
            assert_eq!(t.exact_count(q), t.exact_count_scan(q), "query {q:?}");
            assert_eq!(
                t.exact_sum(2, q).unwrap(),
                t.exact_sum_scan(2, q).unwrap(),
                "query {q:?}"
            );
        }
    }

    #[test]
    fn cloned_table_answers_like_the_original() {
        let t = table();
        let _ = t.exact_count(&Query::all()); // warm the cache
        let c = t.clone();
        assert_eq!(c.exact_count(&Query::all()), t.exact_count(&Query::all()));
    }

    #[test]
    fn sum_requires_numeric_interpretation() {
        let s = Schema::new(vec![
            Attribute::boolean("a"),
            Attribute::categorical("c", ["x", "y"]).unwrap(),
        ])
        .unwrap();
        let t = Table::new(s, vec![Tuple::new(vec![0, 0])]).unwrap();
        assert!(t.exact_sum(1, &Query::all()).is_err());
        assert!(t.exact_sum(9, &Query::all()).is_err());
    }
}
