//! [`TraceRing`]: a bounded ring buffer of structured span events.
//!
//! Metrics aggregate; traces explain. A span is an open/close event pair
//! sharing an id, with an optional parent id — enough structure to
//! reconstruct, after the fact, that *this* WAL append happened inside
//! *that* walk probe inside *that* estimation pass. The ring is bounded:
//! old events fall off the front (counted in
//! [`TraceRing::dropped`]), so a long-running server never grows
//! unboundedly for the sake of diagnostics.
//!
//! Determinism: event timestamps come from whatever [`Clock`](
//! crate::obs::Clock) the owning component holds — `0` on every event
//! when it holds none, which is the deterministic default. Ids are a
//! per-ring sequence starting at 1 (`0` means "no span": the return value
//! of recording into a disabled ring, and the parent id of a root span).
//! Recording takes a mutex, so tracing is **off by default** and opted
//! into per component — unlike metric counters, which are cheap enough to
//! leave on everywhere.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Whether a [`SpanEvent`] opens or closes its span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanPhase {
    /// The span started.
    Open,
    /// The span finished.
    Close,
}

/// One recorded span boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// The span's id (unique per ring, starting at 1).
    pub id: u64,
    /// The enclosing span's id, or 0 for a root span.
    pub parent: u64,
    /// What the span is (static label, e.g. `"walk_probe"`).
    pub label: &'static str,
    /// Open or close.
    pub phase: SpanPhase,
    /// Clock reading at the boundary (0 when the owner has no clock).
    pub at_nanos: u64,
}

/// The shared state behind an enabled ring.
#[derive(Debug)]
struct RingInner {
    capacity: usize,
    events: Mutex<VecDeque<SpanEvent>>,
    next_id: AtomicU64,
    dropped: AtomicU64,
}

impl RingInner {
    fn push(&self, ev: SpanEvent) {
        // Poison recovery: the deque carries no cross-field invariant, so
        // a panicked holder leaves it usable — recover, don't unwind.
        let mut events = self.events.lock().unwrap_or_else(|p| p.into_inner());
        if events.len() == self.capacity {
            events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(ev);
    }
}

/// A bounded, shareable span recorder. Clones share the same ring. A
/// default-constructed ring is disabled: recording is a no-op returning
/// span id 0.
#[derive(Clone, Debug, Default)]
pub struct TraceRing {
    inner: Option<Arc<RingInner>>,
}

impl TraceRing {
    /// An enabled ring holding at most `capacity` events (clamped to at
    /// least 2, one open/close pair).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Some(Arc::new(RingInner {
                capacity: capacity.max(2),
                events: Mutex::new(VecDeque::new()),
                next_id: AtomicU64::new(1),
                dropped: AtomicU64::new(0),
            })),
        }
    }

    /// A disabled ring: every operation is a no-op.
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether events are being recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records a span open under `parent` (0 for a root span) and returns
    /// the new span's id — 0 when the ring is disabled, which is in turn
    /// a valid `parent` / [`TraceRing::close`] argument, so call sites
    /// need no enabled-check of their own.
    pub fn open(&self, label: &'static str, parent: u64, at_nanos: u64) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        inner.push(SpanEvent { id, parent, label, phase: SpanPhase::Open, at_nanos });
        id
    }

    /// Records the close of span `id` (no-op for id 0 or a disabled
    /// ring).
    pub fn close(&self, id: u64, label: &'static str, at_nanos: u64) {
        let Some(inner) = &self.inner else { return };
        if id == 0 {
            return;
        }
        inner.push(SpanEvent { id, parent: 0, label, phase: SpanPhase::Close, at_nanos });
    }

    /// The retained events, oldest first (empty for a disabled ring).
    #[must_use]
    pub fn events(&self) -> Vec<SpanEvent> {
        self.inner.as_ref().map_or_else(Vec::new, |inner| {
            inner.events.lock().unwrap_or_else(|p| p.into_inner()).iter().cloned().collect()
        })
    }

    /// Retained event count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.events.lock().unwrap_or_else(|p| p.into_inner()).len())
    }

    /// Whether no events are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted by the bound so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |inner| inner.dropped.load(Ordering::Relaxed))
    }

    /// The ring's capacity (0 for a disabled ring).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.inner.as_ref().map_or(0, |inner| inner.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_by_parent_id() {
        let ring = TraceRing::new(16);
        assert!(ring.is_enabled());
        let pass = ring.open("engine_pass", 0, 10);
        let probe = ring.open("walk_probe", pass, 20);
        ring.close(probe, "walk_probe", 30);
        ring.close(pass, "engine_pass", 40);
        let evs = ring.events();
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[0].id, pass);
        assert_eq!(evs[0].parent, 0);
        assert_eq!(evs[0].phase, SpanPhase::Open);
        assert_eq!(evs[1].parent, pass);
        assert_eq!(evs[1].label, "walk_probe");
        assert_eq!(evs[2], SpanEvent {
            id: probe,
            parent: 0,
            label: "walk_probe",
            phase: SpanPhase::Close,
            at_nanos: 30,
        });
        assert_eq!(evs[3].at_nanos, 40);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn the_ring_is_bounded_and_counts_evictions() {
        let ring = TraceRing::new(4);
        assert_eq!(ring.capacity(), 4);
        for i in 0..6 {
            ring.open("ev", 0, i);
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 2);
        // Oldest fell off: the first retained event is the third opened.
        assert_eq!(ring.events()[0].at_nanos, 2);
        assert!(!ring.is_empty());
    }

    #[test]
    fn disabled_ring_is_a_total_no_op() {
        let ring = TraceRing::disabled();
        assert!(!ring.is_enabled());
        let id = ring.open("x", 0, 1);
        assert_eq!(id, 0);
        ring.close(id, "x", 2);
        assert!(ring.events().is_empty());
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.capacity(), 0);
        assert_eq!(TraceRing::default().open("x", 0, 0), 0);
    }

    #[test]
    fn capacity_is_clamped_to_a_pair() {
        let ring = TraceRing::new(0);
        assert_eq!(ring.capacity(), 2);
        let a = ring.open("a", 0, 0);
        ring.close(a, "a", 1);
        assert_eq!(ring.len(), 2);
    }
}
