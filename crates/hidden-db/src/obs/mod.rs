//! Deterministic observability: metrics, clocks, and span tracing.
//!
//! Estimation over a hidden database is an *economic* activity — the
//! paper's budget currency is the query-cost ledger
//! (`issued == underflow + valid + overflow + errored`) — yet until this
//! module existed that ledger, the memo hit-rates, the reactor dispatch
//! counts, and the WAL fsync latencies were only visible inside tests.
//! `obs` makes them first-class data while keeping the repo's strictest
//! invariant intact: **instrumentation is bit-invisible**. Every
//! estimate, outcome, and wire frame is identical with observability
//! enabled, disabled, or stripped.
//!
//! Three pieces enforce that:
//!
//! * [`MetricsRegistry`] — named lock-free counters, gauges, and
//!   fixed-bucket log2 histograms. Recording is a relaxed atomic add on a
//!   pre-resolved handle (no locking, no allocation, no branching on
//!   names) and happens strictly *after* a result is computed, so the
//!   computation can never observe its own telemetry. Snapshots come out
//!   as an ordered [`MetricsSnapshot`] (`BTreeMap`, HDB-D01-clean) and
//!   render to Prometheus text exposition.
//! * [`Clock`] — the only way timing enters telemetry. [`WallClock`]
//!   (the single reviewed `Instant` site outside benches; lint rule
//!   HDB-O01 confines wall-clock reads to `obs/clock.rs`) is opt-in per
//!   component; [`ManualClock`] gives tests deterministic nanoseconds.
//!   A component without a clock records durations as 0 — identically on
//!   every run.
//! * [`TraceRing`] — a bounded ring buffer of structured span open/close
//!   events with parent ids, for estimation passes, walk probes, wire
//!   exchanges, and WAL appends. Disabled by default (a ring push takes a
//!   mutex); opt in per component.
//!
//! The catalogue of metric names lives in `docs/ARCHITECTURE.md`
//! §Observability.

pub mod clock;
pub mod registry;
pub mod trace;

pub use clock::{precise_wait, Clock, ManualClock, WallClock};
pub use registry::{
    bucket_le, bucket_of, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry,
    MetricsSnapshot, HISTOGRAM_BUCKETS,
};
pub use trace::{SpanEvent, SpanPhase, TraceRing};
