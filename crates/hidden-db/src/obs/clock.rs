//! Clock confinement: the one reviewed module where wall-clock time may
//! be read.
//!
//! The determinism contract (ARCHITECTURE.md, lint rule HDB-O01) bans
//! `Instant` / `SystemTime` everywhere except benches and this file.
//! Timing telemetry still wants real durations, so the two are reconciled
//! through the [`Clock`] trait: components that time things hold an
//! `Option<Arc<dyn Clock>>`, record `now_nanos()` deltas when one is
//! installed, and record nothing (or zeros) when not. Production wires in
//! [`WallClock`]; deterministic tests wire in [`ManualClock`] and advance
//! it by hand — same code path, reproducible numbers.
//!
//! A clock reading may only ever flow into *telemetry* (histograms, span
//! timestamps); never into a query result. That is an invariant of the
//! call sites, kept reviewable by confining the raw reads here.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotonic nanosecond source for telemetry.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds since the clock's origin. Only the deltas between two
    /// readings are meaningful.
    fn now_nanos(&self) -> u64;
}

/// The real wall clock, as nanoseconds since construction. This is the
/// only production `Instant` read in the workspace (HDB-O01).
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock whose origin is now.
    #[must_use]
    pub fn new() -> Self {
        Self { origin: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_nanos(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A hand-advanced clock for deterministic tests: `now_nanos` returns
/// exactly what the test last set, on every run.
#[derive(Debug, Default)]
pub struct ManualClock(AtomicU64);

impl ManualClock {
    /// A manual clock at nanosecond 0.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the absolute reading.
    pub fn set(&self, nanos: u64) {
        self.0.store(nanos, Ordering::Relaxed);
    }

    /// Advances the reading by `nanos`.
    pub fn advance(&self, nanos: u64) {
        self.0.fetch_add(nanos, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Sleeps close to `d` without the OS-timer overshoot of a plain
/// `thread::sleep` — `BENCH_scale04.json` recorded a 7× overshoot at
/// loopback-scale latencies (~5 µs requested, ~35 µs paid). The slack on
/// this kernel is well under 300 µs, so waits are split: a coarse
/// `thread::sleep` up to `COARSE_MARGIN` short of the deadline, then a
/// `yield_now` spin for the remainder. Calibrated range: waits of ≥ 1 µs
/// land within a few µs of the request; waits below the margin skip the
/// sleep entirely and spin-yield the whole way.
///
/// Lives here because it reads `Instant` — the reading only decides when
/// to stop waiting and can never reach a query result.
pub fn precise_wait(d: Duration) {
    const COARSE_MARGIN: Duration = Duration::from_micros(300);
    let start = Instant::now();
    if let Some(coarse) = d.checked_sub(COARSE_MARGIN) {
        if !coarse.is_zero() {
            std::thread::sleep(coarse);
        }
    }
    while start.elapsed() < d {
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn manual_clock_is_deterministic() {
        let c = ManualClock::new();
        assert_eq!(c.now_nanos(), 0);
        c.advance(5);
        c.advance(7);
        assert_eq!(c.now_nanos(), 12);
        c.set(3);
        assert_eq!(c.now_nanos(), 3);
        // Usable behind the trait object components hold.
        let dyn_clock: Arc<dyn Clock> = Arc::new(c);
        assert_eq!(dyn_clock.now_nanos(), 3);
    }

    #[test]
    fn wall_clock_is_monotonic_from_its_origin() {
        let c = WallClock::default();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn calibrated_wait_does_not_grossly_overshoot() {
        // The defect this pins: plain `thread::sleep(5µs)` paid ~7× the
        // request (BENCH_scale04.json, remote_vs_prediction 0.137). The
        // calibrated wait must stay within a generous 3× at a latency an
        // order of magnitude above loopback. Bounded loosely so a noisy
        // CI scheduler cannot flake it.
        let d = Duration::from_micros(200);
        let start = Instant::now();
        for _ in 0..8 {
            precise_wait(d);
        }
        let elapsed = start.elapsed();
        assert!(elapsed >= d * 8, "waits must never undershoot: {elapsed:?}");
        assert!(elapsed < d * 8 * 3, "7×-overshoot defect is back: {elapsed:?}");
    }
}
