//! [`MetricsRegistry`]: named lock-free counters, gauges, and log2
//! histograms snapshotting into an ordered [`MetricsSnapshot`].
//!
//! Design rules (the bit-invisibility contract):
//!
//! * **Handles, not names, on the hot path.** Components resolve a
//!   [`Counter`] / [`Gauge`] / [`Histogram`] handle once at construction
//!   time (a mutex-guarded `BTreeMap` lookup) and record through it with
//!   relaxed atomic ops — no locking, no allocation, no string hashing
//!   per event.
//! * **Disabled is free and identical.** A registry built with
//!   [`MetricsRegistry::disabled`] hands out no-op handles (`None`
//!   inside); recording through them is a branch on an `Option`. Results
//!   never depend on which variant is live because recording happens
//!   strictly after outcomes are computed.
//! * **Ordered snapshots.** [`MetricsSnapshot`] uses `BTreeMap`
//!   throughout (HDB-D01), so wire encodings and Prometheus scrapes are
//!   byte-stable for a given set of values.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: bucket `i < HISTOGRAM_BUCKETS - 1` holds
/// values `v ≤ 2^i`; the last bucket is the overflow (`+Inf`) bucket.
/// 40 buckets cover one nanosecond to ~9 minutes in nanoseconds.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// The bucket index a value lands in: `0` for `v ≤ 1`, otherwise
/// `ceil(log2(v))`, clamped into the overflow bucket.
#[must_use]
pub fn bucket_of(value: u64) -> usize {
    if value <= 1 {
        0
    } else {
        let ceil_log2 = (u64::BITS - (value - 1).leading_zeros()) as usize;
        ceil_log2.min(HISTOGRAM_BUCKETS - 1)
    }
}

/// The inclusive upper bound of bucket `i` (`2^i`), or `None` for the
/// overflow bucket.
#[must_use]
pub fn bucket_le(i: usize) -> Option<u64> {
    (i < HISTOGRAM_BUCKETS - 1).then(|| 1u64 << i)
}

/// The shared cells behind one histogram series.
#[derive(Debug)]
struct HistogramCells {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCells {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    fn observe(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A monotonically increasing event tally. Cheap to clone (shares the
/// cell); a default-constructed counter is a no-op.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A no-op counter (what a disabled registry hands out).
    #[must_use]
    pub fn disabled() -> Self {
        Self(None)
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a disabled counter).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A settable level (queue depth, session count, high-water mark). A
/// default-constructed gauge is a no-op.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// A no-op gauge (what a disabled registry hands out).
    #[must_use]
    pub fn disabled() -> Self {
        Self(None)
    }

    /// Sets the level.
    pub fn set(&self, v: u64) {
        if let Some(cell) = &self.0 {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Raises the level to `v` if `v` is higher (high-water marks).
    pub fn record_max(&self, v: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current level (0 for a disabled gauge).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket log2 histogram of `u64` observations (latencies in
/// nanoseconds, batch sizes, …). A default-constructed histogram is a
/// no-op; [`Histogram::standalone`] makes one not tied to any registry
/// (the storage layer's latency series, merged into snapshots by
/// `fill_metrics`).
#[derive(Clone, Debug, Default)]
pub struct Histogram(Option<Arc<HistogramCells>>);

impl Histogram {
    /// A no-op histogram (what a disabled registry hands out).
    #[must_use]
    pub fn disabled() -> Self {
        Self(None)
    }

    /// A live histogram owned by the caller rather than a registry.
    #[must_use]
    pub fn standalone() -> Self {
        Self(Some(Arc::new(HistogramCells::new())))
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        if let Some(cells) = &self.0 {
            cells.observe(value);
        }
    }

    /// Snapshot of the cells, or `None` when disabled.
    #[must_use]
    pub fn snapshot(&self) -> Option<HistogramSnapshot> {
        self.0.as_ref().map(|cells| cells.snapshot())
    }
}

/// Point-in-time values of one histogram series.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (`buckets[i]` = observations landing in bucket
    /// `i`, non-cumulative; see [`bucket_of`]).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

/// The registry's shared state: name → cell maps, mutated only at handle
/// resolution time (component construction), never on the record path.
#[derive(Debug, Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCells>>>,
}

/// A named collection of metric series. Clones share the same series
/// (handing a registry to a component means its metrics land in the
/// owner's snapshot); resolving the same name twice returns handles on
/// the same cell.
#[derive(Clone, Debug)]
pub struct MetricsRegistry {
    inner: Option<Arc<RegistryInner>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

// Poison recovery throughout: the name → cell maps carry no cross-field
// invariant (worst case a handle resolves to a freshly inserted cell), so
// a panicked holder leaves them fully usable.
fn locked<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

impl MetricsRegistry {
    /// A live registry.
    #[must_use]
    pub fn new() -> Self {
        Self { inner: Some(Arc::new(RegistryInner::default())) }
    }

    /// A disabled registry: every handle it resolves is a no-op and
    /// [`MetricsRegistry::snapshot`] is empty. Used to prove
    /// bit-invisibility (and by benches measuring instrumentation
    /// overhead).
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether this registry records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Resolves (registering on first use) the counter `name`.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.inner.as_ref().map(|inner| {
            Arc::clone(locked(&inner.counters).entry(name.to_string()).or_default())
        }))
    }

    /// Resolves (registering on first use) the gauge `name`.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.inner.as_ref().map(|inner| {
            Arc::clone(locked(&inner.gauges).entry(name.to_string()).or_default())
        }))
    }

    /// Resolves (registering on first use) the histogram `name`.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram(self.inner.as_ref().map(|inner| {
            Arc::clone(
                locked(&inner.histograms)
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(HistogramCells::new())),
            )
        }))
    }

    /// An ordered snapshot of every registered series.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        if let Some(inner) = &self.inner {
            for (name, cell) in locked(&inner.counters).iter() {
                snap.counters.insert(name.clone(), cell.load(Ordering::Relaxed));
            }
            for (name, cell) in locked(&inner.gauges).iter() {
                snap.gauges.insert(name.clone(), cell.load(Ordering::Relaxed));
            }
            for (name, cells) in locked(&inner.histograms).iter() {
                snap.histograms.insert(name.clone(), cells.snapshot());
            }
        }
        snap
    }
}

/// An ordered point-in-time view of a metric set — what crosses the wire
/// in a `Stats` response and what the Prometheus endpoint renders.
///
/// Series names may carry Prometheus-style labels
/// (`hdb_fed_shard_state{shard="0"}`) on counters and gauges; histogram
/// names must be label-free (the renderer splices `_bucket` suffixes).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Monotonic tallies, by series name.
    pub counters: BTreeMap<String, u64>,
    /// Levels and high-water marks, by series name.
    pub gauges: BTreeMap<String, u64>,
    /// Log2 histograms, by series name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// The series name with any `{label}` suffix stripped — what `# TYPE`
/// lines declare.
fn base_name(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

impl MetricsSnapshot {
    /// Folds `other` into `self`: counters and histogram cells add,
    /// gauges overwrite (`other` wins). This is how a layered stack
    /// (interface registry + backend-reported series) becomes one
    /// snapshot.
    pub fn merge(&mut self, other: MetricsSnapshot) {
        for (name, v) in other.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (name, v) in other.gauges {
            self.gauges.insert(name, v);
        }
        for (name, h) in other.histograms {
            let slot = self.histograms.entry(name).or_default();
            slot.buckets.resize(h.buckets.len().max(slot.buckets.len()), 0);
            for (i, b) in h.buckets.iter().enumerate() {
                slot.buckets[i] += b;
            }
            slot.count += h.count;
            slot.sum += h.sum;
        }
    }

    /// Renders Prometheus text exposition (version 0.0.4): `# TYPE`
    /// declarations, one sample line per series, histograms expanded into
    /// cumulative `_bucket{le=…}` / `_sum` / `_count` families.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_type: Option<String> = None;
        let mut declare = |out: &mut String, name: &str, kind: &str| {
            let base = base_name(name);
            if last_type.as_deref() != Some(base) {
                let _ = writeln!(out, "# TYPE {base} {kind}");
                last_type = Some(base.to_string());
            }
        };
        for (name, v) in &self.counters {
            declare(&mut out, name, "counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, v) in &self.gauges {
            declare(&mut out, name, "gauge");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, h) in &self.histograms {
            declare(&mut out, name, "histogram");
            let mut cumulative = 0u64;
            for (i, b) in h.buckets.iter().enumerate() {
                cumulative += b;
                match bucket_le(i) {
                    Some(le) => {
                        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
                    }
                    None => {
                        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                    }
                }
            }
            let _ = writeln!(out, "{name}_sum {}", h.sum);
            let _ = writeln!(out, "{name}_count {}", h.count);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // Bucket 0 is the v ≤ 1 bucket.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        // Each power of two lands in the bucket whose `le` equals it
        // (bucket i covers (2^(i-1), 2^i]): the value just below the
        // boundary shares the bucket, the previous boundary sits one
        // bucket down, and the next value crosses into the following one.
        for i in 1..(HISTOGRAM_BUCKETS - 1) {
            let le = 1u64 << i;
            assert_eq!(bucket_of(le), i, "le boundary 2^{i} is inclusive");
            assert_eq!(bucket_of(le - 1), if le - 1 <= 1 { 0 } else { i });
            assert_eq!(bucket_of(le / 2), i - 1, "previous boundary 2^{i}/2");
            assert_eq!(bucket_of(le + 1), (i + 1).min(HISTOGRAM_BUCKETS - 1));
        }
        // Everything past the last finite bound clamps into the overflow
        // bucket.
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_le(0), Some(1));
        assert_eq!(bucket_le(3), Some(8));
        assert_eq!(bucket_le(HISTOGRAM_BUCKETS - 1), None);
    }

    #[test]
    fn histogram_observes_into_the_documented_buckets() {
        let h = Histogram::standalone();
        for v in [0u64, 1, 2, 3, 4, 5, 1024, u64::MAX] {
            h.observe(v);
        }
        let snap = h.snapshot().unwrap();
        assert_eq!(snap.count, 8);
        assert_eq!(snap.sum, 0u64.wrapping_add(1 + 2 + 3 + 4 + 5 + 1024).wrapping_add(u64::MAX));
        assert_eq!(snap.buckets[0], 2); // 0, 1
        assert_eq!(snap.buckets[1], 1); // 2
        assert_eq!(snap.buckets[2], 2); // 3, 4
        assert_eq!(snap.buckets[3], 1); // 5
        assert_eq!(snap.buckets[10], 1); // 1024 = 2^10
        assert_eq!(snap.buckets[HISTOGRAM_BUCKETS - 1], 1); // u64::MAX
    }

    #[test]
    fn disabled_handles_record_nothing() {
        let reg = MetricsRegistry::disabled();
        assert!(!reg.is_enabled());
        let c = reg.counter("c");
        let g = reg.gauge("g");
        let h = reg.histogram("h");
        c.inc();
        g.set(7);
        g.record_max(9);
        h.observe(42);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert!(h.snapshot().is_none());
        assert_eq!(reg.snapshot(), MetricsSnapshot::default());
        // Explicit no-op handles behave the same.
        Counter::disabled().inc();
        Gauge::disabled().set(1);
        Histogram::disabled().observe(1);
    }

    #[test]
    fn handles_share_series_by_name() {
        let reg = MetricsRegistry::new();
        assert!(reg.is_enabled());
        let a = reg.counter("hdb_x_total");
        let b = reg.counter("hdb_x_total");
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        let g = reg.gauge("hdb_depth");
        g.record_max(5);
        g.record_max(3);
        assert_eq!(reg.gauge("hdb_depth").get(), 5);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["hdb_x_total"], 3);
        assert_eq!(snap.gauges["hdb_depth"], 5);
    }

    #[test]
    fn merge_adds_counters_and_histograms_and_overwrites_gauges() {
        let mut a = MetricsSnapshot::default();
        a.counters.insert("c".into(), 1);
        a.gauges.insert("g".into(), 10);
        let reg = MetricsRegistry::new();
        reg.histogram("h").observe(3);
        let mut snap = reg.snapshot();
        snap.merge(a.clone());
        snap.merge(a);
        assert_eq!(snap.counters["c"], 2);
        assert_eq!(snap.gauges["g"], 10);
        assert_eq!(snap.histograms["h"].count, 1);
        let mut other = MetricsSnapshot::default();
        other.histograms.insert("h".into(), reg.snapshot().histograms["h"].clone());
        snap.merge(other);
        assert_eq!(snap.histograms["h"].count, 2);
    }

    #[test]
    fn prometheus_rendering_is_ordered_and_typed() {
        let reg = MetricsRegistry::new();
        reg.counter("hdb_queries_issued_total").add(4);
        reg.counter("hdb_queries_valid_total").add(4);
        reg.gauge("hdb_fed_shard_state{shard=\"0\"}").set(1);
        reg.gauge("hdb_fed_shard_state{shard=\"1\"}").set(0);
        let h = reg.histogram("hdb_wal_fsync_nanos");
        h.observe(1);
        h.observe(3);
        let text = reg.snapshot().render_prometheus();
        assert!(text.contains("# TYPE hdb_queries_issued_total counter\n"));
        assert!(text.contains("hdb_queries_issued_total 4\n"));
        // One TYPE line covers both labelled shard_state samples.
        assert_eq!(text.matches("# TYPE hdb_fed_shard_state gauge").count(), 1);
        assert!(text.contains("hdb_fed_shard_state{shard=\"0\"} 1\n"));
        assert!(text.contains("hdb_fed_shard_state{shard=\"1\"} 0\n"));
        assert!(text.contains("# TYPE hdb_wal_fsync_nanos histogram\n"));
        assert!(text.contains("hdb_wal_fsync_nanos_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("hdb_wal_fsync_nanos_bucket{le=\"2\"} 1\n"));
        assert!(text.contains("hdb_wal_fsync_nanos_bucket{le=\"4\"} 2\n"));
        assert!(text.contains("hdb_wal_fsync_nanos_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("hdb_wal_fsync_nanos_sum 4\n"));
        assert!(text.contains("hdb_wal_fsync_nanos_count 2\n"));
    }
}
