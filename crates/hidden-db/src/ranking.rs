//! Ranking functions: how a top-k interface preferentially selects which
//! `k` of the `|Sel(q)| > k` matching tuples to return (paper §2.1).
//!
//! The paper's estimators only consume the overflow *flag* of overflowing
//! queries (tuple contents matter only for valid queries, which return
//! everything), so the choice of ranking function does not affect the
//! estimates. We still model it faithfully because (a) a realistic
//! substrate should, and (b) other consumers of the interface (crawlers,
//! the HIDDEN-DB-SAMPLER baseline's returned-tuple choice) do see ranked
//! prefixes.
//!
//! Scores are a pure function of the **global** tuple id and the tuple's
//! values — never of any physical storage detail — so every
//! [`SearchBackend`](crate::SearchBackend) (single table, shards, remote
//! wrapper) ranks identically. That substrate-independence is what lets
//! [`ShardedDb`](crate::ShardedDb) merge per-shard top-k candidates into
//! the exact global top-k.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::schema::Schema;
use crate::table::Table;
use crate::tuple::{Tuple, TupleId};

/// A serialisable description of a ranking function — what a
/// [`RemoteBackend`](crate::RemoteBackend) ships over the wire so the
/// server ranks exactly like the client would have locally.
///
/// Every ranking shipped by this crate has a spec; custom
/// [`RankingFunction`] implementations may opt in by overriding
/// [`RankingFunction::wire_spec`] *and* teaching the serving side the new
/// variant — otherwise they simply cannot cross the network.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RankingSpec {
    /// [`RowIdRanking`].
    RowId,
    /// [`AttributeRanking`].
    Attribute {
        /// Attribute whose numeric interpretation orders the results.
        attr: usize,
        /// If true, larger values rank first.
        descending: bool,
    },
    /// [`SeededRandomRanking`].
    SeededRandom {
        /// Seed mixed into every tuple's score.
        seed: u64,
    },
}

impl RankingSpec {
    /// Materialises the described ranking function (server side).
    #[must_use]
    pub fn instantiate(self) -> Box<dyn RankingFunction> {
        match self {
            Self::RowId => Box::new(RowIdRanking),
            Self::Attribute { attr, descending } => {
                Box::new(AttributeRanking { attr, descending })
            }
            Self::SeededRandom { seed } => Box::new(SeededRandomRanking { seed }),
        }
    }
}

/// A ranking function assigns each tuple a static score; the interface
/// returns the `k` matching tuples with the *smallest* score (rank 0 is
/// best), tie-broken by tuple id.
pub trait RankingFunction: Send + Sync {
    /// Score of the tuple with global id `id` and values `tuple`; lower
    /// ranks first. Must depend only on `(schema, id, tuple)` so every
    /// backend ranks identically.
    fn score(&self, schema: &Schema, id: TupleId, tuple: &Tuple) -> f64;

    /// The wire description of this ranking, if it has one. `None` (the
    /// default) means the ranking cannot be shipped to a remote server;
    /// a [`RemoteBackend`](crate::RemoteBackend) evaluation under such a
    /// ranking fails with a typed [`HdbError::Transport`](crate::HdbError)
    /// instead of silently ranking differently on the two sides.
    fn wire_spec(&self) -> Option<RankingSpec> {
        None
    }

    /// Sorts (a copy of) the matching row ids of `table` by rank and
    /// truncates to `k` (convenience for owner-side analysis).
    fn top_k(&self, table: &Table, mut rows: Vec<TupleId>, k: usize) -> Vec<TupleId> {
        let schema = table.schema();
        rows.sort_by(|&a, &b| {
            self.score(schema, a, table.tuple(a))
                .partial_cmp(&self.score(schema, b, table.tuple(b)))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        rows.truncate(k);
        rows
    }
}

/// Ranks tuples by their row id (stable "insertion order" ranking —
/// resembles "newest/oldest listing first" on real sites).
#[derive(Clone, Copy, Debug, Default)]
pub struct RowIdRanking;

impl RankingFunction for RowIdRanking {
    fn score(&self, _schema: &Schema, id: TupleId, _tuple: &Tuple) -> f64 {
        f64::from(id)
    }

    fn wire_spec(&self) -> Option<RankingSpec> {
        Some(RankingSpec::RowId)
    }
}

/// Ranks tuples by the numeric interpretation of one attribute, ascending
/// or descending (e.g. "price: low to high").
#[derive(Clone, Copy, Debug)]
pub struct AttributeRanking {
    /// Attribute whose numeric interpretation orders the results.
    pub attr: usize,
    /// If true, larger values rank first.
    pub descending: bool,
}

impl RankingFunction for AttributeRanking {
    fn score(&self, schema: &Schema, _id: TupleId, tuple: &Tuple) -> f64 {
        let v = tuple.value(self.attr);
        let x = schema
            .attribute(self.attr)
            .numeric_value(v)
            .unwrap_or_else(|| f64::from(v));
        if self.descending {
            -x
        } else {
            x
        }
    }

    fn wire_spec(&self) -> Option<RankingSpec> {
        Some(RankingSpec::Attribute { attr: self.attr, descending: self.descending })
    }
}

/// A deterministic pseudo-random ranking: each tuple gets a fixed score
/// drawn from a seeded hash of its id. Models opaque proprietary "best
/// match" rankings whose order correlates with nothing the client knows.
#[derive(Clone, Copy, Debug)]
pub struct SeededRandomRanking {
    /// Seed mixed into every tuple's score.
    pub seed: u64,
}

impl RankingFunction for SeededRandomRanking {
    fn score(&self, _schema: &Schema, id: TupleId, _tuple: &Tuple) -> f64 {
        // SplitMix64 over (seed, id): fast, stateless, deterministic.
        let mut z = self.seed ^ (u64::from(id)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    fn wire_spec(&self) -> Option<RankingSpec> {
        Some(RankingSpec::SeededRandom { seed: self.seed })
    }
}

impl SeededRandomRanking {
    /// A ranking with a seed drawn from `rng` (convenience for tests).
    pub fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self { seed: rng.random() }
    }

    /// A ranking seeded from a u64 via an intermediate RNG so nearby seeds
    /// decorrelate.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self { seed: rng.random() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;

    fn table() -> Table {
        let schema = Schema::new(vec![
            Attribute::boolean("a"),
            Attribute::numeric_buckets("price", 5).unwrap(),
        ])
        .unwrap();
        Table::new(
            schema,
            vec![
                Tuple::new(vec![0, 4]),
                Tuple::new(vec![0, 1]),
                Tuple::new(vec![1, 3]),
                Tuple::new(vec![1, 0]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn row_id_ranking_keeps_order() {
        let t = table();
        let top = RowIdRanking.top_k(&t, vec![3, 1, 2], 2);
        assert_eq!(top, vec![1, 2]);
    }

    #[test]
    fn attribute_ranking_ascending_and_descending() {
        let t = table();
        let asc = AttributeRanking { attr: 1, descending: false };
        assert_eq!(asc.top_k(&t, vec![0, 1, 2, 3], 2), vec![3, 1]);
        let desc = AttributeRanking { attr: 1, descending: true };
        assert_eq!(desc.top_k(&t, vec![0, 1, 2, 3], 2), vec![0, 2]);
    }

    #[test]
    fn seeded_ranking_is_deterministic() {
        let t = table();
        let r = SeededRandomRanking { seed: 42 };
        let a = r.top_k(&t, vec![0, 1, 2, 3], 4);
        let b = r.top_k(&t, vec![3, 2, 1, 0], 4);
        assert_eq!(a, b);
        // different seeds give (almost surely) different scores
        let r2 = SeededRandomRanking { seed: 43 };
        assert_ne!(
            r.score(t.schema(), 0, t.tuple(0)),
            r2.score(t.schema(), 0, t.tuple(0))
        );
    }

    #[test]
    fn scores_are_substrate_independent() {
        // the same (id, tuple) must score identically whatever table (or
        // shard) holds it — the property the sharded merge relies on
        let t = table();
        let sub = Table::new(t.schema().clone(), vec![t.tuple(2).clone()]).unwrap();
        let rankings: [&dyn RankingFunction; 2] =
            [&AttributeRanking { attr: 1, descending: false }, &SeededRandomRanking { seed: 7 }];
        for r in rankings {
            assert_eq!(
                r.score(t.schema(), 2, t.tuple(2)).to_bits(),
                r.score(sub.schema(), 2, sub.tuple(0)).to_bits()
            );
        }
    }

    #[test]
    fn wire_specs_roundtrip_through_instantiate() {
        let t = table();
        let rankings: [&dyn RankingFunction; 3] = [
            &RowIdRanking,
            &AttributeRanking { attr: 1, descending: true },
            &SeededRandomRanking { seed: 11 },
        ];
        for r in rankings {
            let spec = r.wire_spec().expect("shipped rankings have specs");
            let twin = spec.instantiate();
            for id in 0..t.len() as TupleId {
                assert_eq!(
                    r.score(t.schema(), id, t.tuple(id)).to_bits(),
                    twin.score(t.schema(), id, t.tuple(id)).to_bits()
                );
            }
        }
        struct Custom;
        impl RankingFunction for Custom {
            fn score(&self, _s: &Schema, id: TupleId, _t: &Tuple) -> f64 {
                -f64::from(id)
            }
        }
        assert!(Custom.wire_spec().is_none());
    }

    #[test]
    fn top_k_truncates_to_k() {
        let t = table();
        assert_eq!(RowIdRanking.top_k(&t, vec![0, 1, 2, 3], 10).len(), 4);
        assert_eq!(RowIdRanking.top_k(&t, vec![0, 1, 2, 3], 0).len(), 0);
    }
}
