//! Readiness notification for the serving layer: a thin, std-only
//! abstraction over `epoll` (Linux) with a portable `poll(2)` fallback,
//! plus a self-pipe-based [`TerminationSignal`] for graceful shutdown.
//!
//! # Why this exists
//!
//! The paper's estimators are query-budget-bound, so a hidden-DB
//! front-end lives or dies on how cheaply it moves probes. The previous
//! serving loop re-queued every connection through the worker pool on a
//! 2 ms read timeout — a *poll sweep* that cost every idle connection
//! ~500 timed `read` syscalls per second and capped the server at dozens
//! of connections. This module inverts that: connections are registered
//! with the OS readiness facility and cost **zero** syscalls until bytes
//! actually arrive.
//!
//! # Design
//!
//! * **One-shot semantics.** Registration and re-arming use
//!   `EPOLLONESHOT` (emulated in the `poll` backend by disarming an
//!   entry when it fires): once a readiness event for a token is
//!   delivered, the fd stays silent until [`Reactor::rearm`] is called.
//!   That makes the dispatch protocol race-free — a connection handed to
//!   a worker cannot fire again until that worker has finished its turn
//!   and re-armed it.
//! * **No `libc` dependency.** The workspace is offline and std-only, so
//!   the handful of syscalls used here are hand-declared `extern "C"`
//!   items. This is the only FFI surface in the workspace; hdb-lint's
//!   `HDB-U03` rule pins `extern` declarations to this file.
//! * **Portability.** [`Reactor::new`] picks `epoll` on Linux and the
//!   `poll` backend elsewhere; [`Reactor::with_kind`] forces the
//!   portable backend so tests exercise both paths on any host.
//!
//! Errors are surfaced as [`std::io::Error`]; callers in the serving
//! layer translate them into typed `HdbError`s. `EINTR` never escapes
//! [`Reactor::wait`] — it is reported as an empty event batch so callers
//! re-check their shutdown flags.

use std::collections::BTreeMap;
use std::ffi::{c_int, c_ulong, c_void};
use std::io;
use std::os::fd::RawFd;
use std::sync::atomic::{AtomicBool, AtomicI32, Ordering};
use std::sync::Mutex;
use std::time::Duration;

// ---------------------------------------------------------------------------
// FFI surface (the only one in the workspace; see HDB-U03)

#[cfg(target_os = "linux")]
mod linux_ffi {
    use super::{c_int, EpollEvent};

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(
            epfd: c_int,
            op: c_int,
            fd: c_int,
            event: *mut EpollEvent,
        ) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
    }
}

mod unix_ffi {
    use super::{c_int, c_ulong, c_void, PollFd};

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn pipe(fds: *mut c_int) -> c_int;
        pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        pub fn signal(signum: c_int, handler: extern "C" fn(c_int)) -> usize;
    }
}

#[cfg(test)]
mod test_ffi {
    use super::c_int;

    extern "C" {
        pub fn raise(sig: c_int) -> c_int;
    }
}

// epoll constants (asm-generic ABI; stable since Linux 2.6).
#[cfg(target_os = "linux")]
mod epoll_consts {
    use super::c_int;

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLLONESHOT: u32 = 1 << 30;
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;

const F_SETFL: c_int = 4;
#[cfg(target_os = "linux")]
const O_NONBLOCK: c_int = 0o4000;
#[cfg(not(target_os = "linux"))]
const O_NONBLOCK: c_int = 0x0004; // BSD family (macOS, FreeBSD, …)

const SIGINT: c_int = 2;
const SIGTERM: c_int = 15;
/// `SIG_ERR` — `signal(2)`'s failure return, a pointer-sized all-ones.
const SIG_ERR: usize = usize::MAX;

/// Kernel-facing `struct epoll_event`. On x86-64 the kernel ABI packs it
/// (12 bytes, alignment 1); every other architecture uses the natural
/// layout.
#[cfg(target_os = "linux")]
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub(crate) struct EpollEvent {
    events: u32,
    data: u64,
}

/// Kernel-facing `struct pollfd` (identical layout on every unix).
#[repr(C)]
#[derive(Clone, Copy)]
pub(crate) struct PollFd {
    fd: c_int,
    events: i16,
    revents: i16,
}

/// Converts a `-1`-on-error syscall return into an [`io::Result`].
fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Milliseconds argument for `epoll_wait`/`poll`: `None` blocks forever.
/// Non-zero sub-millisecond durations round up so a caller-requested
/// bounded wait never degenerates into a busy spin.
fn timeout_ms(timeout: Option<Duration>) -> c_int {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis();
            if ms == 0 && !d.is_zero() {
                1
            } else {
                c_int::try_from(ms).unwrap_or(c_int::MAX)
            }
        }
    }
}

/// Marks `fd` non-blocking. Pipes carry no other status flags, so a
/// plain `F_SETFL O_NONBLOCK` is exact here.
fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    // SAFETY: fcntl with F_SETFL only mutates the open-file status flags
    // of `fd`, which the caller owns; no memory is passed.
    cvt(unsafe { unix_ffi::fcntl(fd, F_SETFL, O_NONBLOCK) }).map(|_| ())
}

/// Creates a pipe; each end is made non-blocking as requested.
fn new_pipe(nonblocking_rx: bool, nonblocking_tx: bool) -> io::Result<(RawFd, RawFd)> {
    let mut fds: [c_int; 2] = [-1, -1];
    // SAFETY: pipe(2) writes exactly two fds into the provided array,
    // which is live for the duration of the call.
    cvt(unsafe { unix_ffi::pipe(fds.as_mut_ptr()) })?;
    let (rx, tx) = (fds[0], fds[1]);
    let setup = || -> io::Result<()> {
        if nonblocking_rx {
            set_nonblocking(rx)?;
        }
        if nonblocking_tx {
            set_nonblocking(tx)?;
        }
        Ok(())
    };
    if let Err(e) = setup() {
        close_fd(rx);
        close_fd(tx);
        return Err(e);
    }
    Ok((rx, tx))
}

/// Best-effort close (errors on close are unrecoverable anyway).
fn close_fd(fd: RawFd) {
    // SAFETY: close(2) takes the descriptor by value; the callers only
    // pass fds they own and never use them again afterwards.
    let _ = unsafe { unix_ffi::close(fd) };
}

// ---------------------------------------------------------------------------
// Public API

/// Which readiness conditions a registration watches for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd becomes readable (or hits EOF / an error).
    pub readable: bool,
    /// Wake when the fd becomes writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READ: Self = Self { readable: true, writable: false };
    /// Writable only.
    pub const WRITE: Self = Self { readable: false, writable: true };
    /// Readable or writable.
    pub const READ_WRITE: Self = Self { readable: true, writable: true };
}

/// One delivered readiness event.
///
/// Error and hang-up conditions are folded into `readable` (and
/// `writable` for errors): the handler's next `read`/`write` on the fd
/// then surfaces the concrete `io::Error`, which is the only place the
/// error detail is available anyway.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// The token supplied at registration.
    pub token: u64,
    /// The fd is readable, at EOF, hung up, or errored.
    pub readable: bool,
    /// The fd is writable or errored.
    pub writable: bool,
}

/// Backend selection for [`Reactor::with_kind`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReactorKind {
    /// `epoll` on Linux, the portable `poll` backend elsewhere.
    #[default]
    Auto,
    /// Force the portable `poll` backend (tests exercise it everywhere).
    Portable,
}

/// A one-shot readiness notifier over raw fds.
///
/// All methods take `&self`; registration and re-arming are safe to call
/// from worker threads while another thread blocks in [`Reactor::wait`].
pub struct Reactor {
    backend: BackendImpl,
}

enum BackendImpl {
    #[cfg(target_os = "linux")]
    Epoll(Epoll),
    Poll(PortablePoll),
}

impl Reactor {
    /// Opens the platform-preferred backend.
    ///
    /// # Errors
    /// The underlying `epoll_create1`/`pipe` failure.
    pub fn new() -> io::Result<Self> {
        Self::with_kind(ReactorKind::Auto)
    }

    /// Opens a specific backend (see [`ReactorKind`]).
    ///
    /// # Errors
    /// The underlying `epoll_create1`/`pipe` failure.
    pub fn with_kind(kind: ReactorKind) -> io::Result<Self> {
        let backend = match kind {
            #[cfg(target_os = "linux")]
            ReactorKind::Auto => BackendImpl::Epoll(Epoll::new()?),
            #[cfg(not(target_os = "linux"))]
            ReactorKind::Auto => BackendImpl::Poll(PortablePoll::new()?),
            ReactorKind::Portable => BackendImpl::Poll(PortablePoll::new()?),
        };
        Ok(Self { backend })
    }

    /// The backend actually in use, for diagnostics (`"epoll"`/`"poll"`).
    #[must_use]
    pub fn backend_name(&self) -> &'static str {
        match &self.backend {
            #[cfg(target_os = "linux")]
            BackendImpl::Epoll(_) => "epoll",
            BackendImpl::Poll(_) => "poll",
        }
    }

    /// Registers `fd` with a caller-chosen `token`, armed once.
    ///
    /// The next matching readiness change delivers one [`Event`] carrying
    /// `token`, after which the fd is disarmed until [`Self::rearm`].
    ///
    /// # Errors
    /// The underlying `epoll_ctl` failure (e.g. the fd is already
    /// registered, or is not pollable).
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            BackendImpl::Epoll(e) => e.register(fd, token, interest),
            BackendImpl::Poll(p) => p.arm(fd, token, interest),
        }
    }

    /// Re-arms a previously registered fd for one more event.
    ///
    /// # Errors
    /// The underlying `epoll_ctl` failure (e.g. the fd was deregistered
    /// or closed in the meantime).
    pub fn rearm(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            BackendImpl::Epoll(e) => e.rearm(fd, token, interest),
            BackendImpl::Poll(p) => p.arm(fd, token, interest),
        }
    }

    /// Removes `fd` from the watch set. Must be called before the fd is
    /// closed; harmless if the fd was never registered.
    pub fn deregister(&self, fd: RawFd) {
        match &self.backend {
            #[cfg(target_os = "linux")]
            BackendImpl::Epoll(e) => e.deregister(fd),
            BackendImpl::Poll(p) => p.deregister(fd),
        }
    }

    /// Blocks until at least one armed fd is ready (or `timeout`
    /// elapses; `None` waits forever), filling `out` with the batch.
    ///
    /// Returns with `out` empty on timeout **and** on `EINTR`, so a
    /// caller's loop re-checks its shutdown condition either way.
    ///
    /// # Errors
    /// Unrecoverable `epoll_wait`/`poll` failures (never `EINTR`).
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            BackendImpl::Epoll(e) => e.wait(out, timeout),
            BackendImpl::Poll(p) => p.wait(out, timeout),
        }
    }
}

// ---------------------------------------------------------------------------
// epoll backend (Linux)

#[cfg(target_os = "linux")]
struct Epoll {
    epfd: RawFd,
}

#[cfg(target_os = "linux")]
impl Epoll {
    fn new() -> io::Result<Self> {
        use epoll_consts::EPOLL_CLOEXEC;
        // SAFETY: epoll_create1 takes no pointers; the returned fd is
        // owned by this struct and closed exactly once in Drop.
        let epfd = cvt(unsafe { linux_ffi::epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Self { epfd })
    }

    fn events_bits(interest: Interest) -> u32 {
        use epoll_consts::{EPOLLIN, EPOLLONESHOT, EPOLLOUT, EPOLLRDHUP};
        let mut bits = EPOLLONESHOT;
        if interest.readable {
            bits |= EPOLLIN | EPOLLRDHUP;
        }
        if interest.writable {
            bits |= EPOLLOUT;
        }
        bits
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data: token };
        // SAFETY: `ev` is a live, correctly laid out epoll_event for the
        // duration of the call; epoll_ctl only reads it.
        cvt(unsafe { linux_ffi::epoll_ctl(self.epfd, op, fd, &mut ev) }).map(|_| ())
    }

    fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(epoll_consts::EPOLL_CTL_ADD, fd, Self::events_bits(interest), token)
    }

    fn rearm(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(epoll_consts::EPOLL_CTL_MOD, fd, Self::events_bits(interest), token)
    }

    fn deregister(&self, fd: RawFd) {
        // A non-null event pointer keeps pre-2.6.9 kernel semantics happy.
        let _ = self.ctl(epoll_consts::EPOLL_CTL_DEL, fd, 0, 0);
    }

    fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        use epoll_consts::{EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
        out.clear();
        const BATCH: usize = 128;
        let mut buf = [EpollEvent { events: 0, data: 0 }; BATCH];
        // SAFETY: `buf` is a live array of BATCH epoll_event entries;
        // epoll_wait writes at most BATCH entries into it.
        let n = unsafe {
            linux_ffi::epoll_wait(self.epfd, buf.as_mut_ptr(), c_int::try_from(BATCH).unwrap_or(1), timeout_ms(timeout))
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        let n = usize::try_from(n).unwrap_or(0).min(BATCH);
        for ev in buf.iter().take(n) {
            // Copy out of the (possibly packed) struct before using.
            let bits = ev.events;
            let token = ev.data;
            out.push(Event {
                token,
                readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                writable: bits & (EPOLLOUT | EPOLLERR) != 0,
            });
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for Epoll {
    fn drop(&mut self) {
        close_fd(self.epfd);
    }
}

// ---------------------------------------------------------------------------
// Portable poll(2) backend

/// One watched fd in the portable backend. `armed` emulates
/// `EPOLLONESHOT`: cleared when an event is delivered, set again by
/// `arm`.
struct PollEntry {
    token: u64,
    interest: Interest,
    armed: bool,
}

/// `poll(2)`-based backend. A self-pipe wakes a blocked `wait` whenever
/// the watch set changes from another thread, so `arm` from a worker is
/// picked up immediately rather than after the current `poll` returns.
struct PortablePoll {
    entries: Mutex<BTreeMap<RawFd, PollEntry>>,
    wake_rx: RawFd,
    wake_tx: RawFd,
}

impl PortablePoll {
    fn new() -> io::Result<Self> {
        let (wake_rx, wake_tx) = new_pipe(true, true)?;
        Ok(Self { entries: Mutex::new(BTreeMap::new()), wake_rx, wake_tx })
    }

    /// Registers or re-arms — the portable backend does not distinguish.
    fn arm(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self.entries.lock() {
            Ok(mut map) => {
                map.insert(fd, PollEntry { token, interest, armed: true });
            }
            Err(_) => return Err(io::Error::other("reactor watch set poisoned")),
        }
        self.wake();
        Ok(())
    }

    fn deregister(&self, fd: RawFd) {
        if let Ok(mut map) = self.entries.lock() {
            map.remove(&fd);
        }
        self.wake();
    }

    /// Nudges a blocked `wait`. A full pipe is fine — the byte already in
    /// flight wakes it just the same.
    fn wake(&self) {
        let byte = 1u8;
        // SAFETY: the write end is a live non-blocking pipe fd owned by
        // this struct; the 1-byte buffer is live for the call.
        let _ = unsafe { unix_ffi::write(self.wake_tx, (&raw const byte).cast(), 1) };
    }

    /// Drains any pending wake bytes (non-blocking read end).
    fn drain_wake(&self) {
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: the read end is a live non-blocking pipe fd owned
            // by this struct; the buffer is live for the call.
            let n = unsafe {
                unix_ffi::read(self.wake_rx, buf.as_mut_ptr().cast(), buf.len())
            };
            if n <= 0 {
                return;
            }
        }
    }

    fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        out.clear();
        // Snapshot the armed set: (fd, token) parallel to the pollfd vec.
        let mut fds: Vec<PollFd> =
            vec![PollFd { fd: self.wake_rx, events: POLLIN, revents: 0 }];
        let mut snapshot: Vec<(RawFd, u64)> = Vec::new();
        match self.entries.lock() {
            Ok(map) => {
                for (&fd, entry) in map.iter().filter(|(_, e)| e.armed) {
                    let mut events = 0i16;
                    if entry.interest.readable {
                        events |= POLLIN;
                    }
                    if entry.interest.writable {
                        events |= POLLOUT;
                    }
                    fds.push(PollFd { fd, events, revents: 0 });
                    snapshot.push((fd, entry.token));
                }
            }
            Err(_) => return Err(io::Error::other("reactor watch set poisoned")),
        }
        let nfds = c_ulong::try_from(fds.len()).unwrap_or(c_ulong::MAX);
        // SAFETY: `fds` is a live Vec of pollfd entries; poll reads and
        // writes only within its fds.len() elements.
        let n = unsafe { unix_ffi::poll(fds.as_mut_ptr(), nfds, timeout_ms(timeout)) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        if n == 0 {
            return Ok(());
        }
        if fds.first().is_some_and(|w| w.revents != 0) {
            self.drain_wake();
        }
        let Ok(mut map) = self.entries.lock() else {
            return Err(io::Error::other("reactor watch set poisoned"));
        };
        for (pfd, &(fd, token)) in fds.iter().skip(1).zip(snapshot.iter()) {
            if pfd.revents == 0 {
                continue;
            }
            // Skip entries deregistered or re-registered mid-wait.
            let Some(entry) = map.get_mut(&fd) else { continue };
            if entry.token != token || !entry.armed {
                continue;
            }
            entry.armed = false;
            let r = pfd.revents;
            out.push(Event {
                token,
                readable: r & (POLLIN | POLLERR | POLLHUP) != 0,
                writable: r & (POLLOUT | POLLERR) != 0,
            });
        }
        Ok(())
    }
}

impl Drop for PortablePoll {
    fn drop(&mut self) {
        close_fd(self.wake_rx);
        close_fd(self.wake_tx);
    }
}

// ---------------------------------------------------------------------------
// Termination signal (SIGINT / SIGTERM) via the self-pipe trick

/// Set by the signal handler; read by [`TerminationSignal::fired`].
static TERM_FIRED: AtomicBool = AtomicBool::new(false);
/// Write end of the self-pipe, published for the handler. `-1` until
/// [`TerminationSignal::install`] runs.
static TERM_WAKE_TX: AtomicI32 = AtomicI32::new(-1);
/// Guards against double installation.
static TERM_INSTALLED: AtomicBool = AtomicBool::new(false);

/// The actual signal handler. Signal handlers may only call
/// async-signal-safe functions; atomics and `write(2)` both qualify.
extern "C" fn on_termination(_sig: c_int) {
    TERM_FIRED.store(true, Ordering::SeqCst);
    let fd = TERM_WAKE_TX.load(Ordering::SeqCst);
    if fd >= 0 {
        let byte = 1u8;
        // SAFETY: write(2) is async-signal-safe; `fd` is the live,
        // non-blocking write end of the self-pipe (published before the
        // handlers were installed and intentionally never closed).
        let _ = unsafe { unix_ffi::write(fd, (&raw const byte).cast(), 1) };
    }
}

/// Process-wide SIGINT/SIGTERM notification, installable once.
///
/// The handler does the minimum that is async-signal-safe: set a flag
/// and write one byte to a pipe. [`TerminationSignal::wait`] blocks the
/// calling thread on the pipe's read end, so a server's main thread can
/// park without polling and still wake instantly on Ctrl-C or a
/// `kill -TERM` (the graceful-shutdown path the `hdb-server` binary
/// uses).
pub struct TerminationSignal {
    rx: RawFd,
}

impl TerminationSignal {
    /// Installs the SIGINT/SIGTERM handlers and returns the waiter.
    ///
    /// The pipe's write end is intentionally leaked: the handler stays
    /// installed for the life of the process and must always have a live
    /// fd to write to.
    ///
    /// # Errors
    /// `AlreadyExists` on a second call; otherwise the underlying
    /// `pipe`/`signal` failure.
    pub fn install() -> io::Result<Self> {
        if TERM_INSTALLED.swap(true, Ordering::SeqCst) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "termination handler already installed",
            ));
        }
        // Blocking read end (wait() parks on it), non-blocking write end
        // (the handler must never block).
        let (rx, tx) = new_pipe(false, true)?;
        TERM_WAKE_TX.store(tx, Ordering::SeqCst);
        for sig in [SIGINT, SIGTERM] {
            // SAFETY: installing a handler that only touches atomics and
            // write(2) (both async-signal-safe); `on_termination` has the
            // exact sighandler_t ABI.
            let prev = unsafe { unix_ffi::signal(sig, on_termination) };
            if prev == SIG_ERR {
                return Err(io::Error::last_os_error());
            }
        }
        Ok(Self { rx })
    }

    /// Whether SIGINT or SIGTERM has been received.
    #[must_use]
    pub fn fired(&self) -> bool {
        TERM_FIRED.load(Ordering::SeqCst)
    }

    /// Blocks the calling thread until a termination signal arrives.
    /// Returns immediately if one already has.
    pub fn wait(&self) {
        loop {
            if self.fired() {
                return;
            }
            let mut buf = [0u8; 8];
            // SAFETY: the read end is a live blocking pipe fd owned by
            // this struct; the buffer is live for the call.
            let n = unsafe { unix_ffi::read(self.rx, buf.as_mut_ptr().cast(), buf.len()) };
            if n >= 0 {
                return; // woken by the handler (or the pipe vanished)
            }
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                continue; // EINTR: the flag check at the top decides
            }
            return; // unrecoverable read error: treat as woken
        }
    }
}

impl Drop for TerminationSignal {
    fn drop(&mut self) {
        // Only the read end: the write end must outlive us for the
        // still-installed handler (see install()).
        close_fd(self.rx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    fn both_kinds() -> Vec<Reactor> {
        vec![
            Reactor::with_kind(ReactorKind::Auto).unwrap(),
            Reactor::with_kind(ReactorKind::Portable).unwrap(),
        ]
    }

    const TICK: Duration = Duration::from_millis(10);
    const PATIENCE: Duration = Duration::from_secs(5);

    /// Waits until an event for `token` arrives (readiness can be
    /// delivered across several wakeups).
    fn wait_for(r: &Reactor, token: u64) -> Event {
        let mut events = Vec::new();
        for _ in 0..500 {
            r.wait(&mut events, Some(TICK)).unwrap();
            if let Some(ev) = events.iter().find(|e| e.token == token) {
                return *ev;
            }
        }
        panic!("no event for token {token} within {PATIENCE:?}");
    }

    #[test]
    fn accept_readiness_is_delivered_on_both_backends() {
        for r in both_kinds() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.set_nonblocking(true).unwrap();
            let addr = listener.local_addr().unwrap();
            r.register(listener.as_raw_fd(), 7, Interest::READ).unwrap();

            let _client = TcpStream::connect(addr).unwrap();
            let ev = wait_for(&r, 7);
            assert!(ev.readable, "{}: accept readiness must read", r.backend_name());
            let _ = listener.accept().unwrap();
            r.deregister(listener.as_raw_fd());
        }
    }

    #[test]
    fn oneshot_disarms_until_rearm() {
        for r in both_kinds() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.set_nonblocking(true).unwrap();
            let addr = listener.local_addr().unwrap();
            r.register(listener.as_raw_fd(), 1, Interest::READ).unwrap();

            let _c1 = TcpStream::connect(addr).unwrap();
            wait_for(&r, 1);
            // Event delivered, fd disarmed: a second connection must stay
            // silent until rearm — even though the fd is still readable.
            let _c2 = TcpStream::connect(addr).unwrap();
            let mut events = Vec::new();
            for _ in 0..5 {
                r.wait(&mut events, Some(TICK)).unwrap();
                assert!(
                    events.iter().all(|e| e.token != 1),
                    "{}: disarmed fd fired",
                    r.backend_name()
                );
            }
            r.rearm(listener.as_raw_fd(), 1, Interest::READ).unwrap();
            let ev = wait_for(&r, 1);
            assert!(ev.readable);
            r.deregister(listener.as_raw_fd());
        }
    }

    #[test]
    fn writable_interest_and_peer_hangup_read_as_events() {
        for r in both_kinds() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let client = TcpStream::connect(addr).unwrap();
            let (server_side, _) = listener.accept().unwrap();
            server_side.set_nonblocking(true).unwrap();

            // A fresh socket with an empty send buffer is writable.
            r.register(server_side.as_raw_fd(), 3, Interest::WRITE).unwrap();
            let ev = wait_for(&r, 3);
            assert!(ev.writable, "{}", r.backend_name());

            // Peer hangup surfaces as readable (read then returns 0).
            r.rearm(server_side.as_raw_fd(), 3, Interest::READ).unwrap();
            drop(client);
            let ev = wait_for(&r, 3);
            assert!(ev.readable, "{}", r.backend_name());
            r.deregister(server_side.as_raw_fd());
        }
    }

    #[test]
    fn data_readiness_carries_the_registration_token() {
        for r in both_kinds() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let mut client = TcpStream::connect(addr).unwrap();
            let (server_side, _) = listener.accept().unwrap();
            server_side.set_nonblocking(true).unwrap();
            r.register(server_side.as_raw_fd(), 42, Interest::READ).unwrap();

            client.write_all(b"ping").unwrap();
            let ev = wait_for(&r, 42);
            assert!(ev.readable);
            assert_eq!(ev.token, 42);
            r.deregister(server_side.as_raw_fd());
        }
    }

    #[test]
    fn wait_times_out_empty_when_nothing_is_ready() {
        for r in both_kinds() {
            let mut events = vec![Event { token: 9, readable: true, writable: false }];
            r.wait(&mut events, Some(Duration::from_millis(5))).unwrap();
            assert!(events.is_empty(), "{}", r.backend_name());
        }
    }

    #[test]
    fn termination_signal_installs_once_and_wakes_on_sigterm() {
        let sig = TerminationSignal::install().unwrap();
        assert!(!sig.fired());
        // A second installation must be refused, not double-installed.
        let second = TerminationSignal::install();
        assert_eq!(second.err().map(|e| e.kind()), Some(io::ErrorKind::AlreadyExists));

        // SAFETY: raising SIGTERM in-process with our no-op-beyond-flag
        // handler installed above; the default action is replaced.
        let rc = unsafe { test_ffi::raise(SIGTERM) };
        assert_eq!(rc, 0);
        sig.wait(); // must return rather than hang
        assert!(sig.fired());
    }
}
