//! Federation: one logical hidden database over a **fleet** of
//! `hdb-server`s.
//!
//! [`FederatedBackend`] is [`ShardedDb`](crate::ShardedDb) with the
//! shards moved out of the process: the corpus is hash-partitioned by the
//! same stable FNV-1a assignment ([`ShardPartBackend::partition`] and
//! `ShardedDb::new` share one partitioning function), but each shard
//! lives behind its own server and is reached through a
//! [`RemoteBackend`]. Every probe fans out across the fleet on the
//! persistent [`WorkerPool`] and the per-shard partial results are merged
//! with the same order-independent `(score, id)` semantics the local
//! sharded backend uses — so a federated evaluation is **bit-identical**
//! to a local `ShardedDb` over the same table, which is itself
//! bit-identical to a single [`TableBackend`](crate::TableBackend). The
//! estimators cannot tell how many machines they are talking to.
//!
//! ## Fleet layer: topology, health, failover
//!
//! A [`Topology`] maps each shard to an ordered list of replica
//! addresses. Servers can be added ([`FederatedBackend::add_replica`])
//! and drained ([`FederatedBackend::drain`]) while the backend is
//! serving: draining the active replica invalidates its connection and
//! the next probe fails over to the survivors. Each shard's client moves
//! through a small state machine:
//!
//! ```text
//!        connect ok                 Transport error
//! (down) ──────────► (serving) ───────────────────► (down, generation+1)
//!    ▲                                                    │
//!    └──────── retry sweep over replicas, bounded ◄───────┘
//!              exponential backoff between attempts
//! ```
//!
//! A probe that exhausts its retry budget surfaces as
//! [`HdbError::Transport`]; the owning
//! [`HiddenDb`](crate::HiddenDb) then tallies the charged query as
//! `Errored`, keeping the accounting partition
//! `issued == underflow + valid + overflow + errored` exact. An optional
//! background health checker ([`FleetConfig::health_interval`]) pings
//! serving shards and pre-warms reconnects for dark ones; it paces on a
//! condition-variable timed wait (woken instantly at shutdown) and never
//! reads a clock, so results can never depend on timing.
//!
//! ## Why failover cannot change results
//!
//! Three invariants make the failover paths bit-identical rather than
//! merely "close":
//!
//! 1. every replica of shard `i` serves the **same** shard (validated at
//!    connect time: schema equality and shard corpus size);
//! 2. incremental walk probes and fresh evaluation return identical
//!    bits for the same query (the [`SearchBackend`] contract), so a
//!    failed-over shard answering "fresh" merges with siblings that
//!    answered incrementally;
//! 3. walk states are tagged with the **generation** of the shard
//!    connection that produced them. After a failover the generation has
//!    moved on, so a stale state can never be replayed against a new
//!    server (where its session id might coincidentally exist) — the
//!    probe simply evaluates fresh on the new connection.

use std::convert::Infallible;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::backend::{checked_numeric, Classified, Evaluation, SearchBackend, SelState, WalkState};
use crate::error::{HdbError, Result};
use crate::interface::ReturnedTuple;
use crate::obs::MetricsSnapshot;
use crate::par::WorkerPool;
use crate::query::{Predicate, Query};
use crate::ranking::{RankingFunction, RowIdRanking};
use crate::remote::RemoteBackend;
use crate::schema::{AttrId, Schema};
use crate::sharded::{merge_partials, split, Shard};
use crate::table::Table;
use crate::tuple::TupleId;

// ---------------------------------------------------------------------------
// ShardPartBackend: one shard of a partitioned corpus, served standalone.

/// A [`SearchBackend`] over **one shard** of a hash-partitioned corpus,
/// answering with *global* tuple ids.
///
/// This is what each server in a federation serves. It evaluates exactly
/// like one shard inside a [`ShardedDb`](crate::ShardedDb) — same
/// partitioning, same per-shard candidate selection, same ascending
/// global ids — so a [`FederatedBackend`] merging the fleet's partials
/// reproduces the local sharded (and single-table) bits exactly.
#[derive(Debug)]
pub struct ShardPartBackend {
    schema: Schema,
    shard: Shard,
    index: usize,
    parts: usize,
}

/// The walk payload of a [`ShardPartBackend`]: the shard-local match-set
/// state (a newtype so it can never be confused with another backend's
/// payload).
struct PartWalk(SelState);

impl ShardPartBackend {
    /// Hash-partitions `table` into `parts` shard backends (`parts` is
    /// clamped to at least 1), each holding its slice of the corpus with
    /// global tuple ids. The assignment is identical to
    /// [`ShardedDb::new`](crate::ShardedDb::new) with the same count —
    /// serve these and a [`FederatedBackend`] over them is bit-identical
    /// to the local sharded backend.
    #[must_use]
    pub fn partition(table: &Table, parts: usize) -> Vec<Self> {
        let parts = parts.max(1);
        let schema = table.schema().clone();
        split(table, parts)
            .into_iter()
            .enumerate()
            .map(|(index, shard)| Self { schema: schema.clone(), shard, index, parts })
            .collect()
    }

    /// Which part of the partition this backend serves (0-based).
    #[must_use]
    pub fn part_index(&self) -> usize {
        self.index
    }

    /// How many parts the corpus was partitioned into.
    #[must_use]
    pub fn part_count(&self) -> usize {
        self.parts
    }
}

impl SearchBackend for ShardPartBackend {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn len(&self) -> usize {
        self.shard.table.len()
    }

    fn evaluate(&self, q: &Query, k: usize, ranking: &dyn RankingFunction) -> Result<Evaluation> {
        let (count, top) = self.shard.partial(q, k, &self.schema, ranking);
        Ok(Evaluation { count, top })
    }

    fn exact_count(&self, q: &Query) -> Result<usize> {
        Ok(self.shard.table.exact_count(q))
    }

    fn exact_sum(&self, attr: AttrId, q: &Query) -> Result<f64> {
        let a = checked_numeric(&self.schema, attr)?;
        // Shard ids ascend, so iterating local rows in order folds the
        // shard's contribution in ascending global id order.
        let mut sum = 0.0;
        for row in self.shard.table.index().selection(q).iter_ones() {
            let v = self.shard.table.tuple(row as TupleId).value(attr);
            sum += a.numeric_value(v).ok_or_else(|| {
                HdbError::InvalidTuple(format!("value {v} of attribute {attr} is not numeric"))
            })?;
        }
        Ok(sum)
    }

    fn walk_state(&self, q: &Query) -> WalkState {
        WalkState::with_payload(PartWalk(SelState::from_selection(
            self.shard.table.index().selection(q),
        )))
    }

    fn extend_state(
        &self,
        parent: &WalkState,
        child: &Query,
        pred: Predicate,
        recycled: WalkState,
    ) -> WalkState {
        let Some(walk) = parent.payload::<PartWalk>() else {
            return self.walk_state(child);
        };
        let buf = recycled.take_payload::<PartWalk>().map(|w| SelState::into_buffer(w.0));
        let posting = self.shard.table.index().posting(pred.attr, pred.value as usize);
        WalkState::with_payload(PartWalk(SelState::Bits(
            walk.0.child(posting, buf.unwrap_or_default()),
        )))
    }

    fn evaluate_from(
        &self,
        parent: &WalkState,
        child: &Query,
        pred: Predicate,
        k: usize,
        ranking: &dyn RankingFunction,
    ) -> Result<Evaluation> {
        let Some(walk) = parent.payload::<PartWalk>() else {
            return self.evaluate(child, k, ranking);
        };
        let (count, top) = self.shard.partial_from(&walk.0, pred, k, &self.schema, ranking);
        Ok(Evaluation { count, top })
    }

    fn classify_from(
        &self,
        parent: &WalkState,
        child: &Query,
        pred: Predicate,
        k: usize,
    ) -> Result<Classified> {
        let Some(walk) = parent.payload::<PartWalk>() else {
            return Ok(Classified::from_evaluation(
                self.evaluate(child, k, &RowIdRanking)?,
                k,
            ));
        };
        let posting = self.shard.table.index().posting(pred.attr, pred.value as usize);
        let count = walk.0.and_count(posting);
        let page = if (1..=k).contains(&count) {
            walk.0
                .iter_and(posting)
                .map(|row| ReturnedTuple {
                    id: self.shard.ids[row],
                    tuple: self.shard.table.tuple(row as TupleId).clone(),
                })
                .collect()
        } else {
            Vec::new()
        };
        Ok(Classified { count, page })
    }
}

// ---------------------------------------------------------------------------
// Topology

/// The fleet map: for each shard, an ordered list of replica addresses
/// (`host:port`), preferred first. Built once and handed to
/// [`FederatedBackend::connect`]; afterwards the live backend mutates its
/// own copy through [`FederatedBackend::add_replica`] /
/// [`FederatedBackend::drain`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Topology {
    shards: Vec<Vec<String>>,
}

impl Topology {
    /// An empty topology; grow it with [`Topology::add_replica`].
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A topology with one primary per shard: address `i` serves shard
    /// `i` of `addrs.len()`.
    pub fn from_primaries<I, S>(addrs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self { shards: addrs.into_iter().map(|a| vec![a.into()]).collect() }
    }

    /// Registers `addr` as a replica of `shard`, extending the shard list
    /// as needed (so shards can be declared in any order).
    pub fn add_replica(&mut self, shard: usize, addr: impl Into<String>) -> &mut Self {
        if self.shards.len() <= shard {
            self.shards.resize_with(shard + 1, Vec::new);
        }
        self.shards[shard].push(addr.into());
        self
    }

    /// Number of shards in the map.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The replica addresses of `shard` (empty when out of range).
    #[must_use]
    pub fn replicas(&self, shard: usize) -> &[String] {
        self.shards.get(shard).map_or(&[], Vec::as_slice)
    }
}

// ---------------------------------------------------------------------------
// FleetConfig

/// Tuning for a [`FederatedBackend`]: fan-out width, failover budget,
/// backoff pacing, socket limits, and the optional health checker.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Threads evaluating shards concurrently (as
    /// [`ShardedDb::with_workers`](crate::ShardedDb::with_workers):
    /// `workers - 1` persistent pool threads plus the caller).
    pub workers: usize,
    /// Extra connect-and-probe attempts after the first before a probe
    /// gives up with [`HdbError::Transport`]. Each attempt sweeps the
    /// shard's replica rotation once.
    pub retries: usize,
    /// Delay before the first retry; doubles per attempt.
    pub backoff: Duration,
    /// Ceiling for the doubled backoff delay.
    pub backoff_cap: Duration,
    /// Per-operation socket timeout for every shard connection.
    pub io_timeout: Duration,
    /// Idle pooled connections kept per shard client.
    pub max_idle: usize,
    /// When set, a background thread pings serving shards and
    /// pre-reconnects dark ones at this cadence. `None` (the default)
    /// leaves failure detection entirely to the probe path.
    pub health_interval: Option<Duration>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            workers: 1,
            retries: 3,
            backoff: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(200),
            io_timeout: Duration::from_secs(30),
            max_idle: 8,
            health_interval: None,
        }
    }
}

impl FleetConfig {
    /// Applies one command-line flag to this config. Returns `Ok(true)`
    /// when the flag was recognised and consumed, `Ok(false)` when it is
    /// not a fleet flag (so the caller keeps parsing), and `Err` with a
    /// user-facing message when the flag is known but its value does not
    /// parse. The flag vocabulary is shared verbatim between `hdb-server
    /// --federate` and the federation benches — see [`FleetConfig::cli_help`].
    ///
    /// # Errors
    /// A human-readable message naming the flag and the expected value
    /// shape.
    pub fn apply_cli(&mut self, flag: &str, value: &str) -> std::result::Result<bool, String> {
        fn millis(flag: &str, value: &str) -> std::result::Result<Duration, String> {
            value
                .parse::<u64>()
                .map(Duration::from_millis)
                .map_err(|_| format!("{flag} expects milliseconds, got {value:?}"))
        }
        match flag {
            "--retries" => {
                self.retries = value
                    .parse()
                    .map_err(|_| format!("--retries expects a count, got {value:?}"))?;
            }
            "--backoff-ms" => self.backoff = millis(flag, value)?,
            "--backoff-cap-ms" => {
                self.backoff_cap = millis(flag, value)?;
                if self.backoff_cap < self.backoff {
                    return Err(format!(
                        "--backoff-cap-ms ({}) must be >= --backoff-ms ({})",
                        self.backoff_cap.as_millis(),
                        self.backoff.as_millis()
                    ));
                }
            }
            "--io-timeout-ms" => {
                let t = millis(flag, value)?;
                if t.is_zero() {
                    return Err("--io-timeout-ms must be positive".to_string());
                }
                self.io_timeout = t;
            }
            "--health-interval-ms" => {
                let t = millis(flag, value)?;
                self.health_interval = if t.is_zero() { None } else { Some(t) };
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// The `--help` lines for the flags [`FleetConfig::apply_cli`]
    /// understands, one flag per line, indented to match a typical usage
    /// block.
    #[must_use]
    pub fn cli_help() -> &'static str {
        "  --retries N             extra failover attempts per probe (default 3)\n  \
         --backoff-ms MS         delay before the first retry, doubling per attempt (default 10)\n  \
         --backoff-cap-ms MS     ceiling for the doubled backoff delay (default 200)\n  \
         --io-timeout-ms MS      per-operation socket timeout (default 30000)\n  \
         --health-interval-ms MS background health-check cadence; 0 disables (default off)"
    }
}

// ---------------------------------------------------------------------------
// Per-shard client: connection slot + generation + failover sweep.

/// The connection slot of one shard: the current client (if any) and a
/// monotonically increasing generation. Every reconnect and every
/// invalidation bumps the generation, so walk states tagged with an old
/// generation can never be replayed against a newer connection.
struct Slot {
    client: Option<Arc<RemoteBackend>>,
    generation: u64,
}

/// One shard of the fleet: replica rotation, connection slot, and the
/// typed-error retry/failover sweep.
struct ShardClient {
    index: usize,
    /// Shard corpus size learned at bring-up; every replica must agree.
    expected_len: usize,
    /// Full corpus schema; every replica must agree.
    schema: Schema,
    replicas: Mutex<Vec<String>>,
    /// Start index of the next reconnect sweep (bumped on failover so the
    /// sweep begins at the next replica, not the one that just died).
    cursor: AtomicUsize,
    slot: Mutex<Slot>,
    failovers: AtomicU64,
    cfg: Arc<FleetConfig>,
}

impl ShardClient {
    /// The current client and its generation, without touching the
    /// network.
    fn snapshot(&self) -> Option<(u64, Arc<RemoteBackend>)> {
        let slot = self.slot.lock().unwrap_or_else(|p| p.into_inner());
        slot.client.as_ref().map(|c| (slot.generation, Arc::clone(c)))
    }

    /// Drops the connection of `generation` (if still current) so the
    /// next acquire reconnects — possibly to a different replica. The
    /// generation guard makes concurrent invalidations of the same dead
    /// client count as one failover.
    fn invalidate(&self, generation: u64) {
        let mut slot = self.slot.lock().unwrap_or_else(|p| p.into_inner());
        if slot.generation == generation && slot.client.is_some() {
            slot.client = None;
            slot.generation += 1;
            self.failovers.fetch_add(1, Ordering::Relaxed);
            self.cursor.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The current client, connecting if the slot is empty: one sweep
    /// over the replica rotation, validating that the replica serves
    /// this shard (schema + shard corpus size) before installing it.
    fn acquire(&self) -> Result<(u64, Arc<RemoteBackend>)> {
        if let Some(got) = self.snapshot() {
            return Ok(got);
        }
        let replicas = self.replicas.lock().unwrap_or_else(|p| p.into_inner()).clone();
        if replicas.is_empty() {
            return Err(HdbError::Transport(format!(
                "shard {}: no replicas configured",
                self.index
            )));
        }
        let n = replicas.len();
        let start = self.cursor.load(Ordering::Relaxed);
        let mut last: Option<HdbError> = None;
        for off in 0..n {
            let idx = (start + off) % n;
            let addr = replicas[idx].clone();
            match RemoteBackend::connect_with(addr.clone(), self.cfg.max_idle, self.cfg.io_timeout)
            {
                Ok(client) => {
                    if client.schema() != &self.schema || client.len() != self.expected_len {
                        last = Some(HdbError::Transport(format!(
                            "shard {} replica {addr} serves a different corpus \
                             ({} rows vs the expected {})",
                            self.index,
                            client.len(),
                            self.expected_len,
                        )));
                        continue;
                    }
                    self.cursor.store(idx, Ordering::Relaxed);
                    let client = Arc::new(client);
                    let mut slot = self.slot.lock().unwrap_or_else(|p| p.into_inner());
                    if let Some(existing) = &slot.client {
                        // A concurrent acquire won the race; use its client.
                        return Ok((slot.generation, Arc::clone(existing)));
                    }
                    slot.generation += 1;
                    slot.client = Some(Arc::clone(&client));
                    return Ok((slot.generation, client));
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            HdbError::Transport(format!("shard {}: no replica reachable", self.index))
        }))
    }

    /// Runs `op` against a live client with the shard's full failover
    /// budget: on a Transport error the connection is invalidated and the
    /// next attempt (after bounded exponential backoff) sweeps the
    /// replica rotation for a survivor. Non-transport errors are typed
    /// answers, not connectivity, and surface immediately. Exhausting the
    /// budget surfaces the last Transport error — the owning `HiddenDb`
    /// tallies that probe as `Errored`.
    fn with_client<T>(&self, op: impl Fn(&RemoteBackend) -> Result<T>) -> Result<T> {
        let mut delay = self.cfg.backoff;
        let mut last = HdbError::Transport(format!("shard {}: never attempted", self.index));
        for attempt in 0..=self.cfg.retries {
            if attempt > 0 {
                std::thread::sleep(delay);
                delay = (delay * 2).min(self.cfg.backoff_cap);
            }
            let (generation, client) = match self.acquire() {
                Ok(got) => got,
                Err(e) => {
                    last = e;
                    continue;
                }
            };
            match op(&client) {
                Ok(v) => return Ok(v),
                Err(HdbError::Transport(e)) => {
                    self.invalidate(generation);
                    last = HdbError::Transport(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last)
    }

    /// The address currently serving this shard, if any.
    fn current_addr(&self) -> Option<String> {
        self.snapshot().map(|(_, c)| c.addr().to_string())
    }
}

// ---------------------------------------------------------------------------
// Walk states

/// One shard's slice of a federated walk state: the remote state plus the
/// connection generation that produced it. A generation mismatch at probe
/// time means the shard failed over since — the state is ignored and the
/// probe evaluates fresh (bit-identical), because a stale session id must
/// never be presented to a different server.
struct ShardWalk {
    generation: u64,
    state: WalkState,
}

/// The payload a [`FederatedBackend`] stores in a [`WalkState`]: one
/// [`ShardWalk`] per shard, in shard order.
struct FedWalk {
    shards: Vec<ShardWalk>,
}

// ---------------------------------------------------------------------------
// Health checker

/// Background health checks: a thread that pings serving shards and
/// pre-warms reconnects for dark ones. Pacing is a condition-variable
/// timed wait — the thread is parked for the whole interval and woken
/// instantly at shutdown, instead of polling a stop flag in sleep
/// slices — and it never reads a clock or touches results, only
/// connection slots.
struct HealthChecker {
    /// `(stopped, wakeup)`: Drop sets the flag and notifies, ending the
    /// thread's timed wait immediately.
    state: Arc<(Mutex<bool>, Condvar)>,
    /// Shards visited by the sweep loop so far (one per shard per tick),
    /// exported as `hdb_fed_health_probe_total`.
    probes: Arc<AtomicU64>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl HealthChecker {
    fn spawn(shards: Vec<Arc<ShardClient>>, interval: Duration) -> Option<Self> {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let probes = Arc::new(AtomicU64::new(0));
        let shared = Arc::clone(&state);
        let tally = Arc::clone(&probes);
        let handle = std::thread::Builder::new()
            .name("hdb-fleet-health".into())
            .spawn(move || loop {
                for shard in &shards {
                    tally.fetch_add(1, Ordering::Relaxed);
                    match shard.snapshot() {
                        Some((generation, client)) => {
                            if client.ping().is_err() {
                                shard.invalidate(generation);
                            }
                        }
                        None => {
                            // Dark shard: try to restore coverage so the
                            // next probe doesn't pay the reconnect.
                            let _ = shard.acquire();
                        }
                    }
                }
                let (stopped, wakeup) = &*shared;
                let guard = stopped.lock().unwrap_or_else(|p| p.into_inner());
                let (guard, _) = wakeup
                    .wait_timeout_while(guard, interval, |stop| !*stop)
                    .unwrap_or_else(|p| p.into_inner());
                if *guard {
                    return;
                }
            })
            .ok()?;
        Some(Self { state, probes, handle: Some(handle) })
    }

    /// Shards visited by the health sweep so far.
    fn probe_count(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }
}

impl Drop for HealthChecker {
    fn drop(&mut self) {
        {
            let (stopped, wakeup) = &*self.state;
            *stopped.lock().unwrap_or_else(|p| p.into_inner()) = true;
            wakeup.notify_all();
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

// ---------------------------------------------------------------------------
// FederatedBackend

/// A [`SearchBackend`] over a fleet of shard servers: hash-partitioned
/// like [`ShardedDb`](crate::ShardedDb), with each shard behind a
/// [`RemoteBackend`], fanned out in parallel and merged
/// order-independently. See the module docs for the fleet layer and the
/// bit-identicality argument.
pub struct FederatedBackend {
    schema: Schema,
    len: usize,
    shards: Vec<Arc<ShardClient>>,
    workers: usize,
    /// Persistent helper threads for per-probe shard fan-out; `None` when
    /// `workers == 1`.
    pool: Option<Arc<WorkerPool>>,
    /// The optional background health thread (joined on drop).
    health: Option<HealthChecker>,
}

impl std::fmt::Debug for FederatedBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FederatedBackend")
            .field("shards", &self.shards.len())
            .field("len", &self.len)
            .field("workers", &self.workers)
            .finish()
    }
}

impl FederatedBackend {
    /// Connects to every shard of `topology` with the default
    /// [`FleetConfig`].
    ///
    /// # Errors
    /// [`HdbError::Transport`] when the topology is empty, a shard has no
    /// reachable replica, or the shards disagree on the corpus schema.
    pub fn connect(topology: Topology) -> Result<Self> {
        Self::connect_with(topology, FleetConfig::default())
    }

    /// [`FederatedBackend::connect`] with explicit tuning. Bring-up
    /// requires every shard reachable once (the fleet's schema and the
    /// per-shard corpus sizes are learned here and re-validated on every
    /// failover); afterwards shards may come and go.
    ///
    /// # Errors
    /// Same as [`FederatedBackend::connect`].
    pub fn connect_with(topology: Topology, cfg: FleetConfig) -> Result<Self> {
        if topology.shards.is_empty() {
            return Err(HdbError::Transport("federated topology has no shards".into()));
        }
        let workers = cfg.workers.max(1);
        let cfg = Arc::new(cfg);
        let mut shards: Vec<Arc<ShardClient>> = Vec::with_capacity(topology.shards.len());
        let mut schema: Option<Schema> = None;
        for (index, replicas) in topology.shards.into_iter().enumerate() {
            if replicas.is_empty() {
                return Err(HdbError::Transport(format!("shard {index} has no replicas")));
            }
            let mut connected: Option<(usize, RemoteBackend)> = None;
            let mut last: Option<HdbError> = None;
            for (idx, addr) in replicas.iter().enumerate() {
                match RemoteBackend::connect_with(addr.clone(), cfg.max_idle, cfg.io_timeout) {
                    Ok(client) => {
                        connected = Some((idx, client));
                        break;
                    }
                    Err(e) => last = Some(e),
                }
            }
            let Some((idx, client)) = connected else {
                return Err(last.unwrap_or_else(|| {
                    HdbError::Transport(format!("shard {index}: no replica reachable"))
                }));
            };
            match &schema {
                None => schema = Some(client.schema().clone()),
                Some(s) if s == client.schema() => {}
                Some(_) => {
                    return Err(HdbError::Transport(format!(
                        "shard {index} replica {} disagrees on the corpus schema",
                        client.addr(),
                    )))
                }
            }
            shards.push(Arc::new(ShardClient {
                index,
                expected_len: client.len(),
                schema: client.schema().clone(),
                replicas: Mutex::new(replicas),
                cursor: AtomicUsize::new(idx),
                slot: Mutex::new(Slot { client: Some(Arc::new(client)), generation: 1 }),
                failovers: AtomicU64::new(0),
                cfg: Arc::clone(&cfg),
            }));
        }
        let Some(schema) = schema else {
            return Err(HdbError::Transport("federated topology has no shards".into()));
        };
        let len = shards.iter().map(|s| s.expected_len).sum();
        let pool = (workers > 1 && shards.len() > 1)
            .then(|| Arc::new(WorkerPool::new(workers - 1)));
        let health = cfg
            .health_interval
            .and_then(|interval| HealthChecker::spawn(shards.clone(), interval));
        Ok(Self { schema, len, shards, workers, pool, health })
    }

    /// Number of shards in the fleet.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Rows held by shard `i` (0 when out of range).
    #[must_use]
    pub fn shard_len(&self, i: usize) -> usize {
        self.shards.get(i).map_or(0, |s| s.expected_len)
    }

    /// The configured evaluation worker count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Total failovers so far (connections invalidated after a Transport
    /// error or a drain of the serving replica).
    #[must_use]
    pub fn failover_count(&self) -> u64 {
        self.shards.iter().map(|s| s.failovers.load(Ordering::Relaxed)).sum()
    }

    /// Per-shard serving state: `true` when the shard currently holds a
    /// live connection (a `false` shard reconnects on the next probe or
    /// health tick).
    #[must_use]
    pub fn shard_health(&self) -> Vec<bool> {
        self.shards.iter().map(|s| s.snapshot().is_some()).collect()
    }

    /// Shards visited by the background health checker so far (0 when
    /// [`FleetConfig::health_interval`] is off). One sweep over an
    /// `n`-shard fleet adds `n`.
    #[must_use]
    pub fn health_probe_count(&self) -> u64 {
        self.health.as_ref().map_or(0, HealthChecker::probe_count)
    }

    /// The address currently serving shard `i`, if any.
    #[must_use]
    pub fn shard_addr(&self, i: usize) -> Option<String> {
        self.shards.get(i).and_then(|s| s.current_addr())
    }

    /// Registers `addr` as an additional replica of `shard` — the live
    /// half of a topology handoff: add the new server, then
    /// [`FederatedBackend::drain`] the old one.
    ///
    /// # Errors
    /// [`HdbError::Transport`] when `shard` is out of range.
    pub fn add_replica(&self, shard: usize, addr: impl Into<String>) -> Result<()> {
        let Some(client) = self.shards.get(shard) else {
            return Err(HdbError::Transport(format!("no such shard: {shard}")));
        };
        let addr = addr.into();
        let mut replicas = client.replicas.lock().unwrap_or_else(|p| p.into_inner());
        if !replicas.iter().any(|a| a == &addr) {
            replicas.push(addr);
        }
        Ok(())
    }

    /// Removes `addr` from `shard`'s rotation. If it was the serving
    /// replica its connection is invalidated, so the next probe fails
    /// over to the survivors — the drain half of a topology handoff.
    /// Returns whether the address was present.
    ///
    /// # Errors
    /// [`HdbError::Transport`] when `shard` is out of range.
    pub fn drain(&self, shard: usize, addr: &str) -> Result<bool> {
        let Some(client) = self.shards.get(shard) else {
            return Err(HdbError::Transport(format!("no such shard: {shard}")));
        };
        let removed = {
            let mut replicas = client.replicas.lock().unwrap_or_else(|p| p.into_inner());
            let before = replicas.len();
            replicas.retain(|a| a != addr);
            replicas.len() != before
        };
        if removed {
            if let Some((generation, current)) = client.snapshot() {
                if current.addr() == addr {
                    client.invalidate(generation);
                }
            }
        }
        Ok(removed)
    }

    /// Runs one closure per shard — on the persistent pool when one is
    /// configured, serially otherwise — and returns the results in shard
    /// order. (Ordering the results is free determinism; the merges are
    /// order-independent anyway.)
    fn per_shard<R: Send>(&self, run: impl Fn(usize) -> R + Sync) -> Vec<R> {
        match &self.pool {
            None => (0..self.shards.len()).map(run).collect(),
            Some(pool) => {
                let mut results = pool
                    .fan_out(self.shards.len() as u64, |i| Ok::<_, Infallible>(run(i as usize)))
                    .results;
                results.sort_unstable_by_key(|&(i, _)| i);
                results.into_iter().map(|(_, r)| r).collect()
            }
        }
    }

    /// Fallible [`FederatedBackend::per_shard`]: the first shard error
    /// stops the fan-out and surfaces (the probe then tallies as
    /// `Errored` in the owning `HiddenDb`).
    fn try_per_shard<R: Send>(&self, run: impl Fn(usize) -> Result<R> + Sync) -> Result<Vec<R>> {
        match &self.pool {
            None => (0..self.shards.len()).map(run).collect(),
            Some(pool) => {
                let out = pool.fan_out(self.shards.len() as u64, |i| run(i as usize));
                if let Some(e) = out.error {
                    return Err(e);
                }
                let mut results = out.results;
                if results.len() != self.shards.len() {
                    return Err(HdbError::Transport("shard fan-out stopped early".into()));
                }
                results.sort_unstable_by_key(|&(i, _)| i);
                Ok(results.into_iter().map(|(_, r)| r).collect())
            }
        }
    }

    /// The walk slice for shard `i` from a federated parent state, if the
    /// parent has one for this shard and its generation is still current.
    fn usable_walk<'a>(&self, fed: Option<&'a FedWalk>, i: usize) -> Option<&'a ShardWalk> {
        let fed = fed?;
        let sw = fed.shards.get(i)?;
        (sw.generation > 0).then_some(sw)
    }

    /// One shard's partial for an incremental evaluate probe: the walk
    /// fast path when the shard connection still matches the state's
    /// generation, failover + fresh evaluation otherwise.
    fn shard_eval_from(
        &self,
        i: usize,
        fed: Option<&FedWalk>,
        child: &Query,
        pred: Predicate,
        k: usize,
        ranking: &dyn RankingFunction,
    ) -> Result<(usize, Vec<ReturnedTuple>)> {
        let Some(shard) = self.shards.get(i) else {
            return Err(HdbError::Transport(format!("no such shard: {i}")));
        };
        if let Some(sw) = self.usable_walk(fed, i) {
            if let Some((generation, client)) = shard.snapshot() {
                if generation == sw.generation {
                    match client.evaluate_from(&sw.state, child, pred, k, ranking) {
                        Ok(ev) => return Ok((ev.count, ev.top)),
                        Err(HdbError::Transport(_)) => shard.invalidate(generation),
                        Err(e) => return Err(e),
                    }
                }
            }
        }
        let ev = shard.with_client(|c| c.evaluate(child, k, ranking))?;
        Ok((ev.count, ev.top))
    }

    /// One shard's classification for an incremental probe (see
    /// [`FederatedBackend::shard_eval_from`]).
    fn shard_classify_from(
        &self,
        i: usize,
        fed: Option<&FedWalk>,
        child: &Query,
        pred: Predicate,
        k: usize,
    ) -> Result<Classified> {
        let Some(shard) = self.shards.get(i) else {
            return Err(HdbError::Transport(format!("no such shard: {i}")));
        };
        if let Some(sw) = self.usable_walk(fed, i) {
            if let Some((generation, client)) = shard.snapshot() {
                if generation == sw.generation {
                    match client.classify_from(&sw.state, child, pred, k) {
                        Ok(c) => return Ok(c),
                        Err(HdbError::Transport(_)) => shard.invalidate(generation),
                        Err(e) => return Err(e),
                    }
                }
            }
        }
        let ev = shard.with_client(|c| c.evaluate(child, k, &RowIdRanking))?;
        Ok(Classified::from_evaluation(ev, k))
    }
}

impl SearchBackend for FederatedBackend {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn len(&self) -> usize {
        self.len
    }

    fn fill_metrics(&self, snap: &mut MetricsSnapshot) {
        snap.counters.insert("hdb_fed_failovers_total".into(), self.failover_count());
        snap.counters.insert("hdb_fed_health_probe_total".into(), self.health_probe_count());
        for (i, healthy) in self.shard_health().iter().enumerate() {
            snap.gauges
                .insert(format!("hdb_fed_shard_state{{shard=\"{i}\"}}"), u64::from(*healthy));
        }
        if let Some(pool) = &self.pool {
            snap.counters.insert("hdb_pool_jobs_enqueued_total".into(), pool.jobs_enqueued());
            snap.gauges
                .insert("hdb_pool_queue_depth_high_water".into(), pool.queue_depth_high_water());
        }
    }

    fn evaluate(&self, q: &Query, k: usize, ranking: &dyn RankingFunction) -> Result<Evaluation> {
        let partials = self.try_per_shard(|i| {
            let Some(shard) = self.shards.get(i) else {
                return Err(HdbError::Transport(format!("no such shard: {i}")));
            };
            let ev = shard.with_client(|c| c.evaluate(q, k, ranking))?;
            Ok((ev.count, ev.top))
        })?;
        Ok(merge_partials(&self.schema, partials, k, ranking))
    }

    fn exact_count(&self, q: &Query) -> Result<usize> {
        let counts = self.try_per_shard(|i| {
            let Some(shard) = self.shards.get(i) else {
                return Err(HdbError::Transport(format!("no such shard: {i}")));
            };
            shard.with_client(|c| c.exact_count(q))
        })?;
        Ok(counts.into_iter().sum())
    }

    fn exact_sum(&self, attr: AttrId, q: &Query) -> Result<f64> {
        let a = checked_numeric(&self.schema, attr)?;
        // Per shard, fetch ALL matches (k = shard corpus size forces a
        // valid outcome, i.e. the full match page in ascending global id
        // order), then fold the union in ascending global id order —
        // float addition is not associative and this sum must be
        // bit-identical to the single-table (and local-sharded) one.
        let pages = self.try_per_shard(|i| {
            let Some(shard) = self.shards.get(i) else {
                return Err(HdbError::Transport(format!("no such shard: {i}")));
            };
            let all = shard.expected_len.max(1);
            let ev = shard.with_client(|c| c.evaluate(q, all, &RowIdRanking))?;
            if ev.count != ev.top.len() {
                return Err(HdbError::Transport(format!(
                    "shard {i} returned {} of {} matches for an exact sum",
                    ev.top.len(),
                    ev.count,
                )));
            }
            let mut pairs: Vec<(TupleId, f64)> = Vec::with_capacity(ev.top.len());
            for t in ev.top {
                let Some(&v) = t.tuple.values().get(attr) else {
                    return Err(HdbError::Transport(format!(
                        "shard {i} returned a tuple without attribute {attr}"
                    )));
                };
                let x = a.numeric_value(v).ok_or_else(|| {
                    HdbError::Transport(format!(
                        "shard {i} returned non-numeric value {v} for attribute {attr}"
                    ))
                })?;
                pairs.push((t.id, x));
            }
            Ok(pairs)
        })?;
        let mut values: Vec<(TupleId, f64)> = pages.into_iter().flatten().collect();
        values.sort_unstable_by_key(|&(id, _)| id);
        Ok(values.into_iter().map(|(_, v)| v).sum())
    }

    fn walk_state(&self, q: &Query) -> WalkState {
        let shards = self.per_shard(|i| match self.shards.get(i).and_then(|s| s.snapshot()) {
            Some((generation, client)) => {
                ShardWalk { generation, state: client.walk_state(q) }
            }
            // Dark shard: no session; probes through this slice fail over
            // and evaluate fresh (generation 0 never matches a slot).
            None => ShardWalk { generation: 0, state: WalkState::fallback() },
        });
        WalkState::with_payload(FedWalk { shards })
    }

    fn extend_state(
        &self,
        parent: &WalkState,
        child: &Query,
        pred: Predicate,
        _recycled: WalkState,
    ) -> WalkState {
        let Some(fed) = parent.payload::<FedWalk>() else {
            return self.walk_state(child);
        };
        let shards = self.per_shard(|i| {
            let parent_walk = fed.shards.get(i);
            match self.shards.get(i).and_then(|s| s.snapshot()) {
                Some((generation, client)) => match parent_walk {
                    // Still the connection that produced the parent state:
                    // zero-RTT lazy extend (the RemoteBackend pends it).
                    Some(sw) if sw.generation == generation => ShardWalk {
                        generation,
                        state: client.extend_state(
                            &sw.state,
                            child,
                            pred,
                            WalkState::fallback(),
                        ),
                    },
                    // The shard failed over since: re-root a session at
                    // the child on the new connection so the subtree
                    // below stays incremental.
                    _ => ShardWalk { generation, state: client.walk_state(child) },
                },
                None => ShardWalk { generation: 0, state: WalkState::fallback() },
            }
        });
        WalkState::with_payload(FedWalk { shards })
    }

    fn evaluate_from(
        &self,
        parent: &WalkState,
        child: &Query,
        pred: Predicate,
        k: usize,
        ranking: &dyn RankingFunction,
    ) -> Result<Evaluation> {
        let fed = parent.payload::<FedWalk>();
        let partials =
            self.try_per_shard(|i| self.shard_eval_from(i, fed, child, pred, k, ranking))?;
        Ok(merge_partials(&self.schema, partials, k, ranking))
    }

    fn classify_from(
        &self,
        parent: &WalkState,
        child: &Query,
        pred: Predicate,
        k: usize,
    ) -> Result<Classified> {
        let fed = parent.payload::<FedWalk>();
        let parts =
            self.try_per_shard(|i| self.shard_classify_from(i, fed, child, pred, k))?;
        let count: usize = parts.iter().map(|c| c.count).sum();
        let page = if (1..=k).contains(&count) {
            // Valid globally ⇒ every shard count ≤ k, so every non-empty
            // shard page is populated; their union is all matches, in
            // ascending global id order after the sort.
            let mut page: Vec<ReturnedTuple> =
                parts.into_iter().flat_map(|c| c.page).collect();
            page.sort_unstable_by_key(|t| t.id);
            page
        } else {
            Vec::new()
        };
        Ok(Classified { count, page })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::TableBackend;

    #[test]
    fn fleet_flags_parse_and_reject_typed() {
        let mut cfg = FleetConfig::default();
        assert_eq!(cfg.apply_cli("--retries", "7"), Ok(true));
        assert_eq!(cfg.retries, 7);
        assert_eq!(cfg.apply_cli("--backoff-ms", "25"), Ok(true));
        assert_eq!(cfg.apply_cli("--backoff-cap-ms", "400"), Ok(true));
        assert_eq!(cfg.apply_cli("--io-timeout-ms", "1500"), Ok(true));
        assert_eq!(cfg.apply_cli("--health-interval-ms", "50"), Ok(true));
        assert_eq!(cfg.backoff, Duration::from_millis(25));
        assert_eq!(cfg.backoff_cap, Duration::from_millis(400));
        assert_eq!(cfg.io_timeout, Duration::from_millis(1500));
        assert_eq!(cfg.health_interval, Some(Duration::from_millis(50)));
        // 0 disables the health checker rather than busy-spinning it.
        assert_eq!(cfg.apply_cli("--health-interval-ms", "0"), Ok(true));
        assert_eq!(cfg.health_interval, None);
        // Unknown flags are left for the caller; bad values are typed.
        assert_eq!(cfg.apply_cli("--listen", "0.0.0.0:1"), Ok(false));
        assert!(cfg.apply_cli("--retries", "many").is_err());
        assert!(cfg.apply_cli("--io-timeout-ms", "0").is_err());
        assert!(cfg.apply_cli("--backoff-cap-ms", "1").is_err(), "cap below base");
        // Every flag in apply_cli appears in the shared help text.
        for flag in
            ["--retries", "--backoff-ms", "--backoff-cap-ms", "--io-timeout-ms", "--health-interval-ms"]
        {
            assert!(FleetConfig::cli_help().contains(flag), "{flag} missing from help");
        }
    }
    use crate::ranking::{AttributeRanking, RowIdRanking, SeededRandomRanking};
    use crate::schema::Attribute;
    use crate::sharded::ShardedDb;
    use crate::tuple::Tuple;

    fn table() -> Table {
        let schema = Schema::new(vec![
            Attribute::boolean("a"),
            Attribute::boolean("b"),
            Attribute::categorical("p", ["1", "2", "3", "4"])
                .unwrap()
                .with_numeric(vec![1.0, 2.0, 3.0, 4.0])
                .unwrap(),
        ])
        .unwrap();
        let tuples: Vec<Tuple> = (0..16u16)
            .map(|i| Tuple::new(vec![i & 1, (i >> 1) & 1, i >> 2]))
            .collect();
        Table::new(schema, tuples).unwrap()
    }

    fn all_queries(schema: &Schema) -> Vec<Query> {
        let mut queries = vec![Query::all()];
        for attr in 0..schema.len() {
            for v in 0..schema.fanout(attr) {
                queries.push(Query::all().and(attr, v as u16).unwrap());
            }
        }
        queries.push(Query::all().and(0, 1).unwrap().and(2, 3).unwrap());
        queries
    }

    /// The partition places every tuple exactly once and mirrors
    /// `ShardedDb::new`'s assignment (same shard sizes).
    #[test]
    fn partition_matches_sharded_db_assignment() {
        let t = table();
        for parts in [1usize, 2, 3, 7] {
            let backends = ShardPartBackend::partition(&t, parts);
            let sharded = ShardedDb::new(&t, parts);
            assert_eq!(backends.len(), parts);
            let total: usize = backends.iter().map(|b| b.len()).sum();
            assert_eq!(total, t.len());
            for (i, b) in backends.iter().enumerate() {
                assert_eq!(b.len(), sharded.shard_len(i), "parts={parts} shard={i}");
                assert_eq!(b.part_index(), i);
                assert_eq!(b.part_count(), parts);
            }
        }
    }

    /// Per-part evaluations, merged with the shared merge, reproduce the
    /// single-table backend bitwise — for trivial and non-trivial
    /// rankings.
    #[test]
    fn merged_part_evaluations_match_single_table() {
        let t = table();
        let reference = TableBackend::new(t.clone());
        let rankings: [&dyn RankingFunction; 3] = [
            &RowIdRanking,
            &AttributeRanking { attr: 2, descending: true },
            &SeededRandomRanking { seed: 7 },
        ];
        for parts in [1usize, 3, 5] {
            let backends = ShardPartBackend::partition(&t, parts);
            for ranking in rankings {
                for q in all_queries(t.schema()) {
                    for k in [1usize, 3, 20] {
                        let partials: Vec<(usize, Vec<ReturnedTuple>)> = backends
                            .iter()
                            .map(|b| {
                                let ev = b.evaluate(&q, k, ranking).unwrap();
                                (ev.count, ev.top)
                            })
                            .collect();
                        let merged = merge_partials(t.schema(), partials, k, ranking);
                        assert_eq!(
                            reference.evaluate(&q, k, ranking).unwrap(),
                            merged,
                            "parts={parts} q={q:?} k={k}"
                        );
                    }
                }
            }
        }
    }

    /// The incremental walk fast path of a part backend is bit-identical
    /// to its fresh evaluation, and per-part sums/counts add up to the
    /// whole.
    #[test]
    fn part_walk_fast_path_and_ground_truth() {
        let t = table();
        let reference = TableBackend::new(t.clone());
        let backends = ShardPartBackend::partition(&t, 3);
        let root = Query::all();
        let child = root.and(0, 1).unwrap();
        let pred = Predicate::new(0, 1);
        for b in &backends {
            let walk = b.walk_state(&root);
            let fresh = b.evaluate(&child, 3, &RowIdRanking).unwrap();
            let incr = b.evaluate_from(&walk, &child, pred, 3, &RowIdRanking).unwrap();
            assert_eq!(fresh, incr);
            let classified = b.classify_from(&walk, &child, pred, 3).unwrap();
            assert_eq!(classified.count, fresh.count);
            // One level deeper through extend_state.
            let grand = child.and(1, 0).unwrap();
            let gpred = Predicate::new(1, 0);
            let ext = b.extend_state(&walk, &child, pred, WalkState::fallback());
            assert_eq!(
                b.evaluate_from(&ext, &grand, gpred, 2, &RowIdRanking).unwrap(),
                b.evaluate(&grand, 2, &RowIdRanking).unwrap()
            );
        }
        let q = Query::all().and(1, 1).unwrap();
        let count: usize = backends.iter().map(|b| b.exact_count(&q).unwrap()).sum();
        assert_eq!(count, reference.exact_count(&q).unwrap());
        assert!(backends[0].exact_sum(9, &q).is_err(), "bad attr is typed");
    }

    #[test]
    fn topology_construction_and_accessors() {
        let mut topo = Topology::new();
        topo.add_replica(1, "b:1").add_replica(0, "a:1").add_replica(1, "b:2");
        assert_eq!(topo.shard_count(), 2);
        assert_eq!(topo.replicas(0), ["a:1".to_string()]);
        assert_eq!(topo.replicas(1), ["b:1".to_string(), "b:2".to_string()]);
        assert!(topo.replicas(9).is_empty());
        let primaries = Topology::from_primaries(["x:1", "y:1"]);
        assert_eq!(primaries.shard_count(), 2);
        assert_eq!(primaries.replicas(1), ["y:1".to_string()]);
    }

    #[test]
    fn connect_to_empty_or_unreachable_topology_is_typed() {
        assert!(matches!(
            FederatedBackend::connect(Topology::new()),
            Err(HdbError::Transport(_))
        ));
        let mut topo = Topology::new();
        topo.add_replica(0, "127.0.0.1:1");
        let cfg = FleetConfig {
            io_timeout: Duration::from_millis(200),
            retries: 0,
            ..FleetConfig::default()
        };
        assert!(matches!(
            FederatedBackend::connect_with(topo, cfg),
            Err(HdbError::Transport(_))
        ));
    }
}
