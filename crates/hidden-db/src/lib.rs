//! # hdb-interface — the hidden-web-database substrate
//!
//! This crate implements the *environment* of Dasgupta et al., "Unbiased
//! Estimation of Size and Other Aggregates Over Hidden Web Databases"
//! (SIGMOD 2010): an in-memory categorical table hidden behind a
//! restrictive **top-k form interface**.
//!
//! A hidden database exposes only this interaction (paper §2.1): a client
//! fills in values for a subset of attributes and receives
//!
//! * **underflow** — nothing matches,
//! * **valid** — *all* matching tuples (at most `k`), or
//! * **overflow** — the `k` top-ranked matches plus an overflow flag,
//!   with no way to page further or learn the true count.
//!
//! The estimators in `hdb-core` are generic over [`TopKInterface`], so
//! the simulator here stands in for a live website; the query accounting
//! in [`QueryCounter`] plays the role of the site's per-IP limits.
//!
//! The *logical* interface is further split from the *physical*
//! evaluation substrate: [`HiddenDb`] is generic over [`SearchBackend`],
//! with several substrates shipped — the default bitmap-indexed
//! [`TableBackend`], the hash-partitioned [`ShardedDb`] (per-shard
//! evaluation fanned across threads, merged order-independently), the
//! remote-API simulation [`LatencyBackend`], the networked
//! [`RemoteBackend`] client, and the fleet-spanning
//! [`FederatedBackend`] (every shard behind its own server, with
//! health checks and failover). All backends return
//! bit-identical outcomes for the same corpus, so estimator runs are
//! reproducible across substrates (see `docs/ARCHITECTURE.md`).
//!
//! ## Quick example
//!
//! ```
//! use hdb_interface::{Attribute, HiddenDb, Query, Schema, Table, TopKInterface, Tuple};
//!
//! let schema = Schema::new(vec![
//!     Attribute::boolean("sunroof"),
//!     Attribute::categorical("color", ["red", "blue", "green"]).unwrap(),
//! ]).unwrap();
//! let table = Table::new(schema, vec![
//!     Tuple::new(vec![0, 0]),
//!     Tuple::new(vec![1, 0]),
//!     Tuple::new(vec![1, 2]),
//! ]).unwrap();
//! let db = HiddenDb::new(table, 2);
//!
//! // Too broad: three matches against k = 2 → overflow.
//! assert!(db.query(&Query::all()).unwrap().is_overflow());
//! // Narrow enough → valid, all matches returned.
//! let q = Query::all().and(0, 1).unwrap();
//! assert_eq!(db.query(&q).unwrap().returned_count(), 2);
//! assert_eq!(db.queries_issued(), 2);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod backend;
pub mod bitmap;
pub mod cache;
pub mod counter;
pub mod error;
pub mod federated;
pub mod index;
pub mod interface;
pub mod latency;
pub mod obs;
pub mod par;
pub mod query;
pub mod ranking;
pub mod reactor;
pub mod remote;
pub mod schema;
pub mod session;
pub mod sharded;
pub mod storage;
pub mod table;
pub mod tuple;
pub mod wire;

pub use backend::{Classified, EvalMode, Evaluation, SearchBackend, TableBackend, WalkState};
pub use cache::{CachingInterface, ShardedMemo};
pub use counter::QueryCounter;
pub use error::{HdbError, Result};
pub use federated::{FederatedBackend, FleetConfig, ShardPartBackend, Topology};
pub use index::{Selection, TableIndex};
pub use interface::{HiddenDb, QueryOutcome, ReturnedTuple, TopKInterface};
pub use session::{ClassifiedOutcome, SessionMode, WalkSession};
pub use latency::LatencyBackend;
pub use obs::{
    Clock, Counter, Gauge, Histogram, HistogramSnapshot, ManualClock, MetricsRegistry,
    MetricsSnapshot, SpanEvent, SpanPhase, TraceRing, WallClock,
};
pub use par::WorkerPool;
pub use query::{Predicate, Query};
pub use ranking::{AttributeRanking, RankingFunction, RankingSpec, RowIdRanking, SeededRandomRanking};
pub use remote::RemoteBackend;
pub use schema::{AttrId, Attribute, Schema, ValueId};
pub use sharded::ShardedDb;
pub use storage::{
    MemIo, PersistentBackend, RecoveryReport, SessionDump, SessionRecord, StdIo, StorageIo,
    SyncPolicy, WalkStep,
};
pub use table::Table;
pub use tuple::{Tuple, TupleId};
