//! Query memoisation, safe under concurrency.
//!
//! Re-issuing a query the client has already asked wastes budget on a real
//! site (the answer cannot have changed within a session under the paper's
//! static-database model). [`CachingInterface`] wraps any
//! [`TopKInterface`] and serves repeats from memory; only cache misses are
//! charged to the inner interface.
//!
//! The store behind it, [`ShardedMemo`], spreads entries over a fixed set
//! of independently locked shards (hash of the query picks the shard), so
//! concurrent drill-down workers hitting disjoint queries never contend
//! on one global lock. The hidden-database simulator reuses the same
//! structure for its server-side hot-response memo.
//!
//! Note the estimators in `hdb-core` deliberately do *not* put a global
//! cache between themselves and the database when measuring query cost —
//! the paper's costs count *issued* queries, with deduplication applied
//! only within a single drill-down. The wrapper exists for applications
//! (and for the crawler, where cross-walk reuse is legitimate).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::error::Result;
use crate::interface::{QueryOutcome, TopKInterface};
use crate::query::Query;
use crate::schema::Schema;

/// Number of independently locked shards. A power of two so the shard
/// pick is a mask; 16 keeps contention negligible for the worker counts
/// the engine uses (≤ 8) without bloating the empty structure.
const SHARD_COUNT: usize = 16;

/// A query → value memo sharded over independently locked maps.
///
/// The value type defaults to [`QueryOutcome`] (the full-response memo);
/// the hidden-database simulator also instantiates it with
/// [`ClassifiedOutcome`](crate::ClassifiedOutcome) for its count-only
/// memo.
///
/// All methods take `&self`; the structure is `Sync` and safe to share
/// across estimation worker threads.
#[derive(Debug)]
pub struct ShardedMemo<V = QueryOutcome> {
    shards: [Mutex<HashMap<Query, V>>; SHARD_COUNT],
}

impl<V> Default for ShardedMemo<V> {
    fn default() -> Self {
        Self { shards: std::array::from_fn(|_| Mutex::new(HashMap::new())) }
    }
}

impl<V: Clone> ShardedMemo<V> {
    /// An empty memo.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn shard(&self, q: &Query) -> &Mutex<HashMap<Query, V>> {
        let mut h = DefaultHasher::new();
        q.hash(&mut h);
        &self.shards[(h.finish() as usize) & (SHARD_COUNT - 1)]
    }

    /// Looks up the value memoised for `q`, if any.
    #[must_use]
    pub fn get(&self, q: &Query) -> Option<V> {
        self.shard(q).lock().expect("memo shard poisoned").get(q).cloned()
    }

    /// Memoises `value` for `q` (last writer wins; under the
    /// static-database model every writer stores the same answer).
    pub fn insert(&self, q: Query, value: V) {
        self.shard(&q).lock().expect("memo shard poisoned").insert(q, value);
    }

    /// Number of distinct queries stored, summed across shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("memo shard poisoned").len()).sum()
    }

    /// Whether no query is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry.
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().expect("memo shard poisoned").clear();
        }
    }
}

/// Memoising wrapper around a [`TopKInterface`].
///
/// Thread-safe: concurrent callers contend only on the shard their query
/// hashes to. Two threads racing on the *same* uncached query may both
/// miss and both charge the inner interface — a cache races like a cache,
/// never like a lock — but the memoised answer is identical either way.
pub struct CachingInterface<I> {
    inner: I,
    memo: ShardedMemo,
    hits: AtomicU64,
}

impl<I: TopKInterface> CachingInterface<I> {
    /// Wraps `inner` with an unbounded memo.
    pub fn new(inner: I) -> Self {
        Self { inner, memo: ShardedMemo::new(), hits: AtomicU64::new(0) }
    }

    /// Number of queries answered from the memo.
    pub fn cache_hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of distinct queries stored.
    pub fn cache_size(&self) -> usize {
        self.memo.len()
    }

    /// The wrapped interface.
    pub fn inner(&self) -> &I {
        &self.inner
    }

    /// Unwraps, discarding the memo.
    pub fn into_inner(self) -> I {
        self.inner
    }
}

impl<I: TopKInterface> TopKInterface for CachingInterface<I> {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn k(&self) -> usize {
        self.inner.k()
    }

    fn query(&self, q: &Query) -> Result<QueryOutcome> {
        if let Some(hit) = self.memo.get(q) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        let outcome = self.inner.query(q)?;
        self.memo.insert(q.clone(), outcome.clone());
        Ok(outcome)
    }

    fn queries_issued(&self) -> u64 {
        self.inner.queries_issued()
    }

    fn budget_remaining(&self) -> Option<u64> {
        self.inner.budget_remaining()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interface::HiddenDb;
    use crate::schema::Schema;
    use crate::table::Table;
    use crate::tuple::Tuple;

    fn db() -> HiddenDb {
        let table = Table::new(
            Schema::boolean(3),
            vec![Tuple::new(vec![0, 0, 0]), Tuple::new(vec![1, 1, 1])],
        )
        .unwrap();
        HiddenDb::new(table, 1)
    }

    #[test]
    fn repeats_are_served_from_memo() {
        let c = CachingInterface::new(db());
        let q = Query::all().and(0, 1).unwrap();
        let a = c.query(&q).unwrap();
        let b = c.query(&q).unwrap();
        assert_eq!(a, b);
        assert_eq!(c.queries_issued(), 1);
        assert_eq!(c.cache_hits(), 1);
        assert_eq!(c.cache_size(), 1);
    }

    #[test]
    fn distinct_queries_all_charged() {
        let c = CachingInterface::new(db());
        c.query(&Query::all()).unwrap();
        c.query(&Query::all().and(0, 0).unwrap()).unwrap();
        c.query(&Query::all().and(0, 1).unwrap()).unwrap();
        assert_eq!(c.queries_issued(), 3);
        assert_eq!(c.cache_hits(), 0);
    }

    #[test]
    fn budget_applies_to_misses_only() {
        let table = Table::new(Schema::boolean(2), vec![Tuple::new(vec![0, 0])]).unwrap();
        let c = CachingInterface::new(HiddenDb::new(table, 1).with_budget(1));
        let q = Query::all();
        c.query(&q).unwrap();
        // repeat is free
        c.query(&q).unwrap();
        // a new query exceeds the budget
        assert!(c.query(&Query::all().and(0, 0).unwrap()).is_err());
    }

    #[test]
    fn sharded_memo_basics() {
        let memo = ShardedMemo::new();
        assert!(memo.is_empty());
        let q = Query::all();
        assert_eq!(memo.get(&q), None);
        memo.insert(q.clone(), QueryOutcome::Underflow);
        assert_eq!(memo.get(&q), Some(QueryOutcome::Underflow));
        assert_eq!(memo.len(), 1);
        memo.clear();
        assert!(memo.is_empty());
    }

    #[test]
    fn memo_entries_spread_across_shards() {
        // Many distinct queries must not pile into one shard (a broken
        // hash → one global lock in disguise).
        let memo = ShardedMemo::new();
        for attr in 0..4usize {
            for value in 0..2u16 {
                memo.insert(
                    Query::all().and(attr, value).unwrap(),
                    QueryOutcome::Underflow,
                );
            }
        }
        assert_eq!(memo.len(), 8);
        let occupied =
            memo.shards.iter().filter(|s| !s.lock().unwrap().is_empty()).count();
        assert!(occupied >= 2, "all {} entries landed in one shard", memo.len());
    }

    #[test]
    fn concurrent_hammering_is_consistent() {
        use std::sync::Arc;
        let c = Arc::new(CachingInterface::new(db()));
        let queries: Vec<Query> = (0..3usize)
            .flat_map(|a| (0..2u16).map(move |v| Query::all().and(a, v).unwrap()))
            .collect();
        let mut handles = Vec::new();
        for t in 0..4 {
            let c = Arc::clone(&c);
            let queries = queries.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..200 {
                    let q = &queries[(i + t) % queries.len()];
                    let _ = c.query(q).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.cache_size(), queries.len());
        // every call either hit the memo or charged the inner interface
        assert_eq!(c.cache_hits() + c.queries_issued(), 800);
        assert!(c.queries_issued() >= queries.len() as u64);
    }
}
