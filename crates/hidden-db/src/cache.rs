//! A client-side query memo.
//!
//! Re-issuing a query the client has already asked wastes budget on a real
//! site (the answer cannot have changed within a session under the paper's
//! static-database model). [`CachingInterface`] wraps any
//! [`TopKInterface`] and serves repeats from memory; only cache misses are
//! charged to the inner interface.
//!
//! Note the estimators in `hdb-core` deliberately do *not* put a global
//! cache between themselves and the database when measuring query cost —
//! the paper's costs count *issued* queries, with deduplication applied
//! only within a single drill-down. The wrapper exists for applications
//! (and for the crawler, where cross-walk reuse is legitimate).

use std::collections::HashMap;
use std::sync::Mutex;

use crate::error::Result;
use crate::interface::{QueryOutcome, TopKInterface};
use crate::query::Query;
use crate::schema::Schema;

/// Memoising wrapper around a [`TopKInterface`].
pub struct CachingInterface<I> {
    inner: I,
    memo: Mutex<HashMap<Query, QueryOutcome>>,
    hits: Mutex<u64>,
}

impl<I: TopKInterface> CachingInterface<I> {
    /// Wraps `inner` with an unbounded memo.
    pub fn new(inner: I) -> Self {
        Self { inner, memo: Mutex::new(HashMap::new()), hits: Mutex::new(0) }
    }

    /// Number of queries answered from the memo.
    pub fn cache_hits(&self) -> u64 {
        *self.hits.lock().expect("cache mutex poisoned")
    }

    /// Number of distinct queries stored.
    pub fn cache_size(&self) -> usize {
        self.memo.lock().expect("cache mutex poisoned").len()
    }

    /// The wrapped interface.
    pub fn inner(&self) -> &I {
        &self.inner
    }

    /// Unwraps, discarding the memo.
    pub fn into_inner(self) -> I {
        self.inner
    }
}

impl<I: TopKInterface> TopKInterface for CachingInterface<I> {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn k(&self) -> usize {
        self.inner.k()
    }

    fn query(&self, q: &Query) -> Result<QueryOutcome> {
        if let Some(hit) = self.memo.lock().expect("cache mutex poisoned").get(q) {
            *self.hits.lock().expect("cache mutex poisoned") += 1;
            return Ok(hit.clone());
        }
        let outcome = self.inner.query(q)?;
        self.memo
            .lock()
            .expect("cache mutex poisoned")
            .insert(q.clone(), outcome.clone());
        Ok(outcome)
    }

    fn queries_issued(&self) -> u64 {
        self.inner.queries_issued()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interface::HiddenDb;
    use crate::schema::Schema;
    use crate::table::Table;
    use crate::tuple::Tuple;

    fn db() -> HiddenDb {
        let table = Table::new(
            Schema::boolean(3),
            vec![Tuple::new(vec![0, 0, 0]), Tuple::new(vec![1, 1, 1])],
        )
        .unwrap();
        HiddenDb::new(table, 1)
    }

    #[test]
    fn repeats_are_served_from_memo() {
        let c = CachingInterface::new(db());
        let q = Query::all().and(0, 1).unwrap();
        let a = c.query(&q).unwrap();
        let b = c.query(&q).unwrap();
        assert_eq!(a, b);
        assert_eq!(c.queries_issued(), 1);
        assert_eq!(c.cache_hits(), 1);
        assert_eq!(c.cache_size(), 1);
    }

    #[test]
    fn distinct_queries_all_charged() {
        let c = CachingInterface::new(db());
        c.query(&Query::all()).unwrap();
        c.query(&Query::all().and(0, 0).unwrap()).unwrap();
        c.query(&Query::all().and(0, 1).unwrap()).unwrap();
        assert_eq!(c.queries_issued(), 3);
        assert_eq!(c.cache_hits(), 0);
    }

    #[test]
    fn budget_applies_to_misses_only() {
        let table = Table::new(Schema::boolean(2), vec![Tuple::new(vec![0, 0])]).unwrap();
        let c = CachingInterface::new(HiddenDb::new(table, 1).with_budget(1));
        let q = Query::all();
        c.query(&q).unwrap();
        // repeat is free
        c.query(&q).unwrap();
        // a new query exceeds the budget
        assert!(c.query(&Query::all().and(0, 0).unwrap()).is_err());
    }
}
